"""Control information piggybacked on application messages.

Each communication-induced protocol defines what rides on messages; the
structures here are immutable snapshots taken at send time.  They also
account their own wire size in bits, which feeds the paper's overhead
comparison (section 5.2: the BHMR protocol pays ``n^2 + n`` extra bits
per message over FDAS's ``n`` integers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: Wire width assumed for one checkpoint-interval index.
INDEX_BITS = 32


@dataclass(frozen=True)
class Piggyback:
    """Base class: piggybacks are value objects with a bit size."""

    def size_bits(self) -> int:
        return 0


@dataclass(frozen=True)
class EmptyPiggyback(Piggyback):
    """No control information (independent checkpointing)."""


@dataclass(frozen=True)
class TDVPiggyback(Piggyback):
    """A transitive dependency vector (FDAS / FDI and variants)."""

    tdv: Tuple[int, ...]

    def size_bits(self) -> int:
        return INDEX_BITS * len(self.tdv)


@dataclass(frozen=True)
class FlagPiggyback(Piggyback):
    """A single boolean (classical protocols needing only one flag)."""

    flag: bool

    def size_bits(self) -> int:
        return 1


@dataclass(frozen=True)
class BHMRPiggyback(Piggyback):
    """The full BHMR control state: ``TDV``, ``simple``, ``causal``.

    ``causal`` is an ``n x n`` boolean matrix flattened row-major into a
    tuple of row tuples; ``simple`` is a boolean vector.  Both are copies
    (snapshots) of the sender's state at send time.
    """

    tdv: Tuple[int, ...]
    simple: Tuple[bool, ...]
    causal: Tuple[Tuple[bool, ...], ...]

    def size_bits(self) -> int:
        n = len(self.tdv)
        return INDEX_BITS * n + n + n * n

    def causal_entry(self, k: int, j: int) -> bool:
        return self.causal[k][j]


@dataclass(frozen=True)
class BHMRNoSimplePiggyback(Piggyback):
    """Variant 1 of section 5.1: TDV + causal matrix, no simple vector."""

    tdv: Tuple[int, ...]
    causal: Tuple[Tuple[bool, ...], ...]

    def size_bits(self) -> int:
        n = len(self.tdv)
        return INDEX_BITS * n + n * n

    def causal_entry(self, k: int, j: int) -> bool:
        return self.causal[k][j]
