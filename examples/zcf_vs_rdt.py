"""Z-cycle freedom vs full RDT: what the stronger property costs and buys.

    python examples/zcf_vs_rdt.py

BCS (Briatico et al., 1984) is the classic index-based protocol: it
guarantees only that no checkpoint is ever *useless* (Z-cycle freedom).
The RDT family guarantees more -- every rollback dependency is visible
in a dependency vector.  This example runs both on identical traffic and
shows:

* BCS forces fewer checkpoints (weaker property, lower price);
* both leave zero useless checkpoints;
* BCS still hides dependencies (RDT violations), so min/max consistent
  global checkpoints need offline graph work, while the BHMR run reads
  them off its vectors;
* BCS's consolation prize: its index lines are free consistent cuts.
"""

from repro import api
from repro.core import bcs_index_cut, max_index
from repro.events import render_space_time
from repro.harness import render_table


def main() -> None:
    scenario = dict(
        workload="random",
        workload_args={"send_rate": 1.5},
        n=3,
        duration=40.0,
        seed=11,
        basic_rate=0.4,
    )

    rows = []
    results = {}
    for protocol in ("bcs", "bhmr", "fdas"):
        res = api.run(protocol=protocol, **scenario)
        results[protocol] = res
        report = api.analyze_rdt(res.history)
        rows.append(
            {
                "protocol": protocol,
                "forced": res.metrics.forced_checkpoints,
                "useless ckpts": len(api.useless_checkpoints(res.history)),
                "RDT": "yes" if report.holds else f"NO ({len(report.violations)})",
                "bits/msg": round(res.metrics.piggyback_bits_per_message, 1),
            }
        )
    print(render_table(rows, title="Same traffic, three guarantees"))

    bcs = results["bcs"]
    top = max_index(bcs.family)
    print(f"\nBCS reached index {top}; its free consistent index lines:")
    for q in range(1, min(top, 4) + 1):
        print(f"  q={q}: {bcs_index_cut(bcs.family, q, bcs.history)}")

    print("\nA small slice of the BCS pattern (note the forced [x] boxes):")
    small = api.run(
        workload="random",
        workload_args={"send_rate": 1.0},
        protocol="bcs",
        n=3,
        duration=8.0,
        seed=5,
        basic_rate=0.4,
    )
    print(render_space_time(small.history, max_width=100))


if __name__ == "__main__":
    main()
