"""Space-time renderer tests."""

from repro.events import (
    PatternBuilder,
    figure1_pattern,
    render_cut,
    render_space_time,
)


class TestSpaceTime:
    def test_one_lane_per_process(self):
        text = render_space_time(figure1_pattern())
        lanes = [line for line in text.splitlines() if line.startswith("P")]
        assert len(lanes) == 3

    def test_checkpoints_and_messages_shown(self):
        text = render_space_time(figure1_pattern())
        assert "[0]" in text and "[3]" in text
        assert "s0" in text and "r0" in text

    def test_legend(self):
        text = render_space_time(figure1_pattern())
        assert "messages:" in text and "m6: P2->P1" in text

    def test_legend_marks_in_transit(self):
        b = PatternBuilder(2)
        b.send(0, 1)
        text = render_space_time(b.build())
        assert "(in transit)" in text

    def test_legend_suppressible(self):
        text = render_space_time(figure1_pattern(), show_legend=False)
        assert "messages:" not in text

    def test_max_width_truncates(self):
        text = render_space_time(figure1_pattern(), max_width=30)
        for line in text.splitlines():
            if line.startswith("P"):
                assert len(line) <= 30 and line.endswith("...")

    def test_empty_history(self):
        text = render_space_time(PatternBuilder(2).build())
        assert text.count("[0]") == 2

    def test_internal_events_marked(self):
        b = PatternBuilder(1)
        b.internal(0)
        assert "*" in render_space_time(b.build())

    def test_send_left_of_delivery(self):
        text = render_space_time(figure1_pattern())
        lanes = [line for line in text.splitlines() if line.startswith("P")]
        # m0 is sent by P0 and delivered by P1: column of s0 < column of r0.
        assert lanes[0].index("s0") < lanes[1].index("r0")


class TestCutRendering:
    def test_render_cut(self):
        text = render_cut(figure1_pattern(), {0: 1, 1: 1, 2: 1}, label="line")
        assert text.startswith("line:")
        assert "P2@C(2,1)" in text
