"""Storage footprint: what checkpointing costs on disk, and what GC buys.

Not a paper table, but the operational reading of the whole study: the
run's stable-storage curve under each protocol, with and without
recovery-floor garbage collection.  Two facts to observe:

* GC transforms monotone growth into a bounded working set;
* protocols that force more checkpoints write more, but their floors
  advance at least as fast, so the *retained* footprint stays
  comparable -- the forced-checkpoint price is mostly write bandwidth,
  not capacity.
"""

import pytest

from repro.harness import render_table
from repro.sim import Simulation, SimulationConfig
from repro.storage import simulate_storage
from repro.workloads import RandomUniformWorkload

PROTOCOLS = ["independent", "bcs", "bhmr", "fdas"]


@pytest.fixture(scope="module")
def histories():
    sim = Simulation(
        RandomUniformWorkload(send_rate=2.0),
        SimulationConfig(n=4, duration=60.0, seed=3, basic_rate=0.3),
    )
    return {name: sim.run(name).history for name in PROTOCOLS}


def test_storage_curves(benchmark, emit, histories):
    rows = []
    reports = {}
    for name, history in histories.items():
        no_gc = simulate_storage(history, gc_interval=None)
        with_gc = simulate_storage(history, gc_interval=10.0)
        reports[name] = (no_gc, with_gc)
        rows.append(
            {
                "protocol": name,
                "written (KiB)": round(no_gc.bytes_written / 1024, 1),
                "final no-GC (KiB)": round(no_gc.final_bytes / 1024, 1),
                "final GC (KiB)": round(with_gc.final_bytes / 1024, 1),
                "peak GC (KiB)": round(with_gc.peak_bytes / 1024, 1),
                "reclaimed (KiB)": round(with_gc.bytes_reclaimed / 1024, 1),
            }
        )
    emit(render_table(rows, title="Stable storage footprint (random, n=4)"))
    for name, (no_gc, with_gc) in reports.items():
        assert with_gc.final_bytes <= no_gc.final_bytes, name
        assert with_gc.bytes_written == no_gc.bytes_written, name
    # GC must be reclaiming something substantial on every protocol that
    # takes checkpoints beyond the initial ones.
    for name in ("bcs", "bhmr", "fdas"):
        no_gc, with_gc = reports[name]
        assert with_gc.bytes_reclaimed > 0.3 * no_gc.bytes_written, name
    # The capacity story: under independent checkpointing the recovery
    # floor stalls (hidden dependencies pin old checkpoints), so GC
    # retains several times more than under any CIC protocol.
    assert (
        reports["independent"][1].final_bytes
        > 3 * reports["bhmr"][1].final_bytes
    )
    benchmark(lambda: simulate_storage(histories["bhmr"], gc_interval=10.0))
