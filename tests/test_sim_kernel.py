"""Kernel, delay model and channel tests."""

import random

import pytest

from repro.sim import ChannelMap, Constant, Exponential, LogNormal, Scheduler, Uniform
from repro.types import SimulationError


class TestScheduler:
    def test_events_run_in_time_order(self):
        s = Scheduler()
        log = []
        s.schedule(2.0, lambda: log.append("b"))
        s.schedule(1.0, lambda: log.append("a"))
        s.schedule(3.0, lambda: log.append("c"))
        s.run()
        assert log == ["a", "b", "c"]

    def test_ties_run_in_scheduling_order(self):
        s = Scheduler()
        log = []
        s.schedule(1.0, lambda: log.append(1))
        s.schedule(1.0, lambda: log.append(2))
        s.run()
        assert log == [1, 2]

    def test_now_advances(self):
        s = Scheduler()
        seen = []
        s.schedule(5.0, lambda: seen.append(s.now))
        end = s.run()
        assert seen == [5.0] and end == 5.0

    def test_until_bound(self):
        s = Scheduler()
        log = []
        s.schedule(1.0, lambda: log.append(1))
        s.schedule(10.0, lambda: log.append(2))
        s.run(until=5.0)
        assert log == [1]
        assert s.pending() == 1

    def test_max_events_bound(self):
        s = Scheduler()

        def rearm():
            s.schedule(1.0, rearm)

        s.schedule(1.0, rearm)
        s.run(max_events=10)
        assert s.events_processed == 10

    def test_callbacks_can_schedule(self):
        s = Scheduler()
        log = []
        s.schedule(1.0, lambda: s.schedule(1.0, lambda: log.append("nested")))
        s.run()
        assert log == ["nested"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Scheduler().schedule(-1.0, lambda: None)

    def test_past_scheduling_rejected(self):
        s = Scheduler()
        s.schedule(5.0, lambda: None)
        s.run()
        with pytest.raises(SimulationError):
            s.schedule_at(1.0, lambda: None)

    def test_reentrant_run_rejected(self):
        s = Scheduler()
        seen = []
        s.schedule(1.0, lambda: seen.append(pytest.raises(SimulationError, s.run)))
        s.run()
        assert len(seen) == 1

    def test_failed_run_does_not_poison_the_next(self):
        s = Scheduler()

        def boom():
            raise RuntimeError("callback failed")

        s.schedule(1.0, boom)
        with pytest.raises(RuntimeError):
            s.run()
        log = []
        s.schedule(1.0, lambda: log.append("ok"))
        s.run()
        assert log == ["ok"]


class TestDelays:
    @pytest.mark.parametrize(
        "model",
        [Constant(0.7), Uniform(0.1, 0.5), Exponential(1.3), LogNormal(1.0, 0.4)],
    )
    def test_samples_positive(self, model):
        rng = random.Random(1)
        for _ in range(200):
            assert model.sample(rng) > 0

    def test_constant_is_constant(self):
        rng = random.Random(1)
        assert Constant(2.5).sample(rng) == 2.5

    def test_exponential_mean_roughly_right(self):
        rng = random.Random(7)
        model = Exponential(mean=2.0)
        samples = [model.sample(rng) for _ in range(5000)]
        assert 1.8 < sum(samples) / len(samples) < 2.2

    def test_deterministic_given_seed(self):
        a = Exponential(1.0).sample(random.Random(3))
        b = Exponential(1.0).sample(random.Random(3))
        assert a == b


class TestChannels:
    def test_arrival_after_send(self):
        ch = ChannelMap(2, delay=Exponential(1.0))
        rng = random.Random(0)
        for _ in range(100):
            assert ch.arrival_time(0, 1, 10.0, rng) > 10.0

    def test_non_fifo_can_reorder(self):
        ch = ChannelMap(2, delay=Uniform(0.1, 10.0), fifo=False)
        rng = random.Random(4)
        arrivals = [ch.arrival_time(0, 1, float(t), rng) for t in range(50)]
        assert any(a > b for a, b in zip(arrivals, arrivals[1:]))

    def test_fifo_preserves_order(self):
        ch = ChannelMap(2, delay=Uniform(0.1, 10.0), fifo=True)
        rng = random.Random(4)
        arrivals = [ch.arrival_time(0, 1, float(t), rng) for t in range(50)]
        assert all(a < b for a, b in zip(arrivals, arrivals[1:]))

    def test_fifo_is_per_channel(self):
        ch = ChannelMap(3, delay=Constant(1.0), fifo=True)
        rng = random.Random(0)
        a01 = ch.arrival_time(0, 1, 0.0, rng)
        a02 = ch.arrival_time(0, 2, 0.0, rng)
        assert a01 == pytest.approx(1.0) and a02 == pytest.approx(1.0)
