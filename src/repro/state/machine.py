"""Deterministic process state machines over recorded histories.

The pattern calculus of :mod:`repro.analysis` never looks at *state*;
real rollback-recovery does.  This module gives every process a
deterministic state (a running digest folded over its events, standing
in for arbitrary application state under the piecewise-deterministic
assumption): equal digests == equal states, and replaying the same
events from the same state reproduces the same digest.

Built on it, :mod:`repro.state.replay` executes an actual recovery --
restore a checkpointed state, re-apply logged/replayed messages -- and
*proves* (by digest equality) that the recovered run converges back to
the original one.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.events.event import Event, EventKind
from repro.events.history import History
from repro.types import CheckpointId, ProcessId


def _fold(digest: str, *parts: object) -> str:
    h = hashlib.sha256()
    h.update(digest.encode())
    for part in parts:
        h.update(repr(part).encode())
    return h.hexdigest()


class ProcessStateMachine:
    """One process's deterministic state, folded event by event.

    The digest evolves on every *state-relevant* action: internal steps,
    sends (content assumed a deterministic function of state) and
    deliveries (folding the message id and sender -- the only
    nondeterministic input, which is why delivery order must be logged
    for replay).  Taking a checkpoint records but does not change state.
    """

    def __init__(self, pid: ProcessId) -> None:
        self.pid = pid
        self.digest = _fold("init", pid)
        self.steps = 0

    def apply(self, event: Event) -> None:
        if event.kind is EventKind.CHECKPOINT:
            return  # recording state is not a state change
        if event.kind is EventKind.DELIVER:
            self.digest = _fold(self.digest, "recv", event.msg_id)
        elif event.kind is EventKind.SEND:
            self.digest = _fold(self.digest, "send", event.msg_id)
        else:
            self.digest = _fold(self.digest, "internal")
        self.steps += 1

    def restore(self, digest: str, steps: int) -> None:
        self.digest = digest
        self.steps = steps

    def snapshot(self) -> Tuple[str, int]:
        return (self.digest, self.steps)


@dataclass
class StateTrace:
    """Digests of one full run: per checkpoint and at end-of-history."""

    checkpoint_digests: Dict[CheckpointId, Tuple[str, int]]
    final_digests: Dict[ProcessId, Tuple[str, int]]

    def at(self, cid: CheckpointId) -> Tuple[str, int]:
        return self.checkpoint_digests[cid]


def run_state_machines(history: History) -> StateTrace:
    """Fold every process's state machine over the recorded history."""
    machines = [
        ProcessStateMachine(pid) for pid in range(history.num_processes)
    ]
    checkpoint_digests: Dict[CheckpointId, Tuple[str, int]] = {}
    for pid in range(history.num_processes):
        machine = machines[pid]
        for event in history.events(pid):
            if event.kind is EventKind.CHECKPOINT:
                assert event.checkpoint_index is not None
                checkpoint_digests[
                    CheckpointId(pid, event.checkpoint_index)
                ] = machine.snapshot()
            machine.apply(event)
    return StateTrace(
        checkpoint_digests=checkpoint_digests,
        final_digests={m.pid: m.snapshot() for m in machines},
    )


def replayable_suffix(
    history: History, cut: Dict[ProcessId, int]
) -> Dict[ProcessId, List[Event]]:
    """The events each process must re-execute after rolling back to ``cut``."""
    suffix: Dict[ProcessId, List[Event]] = {}
    for pid in range(history.num_processes):
        limit = history.checkpoint_event(CheckpointId(pid, cut[pid])).seq
        suffix[pid] = [ev for ev in history.events(pid) if ev.seq > limit]
    return suffix
