"""The Rollback-Dependency Trackability checker.

RDT (Definition 3.4): every R-path of the pattern is on-line trackable.
This module decides RDT for arbitrary recorded histories with two
*independent* methods that the test suite cross-checks against each
other -- they are the library's rendition of the paper family's
"characterizations" of RDT:

``method="tdv"`` (default, fast)
    R-path existence from R-graph transitive closure; trackability from
    the offline reference TDV (``TDV_{j,y}[i] >= x``).

``method="chains"`` (definitional)
    Trackability re-derived from first principles with the message-chain
    engine: an R-path ``a -> b`` (``a.pid != b.pid``) is trackable iff a
    *causal* chain reaches ``b`` from ``a`` (relaxed endpoints,
    Definition 3.3).

``method="vectorized"`` (fast, requires numpy)
    Same semantics as ``"tdv"`` but with the quadratic pair scan done as
    boolean matrix algebra; 1-2 orders of magnitude faster on runs with
    thousands of checkpoints (see ``benchmarks/bench_analysis_perf.py``).

R-path existence always comes from R-graph transitive closure; its
equivalence with zigzag-chain reachability (Wang's R-graph theorem) and
the agreement of the two trackability oracles are property-tested in
``tests/test_analysis_rdt.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.clocks.tdv import TrackabilityOracle
from repro.events.history import History
from repro.graph.rgraph import RGraph
from repro.graph.zpaths import ZPathAnalyzer
from repro.types import AnalysisError, CheckpointId


@dataclass
class RDTViolation:
    """One untrackable R-path ``source -> target``."""

    source: CheckpointId
    target: CheckpointId

    def __repr__(self) -> str:
        return f"<untrackable R-path {self.source} -> {self.target}>"


@dataclass
class RDTReport:
    """Outcome of an RDT check."""

    holds: bool
    violations: List[RDTViolation] = field(default_factory=list)
    checked_pairs: int = 0
    method: str = "tdv"

    def __bool__(self) -> bool:
        return self.holds

    def __repr__(self) -> str:
        status = "holds" if self.holds else f"{len(self.violations)} violations"
        return f"<RDTReport {status} over {self.checked_pairs} R-paths ({self.method})>"


def check_rdt(
    history: History,
    method: str = "tdv",
    max_violations: Optional[int] = None,
    rgraph: Optional[RGraph] = None,
    closure: str = "batch",
) -> RDTReport:
    """Check whether a pattern satisfies Rollback-Dependency Trackability.

    The history is closed first (see :meth:`History.closed`) so that every
    interval containing events is delimited by a checkpoint; otherwise
    dependencies through open intervals would be silently ignored.

    ``max_violations`` stops early once that many violations were found
    (``None`` collects all).

    ``closure`` selects the reachability backend when no ``rgraph`` is
    supplied: ``"batch"`` condenses the full R-graph once (Tarjan),
    ``"incremental"`` folds the edges into an
    :class:`~repro.graph.reachability.IncrementalClosure` -- same
    verdicts bit for bit (differentially tested), but the incremental
    closure is the one an online monitor can keep extending.
    """
    if method not in ("tdv", "chains", "vectorized"):
        raise AnalysisError(f"unknown RDT check method: {method}")
    if closure not in ("batch", "incremental"):
        raise AnalysisError(f"unknown closure backend: {closure}")
    history = history.closed()
    if rgraph is None:
        rgraph = RGraph(history, incremental=closure == "incremental")
    elif rgraph.history is not history or rgraph.include_volatile:
        raise AnalysisError("rgraph must be built on the closed history, no volatile")

    if method == "vectorized":
        return _check_rdt_vectorized(history, rgraph, max_violations)
    if method == "tdv":
        trackable = _tdv_trackable(history)
    else:
        trackable = _chain_trackable(history)

    violations: List[RDTViolation] = []
    checked = 0
    for a, b in rgraph.rpath_pairs():
        checked += 1
        if not trackable(a, b):
            violations.append(RDTViolation(a, b))
            if max_violations is not None and len(violations) >= max_violations:
                break
    return RDTReport(
        holds=not violations,
        violations=violations,
        checked_pairs=checked,
        method=method,
    )


def _tdv_trackable(history: History):
    oracle = TrackabilityOracle(history)
    return oracle.trackable


def _chain_trackable(history: History):
    analyzer = ZPathAnalyzer(history)
    cache = {}

    def trackable(a: CheckpointId, b: CheckpointId) -> bool:
        if a.pid == b.pid:
            return a.index <= b.index
        if a.index == 0:
            # Dependency on an initial checkpoint is vacuous: TDV entries
            # start at 0, so it is tracked without any chain.
            return True
        if a not in cache:
            cache[a] = analyzer.reach(a, causal=True)
        return cache[a].reaches(b)

    return trackable


def _check_rdt_vectorized(
    history: History, rgraph: RGraph, max_violations: Optional[int]
) -> RDTReport:
    """Matrix-algebra variant of the TDV method.

    Builds the checkpoint-by-checkpoint reachability matrix from the
    closure bitsets and the trackability matrix from stacked TDV
    snapshots, then reads violations off ``reach & ~trackable``.
    """
    import numpy as np

    from repro.clocks.tdv import tdv_snapshots

    nodes = rgraph.nodes()
    count = len(nodes)
    # Reachability matrix straight from the closure's bitsets.
    nbytes = (count + 7) // 8
    raw = b"".join(
        mask.to_bytes(nbytes, "little") for mask in rgraph.closure_masks()
    )
    packed = np.frombuffer(raw, dtype=np.uint8).reshape(count, nbytes)
    reach = np.unpackbits(packed, axis=1, bitorder="little")[:, :count].astype(bool)
    np.fill_diagonal(reach, False)  # pairs are ordered and distinct

    snapshots = tdv_snapshots(history)
    tdv = np.array([snapshots[cid] for cid in nodes], dtype=np.int64)
    pid = np.array([cid.pid for cid in nodes], dtype=np.int64)
    idx = np.array([cid.index for cid in nodes], dtype=np.int64)
    # trackable[a, b]: TDV_b[pid_a] >= idx_a, same-process forward free,
    # same-process backward never trackable.
    trackable = tdv[:, pid].T >= idx[:, None]
    same = pid[:, None] == pid[None, :]
    forward = idx[:, None] <= idx[None, :]
    trackable = np.where(same, forward, trackable)

    bad = reach & ~trackable
    sources, targets = np.nonzero(bad)
    violations = [
        RDTViolation(nodes[a], nodes[b]) for a, b in zip(sources, targets)
    ]
    violations.sort(key=lambda v: (v.source, v.target))
    if max_violations is not None:
        violations = violations[:max_violations]
    return RDTReport(
        holds=not violations,
        violations=violations,
        checked_pairs=int(reach.sum()),
        method="vectorized",
    )


def untracked_pairs(history: History) -> List[Tuple[CheckpointId, CheckpointId]]:
    """Convenience: the list of untrackable R-path endpoints."""
    report = check_rdt(history)
    return [(v.source, v.target) for v in report.violations]


def explain_violation(
    history: History, source: CheckpointId, target: CheckpointId
) -> dict:
    """Concrete evidence for one RDT violation.

    Returns a dict with:

    * ``zigzag``: an explicit non-causal message chain realising the
      R-path ``source -> target`` (None only if the pair is not actually
      R-related);
    * ``causal``: an explicit causal chain doubling it (None exactly when
      the violation is real);
    * ``is_violation``: zigzag exists and causal doubling does not.

    Witnesses validate against :meth:`ZPathAnalyzer.is_chain` /
    :meth:`is_causal_chain` and use relaxed endpoints (same convention
    as trackability).
    """
    history = history.closed()
    analyzer = ZPathAnalyzer(history)
    zigzag = analyzer.witness_chain(source, target, causal=False)
    causal = analyzer.witness_chain(source, target, causal=True)
    return {
        "source": source,
        "target": target,
        "zigzag": zigzag,
        "causal": causal,
        "is_violation": zigzag is not None and causal is None,
    }
