"""R-graph construction and reachability, anchored on the paper's Figure 1."""

import pytest

from repro.events import PatternBuilder, figure1_pattern, random_pattern
from repro.graph import RGraph, ZPathAnalyzer
from repro.types import CheckpointId as C


@pytest.fixture
def fig1():
    return figure1_pattern()


@pytest.fixture
def rg(fig1):
    return RGraph(fig1)


I, J, K = 0, 1, 2


class TestFigure1Edges:
    def test_node_count(self, rg):
        assert rg.num_nodes() == 12

    def test_succession_edges(self, rg):
        for pid in range(3):
            for x in range(3):
                assert C(pid, x + 1) in rg.successors(C(pid, x))

    def test_message_edges_match_figure(self, rg):
        expected = {
            (C(I, 1), C(J, 1)),  # m1
            (C(J, 1), C(I, 2)),  # m2
            (C(K, 1), C(J, 1)),  # m3
            (C(J, 2), C(K, 2)),  # m4
            (C(I, 3), C(J, 2)),  # m5
            (C(J, 3), C(K, 2)),  # m6
            (C(K, 3), C(J, 3)),  # m7
        }
        message_edges = {
            (a, b) for a, b in rg.edges() if a.pid != b.pid
        }
        assert message_edges == expected

    def test_rollback_propagation_reading(self, rg):
        # m2's edge: rolling P_j before C(j,1) forces P_i before C(i,2).
        assert rg.has_rpath(C(J, 1), C(I, 2))

    def test_hidden_dependency_path_exists(self, rg):
        # The non-causal chain [m3, m2] appears as the R-path
        # C(k,1) -> C(j,1) -> C(i,2).
        assert rg.has_rpath(C(K, 1), C(I, 2))

    def test_trivial_rpath(self, rg):
        assert rg.has_rpath(C(I, 2), C(I, 2))
        assert not rg.reaches_strictly(C(I, 2), C(I, 2))

    def test_cycle_of_figure1(self, rg):
        # m6/m7 close the cycle C(j,3) -> C(k,2) -> C(k,3) -> C(j,3).
        cycles = rg.cycles()
        assert cycles == [[C(J, 3), C(K, 2), C(K, 3)]]
        assert rg.on_cycle(C(K, 2))
        assert not rg.on_cycle(C(I, 2))

    def test_backward_rpath_from_cycle(self, rg):
        # C(k,3) reaches C(k,2): an R-path going *back* in process order.
        assert rg.reaches_strictly(C(K, 3), C(K, 2))

    def test_predecessors(self, rg):
        assert rg.predecessors(C(K, 2)) == {C(K, 1), C(J, 2), C(J, 3)}

    def test_to_networkx_roundtrip(self, rg):
        g = rg.to_networkx()
        assert g.number_of_nodes() == 12
        assert g.number_of_edges() == rg.num_edges()


class TestVolatileNodes:
    def test_open_interval_gets_virtual_node(self):
        b = PatternBuilder(2)
        m = b.send(0, 1)
        b.deliver(m)  # both processes' activity stays in open intervals
        h = b.build()
        rg = RGraph(h, include_volatile=True)
        assert rg.has_node(C(0, 1)) and rg.has_node(C(1, 1))
        assert rg.is_volatile(C(0, 1))
        assert rg.has_rpath(C(0, 1), C(1, 1))

    def test_without_volatile_edge_is_dropped(self):
        b = PatternBuilder(2)
        m = b.send(0, 1)
        b.deliver(m)
        h = b.build()
        rg = RGraph(h)
        assert rg.num_nodes() == 2  # only the initial checkpoints
        assert not rg.reaches_strictly(C(0, 0), C(1, 0))


class TestRGraphVsZigzag:
    """Wang's theorem: strict R-graph reachability == zigzag existence."""

    @pytest.mark.parametrize("seed", range(8))
    def test_equivalence_on_random_patterns(self, seed):
        h = random_pattern(n=3, steps=70, seed=seed)
        rg = RGraph(h)
        analyzer = ZPathAnalyzer(h)
        for a in h.checkpoint_ids():
            reach = analyzer.reach(a, causal=False, exact_start=False)
            for b in h.checkpoint_ids():
                via_chain = reach.reaches(b) or (a.pid == b.pid and a.index < b.index)
                assert rg.reaches_strictly(a, b) == via_chain, (a, b)
