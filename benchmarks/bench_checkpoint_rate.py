"""E12 (context): the checkpoint-frequency trade-off, with and without CIC.

Classic checkpointing economics (Young/Daly) meets the paper's setting:
sweep the basic-checkpoint rate and measure, on identical traffic,

* checkpoint overhead (events-worth of checkpoint cost), and
* mean lost work per crash (events rolled back behind the recovery line)

under independent checkpointing and under the BHMR protocol.  The
observation worth the table: CIC flattens the lost-work curve to almost
zero at *every* basic rate -- forced checkpoints, not basic frequency,
bound the rollback -- so with a CIC protocol the basic rate is purely an
overhead knob.
"""

import pytest

from repro.analysis import checkpoint_rate_study
from repro.harness import render_table
from repro.sim import Simulation, SimulationConfig
from repro.workloads import RandomUniformWorkload

RATES = [0.02, 0.1, 0.4, 1.2]


def run_at_rate_factory(protocol):
    def run_at_rate(rate, seed):
        sim = Simulation(
            RandomUniformWorkload(send_rate=2.0),
            SimulationConfig(n=4, duration=70.0, seed=seed, basic_rate=rate),
        )
        return sim.run(protocol).history

    return run_at_rate


@pytest.fixture(scope="module")
def studies():
    kwargs = dict(rates=RATES, seeds=(0, 1), crash_times=(20.0, 40.0, 60.0))
    return {
        name: checkpoint_rate_study(run_at_rate_factory(name), **kwargs)
        for name in ("independent", "bhmr")
    }


def test_checkpoint_rate_tradeoff(benchmark, emit, studies):
    for name, points in studies.items():
        emit(
            render_table(
                [p.as_row() for p in points],
                title=f"Checkpoint-rate trade-off -- {name}",
            )
        )
    indep = studies["independent"]
    bhmr = studies["bhmr"]
    # Textbook trade-off under independent checkpointing: overhead rises
    # strictly with the rate; lost work falls strongly across the sweep
    # (small non-monotonic wiggles between adjacent points are sampling
    # noise -- rollback lines depend on where checkpoints happen to land).
    overheads = [p.overhead_events for p in indep]
    losses = [p.mean_lost_events for p in indep]
    assert overheads == sorted(overheads)
    assert losses[-1] < losses[0] / 3
    assert max(losses) < 1.25 * losses[0]
    # CIC flattens the lost-work curve at every rate.
    worst_bhmr_loss = max(p.mean_lost_events for p in bhmr)
    assert worst_bhmr_loss < indep[0].mean_lost_events / 3
    benchmark(
        lambda: checkpoint_rate_study(
            run_at_rate_factory("bhmr"),
            rates=[0.1],
            seeds=(0,),
            crash_times=(30.0,),
        )
    )
