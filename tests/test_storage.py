"""Stable-store and storage-timeline tests."""

import pytest

from repro.events import figure1_pattern
from repro.sim import Simulation, SimulationConfig
from repro.storage import StableStore, StorageError, simulate_storage
from repro.types import CheckpointId as C
from repro.workloads import RandomUniformWorkload


class TestStableStore:
    def test_write_and_usage(self):
        s = StableStore(0)
        s.write_checkpoint(C(0, 0), 100, now=0.0)
        s.log_message(5, 10, now=1.0)
        assert s.usage_bytes() == 110
        assert s.bytes_written == 110

    def test_peak_tracks_high_water(self):
        s = StableStore(0)
        s.write_checkpoint(C(0, 0), 100, now=0.0)
        s.write_checkpoint(C(0, 1), 100, now=1.0)
        s.discard_checkpoint(0)
        assert s.usage_bytes() == 100
        assert s.peak_bytes == 200

    def test_double_write_rejected(self):
        s = StableStore(0)
        s.write_checkpoint(C(0, 0), 1, now=0.0)
        with pytest.raises(StorageError):
            s.write_checkpoint(C(0, 0), 1, now=1.0)

    def test_foreign_checkpoint_rejected(self):
        with pytest.raises(StorageError):
            StableStore(0).write_checkpoint(C(1, 0), 1, now=0.0)

    def test_discard_unknown_rejected(self):
        with pytest.raises(StorageError):
            StableStore(0).discard_checkpoint(7)

    def test_log_gc_by_send_interval(self):
        s = StableStore(0)
        s.log_message(1, 10, now=0.0)
        s.log_message(2, 10, now=1.0)
        freed = s.discard_log_below(3, {1: 2, 2: 5})
        assert freed == 10
        assert s.usage_bytes() == 10


def simulated_history(protocol="bhmr", seed=1):
    sim = Simulation(
        RandomUniformWorkload(send_rate=2.0),
        SimulationConfig(n=3, duration=50.0, seed=seed, basic_rate=0.4),
    )
    return sim.run(protocol).history


class TestTimeline:
    def test_no_gc_grows_monotonically(self):
        report = simulate_storage(figure1_pattern(), gc_interval=None)
        values = [b for _, b in report.samples]
        assert values == sorted(values)
        assert report.bytes_reclaimed == 0 and report.gc_runs == 0
        assert report.final_bytes == report.peak_bytes == report.bytes_written

    def test_gc_reclaims_storage(self):
        h = simulated_history()
        no_gc = simulate_storage(h, gc_interval=None)
        with_gc = simulate_storage(h, gc_interval=10.0)
        assert with_gc.gc_runs >= 4
        assert with_gc.bytes_reclaimed > 0
        assert with_gc.final_bytes < no_gc.final_bytes
        assert with_gc.peak_bytes <= no_gc.peak_bytes
        # Writes are policy-independent.
        assert with_gc.bytes_written == no_gc.bytes_written

    def test_gc_never_discards_at_or_above_floor(self):
        from repro.recovery import global_recovery_floor

        h = simulated_history()
        report = simulate_storage(h, gc_interval=10.0)
        floor = global_recovery_floor(h)
        for pid, store in report.stores.items():
            kept = store.checkpoint_indices()
            # Everything from the final floor upward is still there.
            for index in range(floor.cut[pid], h.last_index(pid) + 1):
                assert index in kept

    def test_message_logging_toggle(self):
        h = figure1_pattern()
        with_logs = simulate_storage(h, log_messages=True)
        without = simulate_storage(h, log_messages=False)
        assert with_logs.bytes_written > without.bytes_written
        assert without.bytes_written == h.num_checkpoints() * 4096

    def test_sample_times_non_decreasing(self):
        report = simulate_storage(simulated_history(), gc_interval=15.0)
        times = [t for t, _ in report.samples]
        assert times == sorted(times)

    def test_custom_sizes(self):
        h = figure1_pattern()
        report = simulate_storage(
            h, checkpoint_bytes=10, message_bytes=1, log_messages=True
        )
        assert report.bytes_written == h.num_checkpoints() * 10 + h.num_messages()
