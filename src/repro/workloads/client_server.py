"""The paper's client/server environment (section 5.3, Figure 9).

Processes act like a chain of servers ``S_1 .. S_n``.  An external
client repeatedly requests service from ``S_1``; on receiving a request,
a server either replies to its requester or (with probability 1/2)
forwards a sub-request to the next server and waits for its reply, which
it then propagates back.  The last server always replies.

"This environment is particularly interesting because the causal past of
any message contains all the messages of the computation" -- every
dependency is causally visible, so a clever protocol (one that *uses*
that visibility, like BHMR) should force very little.

Modelling: process 0 plays the external client, processes ``1 .. n-1``
the servers.  Each server keeps a stack of pending requesters so
overlapping conversations nest correctly.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.types import MessageId, ProcessId
from repro.workloads.base import Workload, WorkloadContext

_REQUEST = "request"
_REPLY = "reply"


class ClientServerWorkload(Workload):
    """Chain-of-servers request/reply traffic.

    Parameters
    ----------
    forward_probability:
        Chance that a server forwards instead of replying (paper: 1/2).
    think_time:
        Mean client delay between receiving a reply and the next request.
    pipeline:
        Number of concurrent requests the client keeps outstanding.
    """

    def __init__(
        self,
        forward_probability: float = 0.5,
        think_time: float = 1.0,
        pipeline: int = 1,
    ) -> None:
        if not 0 <= forward_probability <= 1:
            raise ValueError("forward_probability must be in [0, 1]")
        if pipeline < 1:
            raise ValueError("pipeline must be at least 1")
        self.forward_probability = forward_probability
        self.think_time = think_time
        self.pipeline = pipeline
        self._pending: Dict[ProcessId, List[ProcessId]] = {}

    # ------------------------------------------------------------------
    def on_start(self, ctx: WorkloadContext) -> None:
        if ctx.n < 2:
            raise ValueError("client/server needs at least two processes")
        self._pending = {pid: [] for pid in range(ctx.n)}
        for k in range(self.pipeline):
            ctx.set_timer(0, 0.01 * (k + 1), tag="issue")

    def on_timer(
        self, ctx: WorkloadContext, pid: ProcessId, tag: Optional[Hashable]
    ) -> None:
        if tag == "issue" and pid == 0:
            ctx.send(0, 1, payload=_REQUEST)

    def on_deliver(
        self, ctx: WorkloadContext, pid: ProcessId, src: ProcessId, msg_id: MessageId
    ) -> None:
        kind = ctx.payload_of(msg_id)
        if kind == _REQUEST:
            self._serve(ctx, pid, src)
        elif kind == _REPLY:
            if pid == 0:
                # Client got its answer; think, then re-issue.
                ctx.set_timer(
                    0, ctx.rng.expovariate(1.0 / self.think_time), tag="issue"
                )
            else:
                # Reply to my own pending requester, if any.
                self._reply(ctx, pid)

    # ------------------------------------------------------------------
    def _serve(self, ctx: WorkloadContext, pid: ProcessId, requester: ProcessId):
        last_server = ctx.n - 1
        if pid < last_server and ctx.rng.random() < self.forward_probability:
            self._pending[pid].append(requester)
            ctx.send(pid, pid + 1, payload=_REQUEST)
        else:
            ctx.send(pid, requester, payload=_REPLY)

    def _reply(self, ctx: WorkloadContext, pid: ProcessId) -> None:
        if self._pending[pid]:
            requester = self._pending[pid].pop()
            ctx.send(pid, requester, payload=_REPLY)
