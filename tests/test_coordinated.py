"""Chandy-Lamport coordinated snapshot tests."""

import pytest

from repro.analysis import in_transit_of_cut, is_consistent_gcp
from repro.core import run_chandy_lamport
from repro.types import SimulationError
from repro.workloads import RandomUniformWorkload, RingWorkload


@pytest.fixture(scope="module")
def result():
    return run_chandy_lamport(
        RandomUniformWorkload(send_rate=2.0),
        n=4,
        duration=80.0,
        seed=5,
        snapshot_period=15.0,
    )


class TestSnapshots:
    def test_snapshots_complete(self, result):
        # 80/15 -> initiations at 15..75: five snapshots.
        assert len(result.snapshots) == 5

    def test_every_cut_is_consistent(self, result):
        for snap in result.snapshots:
            assert set(snap.cut) == {0, 1, 2, 3}
            assert is_consistent_gcp(result.history, snap.cut), snap.snapshot_id

    def test_cuts_advance_monotonically(self, result):
        for a, b in zip(result.snapshots, result.snapshots[1:]):
            assert all(a.cut[p] <= b.cut[p] for p in a.cut)

    def test_channel_states_capture_exactly_the_crossing_messages(self, result):
        for snap in result.snapshots:
            expected = {
                m.msg_id for m in in_transit_of_cut(result.history, snap.cut)
            }
            assert snap.in_transit_ids() == expected, snap.snapshot_id

    def test_channel_states_cover_all_ordered_pairs(self, result):
        for snap in result.snapshots:
            assert len(snap.channel_states) == 4 * 3


class TestControlCost:
    def test_marker_count(self, result):
        # n(n-1) markers per snapshot; all five completed.
        assert result.control_messages == 5 * 4 * 3
        assert result.metrics.control_messages == result.control_messages

    def test_cic_has_no_control_messages_by_construction(self):
        # The contrast the paper draws: CIC piggybacks, never sends.
        from repro.sim import Simulation, SimulationConfig
        from repro.workloads import RandomUniformWorkload as W

        sim = Simulation(W(), SimulationConfig(n=3, duration=20, seed=0))
        res = sim.run("bhmr")
        assert res.metrics.control_messages == 0


class TestRunnerBehaviour:
    def test_deterministic(self):
        a = run_chandy_lamport(RingWorkload(), n=3, duration=30, seed=9)
        b = run_chandy_lamport(RingWorkload(), n=3, duration=30, seed=9)
        assert [s.cut for s in a.snapshots] == [s.cut for s in b.snapshots]

    def test_needs_two_processes(self):
        with pytest.raises(SimulationError):
            run_chandy_lamport(RingWorkload(), n=1, duration=10, seed=0)

    def test_no_snapshot_when_period_exceeds_duration(self):
        res = run_chandy_lamport(
            RingWorkload(), n=3, duration=10, seed=0, snapshot_period=50.0
        )
        assert res.snapshots == []

    def test_history_validates_and_has_app_traffic(self, result):
        assert result.history.num_messages() > 50
        assert result.metrics.messages_delivered > 50
