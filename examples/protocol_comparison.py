"""The paper's evaluation in miniature: the whole family, three environments.

    python examples/protocol_comparison.py

Replays identical traces under every protocol of the RDT family, in the
three environments of the paper's section 5.3, and prints forced
checkpoint counts, the ratio R to FDAS, and piggyback overhead -- the
same quantities Figures 7-9 report.
"""

from repro import api
from repro.core import RDT_FAMILY
from repro.harness import render_table
from repro.sim import SimulationConfig
from repro.workloads import (
    ClientServerWorkload,
    OverlappingGroupsWorkload,
    RandomUniformWorkload,
)

ENVIRONMENTS = {
    "random point-to-point (n=6)": (
        lambda: RandomUniformWorkload(send_rate=1.5),
        SimulationConfig(n=6, duration=60.0, basic_rate=0.2),
    ),
    "overlapping groups (n=9, groups of 3, overlap 1)": (
        lambda: OverlappingGroupsWorkload(group_size=3, overlap=1),
        SimulationConfig(n=9, duration=60.0, basic_rate=0.2),
    ),
    "client/server chain (n=6)": (
        lambda: ClientServerWorkload(think_time=0.3, pipeline=2),
        SimulationConfig(n=6, duration=60.0, basic_rate=0.2),
    ),
}


def main() -> None:
    for name, (make_workload, config) in ENVIRONMENTS.items():
        comparison = api.compare(
            make_workload,
            protocols=RDT_FAMILY,
            seeds=(0, 1, 2),
            config=config,
            scenario=name,
            verify_rdt=True,
        )
        print(render_table(comparison.rows(), title=name))
        r = comparison.ratio("bhmr")
        print(
            f"  -> BHMR vs FDAS: R = {r:.3f} "
            f"({(1 - r) * 100:.1f}% fewer forced checkpoints)\n"
        )


if __name__ == "__main__":
    main()
