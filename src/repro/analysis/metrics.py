"""Run metrics: checkpoint counts, message counts, piggyback overhead.

The paper's evaluation reports, per protocol and environment, the number
of forced checkpoints and the ratio ``R = forced(P) / forced(FDAS)``.
:class:`RunMetrics` extracts the raw counts from a recorded history (and
optional per-run overhead accounting provided by the protocol driver);
ratio computation across protocols lives in :mod:`repro.harness.ratio`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.events.event import CheckpointKind
from repro.events.history import History


@dataclass
class RunMetrics:
    """Aggregated measurements of one protocol run."""

    protocol: str
    num_processes: int
    messages_delivered: int
    messages_in_transit: int
    basic_checkpoints: int
    forced_checkpoints: int
    initial_checkpoints: int
    final_checkpoints: int
    piggyback_bits_total: int = 0
    control_messages: int = 0
    per_process_forced: List[int] = field(default_factory=list)
    per_process_basic: List[int] = field(default_factory=list)

    @property
    def total_checkpoints(self) -> int:
        return (
            self.basic_checkpoints
            + self.forced_checkpoints
            + self.initial_checkpoints
            + self.final_checkpoints
        )

    @property
    def forced_per_message(self) -> float:
        """Forced checkpoints per delivered message (protocol 'eagerness')."""
        if self.messages_delivered == 0:
            return 0.0
        return self.forced_checkpoints / self.messages_delivered

    @property
    def piggyback_bits_per_message(self) -> float:
        sent = self.messages_delivered + self.messages_in_transit
        if sent == 0:
            return 0.0
        return self.piggyback_bits_total / sent

    def as_row(self) -> Dict[str, object]:
        """Flat dict for table rendering."""
        return {
            "protocol": self.protocol,
            "n": self.num_processes,
            "messages": self.messages_delivered,
            "basic": self.basic_checkpoints,
            "forced": self.forced_checkpoints,
            "forced/msg": round(self.forced_per_message, 4),
            "piggyback(bits/msg)": round(self.piggyback_bits_per_message, 1),
        }


def metrics_from_history(
    history: History,
    protocol: str = "unknown",
    piggyback_bits_total: int = 0,
    control_messages: int = 0,
) -> RunMetrics:
    """Extract :class:`RunMetrics` from a recorded history."""
    basic = history.checkpoint_counts(CheckpointKind.BASIC)
    forced = history.checkpoint_counts(CheckpointKind.FORCED)
    initial = history.checkpoint_counts(CheckpointKind.INITIAL)
    final = history.checkpoint_counts(CheckpointKind.FINAL)
    delivered = sum(1 for _ in history.delivered_messages())
    in_transit = sum(1 for _ in history.in_transit_messages())
    return RunMetrics(
        protocol=protocol,
        num_processes=history.num_processes,
        messages_delivered=delivered,
        messages_in_transit=in_transit,
        basic_checkpoints=sum(basic),
        forced_checkpoints=sum(forced),
        initial_checkpoints=sum(initial),
        final_checkpoints=sum(final),
        piggyback_bits_total=piggyback_bits_total,
        control_messages=control_messages,
        per_process_forced=forced,
        per_process_basic=basic,
    )


def forced_ratio(
    metrics: RunMetrics, baseline: RunMetrics
) -> Optional[float]:
    """The paper's ratio ``R = forced(P) / forced(baseline)``.

    ``None`` when the baseline forced no checkpoints (R undefined).
    """
    if baseline.forced_checkpoints == 0:
        return None
    return metrics.forced_checkpoints / baseline.forced_checkpoints
