"""Command-line interface: ``python -m repro <command>``.

Built on :mod:`repro.api`, the supported facade; commands add only
argument parsing and rendering.

Commands
--------
``run``      simulate one workload under one protocol, print metrics
``compare``  replay the same traces under several protocols (table + R)
``sweep``    R as a function of the basic-checkpoint rate (figure-style)
``analyze``  RDT/Z-cycle analysis of a built-in pattern or a fresh run
``recover``  crash a process mid-run and print the recovery line
``serve``    run the online checkpointing service in the foreground
``client``   one request against a running service (JSON reply)
``loadgen``  replay generated workloads through concurrent connections
``protocols``/``workloads``  list the registries (``--json`` for machines)

``run``/``compare``/``sweep`` share the observability flags:
``--trace FILE`` writes the deterministic JSONL event trace,
``--metrics`` collects and prints the metrics registry, ``--profile``
prints per-phase wall times, and ``--json`` switches the whole output
to one canonical machine-readable JSON document.

Examples::

    python -m repro run --workload client-server --protocol bhmr -n 6
    python -m repro compare --workload random -n 6 --seeds 0 1 2
    python -m repro sweep --workload groups -n 9 --metrics --json
    python -m repro run --protocol bhmr --trace run.jsonl --profile
    python -m repro analyze figure1
    python -m repro recover --protocol bhmr --crash-pid 1 --crash-time 30
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Dict, List, Optional, Sequence

from repro import api
from repro.analysis import find_z_cycles, useless_checkpoints
from repro.core import PROTOCOLS, RDT_FAMILY
from repro.events import figure1_pattern, ping_pong_domino_pattern
from repro.harness import render_runner_stats, render_series, render_table
from repro.obs import MetricsRegistry, Profiler, Tracer, canonical_dumps
from repro.recovery import CrashSpec, recovery_line, replay_plan
from repro.sim import Simulation, SimulationConfig
from repro.workloads import WORKLOADS


def _parse_value(text: str):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def _workload_kwargs(pairs: Optional[List[str]]) -> Dict[str, object]:
    kwargs: Dict[str, object] = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(f"--workload-arg expects key=value, got {pair!r}")
        key, _, value = pair.partition("=")
        kwargs[key] = _parse_value(value)
    return kwargs


def _make_workload(args):
    try:
        cls = WORKLOADS[args.workload]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise SystemExit(f"unknown workload {args.workload!r}; known: {known}")
    kwargs = _workload_kwargs(getattr(args, "workload_arg", None))
    return lambda: cls(**kwargs)


def _workload_spec(args) -> Dict[str, object]:
    """The facade's workload/config kwargs for one scenario command."""
    if args.workload not in WORKLOADS:
        known = ", ".join(sorted(WORKLOADS))
        raise SystemExit(f"unknown workload {args.workload!r}; known: {known}")
    return {
        "workload": args.workload,
        "workload_args": _workload_kwargs(getattr(args, "workload_arg", None)),
        "n": args.n,
        "duration": args.duration,
        "basic_rate": args.basic_rate,
    }


def _config(args, seed: Optional[int] = None) -> SimulationConfig:
    return SimulationConfig(
        n=args.n,
        duration=args.duration,
        seed=args.seed if seed is None else seed,
        basic_rate=args.basic_rate,
        net_faults=_net_model(args),
    )


def _parse_partition(text: str) -> "Partition":
    """``A:B:START[:END]`` -> a symmetric partition window (END=forever)."""
    from repro.sim import FOREVER, Partition

    parts = text.split(":")
    if len(parts) not in (3, 4):
        raise SystemExit(
            f"bad --partition {text!r}; expected A:B:START[:END]"
        )
    try:
        a, b = int(parts[0]), int(parts[1])
        start = float(parts[2])
        end = float(parts[3]) if len(parts) == 4 else FOREVER
        return Partition(a, b, start, end)
    except ValueError:
        raise SystemExit(f"bad --partition {text!r}; expected A:B:START[:END]")


def _net_model(args):
    """The ``NetFaultModel`` described by the network-fault flags (or None)."""
    from repro.sim import NetFaultModel

    loss = getattr(args, "loss", 0.0)
    dup = getattr(args, "dup", 0.0)
    reorder = getattr(args, "reorder", 0.0)
    partition = getattr(args, "partition", None) or []
    if not (loss or dup or reorder or partition):
        return None
    return NetFaultModel.uniform(
        loss=loss,
        duplicate=dup,
        reorder=reorder,
        partitions=[_parse_partition(p) for p in partition],
        seed=getattr(args, "net_seed", 0),
    )


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="random", help="workload name")
    parser.add_argument(
        "--workload-arg",
        action="append",
        metavar="KEY=VALUE",
        help="workload constructor argument (repeatable)",
    )
    parser.add_argument("-n", type=int, default=4, help="number of processes")
    parser.add_argument("--duration", type=float, default=60.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--basic-rate", type=float, default=0.2)


def _add_net_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--loss",
        type=float,
        default=0.0,
        metavar="RATE",
        help="physical message-loss probability per transmission attempt",
    )
    parser.add_argument(
        "--dup",
        type=float,
        default=0.0,
        metavar="RATE",
        help="physical duplication probability per transmission",
    )
    parser.add_argument(
        "--reorder",
        type=float,
        default=0.0,
        metavar="RATE",
        help="probability a copy is held back by an extra reordering delay",
    )
    parser.add_argument(
        "--partition",
        action="append",
        metavar="A:B:START[:END]",
        help="cut the A<->B link during [START, END) (repeatable; no END "
        "means forever -- the watchdog degrades the link)",
    )
    parser.add_argument(
        "--net-seed",
        type=int,
        default=0,
        help="seed of the network-fault RNG stream",
    )


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write the deterministic JSONL event trace to FILE",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect and report the metrics registry",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="report per-phase wall-clock timings",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one canonical JSON document instead of tables",
    )


class _Obs:
    """The per-command observability bundle parsed from the flags."""

    def __init__(self, args) -> None:
        self.trace_path: Optional[str] = getattr(args, "trace", None)
        self.tracer = Tracer() if self.trace_path else None
        self.registry = MetricsRegistry() if getattr(args, "metrics", False) else None
        self.profiler = Profiler() if getattr(args, "profile", False) else None
        self.json = bool(getattr(args, "json", False))

    def kwargs(self) -> Dict[str, object]:
        return {
            "tracer": self.tracer,
            "metrics": self.registry,
            "profiler": self.profiler,
        }

    def finish(self, doc: Dict[str, object]) -> None:
        """Write the trace file; report obs either into ``doc`` (json
        mode) or as trailing tables/lines on stdout."""
        if self.tracer is not None:
            events = self.tracer.write(self.trace_path)
            if self.json:
                doc["trace"] = {"file": self.trace_path, "events": events}
            else:
                print(f"trace: {events} events -> {self.trace_path}")
        if self.registry is not None:
            snapshot = self.registry.snapshot()
            if self.json:
                doc["metrics"] = snapshot.to_dict()
            else:
                rows = [
                    {"metric": name, "value": value}
                    for name, value in sorted(snapshot.counters.items())
                ] + [
                    {"metric": name, "value": value}
                    for name, value in sorted(snapshot.gauges.items())
                ]
                if rows:
                    print(render_table(rows, title="metrics"))
        if self.profiler is not None:
            phases = self.profiler.snapshot()
            if self.json:
                doc["profile"] = phases
            elif phases:
                print(
                    "profile: "
                    + "  ".join(
                        f"{name}={phases[name]:.3f}s" for name in sorted(phases)
                    )
                )

    def emit(self, doc: Dict[str, object]) -> None:
        """In json mode, print the finished document (the only output)."""
        if self.json:
            print(canonical_dumps(doc))


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def cmd_run(args) -> int:
    obs = _Obs(args)
    net = _net_model(args)
    result = api.run(
        protocol=args.protocol,
        seed=args.seed,
        net_faults=net,
        **_workload_spec(args),
        **obs.kwargs(),
    )
    doc: Dict[str, object] = {
        "command": "run",
        "workload": args.workload,
        "protocol": args.protocol,
        "seed": args.seed,
        "run": dataclasses.asdict(result.metrics),
    }
    if net is not None:
        doc["net_faults"] = repr(net)
    if not obs.json:
        print(render_table([result.metrics.as_row()], title=f"run: {args.protocol}"))
    if args.save:
        from repro.events import save_history

        save_history(result.history, args.save)
        if not obs.json:
            print(f"history saved to {args.save}")
        doc["saved"] = args.save
    code = 0
    if args.check_rdt:
        report = api.analyze_rdt(result.history)
        doc["rdt"] = report.holds
        if not obs.json:
            print(f"RDT: {'holds' if report.holds else report}")
        if not report.holds:
            code = 1
    obs.finish(doc)
    obs.emit(doc)
    return code


def cmd_compare(args) -> int:
    obs = _Obs(args)
    comparison = api.compare(
        protocols=args.protocols,
        baseline=args.baseline,
        seeds=args.seeds,
        verify_rdt=args.check_rdt,
        **_workload_spec(args),
        **obs.kwargs(),
    )
    doc: Dict[str, object] = {"command": "compare", "compare": comparison.to_dict()}
    if not obs.json:
        print(render_table(comparison.rows(), title=f"compare: {args.workload}"))
    obs.finish(doc)
    obs.emit(doc)
    return 0


def cmd_sweep(args) -> int:
    obs = _Obs(args)
    # --metrics/--profile want per-phase timings and cache-hit counters
    # in the report even when the caller did not pass registries down;
    # the runner collects them whenever any instrument is active.
    sweep = api.sweep(
        xs=args.rates,
        x_label="basic_rate",
        protocols=args.protocols,
        baseline=args.baseline,
        seeds=args.seeds,
        backend=args.backend,
        workers=args.workers,
        cache=args.cache if args.cache is not None else False,
        **_workload_spec(args),
        **obs.kwargs(),
    )
    doc: Dict[str, object] = {"command": "sweep", "sweep": sweep.to_dict()}
    if not obs.json:
        print(
            render_series(
                "basic_rate",
                sweep.xs,
                sweep.ratio_series(),
                title=f"sweep: {args.workload} (R vs basic rate)",
            )
        )
        if sweep.stats is not None and (obs.registry or obs.profiler):
            print(render_runner_stats(sweep.stats, title="runner"))
    obs.finish(doc)
    obs.emit(doc)
    return 0


def cmd_analyze(args) -> int:
    if args.pattern == "figure1":
        history = figure1_pattern()
    elif args.pattern == "domino":
        history = ping_pong_domino_pattern(rounds=args.rounds)
    elif args.pattern == "file":
        if not args.path:
            raise SystemExit("analyze file requires --path")
        from repro.events import load_history

        history = load_history(args.path)
    else:  # a fresh simulated run
        sim = Simulation(_make_workload(args)(), _config(args))
        history = sim.run(args.protocol).history
    report = api.analyze_rdt(history)
    print(f"pattern:     {history!r}")
    print(f"RDT:         {'holds' if report.holds else 'VIOLATED'}")
    for violation in report.violations[: args.max_violations]:
        print(f"  {violation!r}")
        if args.explain:
            from repro.analysis import explain_violation

            evidence = explain_violation(history, violation.source, violation.target)
            chain = evidence["zigzag"]
            pretty = "?" if chain is None else "[" + ", ".join(
                f"m{x}" for x in chain
            ) + "]"
            print(f"    undoubled chain: {pretty}")
    cycles = find_z_cycles(history)
    print(f"Z-cycles:    {len(cycles)}")
    useless = useless_checkpoints(history)
    print(f"useless:     {useless if useless else 'none'}")
    return 0 if report.holds else 1


def cmd_recover(args) -> int:
    if args.inject_crashes or args.crash_at:
        return _cmd_recover_online(args)
    sim = Simulation(_make_workload(args)(), _config(args))
    history = sim.run(args.protocol).history
    crash = {args.crash_pid: CrashSpec(args.crash_pid, at_time=args.crash_time)}
    line = recovery_line(history, crash)
    print(f"crash:         P{args.crash_pid} at t={args.crash_time}")
    print(f"recovery line: {line.checkpoint_ids()}")
    print(f"events undone: {line.events_undone}")
    plan = replay_plan(history, line.cut)
    print(f"msgs to replay: {plan.total}")
    return 0


def _cmd_recover_online(args) -> int:
    """Crash-injection mode: the online recovery engine, end to end."""
    from repro.sim import CrashSchedule

    obs = _Obs(args)
    if args.crash_at:
        specs = []
        for item in args.crash_at:
            pid_s, _, time_s = item.partition(":")
            try:
                specs.append((int(pid_s), float(time_s)))
            except ValueError:
                raise SystemExit(f"bad --crash-at {item!r}; expected PID:TIME")
        schedule: object = CrashSchedule.at(*specs)
    else:
        schedule = CrashSchedule.random(
            args.n,
            args.duration,
            count=args.inject_crashes,
            seed=args.crash_seed,
        )
    result = api.recover(
        protocol=args.protocol,
        crashes=schedule,
        seed=args.seed,
        gc_every_ops=args.gc_every,
        net_faults=_net_model(args),
        **_workload_spec(args),
        **obs.kwargs(),
    )
    crash_docs = []
    for rec in result.crashes:
        crash_docs.append(
            {
                "t": rec.time,
                "crashed": list(rec.crashed),
                "cut": [rec.online.cut[p] for p in range(args.n)],
                "events_undone": rec.online.events_undone,
                "max_depth": rec.online.max_depth,
                "messages_replayed": rec.messages_replayed,
                "events_reexecuted": rec.events_reexecuted,
                "online_equals_offline": rec.offline_cut is None
                or rec.offline_cut == rec.online.cut,
            }
        )
    doc: Dict[str, object] = {
        "command": "recover",
        "workload": args.workload,
        "protocol": args.protocol,
        "seed": args.seed,
        "crash_seed": args.crash_seed,
        "crashes": crash_docs,
        "totals": {
            "events_undone": result.total_events_undone,
            "messages_replayed": result.total_messages_replayed,
            "max_rollback_depth": result.max_rollback_depth,
        },
    }
    if not obs.json:
        rows = [
            {
                "t": f"{c['t']:.3f}",
                "crashed": ",".join(f"P{p}" for p in c["crashed"]),
                "cut": " ".join(str(x) for x in c["cut"]),
                "undone": c["events_undone"],
                "depth": c["max_depth"],
                "replayed": c["messages_replayed"],
                "online==offline": "yes" if c["online_equals_offline"] else "NO",
            }
            for c in crash_docs
        ]
        title = f"recover: {args.protocol} ({len(crash_docs)} crashes)"
        if rows:
            print(render_table(rows, title=title))
        else:
            print(f"{title}: schedule was empty")
        print(
            f"totals: undone={result.total_events_undone} "
            f"replayed={result.total_messages_replayed} "
            f"max_depth={result.max_rollback_depth}"
        )
    obs.finish(doc)
    obs.emit(doc)
    return 0


def _doc_line(cls) -> str:
    """The one-line summary of a registry class (first docstring line)."""
    doc = (cls.__doc__ or "").strip()
    return doc.splitlines()[0].strip() if doc else ""


def cmd_protocols(args) -> int:
    if getattr(args, "json", False):
        entries = [
            {
                "name": name,
                "class": cls.__name__,
                "doc": _doc_line(cls),
                "ensures_rdt": cls.ensures_rdt,
                "carries_tdv": cls.carries_tdv,
                "family": "rdt" if name in RDT_FAMILY else "baseline",
            }
            for name, cls in sorted(PROTOCOLS.items())
        ]
        print(canonical_dumps({"command": "protocols", "protocols": entries}))
        return 0
    rows = [
        {
            "name": name,
            "ensures RDT": "yes" if cls.ensures_rdt else "no",
            "piggybacks TDV": "yes" if cls.carries_tdv else "no",
            "family": "rdt" if name in RDT_FAMILY else "baseline",
        }
        for name, cls in sorted(PROTOCOLS.items())
    ]
    print(render_table(rows, title="protocols"))
    return 0


def cmd_workloads(args) -> int:
    if getattr(args, "json", False):
        entries = [
            {"name": name, "class": cls.__name__, "doc": _doc_line(cls)}
            for name, cls in sorted(WORKLOADS.items())
        ]
        print(canonical_dumps({"command": "workloads", "workloads": entries}))
        return 0
    rows = [
        {"name": name, "class": cls.__name__}
        for name, cls in sorted(WORKLOADS.items())
    ]
    print(render_table(rows, title="workloads"))
    return 0


# ----------------------------------------------------------------------
# the service verbs
# ----------------------------------------------------------------------
def cmd_serve(args) -> int:
    """Run the checkpointing daemon in the foreground until Ctrl-C."""
    import time

    from repro.serve.server import ServerConfig, ServerHandle

    obs = _Obs(args)
    if args.shard_procs is not None:
        # Multi-process scale-out: N shard daemons behind a router.
        from repro.serve.router import Router, RouterConfig

        if args.data_dir is None:
            raise SystemExit("--shard-procs needs --data-dir")
        if args.snapshot_dir is not None or args.wal_dir is not None:
            raise SystemExit(
                "--shard-procs derives per-shard snapshot/WAL directories "
                "from --data-dir; drop --snapshot-dir/--wal-dir"
            )
        router_config = RouterConfig(
            host=args.host,
            port=args.port,
            unix_path=args.unix,
            shard_procs=args.shard_procs,
            data_dir=args.data_dir,
            shard_workers=1 if args.workers is None else args.workers,
            queue_depth=args.queue_depth,
            idle_timeout=args.idle_timeout,
            fsync_batch=args.fsync_batch,
            wal=not args.no_wal,
        )
        handle = ServerHandle(
            Router(router_config, tracer=obs.tracer, metrics=obs.registry)
        )
    else:
        config = ServerConfig(
            host=args.host,
            port=args.port,
            unix_path=args.unix,
            workers=4 if args.workers is None else args.workers,
            queue_depth=args.queue_depth,
            idle_timeout=args.idle_timeout,
            snapshot_dir=args.snapshot_dir,
            wal_dir=None if args.no_wal else args.wal_dir,
            fsync_batch=args.fsync_batch,
        )
        handle = api.serve(
            config=config, tracer=obs.tracer, metrics=obs.registry
        )
    if not obs.json:
        print(f"serving on {handle.connect_address()}", flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    summary = handle.close()
    doc: Dict[str, object] = {
        "command": "serve",
        "address": handle.connect_address(),
        "sessions": summary,
    }
    if not obs.json:
        print(f"drained {len(summary)} session(s)")
    obs.finish(doc)
    obs.emit(doc)
    return 0


def cmd_client(args) -> int:
    """One request against a running service; prints the JSON reply."""
    from repro.types import ReproError

    if args.session is None and args.op != "ping":
        raise SystemExit(f"--session is required for {args.op}")
    try:
        client = api.connect(args.address, timeout=args.timeout)
    except ConnectionError as exc:
        raise SystemExit(str(exc))
    try:
        if args.op == "ping":
            reply = client.ping()
        elif args.op == "hello":
            reply = client.hello(args.session, n=args.n, protocol=args.protocol)
        elif args.op == "checkpoint":
            reply = client.checkpoint(args.session, args.pid)
        elif args.op == "send":
            reply = client.send(args.session, args.src, args.dst)
        elif args.op == "deliver":
            reply = client.deliver(args.session, args.msg_id)
        elif args.op == "query":
            reply = client.query(args.session, args.what, crashed=args.crashed)
        else:  # snapshot
            reply = client.snapshot(args.session)
    except (ReproError, ConnectionError) as exc:
        raise SystemExit(str(exc))
    finally:
        client.close()
    print(canonical_dumps(reply))
    return 0


def cmd_loadgen(args) -> int:
    """Drive a running service with generated workload traffic."""
    from repro.serve.loadgen import run_load

    obs = _Obs(args)
    try:
        report = run_load(
            args.address,
            sessions=args.sessions,
            workload=args.workload,
            protocol=args.protocol,
            n=args.n,
            duration=args.duration,
            seed=args.seed,
            basic_rate=args.basic_rate,
            window=args.window,
            query_every=args.query_every,
            request_timeout=args.request_timeout,
        )
    except ConnectionError as exc:
        raise SystemExit(str(exc))
    doc: Dict[str, object] = {"command": "loadgen", "load": report.as_doc()}
    if not obs.json:
        quantiles = report.latency_quantiles()
        print(
            render_table(
                [
                    {
                        "sessions": report.sessions,
                        "acked": report.acked,
                        "shed": report.shed,
                        "errors": report.errors,
                        "events/s": f"{report.throughput:.0f}",
                        "p50 ms": f"{quantiles['ingest_p50_s'] * 1e3:.2f}",
                        "p99 ms": f"{quantiles['ingest_p99_s'] * 1e3:.2f}",
                    }
                ],
                title=f"loadgen: {args.workload} -> {args.address}",
            )
        )
    obs.emit(doc)
    return 0 if report.errors == 0 else 1


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="RDT checkpointing testbed"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="one workload under one protocol")
    _add_scenario_args(p)
    _add_net_args(p)
    _add_obs_args(p)
    p.add_argument("--protocol", default="bhmr", choices=sorted(PROTOCOLS))
    p.add_argument("--check-rdt", action="store_true")
    p.add_argument("--save", metavar="PATH", help="save the history as JSON")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("compare", help="several protocols, same traces")
    _add_scenario_args(p)
    _add_obs_args(p)
    p.add_argument(
        "--protocols", nargs="+", default=["bhmr", "fdas", "cbr"],
        choices=sorted(PROTOCOLS),
    )
    p.add_argument("--baseline", default="fdas", choices=sorted(PROTOCOLS))
    p.add_argument("--seeds", nargs="+", type=int, default=[0, 1, 2])
    p.add_argument("--check-rdt", action="store_true")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("sweep", help="R vs basic checkpoint rate")
    _add_scenario_args(p)
    _add_obs_args(p)
    p.add_argument(
        "--rates", nargs="+", type=float, default=[0.05, 0.1, 0.2, 0.5]
    )
    p.add_argument("--protocols", nargs="+", default=["bhmr"])
    p.add_argument("--baseline", default="fdas")
    p.add_argument("--seeds", nargs="+", type=int, default=[0, 1])
    p.add_argument(
        "--backend",
        default="auto",
        choices=["auto", "serial", "process"],
        help="sweep execution backend (default: auto)",
    )
    p.add_argument(
        "--workers", type=int, default=None, help="process-pool size"
    )
    p.add_argument(
        "--cache", metavar="DIR", default=None, help="result-cache directory"
    )
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("analyze", help="RDT analysis of a pattern")
    p.add_argument(
        "pattern",
        choices=["figure1", "domino", "simulated", "file"],
        help="built-in pattern, fresh simulated run, or saved JSON",
    )
    _add_scenario_args(p)
    p.add_argument("--path", help="JSON history for 'analyze file'")
    p.add_argument(
        "--explain",
        action="store_true",
        help="print a witness chain for each violation",
    )
    p.add_argument("--protocol", default="independent", choices=sorted(PROTOCOLS))
    p.add_argument("--rounds", type=int, default=5, help="domino rounds")
    p.add_argument("--max-violations", type=int, default=10)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("recover", help="crash injection + online recovery")
    _add_scenario_args(p)
    _add_net_args(p)
    _add_obs_args(p)
    p.add_argument("--protocol", default="bhmr", choices=sorted(PROTOCOLS))
    p.add_argument("--crash-pid", type=int, default=0)
    p.add_argument("--crash-time", type=float, default=None)
    p.add_argument(
        "--inject-crashes",
        type=int,
        default=0,
        metavar="N",
        help="inject N seeded crashes and recover online (engine mode)",
    )
    p.add_argument(
        "--crash-seed",
        type=int,
        default=0,
        help="seed for the injected crash schedule",
    )
    p.add_argument(
        "--crash-at",
        action="append",
        metavar="PID:TIME",
        help="inject an explicit crash (repeatable; engine mode)",
    )
    p.add_argument(
        "--gc-every",
        type=int,
        default=None,
        metavar="OPS",
        help="run the online sender-log GC every OPS trace ops",
    )
    p.set_defaults(func=cmd_recover)

    p = sub.add_parser("serve", help="run the checkpointing service")
    _add_obs_args(p)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7463, help="0 = ephemeral")
    p.add_argument(
        "--unix", metavar="PATH", default=None, help="serve on a Unix socket"
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "in-process session shards (default: 4; with --shard-procs "
            "this is per-shard loop workers, default 1)"
        ),
    )
    p.add_argument(
        "--shard-procs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "scale out to N shard processes behind a router "
            "(consistent-hash session ownership; requires --data-dir)"
        ),
    )
    p.add_argument(
        "--data-dir",
        metavar="DIR",
        default=None,
        help=(
            "sharded deployment state: per-shard WAL/snapshot "
            "directories and the shard map live under DIR"
        ),
    )
    p.add_argument(
        "--queue-depth",
        type=int,
        default=256,
        help="per-shard queue bound before frames are shed",
    )
    p.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="snapshot + evict sessions idle this long",
    )
    p.add_argument(
        "--snapshot-dir",
        metavar="DIR",
        default=None,
        help="persist session snapshots under DIR (default: in memory)",
    )
    p.add_argument(
        "--wal-dir",
        metavar="DIR",
        default=None,
        help=(
            "durable ingest WAL under DIR: every acked frame is fsynced "
            "before its ack and survives kill -9 (default: no WAL)"
        ),
    )
    p.add_argument(
        "--fsync-batch",
        type=int,
        default=64,
        metavar="RECORDS",
        help="max WAL records retired per fsync (group-commit batch cap)",
    )
    p.add_argument(
        "--no-wal",
        action="store_true",
        help="disable the WAL even if --wal-dir is given (benchmarking)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("client", help="one request against a service")
    p.add_argument("address", help="host:port or unix:/path")
    p.add_argument(
        "op",
        choices=[
            "hello", "checkpoint", "send", "deliver", "query", "snapshot",
            "ping",
        ],
    )
    p.add_argument("--session", default=None, help="session id")
    p.add_argument("-n", type=int, default=None, help="hello: process count")
    p.add_argument("--protocol", default=None, choices=sorted(PROTOCOLS))
    p.add_argument("--pid", type=int, default=0, help="checkpoint: process")
    p.add_argument("--src", type=int, default=0, help="send: sender")
    p.add_argument("--dst", type=int, default=1, help="send: destination")
    p.add_argument("--msg-id", type=int, default=0, help="deliver: message id")
    p.add_argument(
        "--what",
        default="rdt_status",
        choices=["rdt_status", "z_cycles", "recovery_line", "metrics"],
    )
    p.add_argument(
        "--crashed", nargs="+", type=int, default=None,
        help="recovery_line: crashed pids (default: all)",
    )
    p.add_argument("--timeout", type=float, default=10.0)
    p.set_defaults(func=cmd_client)

    p = sub.add_parser("loadgen", help="drive a service with workloads")
    p.add_argument("address", help="host:port or unix:/path")
    _add_scenario_args(p)
    p.add_argument("--protocol", default="bhmr", choices=sorted(PROTOCOLS))
    p.add_argument("--sessions", type=int, default=8)
    p.add_argument(
        "--window", type=int, default=64, help="frames in flight per session"
    )
    p.add_argument(
        "--query-every",
        type=int,
        default=0,
        metavar="OPS",
        help="interleave an rdt_status query every OPS ingest ops",
    )
    p.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-request deadline in seconds (default 10; a stalled "
        "server surfaces as timeout errors, never a hang)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit one canonical JSON document instead of the table",
    )
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser("protocols", help="list known protocols")
    p.add_argument(
        "--json",
        action="store_true",
        help="machine-readable listing (name, class, doc)",
    )
    p.set_defaults(func=cmd_protocols)
    p = sub.add_parser("workloads", help="list known workloads")
    p.add_argument(
        "--json",
        action="store_true",
        help="machine-readable listing (name, class, doc)",
    )
    p.set_defaults(func=cmd_workloads)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
