"""Transitive closure for small directed graphs, cycles allowed.

The R-graph of a checkpoint pattern is a digraph that may contain cycles
(a cycle is exactly how a Z-cycle / useless checkpoint shows up), so the
closure is computed by Tarjan SCC condensation followed by bitset
propagation in reverse topological order.  Bitsets are plain Python
integers, which keeps the per-node union a single ``|`` operation.
"""

from __future__ import annotations

from collections.abc import Set as AbstractSet
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple


class SetView(AbstractSet):
    """A zero-copy read-only view over a ``set``.

    Supports containment, iteration, length, comparison and the usual
    set algebra (which returns plain sets) without copying the backing
    set on every access -- adjacency queries sit in hot analysis loops.
    """

    __slots__ = ("_backing",)

    def __init__(self, backing: Set[int]) -> None:
        self._backing = backing

    def __contains__(self, item: object) -> bool:
        return item in self._backing

    def __iter__(self) -> Iterator[int]:
        return iter(self._backing)

    def __len__(self) -> int:
        return len(self._backing)

    @classmethod
    def _from_iterable(cls, iterable) -> Set[int]:
        return set(iterable)

    def __repr__(self) -> str:
        return f"SetView({self._backing!r})"


class DenseDigraph:
    """A digraph over nodes ``0 .. n-1`` with adjacency lists."""

    def __init__(self, n: int) -> None:
        self._n = n
        self._succ: List[Set[int]] = [set() for _ in range(n)]
        self._pred: List[Set[int]] = [set() for _ in range(n)]

    @property
    def n(self) -> int:
        return self._n

    def add_edge(self, u: int, v: int) -> None:
        self._succ[u].add(v)
        self._pred[v].add(u)

    def successors(self, u: int) -> SetView:
        """Read-only view of ``u``'s direct successors (no copy)."""
        return SetView(self._succ[u])

    def predecessors(self, v: int) -> SetView:
        """Read-only view of ``v``'s direct predecessors (no copy)."""
        return SetView(self._pred[v])

    def edges(self) -> Iterable[Tuple[int, int]]:
        for u, outs in enumerate(self._succ):
            for v in sorted(outs):
                yield (u, v)

    def num_edges(self) -> int:
        return sum(len(outs) for outs in self._succ)

    # ------------------------------------------------------------------
    def tarjan_scc(self) -> List[List[int]]:
        """Strongly connected components in reverse topological order.

        Iterative Tarjan (no recursion, safe for large graphs).  The
        returned order has every component appearing *before* any
        component it has edges into -- convenient for closure propagation.
        """
        n = self._n
        index_of = [-1] * n
        lowlink = [0] * n
        on_stack = [False] * n
        stack: List[int] = []
        sccs: List[List[int]] = []
        counter = 0
        for root in range(n):
            if index_of[root] != -1:
                continue
            work: List[Tuple[int, Iterable[int]]] = [(root, iter(self._succ[root]))]
            index_of[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack[root] = True
            while work:
                u, it = work[-1]
                advanced = False
                for v in it:
                    if index_of[v] == -1:
                        index_of[v] = lowlink[v] = counter
                        counter += 1
                        stack.append(v)
                        on_stack[v] = True
                        work.append((v, iter(self._succ[v])))
                        advanced = True
                        break
                    if on_stack[v]:
                        lowlink[u] = min(lowlink[u], index_of[v])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[u])
                if lowlink[u] == index_of[u]:
                    comp = []
                    while True:
                        w = stack.pop()
                        on_stack[w] = False
                        comp.append(w)
                        if w == u:
                            break
                    sccs.append(comp)
        return sccs

    def transitive_closure(self) -> "Closure":
        """Reachability of every node, as a :class:`Closure`."""
        sccs = self.tarjan_scc()
        comp_of = [0] * self._n
        for ci, comp in enumerate(sccs):
            for node in comp:
                comp_of[node] = ci
        # Tarjan emits components in reverse topological order: a
        # component is finished only after everything it reaches, so
        # processing sccs in emission order sees successors first.
        comp_reach: List[int] = [0] * len(sccs)
        comp_mask: List[int] = [0] * len(sccs)
        for ci, comp in enumerate(sccs):
            mask = 0
            for node in comp:
                mask |= 1 << node
            comp_mask[ci] = mask
        for ci, comp in enumerate(sccs):
            reach = 0
            cyclic = len(comp) > 1 or any(
                node in self._succ[node] for node in comp
            )
            for node in comp:
                for v in self._succ[node]:
                    cj = comp_of[v]
                    if cj != ci:
                        reach |= comp_mask[cj] | comp_reach[cj]
            if cyclic:
                reach |= comp_mask[ci]
            comp_reach[ci] = reach
        node_reach = [comp_reach[comp_of[u]] for u in range(self._n)]
        return Closure(node_reach, comp_of, sccs)


class Closure:
    """Precomputed reachability answers.

    ``reaches(u, v)`` is *strict-or-cyclic*: it reports True for ``u == v``
    only when ``u`` lies on a cycle.  Use ``reaches_or_equal`` for the
    reflexive relation.
    """

    def __init__(
        self,
        node_reach: Sequence[int],
        comp_of: Sequence[int],
        sccs: List[List[int]],
    ) -> None:
        self._reach = list(node_reach)
        self._comp_of = list(comp_of)
        self._sccs = sccs

    def reaches(self, u: int, v: int) -> bool:
        return bool(self._reach[u] >> v & 1)

    def reach_mask(self, u: int) -> int:
        """The raw reachability bitset of ``u`` (bit v set iff u -> v)."""
        return self._reach[u]

    def reaches_or_equal(self, u: int, v: int) -> bool:
        return u == v or self.reaches(u, v)

    def reachable_set(self, u: int) -> Set[int]:
        mask = self._reach[u]
        out = set()
        v = 0
        while mask:
            if mask & 1:
                out.add(v)
            mask >>= 1
            v += 1
        return out

    def on_cycle(self, u: int) -> bool:
        return self.reaches(u, u)

    def cyclic_components(self) -> List[List[int]]:
        """SCCs that contain at least one cycle, each sorted."""
        out = []
        for comp in self._sccs:
            if len(comp) > 1 or self.reaches(comp[0], comp[0]):
                out.append(sorted(comp))
        return out


def _iter_bits(mask: int) -> Iterator[int]:
    """Indices of the set bits of ``mask``, ascending."""
    while mask:
        lsb = mask & -mask
        yield lsb.bit_length() - 1
        mask ^= lsb


try:
    _popcount = int.bit_count  # Python >= 3.10
except AttributeError:  # pragma: no cover - 3.9 fallback
    def _popcount(mask: int) -> int:
        return bin(mask).count("1")


class IncrementalClosure:
    """Transitive closure maintained online under edge/node insertion.

    Query-compatible with :class:`Closure` (same strict-or-cyclic
    semantics: ``reaches(u, u)`` iff ``u`` lies on a cycle) but instead
    of condensing the whole graph per build it updates two bitset
    families edge by edge:

    * ``reach[u]``  -- everything ``u`` strictly reaches;
    * ``rreach[u]`` -- everything that strictly reaches ``u``.

    On ``add_edge(u, v)`` any new path uses the edge at least once, and a
    path using it several times can always be shortcut to a single use
    (old prefix to ``u``, the edge, old suffix from ``v``).  So the exact
    update is: for every ``w`` in ``{u} | rreach[u]``, fold in
    ``{v} | reach[v]`` (and symmetrically for ``rreach``), with both
    deltas snapshotted before mutation.  An insertion that adds nothing
    new (``reach[u]`` already covers the delta) costs O(1).

    This is what lets a simulation append checkpoints and message edges
    as they happen and query trackability online, instead of re-running
    Tarjan + propagation over the full R-graph per query.
    """

    def __init__(self, n: int = 0) -> None:
        self._reach: List[int] = [0] * n
        self._rreach: List[int] = [0] * n
        self._succ: List[Set[int]] = [set() for _ in range(n)]
        self._num_edges = 0

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self._reach)

    def add_node(self) -> int:
        """Append an isolated node; returns its index."""
        self._reach.append(0)
        self._rreach.append(0)
        self._succ.append(set())
        return len(self._reach) - 1

    def add_edge(self, u: int, v: int) -> int:
        """Insert ``u -> v``; returns how many node bitsets were updated
        (0 for a duplicate or already-implied edge), the natural unit of
        closure work for the ``closure.edge_updates`` metric."""
        if v in self._succ[u]:
            return 0
        self._succ[u].add(v)
        self._num_edges += 1
        delta = self._reach[v] | (1 << v)
        if self._reach[u] & delta == delta:
            # u already reached v and everything past it; by closure
            # invariance so did everything reaching u.  Nothing changes.
            return 0
        rdelta = self._rreach[u] | (1 << u)
        # Snapshot both deltas before mutating: v (or u) may itself be
        # among the updated nodes when the edge closes a cycle.  The bit
        # walks are inlined (no _iter_bits generator): this loop runs
        # once per ancestor/descendant per edge and dominates online
        # ingest, where generator resumes double its cost.
        reach = self._reach
        mask = rdelta
        while mask:
            lsb = mask & -mask
            reach[lsb.bit_length() - 1] |= delta
            mask ^= lsb
        rreach = self._rreach
        mask = delta
        while mask:
            lsb = mask & -mask
            rreach[lsb.bit_length() - 1] |= rdelta
            mask ^= lsb
        return _popcount(rdelta) + _popcount(delta)

    def num_edges(self) -> int:
        return self._num_edges

    # ------------------------------------------------------------------
    # queries (Closure-compatible)
    # ------------------------------------------------------------------
    def reaches(self, u: int, v: int) -> bool:
        return bool(self._reach[u] >> v & 1)

    def reach_mask(self, u: int) -> int:
        """The raw reachability bitset of ``u`` (bit v set iff u -> v)."""
        return self._reach[u]

    def coreach_mask(self, v: int) -> int:
        """The raw co-reachability bitset of ``v`` (bit u set iff u -> v)."""
        return self._rreach[v]

    def reaches_or_equal(self, u: int, v: int) -> bool:
        return u == v or self.reaches(u, v)

    def reachable_set(self, u: int) -> Set[int]:
        return set(_iter_bits(self._reach[u]))

    def on_cycle(self, u: int) -> bool:
        return self.reaches(u, u)

    def cyclic_components(self) -> List[List[int]]:
        """SCCs containing a cycle, each sorted, ordered by smallest node.

        An on-cycle node's component is exactly ``reach & rreach`` (both
        include the node itself once it is cyclic).
        """
        seen = 0
        out: List[List[int]] = []
        for u in range(len(self._reach)):
            if seen >> u & 1 or not self.on_cycle(u):
                continue
            comp_mask = self._reach[u] & self._rreach[u]
            seen |= comp_mask
            out.append(sorted(_iter_bits(comp_mask)))
        return out

    # ------------------------------------------------------------------
    # snapshot / restore (the serve layer's session eviction)
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, object]:
        """A JSON-safe snapshot of the closure.

        Bitsets serialise as hex strings (they are arbitrary-precision
        integers; JSON numbers are not), adjacency as sorted lists.
        :meth:`from_state` inverts this exactly, so snapshot/restore
        round-trips are bit-identical.
        """
        return {
            "reach": [format(mask, "x") for mask in self._reach],
            "rreach": [format(mask, "x") for mask in self._rreach],
            "succ": [sorted(outs) for outs in self._succ],
            "edges": self._num_edges,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "IncrementalClosure":
        """Rebuild a closure from a :meth:`state` snapshot."""
        inst = cls()
        inst._reach = [int(mask, 16) for mask in state["reach"]]  # type: ignore[union-attr]
        inst._rreach = [int(mask, 16) for mask in state["rreach"]]  # type: ignore[union-attr]
        inst._succ = [set(outs) for outs in state["succ"]]  # type: ignore[union-attr]
        inst._num_edges = int(state["edges"])  # type: ignore[arg-type]
        return inst


def reachable_from(adjacency: Dict[int, Set[int]], start: int) -> Set[int]:
    """Plain BFS reachability for ad-hoc graphs given as dict adjacency."""
    seen: Set[int] = set()
    frontier = [start]
    while frontier:
        nxt: List[int] = []
        for u in frontier:
            for v in adjacency.get(u, ()):  # noqa: B905 - dict access
                if v not in seen:
                    seen.add(v)
                    nxt.append(v)
        frontier = nxt
    return seen
