"""The BHMR protocol (Figure 6 of the paper) and its two variants.

The protocol tracks, besides the transitive dependency vector:

* ``sent_to[j]`` -- did I send to ``P_j`` in the current interval?
  (identifies the non-causal chains I could break);
* ``causal[k][j]`` -- to my knowledge, is there an on-line trackable
  R-path from ``C(k, TDV[k])`` to ``C(j, TDV[j])``?  (identifies chains
  that already have a causal sibling and need no breaking);
* ``simple[j]`` -- to my knowledge, are all causal chains from
  ``C(j, TDV[j])`` to my current state *simple* (no intermediate
  checkpoint)?  (detects the same-process case ``C(k,z) -> C(k,z-1)``).

A forced checkpoint is taken before delivering ``m`` iff ``C1 or C2``
(see :mod:`repro.core.predicates`).  Compared with FDAS the protocol is
strictly less conservative: ``C1 or C2  implies  C_FDAS`` (section 5.2),
which the test suite re-verifies at every arrival of every run.

Variants (section 5.1), each trading piggyback size for extra forced
checkpoints while still ensuring RDT:

* :class:`BHMRNoSimpleProtocol` -- drops the ``simple`` vector and uses
  ``C1 or C2'``;
* :class:`BHMRCausalOnlyProtocol` -- additionally pins the diagonal of
  ``causal`` to false, making ``C1`` alone sufficient.

Every variant inherits the on-the-fly minimum-consistent-global-
checkpoint property (Corollary 4.5): the vector saved with checkpoint
``C(i,x)`` *is* the minimum consistent global checkpoint containing it.
"""

from __future__ import annotations

from typing import List

from repro.core import predicates
from repro.core.piggyback import BHMRNoSimplePiggyback, BHMRPiggyback, Piggyback
from repro.core.protocol import CheckpointProtocol
from repro.types import ProcessId, ProtocolError


class BHMRProtocol(CheckpointProtocol):
    """The full protocol of Figure 6 (predicate ``C1 or C2``)."""

    name = "bhmr"
    ensures_rdt = True
    #: Does this variant keep the causal diagonal permanently true?
    diagonal_true = True
    #: Does this variant maintain/piggyback the ``simple`` vector?
    uses_simple = True

    def __init__(self, pid: ProcessId, n: int) -> None:
        super().__init__(pid, n)
        # (S0): causal starts as the identity; simple[i] is permanently
        # true, other entries start false (reset of take_checkpoint).
        self.causal: List[List[bool]] = [
            [self.diagonal_true and k == j for j in range(n)] for k in range(n)
        ]
        self.simple: List[bool] = [j == pid for j in range(n)]
        #: Attribution of forced checkpoints to the predicate that fired
        #: (a delivery may trip both).  Filled by the driver sequence
        #: wants_forced_checkpoint -> on_checkpoint(forced=True).
        self.c1_fires = 0
        self.c2_fires = 0
        self._pending_cause: tuple = ()

    # ------------------------------------------------------------------
    def on_checkpoint(self, forced: bool = False) -> None:
        """take_checkpoint of Figure 6 (resets beyond the base's)."""
        super().on_checkpoint(forced)
        for j in range(self.n):
            if j != self.pid:
                self.simple[j] = False
                self.causal[self.pid][j] = False
        if forced and self._pending_cause:
            fired_c1, fired_c2 = self._pending_cause
            self.c1_fires += 1 if fired_c1 else 0
            self.c2_fires += 1 if fired_c2 else 0
        self._pending_cause = ()

    def make_piggyback(self, dst: ProcessId) -> Piggyback:
        return BHMRPiggyback(
            tdv=tuple(self.tdv),
            simple=tuple(self.simple),
            causal=tuple(tuple(row) for row in self.causal),
        )

    # ------------------------------------------------------------------
    def wants_forced_checkpoint(self, pb: Piggyback, sender: ProcessId) -> bool:
        if not isinstance(pb, BHMRPiggyback):
            raise ProtocolError(f"{self.name} cannot interpret {type(pb).__name__}")
        fired_c1 = predicates.c1(self.tdv, self.sent_to, pb.tdv, pb.causal)
        fired_c2 = predicates.c2(self.pid, self.tdv, pb.tdv, pb.simple)
        # Memoise the attribution for the driver's on_checkpoint(forced)
        # call; recomputation on repeated queries is idempotent, so the
        # predicate stays observably side-effect free.
        self._pending_cause = (fired_c1, fired_c2)
        return fired_c1 or fired_c2

    # ------------------------------------------------------------------
    def on_receive(self, pb: Piggyback, sender: ProcessId) -> None:
        """The control-variable update block of statement (S2)."""
        if not isinstance(pb, (BHMRPiggyback, BHMRNoSimplePiggyback)):
            raise ProtocolError(f"{self.name} cannot interpret {type(pb).__name__}")
        super().on_receive(pb, sender)
        for k in range(self.n):
            if pb.tdv[k] > self.tdv[k]:
                self.tdv[k] = pb.tdv[k]
                self._set_simple_from(pb, k, replace=True)
                for l in range(self.n):
                    self.causal[k][l] = pb.causal_entry(k, l)
            elif pb.tdv[k] == self.tdv[k]:
                self._set_simple_from(pb, k, replace=False)
                for l in range(self.n):
                    self.causal[k][l] = self.causal[k][l] or pb.causal_entry(k, l)
        # The message itself is a causal chain from the sender's current
        # interval; close the knowledge transitively.
        if self.diagonal_true or sender != self.pid:
            self.causal[sender][self.pid] = True
        for l in range(self.n):
            if not self.diagonal_true and l == self.pid:
                continue
            self.causal[l][self.pid] = self.causal[l][self.pid] or self.causal[l][sender]

    def _set_simple_from(self, pb: Piggyback, k: int, replace: bool) -> None:
        if not self.uses_simple:
            return
        assert isinstance(pb, BHMRPiggyback)
        if replace:
            self.simple[k] = pb.simple[k]
        else:
            self.simple[k] = self.simple[k] and pb.simple[k]


class BHMRNoSimpleProtocol(BHMRProtocol):
    """Variant 1 (section 5.1): predicate ``C1 or C2'``, no ``simple``.

    Saves ``n`` bits per message; forces at least as often as the full
    protocol (``C2 implies C2'`` on reachable states).
    """

    name = "bhmr-nosimple"
    uses_simple = False

    def make_piggyback(self, dst: ProcessId) -> Piggyback:
        return BHMRNoSimplePiggyback(
            tdv=tuple(self.tdv),
            causal=tuple(tuple(row) for row in self.causal),
        )

    def wants_forced_checkpoint(self, pb: Piggyback, sender: ProcessId) -> bool:
        if not isinstance(pb, BHMRNoSimplePiggyback):
            raise ProtocolError(f"{self.name} cannot interpret {type(pb).__name__}")
        fired_c1 = predicates.c1(self.tdv, self.sent_to, pb.tdv, pb.causal)
        fired_c2p = predicates.c2_prime(self.pid, self.tdv, pb.tdv)
        self._pending_cause = (fired_c1, fired_c2p)
        return fired_c1 or fired_c2p


class BHMRCausalOnlyProtocol(BHMRNoSimpleProtocol):
    """Variant 2 (section 5.1): ``C1`` alone, causal diagonal kept false.

    With ``causal[k][k]`` permanently false, a message closing a chain
    back towards its own origin always looks "sibling-less", so ``C1``
    subsumes the same-process case that ``C2`` handled.
    """

    name = "bhmr-causalonly"
    diagonal_true = False

    def wants_forced_checkpoint(self, pb: Piggyback, sender: ProcessId) -> bool:
        if not isinstance(pb, BHMRNoSimplePiggyback):
            raise ProtocolError(f"{self.name} cannot interpret {type(pb).__name__}")
        fired_c1 = predicates.c1(self.tdv, self.sent_to, pb.tdv, pb.causal)
        self._pending_cause = (fired_c1, False)
        return fired_c1
