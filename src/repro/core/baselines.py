"""Non-RDT baselines: independent checkpointing.

Independent (uncoordinated) checkpointing is the null protocol: no
forced checkpoints, no piggybacking.  It is the negative control of the
whole study -- its patterns exhibit hidden dependencies, Z-cycles,
useless checkpoints and the domino effect, all of which the analysis
layer detects and all of which disappear under any protocol of the RDT
family above it.
"""

from __future__ import annotations

from repro.core.piggyback import EmptyPiggyback, Piggyback
from repro.core.protocol import CheckpointProtocol
from repro.types import ProcessId


class IndependentProtocol(CheckpointProtocol):
    """Take only basic checkpoints; never force; piggyback nothing."""

    name = "independent"
    ensures_rdt = False
    carries_tdv = False

    def make_piggyback(self, dst: ProcessId) -> Piggyback:
        return EmptyPiggyback()

    def wants_forced_checkpoint(self, pb: Piggyback, sender: ProcessId) -> bool:
        return False

    def on_receive(self, pb: Piggyback, sender: ProcessId) -> None:
        super().on_receive(pb, sender)
