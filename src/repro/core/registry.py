"""Protocol registry: name -> class, plus factory helpers.

The registry is what the simulation harness, the benchmarks and the
examples use to refer to protocols by the names the paper uses.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Type

from repro.core.baselines import IndependentProtocol
from repro.core.bhmr import (
    BHMRCausalOnlyProtocol,
    BHMRNoSimpleProtocol,
    BHMRProtocol,
)
from repro.core.classical import CASProtocol, CBRProtocol, NRASProtocol
from repro.core.fdas import FDASProtocol, FDIProtocol
from repro.core.index_based import BCSProtocol, LazyBCSProtocol
from repro.core.protocol import CheckpointProtocol, ProtocolFamily
from repro.types import ProcessId, ProtocolError

PROTOCOLS: Dict[str, Type[CheckpointProtocol]] = {
    cls.name: cls
    for cls in (
        BHMRProtocol,
        BHMRNoSimpleProtocol,
        BHMRCausalOnlyProtocol,
        FDASProtocol,
        FDIProtocol,
        NRASProtocol,
        CBRProtocol,
        CASProtocol,
        BCSProtocol,
        LazyBCSProtocol,
        IndependentProtocol,
    )
}

#: Protocols that guarantee Z-cycle freedom but not full RDT.
ZCF_ONLY_FAMILY: List[str] = ["bcs"]

#: The RDT-ensuring subfamily, ordered from least to most conservative
#: (the order the paper's section 5.2 establishes, completed with the
#: classical protocols).
RDT_FAMILY: List[str] = [
    "bhmr",
    "bhmr-nosimple",
    "bhmr-causalonly",
    "fdas",
    "fdi",
    "nras",
    "cbr",
    "cas",
]


def protocol_class(name: str) -> Type[CheckpointProtocol]:
    try:
        return PROTOCOLS[name]
    except KeyError:
        known = ", ".join(sorted(PROTOCOLS))
        raise ProtocolError(f"unknown protocol {name!r}; known: {known}") from None


def make_protocol(name: str, pid: ProcessId, n: int) -> CheckpointProtocol:
    """Instantiate one process's protocol object by registry name."""
    return protocol_class(name)(pid, n)


def make_family(name: str, n: int) -> ProtocolFamily:
    """Instantiate the protocol for all ``n`` processes."""
    cls = protocol_class(name)
    return ProtocolFamily(cls, n)


def protocol_factory(name: str) -> Callable[[ProcessId, int], CheckpointProtocol]:
    cls = protocol_class(name)
    return lambda pid, n: cls(pid, n)
