"""Multi-process scale-out: N shard processes behind one asyncio router.

The single-process :class:`~repro.serve.server.CheckpointServer` shards
sessions across asyncio worker *tasks* -- true parallelism stops at the
GIL.  This module promotes those shards to *processes*: the router
accepts client connections, routes every frame to the shard process
that owns its session (:class:`~repro.serve.shardmap.ShardMap`), and
fans replies back.  Each shard is a stock ``repro serve`` daemon with
its **own WAL directory and snapshot store** under
``data_dir/shard-<k>/``, so the ack ⇒ durable contract of the ingest
WAL holds per shard exactly as it does single-process.

Design rules the implementation leans on:

* **Byte passthrough.**  Frames are forwarded verbatim in both
  directions (:class:`~repro.serve.wire.RawFrameBuffer` finds the
  boundaries; nothing is re-encoded), so a sharded deployment answers
  byte-identically to a single-process one -- which is exactly what the
  differential suite asserts.  The router decodes request payloads once
  (it needs ``session``/``kind``/``seq`` to route) and reply payloads
  once (to settle its in-flight bookkeeping); the bytes on the wire are
  the shard's own.
* **Per-(connection, shard) uplinks.**  Each client connection gets its
  own connection to every shard it talks to, so client-chosen ``seq``
  values never collide inside a shard connection and replies need no
  rewriting.  Reply pumps forward only *whole frames* to the client --
  error frames the router itself writes (``overloaded``,
  ``shard_down``) may interleave with pump output, and a partial frame
  in between would corrupt the stream.
* **Failure is a key range, not the service.**  A shard process that
  dies (or halts on ``wal_failure``) takes down only its sessions: the
  router fails that shard's in-flight frames with ``shard_down``
  (retryable -- the frame was refused, not half-applied), answers the
  same for new frames, and the supervisor respawns the process, which
  replays its WAL before binding.  Other shards never notice.
* **Handoff is "snapshot, truncate, re-home".**  The ``rebalance``
  admin verb quiesces a session, has the old owner write an
  integrity-checked snapshot (advancing its WAL watermark and
  truncating covered segments) and retire its live copy, copies the
  snapshot into the new owner's store, and records the move as a
  shardmap override persisted in ``data_dir/shardmap.json``.  When the
  shard count changes across a restart the same discipline runs
  offline for every session whose ring arc moved
  (:meth:`Router._reconcile`).
"""

from __future__ import annotations

import asyncio
import json
import os
import shutil
import signal
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.obs.jsonio import canonical_dumps
from repro.serve import wire
from repro.serve.client import AsyncClient, ReplyError
from repro.serve.session import ServeSession
from repro.serve.shardmap import DEFAULT_REPLICAS, ShardMap
from repro.serve.snapshots import SnapshotStore, snapshot_doc
from repro.serve.wal import read_wal, recover_sessions
from repro.types import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer

#: ``("tcp", host, port)`` or ``("unix", path)`` (same shape as the server's).
Address = Tuple


@dataclass
class RouterConfig:
    """Knobs for a sharded deployment.

    The per-shard knobs (``queue_depth``, ``fsync_batch``,
    ``idle_timeout``, ``wal``) are passed straight through to each
    shard's ``repro serve`` process; ``shard_workers`` defaults to 1
    because parallelism now comes from processes, not loop tasks.
    """

    host: str = "127.0.0.1"
    port: int = 0
    unix_path: Optional[str] = None
    shard_procs: int = 2
    data_dir: str = ""
    replicas: int = DEFAULT_REPLICAS
    shard_workers: int = 1
    queue_depth: int = 256
    idle_timeout: Optional[float] = None
    fsync_batch: int = 64
    wal: bool = True
    #: Shed with ``overloaded`` once this many bytes sit unsent in a
    #: shard uplink's transport buffer (the shard's pipe is backed up).
    shed_bytes: int = 1 << 20
    #: How long one shard process may take to bind its socket (WAL
    #: replay happens before the bind, so recovery time counts).
    spawn_timeout: float = 30.0
    #: Base pause before respawning a dead shard; each consecutive
    #: death doubles it up to ``restart_backoff_cap``.
    restart_backoff: float = 0.2
    #: Ceiling on the exponential respawn backoff.
    restart_backoff_cap: float = 5.0
    #: Crash-loop trip wire: more than ``flap_max_restarts`` deaths
    #: (including failed respawns) inside ``flap_window`` seconds parks
    #: the shard in a terminal ``shard_degraded`` state instead of
    #: respawning forever.  ``flap_max_restarts = 0`` disables the wire.
    flap_window: float = 30.0
    flap_max_restarts: int = 5

    def __post_init__(self) -> None:
        if self.shard_procs <= 0:
            raise SimulationError(
                f"shard_procs must be positive, got {self.shard_procs}"
            )
        if not self.data_dir:
            raise SimulationError(
                "a sharded deployment needs data_dir (per-shard WAL and "
                "snapshot directories live under it)"
            )


class _Shard:
    """One shard process and the router's view of it."""

    def __init__(self, index: int, directory: Path) -> None:
        self.index = index
        self.dir = directory
        self.sock_path = directory / "serve.sock"
        self.proc: Optional[subprocess.Popen] = None
        self.up = asyncio.Event()
        self.forwarded = 0
        self.restarts = 0
        #: Terminal: the crash-loop trip wire fired; no more respawns.
        self.degraded = False
        #: ``loop.time()`` stamps of recent deaths/failed respawns
        #: (trimmed to what the trip wire can possibly need).
        self.restart_times: List[float] = []

    @property
    def wal_dir(self) -> Path:
        return self.dir / "wal"

    @property
    def snaps_dir(self) -> Path:
        return self.dir / "snaps"


class _Uplink:
    """One connection from one client conn to one shard process."""

    def __init__(
        self,
        shard: _Shard,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.shard = shard
        self.reader = reader
        self.writer = writer
        #: seq-key (canonical JSON text of the request's seq) ->
        #: session id, insertion-ordered; what ``shard_down`` answers
        #: for when the shard dies mid-flight.
        self.outstanding: Dict[str, str] = {}
        self.pump: Optional[asyncio.Task] = None
        self.closed = False


class _ClientConn:
    """Router-side state of one accepted client connection."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.uplinks: Dict[int, _Uplink] = {}
        self.closing = False


def _seq_key(seq: object) -> str:
    """The canonical JSON text of a ``seq`` value (the bookkeeping key).

    Request side computes it from the decoded value; the reply side
    reads it straight off the reply bytes (:func:`_reply_seq_text`).
    Canonical JSON guarantees both sides of the same value produce the
    same text.
    """
    if type(seq) is int:  # the common case; excludes bool on purpose
        return str(seq)
    return canonical_dumps(seq)


_NUMBER_START = frozenset(b"-0123456789")
_VALUE_END = frozenset(b",}")


def _reply_seq_text(payload: bytes) -> Optional[str]:
    """The canonical text of a reply's top-level ``seq`` value, sliced
    straight out of the payload without a JSON parse.

    Sound for shard replies because they are canonically encoded: keys
    are sorted, an unescaped ``"seq":`` byte run cannot occur inside a
    string value (the quote would be escaped), and every reply key
    sorting after ``"seq"`` carries a scalar -- so the *last* match is
    the top-level one.  Returns None for exotic seq values (objects,
    arrays, literals); the caller falls back to a full parse.  A miss
    only staled bookkeeping either way: the frame is forwarded verbatim
    regardless.
    """
    idx = payload.rfind(b'"seq":')
    if idx < 0:
        return None
    start = idx + 6
    if start >= len(payload):
        return None
    first = payload[start]
    if first in _NUMBER_START:
        end = start + 1
        while end < len(payload) and payload[end] not in _VALUE_END:
            end += 1
        return payload[start:end].decode("ascii")
    if first == 0x22:  # a string seq: scan to the closing quote
        end = start + 1
        while end < len(payload):
            byte = payload[end]
            if byte == 0x5C:  # backslash: skip the escaped character
                end += 2
                continue
            if byte == 0x22:
                return payload[start : end + 1].decode("ascii")
            end += 1
    return None


#: Routing-cache backstop: a client spraying distinct session ids must
#: not grow router memory without bound.
_OWNER_CACHE_LIMIT = 65536


class Router:
    """The sharded front end; duck-compatible with
    :class:`~repro.serve.server.CheckpointServer` for
    :class:`~repro.serve.server.ServerHandle` (``start``/``stop``/
    ``address``)."""

    def __init__(
        self,
        config: RouterConfig,
        tracer: Optional["Tracer"] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.config = config
        self.tracer = tracer
        self.metrics = metrics
        # Resolved eagerly: shard processes run with cwd inside their
        # own shard directory, so every path handed to them (socket,
        # WAL, snapshots) must be absolute or it would re-resolve
        # under the child's cwd.
        self.data_dir = Path(config.data_dir).resolve()
        self.shed_frames = 0
        self.reconciled_sessions = 0
        self._map = ShardMap(config.shard_procs, config.replicas)
        #: session id -> shard index, memoizing the ring hash (one
        #: sha256 per *frame* otherwise); cleared whenever overrides
        #: change.
        self._owner_cache: Dict[str, int] = {}
        self._shards: List[_Shard] = []
        self._conns: Set[_ClientConn] = set()
        self._conn_tasks: Set[asyncio.Task] = set()
        self._supervisors: List[asyncio.Task] = []
        self._migrating: Set[str] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping = False
        self._stopped = False
        self.address: Address = ()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _trace(self, kind: str, **fields: object) -> None:
        if self.tracer is not None:
            self.tracer.event(kind, 0.0, **fields)

    def _layout_path(self) -> Path:
        return self.data_dir / "shardmap.json"

    def _shard_dir(self, index: int) -> Path:
        return self.data_dir / f"shard-{index:02d}"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Address:
        self.data_dir.mkdir(parents=True, exist_ok=True)
        loop = asyncio.get_running_loop()
        # Layout reconciliation is pure blocking file work done before
        # any shard runs; off the loop so a thread-hosted start stays
        # responsive.
        await loop.run_in_executor(None, self._reconcile)
        self._shards = [
            _Shard(k, self._shard_dir(k)) for k in range(self.config.shard_procs)
        ]
        try:
            await asyncio.gather(*(self._spawn(s) for s in self._shards))
        except BaseException:
            for shard in self._shards:
                self._kill(shard)
            raise
        for shard in self._shards:
            task = asyncio.ensure_future(self._supervise(shard))
            self._supervisors.append(task)
        if self.config.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._serve_conn, path=self.config.unix_path
            )
            self.address = ("unix", self.config.unix_path)
        else:
            self._server = await asyncio.start_server(
                self._serve_conn, host=self.config.host, port=self.config.port
            )
            sock = self._server.sockets[0]
            host, port = sock.getsockname()[:2]
            self.address = ("tcp", host, port)
        self._trace(
            "serve.router.start",
            address=list(self.address),
            shards=len(self._shards),
        )
        if self.metrics is not None:
            self.metrics.set("serve.shard.procs", len(self._shards))
        return self.address

    async def stop(self) -> Dict[str, int]:
        """Graceful stop: drain shards via SIGINT, merge their summaries."""
        if self._stopped:
            return {}
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._supervisors:
            task.cancel()
        if self._supervisors:
            await asyncio.gather(*self._supervisors, return_exceptions=True)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        summary: Dict[str, int] = {}
        loop = asyncio.get_running_loop()
        for shard in self._shards:
            drained = await loop.run_in_executor(None, self._drain_shard, shard)
            for sid, events in drained.items():
                summary[sid] = max(summary.get(sid, 0), events)
        self._stopped = True
        self._trace("serve.router.stop", sessions=len(summary))
        return summary

    def _drain_shard(self, shard: _Shard) -> Dict[str, int]:
        """SIGINT one shard and parse its ``--json`` exit summary."""
        proc = shard.proc
        if proc is None:
            return {}
        if proc.poll() is None:
            try:
                proc.send_signal(signal.SIGINT)
            except OSError:
                pass
        try:
            out, _ = proc.communicate(timeout=30.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            out, _ = proc.communicate()
        shard.up.clear()
        for line in reversed((out or b"").decode("utf-8", "replace").splitlines()):
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                continue
            sessions = doc.get("sessions")
            if isinstance(sessions, dict):
                return {str(k): int(v) for k, v in sessions.items()}
        return {}

    # ------------------------------------------------------------------
    # shard processes
    # ------------------------------------------------------------------
    def _shard_argv(self, shard: _Shard) -> List[str]:
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--unix", str(shard.sock_path),
            "--workers", str(self.config.shard_workers),
            "--queue-depth", str(self.config.queue_depth),
            "--fsync-batch", str(self.config.fsync_batch),
            "--snapshot-dir", str(shard.snaps_dir),
            "--json",
        ]
        if self.config.wal:
            argv += ["--wal-dir", str(shard.wal_dir)]
        if self.config.idle_timeout is not None:
            argv += ["--idle-timeout", str(self.config.idle_timeout)]
        return argv

    async def _spawn(self, shard: _Shard) -> None:
        """Start one shard process and wait until its socket answers.

        The daemon binds only after WAL replay, so "socket answers"
        means "recovery is complete" -- the same contract clients rely
        on when they reconnect after a crash.
        """
        shard.dir.mkdir(parents=True, exist_ok=True)
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else f"{src_root}{os.pathsep}{existing}"
        )
        shard.proc = subprocess.Popen(
            self._shard_argv(shard),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            cwd=str(shard.dir),
        )
        self._trace(
            "serve.shard.spawn", shard=shard.index, pid=shard.proc.pid
        )
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.spawn_timeout
        while True:
            if shard.proc.poll() is not None:
                _, err = shard.proc.communicate()
                raise SimulationError(
                    f"shard {shard.index} exited during startup "
                    f"(rc={shard.proc.returncode}): "
                    f"{(err or b'').decode('utf-8', 'replace')[-500:]}"
                )
            try:
                _, writer = await asyncio.open_unix_connection(
                    str(shard.sock_path)
                )
            except (ConnectionError, OSError):
                if loop.time() > deadline:
                    self._kill(shard)
                    raise SimulationError(
                        f"shard {shard.index} did not bind within "
                        f"{self.config.spawn_timeout}s"
                    )
                await asyncio.sleep(0.05)
                continue
            writer.close()
            break
        shard.up.set()
        self._trace("serve.shard.up", shard=shard.index, pid=shard.proc.pid)
        if self.metrics is not None:
            self.metrics.set(
                "serve.shard.live",
                sum(1 for s in self._shards if s.up.is_set()),
            )

    def _kill(self, shard: _Shard) -> None:
        if shard.proc is not None and shard.proc.poll() is None:
            shard.proc.kill()
            shard.proc.communicate()
        shard.up.clear()

    async def _supervise(self, shard: _Shard) -> None:
        """Respawn a shard whose process died; WAL replay heals it.

        Pacing is a capped exponential backoff: the first respawn after
        a stretch of stable uptime waits ``restart_backoff``, and each
        consecutive death doubles the wait up to ``restart_backoff_cap``
        -- WAL replay is exactly the kind of work a tight respawn loop
        would thrash.  A shard that keeps dying -- more than
        ``flap_max_restarts`` deaths (failed respawns included) inside
        ``flap_window`` seconds -- trips the crash-loop wire: it is
        parked in a terminal ``shard_degraded`` state and never
        respawned again, because a deterministic crash (corrupt WAL,
        bad binary, poisoned session) would otherwise flap forever
        while clients burn retry budgets against a shard that can never
        come back.  Parking is visible: a ``serve.shard.flapping``
        trace/metric fires, ``stats``/``ping`` report the shard as
        degraded, and its key range answers a *non-retryable*
        ``shard_degraded`` error so callers fail fast instead of
        retrying into a wall.
        """
        loop = asyncio.get_running_loop()
        consecutive = 0
        while not self._stopping:
            await asyncio.sleep(0.2)
            proc = shard.proc
            if proc is None or self._stopping:
                continue
            if proc.poll() is None:
                # Alive.  A full flap window of stable uptime forgives
                # past deaths, so a once-flappy shard does not pay
                # compounding backoff forever.
                if consecutive and shard.restart_times and (
                    loop.time() - shard.restart_times[-1]
                    > self.config.flap_window
                ):
                    consecutive = 0
                continue
            shard.up.clear()
            shard.restarts += 1
            self._trace(
                "serve.shard.down",
                shard=shard.index,
                returncode=proc.returncode,
            )
            if self.metrics is not None:
                self.metrics.inc("serve.shard.restarts")
                self.metrics.set(
                    "serve.shard.live",
                    sum(1 for s in self._shards if s.up.is_set()),
                )
            proc.communicate()  # reap; pipes are dead anyway
            while not self._stopping:
                now = loop.time()
                consecutive += 1
                shard.restart_times.append(now)
                keep = max(2, self.config.flap_max_restarts + 2)
                del shard.restart_times[:-keep]
                if self._flapping(shard, now):
                    self._park(shard)
                    return
                delay = min(
                    self.config.restart_backoff_cap,
                    self.config.restart_backoff * (2 ** (consecutive - 1)),
                )
                await asyncio.sleep(delay)
                if self._stopping:
                    return
                try:
                    await self._spawn(shard)
                    break
                except SimulationError:
                    # Spawn failed (e.g. WAL corruption halting
                    # recovery): the shard stays down, its key range
                    # answers shard_down, and the failure counts toward
                    # the crash-loop wire like any other death.
                    self._trace(
                        "serve.shard.respawn_failed", shard=shard.index
                    )

    def _flapping(self, shard: _Shard, now: float) -> bool:
        limit = self.config.flap_max_restarts
        if limit <= 0:
            return False
        recent = [
            t for t in shard.restart_times
            if now - t <= self.config.flap_window
        ]
        return len(recent) > limit

    def _park(self, shard: _Shard) -> None:
        """Terminal: stop respawning a crash-looping shard."""
        shard.degraded = True
        self._kill(shard)
        self._trace(
            "serve.shard.flapping",
            shard=shard.index,
            restarts=shard.restarts,
            window_s=self.config.flap_window,
        )
        if self.metrics is not None:
            self.metrics.inc("serve.shard.flapping")
            self.metrics.set(
                "serve.shard.degraded",
                sum(1 for s in self._shards if s.degraded),
            )

    # ------------------------------------------------------------------
    # client connections
    # ------------------------------------------------------------------
    async def _serve_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _ClientConn(writer)
        self._conns.add(conn)
        self._conn_tasks.add(asyncio.current_task())
        try:
            await self._read_loop(reader, conn)
        except (wire.FrameError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            conn.closing = True
            for uplink in list(conn.uplinks.values()):
                self._close_uplink(uplink)
            conn.uplinks.clear()
            self._conns.discard(conn)
            self._conn_tasks.discard(asyncio.current_task())
            if not writer.is_closing():
                writer.close()

    async def _read_loop(
        self, reader: asyncio.StreamReader, conn: _ClientConn
    ) -> None:
        buffer = wire.RawFrameBuffer()
        while not self._stopping:
            data = await reader.read(65536)
            if not data:
                if buffer.pending():
                    raise wire.FrameError("connection closed mid-frame")
                return
            buffer.feed(data)
            # Per-chunk batching: frames bound for the same shard are
            # forwarded in one write, which is where most of the
            # per-frame proxy overhead would otherwise go.
            batches: Dict[int, List[bytes]] = {}
            while True:
                payload = buffer.next_payload()
                if payload is None:
                    break
                try:
                    doc = json.loads(payload)
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise wire.FrameError(
                        f"undecodable frame payload: {exc}"
                    ) from None
                if not isinstance(doc, dict):
                    raise wire.FrameError("frame payload must be an object")
                if not await self._dispatch(doc, payload, conn, batches):
                    await self._flush_batches(conn, batches)
                    return
            await self._flush_batches(conn, batches)

    async def _flush_batches(
        self, conn: _ClientConn, batches: Dict[int, List[bytes]]
    ) -> None:
        for shard_index, payloads in batches.items():
            uplink = conn.uplinks.get(shard_index)
            if uplink is None or uplink.closed:
                # The uplink died between dispatch and flush; its pump
                # already answered shard_down for these seqs.
                continue
            uplink.writer.write(
                b"".join(wire.frame_prefix(p) + p for p in payloads)
            )
        batches.clear()

    async def _dispatch(
        self,
        doc: Dict[str, object],
        payload: bytes,
        conn: _ClientConn,
        batches: Dict[int, List[bytes]],
    ) -> bool:
        """Route one decoded frame; returns False to close the conn."""
        seq = doc.get("seq")
        kind = doc.get("kind")
        if kind == "bye":
            await self._flush_batches(conn, batches)
            await self._quiesce_conn(conn)
            self._reply(conn, {"ok": True, "seq": seq, "bye": True})
            return False
        if kind == "stats":
            self._reply(conn, self._stats_reply(seq))
            return True
        if kind == "ping":
            self._reply(
                conn,
                {
                    "ok": True,
                    "seq": seq,
                    "pong": True,
                    "role": "router",
                    "shards": len(self._shards),
                    "shards_up": sum(
                        1 for s in self._shards if s.up.is_set()
                    ),
                    "degraded": sorted(
                        s.index for s in self._shards if s.degraded
                    ),
                },
            )
            return True
        if kind == "rebalance":
            await self._flush_batches(conn, batches)
            self._reply(conn, await self._rebalance(doc))
            return True
        if kind not in wire.KINDS:
            self._reply(
                conn,
                wire.error_reply(seq, "bad_request", f"unknown kind {kind!r}"),
            )
            return True
        session_id = doc.get("session")
        if not isinstance(session_id, str) or not session_id:
            self._reply(
                conn,
                wire.error_reply(seq, "bad_request", "missing session field"),
            )
            return True
        if session_id in self._migrating:
            self._reply(
                conn,
                wire.error_reply(
                    seq, "shard_down", "session is re-homing; retry"
                ),
            )
            return True
        owner = self._owner_cache.get(session_id)
        if owner is None:
            if len(self._owner_cache) >= _OWNER_CACHE_LIMIT:
                self._owner_cache.clear()
            owner = self._map.owner(session_id)
            self._owner_cache[session_id] = owner
        shard = self._shards[owner]
        if shard.degraded:
            # Deliberately NOT retryable: the shard will never come
            # back without operator action, so clients must fail fast
            # instead of burning their retry budget against a wall.
            self._reply(
                conn,
                wire.error_reply(
                    seq,
                    "shard_degraded",
                    f"shard {shard.index} is crash-looping and has been "
                    f"parked; operator action required",
                ),
            )
            return True
        if not shard.up.is_set():
            self._reply(
                conn,
                wire.error_reply(
                    seq,
                    "shard_down",
                    f"shard {shard.index} is restarting; retry",
                ),
            )
            return True
        uplink = conn.uplinks.get(shard.index)
        if uplink is None or uplink.closed:
            try:
                uplink = await self._open_uplink(conn, shard)
            except (ConnectionError, OSError):
                self._reply(
                    conn,
                    wire.error_reply(
                        seq,
                        "shard_down",
                        f"shard {shard.index} is unreachable; retry",
                    ),
                )
                return True
        transport_buffered = uplink.writer.transport.get_write_buffer_size()
        if transport_buffered > self.config.shed_bytes:
            self.shed_frames += 1
            self._trace(
                "serve.shard.shed",
                shard=shard.index,
                session=session_id,
                seq=seq,
            )
            if self.metrics is not None:
                self.metrics.inc("serve.shard.shed")
            self._reply(
                conn,
                wire.error_reply(
                    seq,
                    "overloaded",
                    f"shard {shard.index} pipe is backed up; retry",
                ),
            )
            return True
        uplink.outstanding[_seq_key(seq)] = session_id
        shard.forwarded += 1
        batches.setdefault(shard.index, []).append(payload)
        return True

    def _reply(self, conn: _ClientConn, doc: Dict[str, object]) -> None:
        """One whole frame to the client in a single write (may
        interleave with pump output, so partial writes are forbidden)."""
        try:
            conn.writer.write(wire.encode_frame(doc))
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------
    # uplinks and reply pumps
    # ------------------------------------------------------------------
    async def _open_uplink(self, conn: _ClientConn, shard: _Shard) -> _Uplink:
        reader, writer = await asyncio.open_unix_connection(
            str(shard.sock_path)
        )
        uplink = _Uplink(shard, reader, writer)
        conn.uplinks[shard.index] = uplink
        uplink.pump = asyncio.ensure_future(self._pump(conn, uplink))
        return uplink

    async def _pump(self, conn: _ClientConn, uplink: _Uplink) -> None:
        """Forward shard replies to the client, whole frames only."""
        buffer = wire.RawFrameBuffer()
        try:
            while True:
                data = await uplink.reader.read(65536)
                if not data:
                    break
                buffer.feed(data)
                frames: List[bytes] = []
                while True:
                    payload = buffer.next_payload()
                    if payload is None:
                        break
                    frames.append(wire.frame_prefix(payload))
                    frames.append(payload)
                    self._settle(uplink, payload)
                if frames:
                    conn.writer.write(b"".join(frames))
                    await conn.writer.drain()
        except (wire.FrameError, ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            return
        finally:
            self._fail_uplink(conn, uplink)

    def _settle(self, uplink: _Uplink, payload: bytes) -> None:
        """Mark one reply as no longer in flight."""
        text = _reply_seq_text(payload)
        if text is None:
            try:
                doc = json.loads(payload.decode("utf-8"))
                text = _seq_key(doc.get("seq"))
            except (UnicodeDecodeError, json.JSONDecodeError, AttributeError):
                return  # forwarded verbatim regardless; bookkeeping only
        uplink.outstanding.pop(text, None)

    def _fail_uplink(self, conn: _ClientConn, uplink: _Uplink) -> None:
        """The uplink is gone: answer ``shard_down`` for its in-flight
        frames (refused-not-applied holds: the shard never acked them,
        and un-acked WAL appends are torn-tail-repaired on replay)."""
        if uplink.closed:
            return
        uplink.closed = True
        if conn.uplinks.get(uplink.shard.index) is uplink:
            del conn.uplinks[uplink.shard.index]
        try:
            uplink.writer.close()
        except (ConnectionError, OSError):
            pass
        if conn.closing or self._stopping:
            return
        for seq_text in list(uplink.outstanding):
            self._reply(
                conn,
                wire.error_reply(
                    json.loads(seq_text),
                    "shard_down",
                    f"shard {uplink.shard.index} went away mid-request; retry",
                ),
            )
        uplink.outstanding.clear()

    def _close_uplink(self, uplink: _Uplink) -> None:
        uplink.closed = True
        if uplink.pump is not None:
            uplink.pump.cancel()
        try:
            uplink.writer.close()
        except (ConnectionError, OSError):
            pass

    async def _quiesce_conn(self, conn: _ClientConn, timeout: float = 30.0) -> None:
        """Wait for every in-flight frame of one connection to settle."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while loop.time() < deadline:
            live = [
                u for u in conn.uplinks.values()
                if u.outstanding and not u.closed and u.shard.up.is_set()
            ]
            if not live:
                return
            await asyncio.sleep(0.005)

    # ------------------------------------------------------------------
    # admin verbs
    # ------------------------------------------------------------------
    def _stats_reply(self, seq: object) -> Dict[str, object]:
        return {
            "ok": True,
            "seq": seq,
            "router": True,
            "shards": [
                {
                    "shard": s.index,
                    "up": s.up.is_set(),
                    "pid": s.proc.pid if s.proc is not None else None,
                    "forwarded": s.forwarded,
                    "restarts": s.restarts,
                    "degraded": s.degraded,
                }
                for s in self._shards
            ],
            "shed": self.shed_frames,
            "connections": len(self._conns),
            "layout": self._map.to_doc(),
        }

    async def _rebalance(self, doc: Dict[str, object]) -> Dict[str, object]:
        """Move one session to an explicit target shard, live.

        The protocol is "snapshot, truncate, re-home": quiesce the
        session's in-flight frames, have the old owner snapshot + WAL
        truncate + retire it, copy the snapshot into the new owner's
        store (watermark reset -- the new owner's WAL knows nothing of
        it), persist the override.  Frames arriving mid-move get
        ``shard_down``, which sync clients transparently retry.
        """
        seq = doc.get("seq")
        session_id = doc.get("session")
        target = doc.get("target")
        if not isinstance(session_id, str) or not session_id:
            return wire.error_reply(seq, "bad_request", "missing session field")
        if not isinstance(target, int) or not 0 <= target < len(self._shards):
            return wire.error_reply(
                seq,
                "bad_request",
                f"target must be a shard index 0..{len(self._shards) - 1}",
            )
        source = self._map.owner(session_id)
        if source == target:
            return {
                "ok": True, "seq": seq, "session": session_id,
                "moved": False, "shard": target,
            }
        old = self._shards[source]
        new = self._shards[target]
        if not old.up.is_set() or not new.up.is_set():
            return wire.error_reply(
                seq, "shard_down", "both shards must be up to rebalance"
            )
        if session_id in self._migrating:
            return wire.error_reply(
                seq, "busy", f"session {session_id!r} is already re-homing"
            )
        self._migrating.add(session_id)
        try:
            await self._quiesce_session(session_id, source)
            admin = await AsyncClient.connect(f"unix:{old.sock_path}")
            try:
                snap_reply = await admin.call(
                    "snapshot", session=session_id, retire=True
                )
            finally:
                await admin.close()
            moved_doc = SnapshotStore(old.snaps_dir).load(session_id)
            if moved_doc is None:
                return wire.error_reply(
                    seq, "internal", "owner wrote no snapshot"
                )
            moved_doc = dict(moved_doc)
            moved_doc["wal_seq"] = -1  # the new owner's WAL starts clean
            SnapshotStore(new.snaps_dir).put(session_id, moved_doc)
            # The old copy stays in the source store on purpose: WAL
            # segments there may have been truncated against its
            # watermark, and removing it would tear the recovery chain.
            # The next full reconcile retires it (longest log wins).
            if self._map.ring_owner(session_id) == target:
                self._map.overrides.pop(session_id, None)
            else:
                self._map.overrides[session_id] = target
            self._owner_cache.clear()
            self._map.save(self._layout_path())
        except ReplyError as exc:
            return wire.error_reply(seq, exc.code, exc.detail)
        except (ConnectionError, OSError) as exc:
            return wire.error_reply(seq, "shard_down", str(exc))
        finally:
            self._migrating.discard(session_id)
        self._trace(
            "serve.shard.rebalance",
            session=session_id,
            source=source,
            target=target,
            events=snap_reply.get("events"),
        )
        if self.metrics is not None:
            self.metrics.inc("serve.shard.rebalances")
        return {
            "ok": True,
            "seq": seq,
            "session": session_id,
            "moved": True,
            "from": source,
            "shard": target,
            "events": snap_reply.get("events"),
            "digest": snap_reply.get("digest"),
        }

    async def _quiesce_session(
        self, session_id: str, shard_index: int, timeout: float = 10.0
    ) -> None:
        """Wait until no frame of ``session_id`` is in flight to
        ``shard_index`` on any connection (new ones are already being
        refused via ``_migrating``)."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while loop.time() < deadline:
            inflight = any(
                session_id in uplink.outstanding.values()
                for conn in self._conns
                for uplink in [conn.uplinks.get(shard_index)]
                if uplink is not None and not uplink.closed
            )
            if not inflight:
                return
            await asyncio.sleep(0.005)
        raise ConnectionError(
            f"session {session_id!r} still has frames in flight after "
            f"{timeout}s"
        )

    # ------------------------------------------------------------------
    # offline layout reconciliation
    # ------------------------------------------------------------------
    def _reconcile(self) -> None:
        """Make on-disk session placement match the (pure-ring) layout.

        Runs before any shard process exists, so it owns every file.
        Fast path: the stored layout matches ``shard_procs``, has no
        overrides, and no orphan shard directories exist -- per-shard
        WAL recovery then proceeds untouched inside each shard process
        (this is the hot path PR 6's chaos grid exercises).

        Full pass (shard count changed, overrides pending, or orphan
        directories): recover every session from every shard directory
        (snapshots + WAL, longest log wins across duplicates), replay
        it, snapshot it into its ring owner's store, then retire every
        WAL directory (all its records are now covered by snapshots)
        and every foreign snapshot copy.  Each step is idempotent and
        ordered so a crash at any point leaves every session
        recoverable: snapshots are written to their new homes *before*
        the old WAL/snapshot sources are removed, and the layout file
        is saved last.
        """
        desired = ShardMap(self.config.shard_procs, self.config.replicas)
        stored = ShardMap.load(self._layout_path())
        existing = sorted(
            p for p in self.data_dir.glob("shard-*") if p.is_dir()
        )
        orphans = [
            p for p in existing
            if int(p.name.split("-")[1]) >= self.config.shard_procs
        ]
        if (
            stored is not None
            and stored.shards == desired.shards
            and stored.replicas == desired.replicas
            and not stored.overrides
            and not orphans
        ):
            return
        if stored is None and not existing:
            desired.save(self._layout_path())
            return

        # -- gather: every session every directory can prove ----------
        merged: Dict[str, object] = {}
        for directory in existing:
            # A crash mid-reconcile may have left a half-removed WAL;
            # finish the job before reading anything.
            retired = directory / "wal-retired"
            if retired.exists():
                shutil.rmtree(retired)
            snaps_dir = directory / "snaps"
            store = SnapshotStore(snaps_dir) if snaps_dir.exists() else None
            snapshots: Dict[str, Dict[str, object]] = {}
            if store is not None:
                for sid in store.known():
                    doc = store.load(sid)
                    if doc is not None:
                        snapshots[sid] = doc
            wal_dir = directory / "wal"
            records = read_wal(wal_dir) if wal_dir.exists() else []
            for sid, rec in recover_sessions(records, snapshots).items():
                best = merged.get(sid)
                if best is None or len(rec.log) > len(best.log):  # type: ignore[attr-defined]
                    merged[sid] = rec

        # -- re-home: replay + snapshot into the ring owner's store ---
        for sid in sorted(merged):
            rec = merged[sid]
            session = ServeSession.replay_log(
                sid, rec.n, rec.protocol, rec.log  # type: ignore[attr-defined]
            )
            owner_dir = self._shard_dir(desired.owner(sid))
            owner_store = SnapshotStore(owner_dir / "snaps")
            owner_store.put(sid, snapshot_doc(session, wal_seq=-1))
            self.reconciled_sessions += 1
        self._trace(
            "serve.shard.reconcile",
            sessions=len(merged),
            from_dirs=len(existing),
            shards=self.config.shard_procs,
        )

        # -- retire sources: WALs first (now fully covered), then
        #    foreign snapshot copies, then the layout, then orphan dirs.
        for directory in existing:
            wal_dir = directory / "wal"
            if wal_dir.exists():
                retired = directory / "wal-retired"
                os.rename(wal_dir, retired)  # atomic: all-or-nothing
                shutil.rmtree(retired)
        for directory in existing:
            if directory in orphans:
                continue
            index = int(directory.name.split("-")[1])
            snaps_dir = directory / "snaps"
            if not snaps_dir.exists():
                continue
            store = SnapshotStore(snaps_dir)
            for sid in store.known():
                if desired.owner(sid) != index:
                    store.discard(sid)
        desired.save(self._layout_path())
        for directory in orphans:
            shutil.rmtree(directory)

    def __repr__(self) -> str:
        state = "stopped" if self._stopped else (
            "stopping" if self._stopping else
            ("listening" if self._server else "new")
        )
        live = sum(1 for s in self._shards if s.up.is_set())
        return (
            f"<Router {state} shards={live}/{self.config.shard_procs} "
            f"conns={len(self._conns)}>"
        )
