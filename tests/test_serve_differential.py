"""Online/offline differential: the service adds no analysis of its own.

Each cell generates a workload trace, streams it through a *live*
server over the wire protocol, then replays the server's own captured
ingest log offline (``offline_answers``).  The online query replies
must be byte-identical (canonical JSON) to the offline verdicts --
RDT status, Z-cycles and the recovery line all come from one engine,
whether it runs under the daemon or in a batch script.
"""

import random

import pytest

from repro.core.registry import PROTOCOLS
from repro.obs.jsonio import canonical_dumps
from repro.serve.client import Client
from repro.serve.server import ServerConfig, serve_in_thread
from repro.serve.session import offline_answers
from repro.sim.generate import generate_trace
from repro.sim.trace import TraceOpKind
from repro.workloads import WORKLOADS

N = 3
CELLS = 20

# A seeded sample of the full workload x protocol grid: deterministic
# for the suite, yet spread across both registries.
_rng = random.Random(0xD1FF)
_GRID = sorted(
    (w, p) for w in WORKLOADS for p in PROTOCOLS
)
CELL_PARAMS = [
    (w, p, _rng.randrange(1 << 16))
    for w, p in _rng.sample(_GRID, CELLS)
]


@pytest.fixture(scope="module")
def handle(tmp_path_factory):
    sock = tmp_path_factory.mktemp("diff") / "diff.sock"
    with serve_in_thread(ServerConfig(unix_path=str(sock), workers=3)) as h:
        yield h


def drive_trace(client, session_id, protocol, trace):
    """Stream one generated trace through the live server, one frame at
    a time; delivers use the msg_id the *server* assigned to the send."""
    client.hello(session_id, n=trace.n, protocol=protocol)
    sent = {}
    for op in trace.ops:
        if op.kind is TraceOpKind.BASIC_CHECKPOINT:
            client.checkpoint(session_id, pid=op.pid)
        elif op.kind is TraceOpKind.SEND:
            reply = client.send(session_id, src=op.pid, dst=op.peer)
            sent[op.msg_id] = reply["msg_id"]
        else:
            client.deliver(session_id, msg_id=sent[op.msg_id])


@pytest.mark.parametrize(
    "workload,protocol,seed",
    CELL_PARAMS,
    ids=[f"{w}-{p}-{s}" for w, p, s in CELL_PARAMS],
)
def test_online_equals_offline(handle, workload, protocol, seed):
    trace = generate_trace(
        N, WORKLOADS[workload](), duration=12.0, seed=seed, basic_rate=0.2
    )
    session_id = f"diff-{workload}-{protocol}-{seed}"
    crashed = [seed % N]
    with Client(handle.connect_address()) as client:
        drive_trace(client, session_id, protocol, trace)
        online = {
            "rdt_status": client.query(session_id, "rdt_status"),
            "z_cycles": client.query(session_id, "z_cycles"),
            "recovery_line": client.query(
                session_id, "recovery_line", crashed=crashed
            ),
        }
    # The server's own record of what it ingested, replayed offline.
    log = list(handle.server.sessions[session_id].ingest_log)
    assert len(log) == len(trace.ops)
    offline = offline_answers(session_id, N, protocol, log, crashed=crashed)
    assert canonical_dumps(online) == canonical_dumps(offline)


def test_cells_cover_many_workloads_and_protocols():
    """The sampled grid is a real spread, not one corner."""
    workloads = {w for w, _, _ in CELL_PARAMS}
    protocols = {p for _, p, _ in CELL_PARAMS}
    assert len(CELL_PARAMS) >= 20
    assert len(workloads) >= 4
    assert len(protocols) >= 5


# ----------------------------------------------------------------------
# the differential across a kill -9 boundary
# ----------------------------------------------------------------------
# A recovered session is not merely *alive*: it must be the same
# analytical object.  Each cell streams half a trace into a real
# subprocess server, SIGKILLs it, replays the surviving WAL offline,
# restarts a server over the same directories and demands the online
# answers match the offline replay byte for byte -- then finishes the
# trace against the recovered session and checks the *full* run too.
CRASH_CELLS = CELL_PARAMS[:4]


@pytest.mark.tier2
@pytest.mark.parametrize(
    "workload,protocol,seed",
    CRASH_CELLS,
    ids=[f"{w}-{p}-{s}" for w, p, s in CRASH_CELLS],
)
def test_recovery_is_differentially_silent(tmp_path, workload, protocol, seed):
    import os

    from repro.serve.snapshots import SnapshotStore
    from repro.serve.wal import read_wal, recover_sessions
    from tests.chaos.harness import ServerDirs, spawn_server

    trace = generate_trace(
        N, WORKLOADS[workload](), duration=12.0, seed=seed, basic_rate=0.2
    )
    cut = max(1, len(trace.ops) // 2)
    session_id = f"crash-{workload}-{protocol}-{seed}"
    crashed = [seed % N]
    dirs = ServerDirs(tmp_path)

    # --- first life: half the trace, then kill -9 -------------------
    proc = spawn_server(dirs, fsync_batch=8)
    sent = {}
    try:
        client = Client(f"unix:{dirs.sock}", timeout=30.0)
        client.hello(session_id, n=trace.n, protocol=protocol)
        for op_i, op in enumerate(trace.ops[:cut]):
            if op.kind is TraceOpKind.BASIC_CHECKPOINT:
                client.checkpoint(session_id, pid=op.pid)
            elif op.kind is TraceOpKind.SEND:
                reply = client.send(session_id, src=op.pid, dst=op.peer)
                sent[op.msg_id] = reply["msg_id"]
            else:
                client.deliver(session_id, msg_id=sent[op.msg_id])
            if op_i == cut // 2:
                # A mid-stream snapshot makes recovery exercise the
                # snapshot-plus-WAL-tail path, not just pure replay.
                client.snapshot(session_id)
    finally:
        proc.kill()
        proc.wait(timeout=30.0)

    # --- offline: replay the surviving WAL -------------------------
    store = SnapshotStore(dirs.snap_dir)
    snaps = {sid: store.load(sid) for sid in store.known()}
    rec = recover_sessions(read_wal(dirs.wal_dir), snaps)[session_id]
    # Every frame was acked before the kill and none was in flight, so
    # recovery must land on exactly the driven prefix.
    assert len(rec.log) == cut
    offline = offline_answers(
        session_id, N, protocol, rec.log, crashed=crashed
    )

    # --- second life: restart over the same directories ------------
    if os.path.exists(dirs.sock):
        os.unlink(dirs.sock)
    config = ServerConfig(
        unix_path=dirs.sock,
        workers=3,
        wal_dir=dirs.wal_dir,
        snapshot_dir=dirs.snap_dir,
    )
    with serve_in_thread(config) as h2:
        with Client(h2.connect_address()) as client:
            greeting = client.resume(session_id)
            assert greeting["events"] == cut
            assert greeting["recovered"] is True
            online = {
                "rdt_status": client.query(session_id, "rdt_status"),
                "z_cycles": client.query(session_id, "z_cycles"),
                "recovery_line": client.query(
                    session_id, "recovery_line", crashed=crashed
                ),
            }
            assert canonical_dumps(online) == canonical_dumps(offline)

            # The recovered session finishes the trace as if the crash
            # never happened: the full run is differentially silent too.
            for op in trace.ops[cut:]:
                if op.kind is TraceOpKind.BASIC_CHECKPOINT:
                    client.checkpoint(session_id, pid=op.pid)
                elif op.kind is TraceOpKind.SEND:
                    reply = client.send(session_id, src=op.pid, dst=op.peer)
                    sent[op.msg_id] = reply["msg_id"]
                else:
                    client.deliver(session_id, msg_id=sent[op.msg_id])
            online_full = {
                "rdt_status": client.query(session_id, "rdt_status"),
                "z_cycles": client.query(session_id, "z_cycles"),
                "recovery_line": client.query(
                    session_id, "recovery_line", crashed=crashed
                ),
            }
        full_log = list(h2.server.sessions[session_id].ingest_log)
    assert len(full_log) == len(trace.ops)
    offline_full = offline_answers(
        session_id, N, protocol, full_log, crashed=crashed
    )
    assert canonical_dumps(online_full) == canonical_dumps(offline_full)
