"""Integration properties: the paper's theorems, checked end to end.

Every test here runs full simulations and validates protocol guarantees
on the recorded patterns:

* Theorem 4.4: the BHMR protocol (and each family member) yields RDT;
* Corollary 4.5: the vector saved at each checkpoint is the minimum
  consistent global checkpoint containing it;
* section 5.2: predicate implications (C1 v C2 => C_FDAS etc.), checked
  pointwise at every arrival via instrumented protocols;
* the negative control: independent checkpointing violates RDT.
"""

import pytest

from repro.analysis import check_rdt, min_consistent_gcp, useless_checkpoints
from repro.clocks import tdv_snapshots
from repro.core import RDT_FAMILY, BHMRProtocol, protocol_factory
from repro.core import predicates
from repro.events import CheckpointKind
from repro.sim import Simulation, SimulationConfig, replay
from repro.types import CheckpointId
from repro.workloads import (
    ClientServerWorkload,
    MasterWorkerWorkload,
    OverlappingGroupsWorkload,
    RandomUniformWorkload,
    RingWorkload,
)

SCENARIOS = [
    ("random", lambda: RandomUniformWorkload(send_rate=1.5), 4),
    ("groups", lambda: OverlappingGroupsWorkload(group_size=3, overlap=1), 6),
    ("client-server", lambda: ClientServerWorkload(think_time=0.3), 4),
    ("master-worker", lambda: MasterWorkerWorkload(), 4),
    ("ring", lambda: RingWorkload(tokens=2), 4),
]


def simulate(make_workload, n, seed, duration=40.0, basic_rate=0.25):
    cfg = SimulationConfig(n=n, duration=duration, seed=seed, basic_rate=basic_rate)
    return Simulation(make_workload(), cfg)


class TestTheorem44:
    """All RDT-family protocols produce RDT patterns, in every environment."""

    @pytest.mark.parametrize("protocol", RDT_FAMILY)
    @pytest.mark.parametrize("env,make,n", SCENARIOS)
    def test_rdt_holds(self, protocol, env, make, n):
        sim = simulate(make, n, seed=11)
        report = check_rdt(sim.run(protocol).history)
        assert report.holds, (protocol, env, report.violations[:3])

    @pytest.mark.parametrize("seed", range(4))
    def test_rdt_holds_across_seeds(self, seed):
        sim = simulate(lambda: RandomUniformWorkload(send_rate=2.0), 5, seed)
        assert check_rdt(sim.run("bhmr").history).holds

    @pytest.mark.parametrize("protocol", ["bhmr", "fdas"])
    def test_no_useless_checkpoints(self, protocol):
        sim = simulate(lambda: RandomUniformWorkload(send_rate=2.0), 4, seed=3)
        assert useless_checkpoints(sim.run(protocol).history) == []


class TestNegativeControl:
    def test_independent_violates_rdt_somewhere(self):
        violated = 0
        for seed in range(6):
            sim = simulate(lambda: RandomUniformWorkload(send_rate=2.0), 4, seed)
            if not check_rdt(sim.run("independent").history).holds:
                violated += 1
        assert violated >= 4  # dense random traffic almost always breaks RDT


class TestTDVCorrectness:
    """The protocol's piggybacked TDV equals the offline reference."""

    @pytest.mark.parametrize("protocol", ["bhmr", "bhmr-nosimple", "fdas", "fdi"])
    def test_saved_tdv_matches_reference(self, protocol):
        sim = simulate(lambda: RandomUniformWorkload(send_rate=1.5), 4, seed=7)
        res = sim.run(protocol)
        reference = tdv_snapshots(res.history)
        for pid in range(4):
            proto = res.family[pid]
            for ev in res.history.checkpoints(pid):
                if ev.checkpoint_kind is CheckpointKind.FINAL:
                    continue  # not taken by the protocol
                index = ev.checkpoint_index
                assert proto.saved_tdv(index) == reference[
                    CheckpointId(pid, index)
                ], (protocol, pid, index)


class TestCorollary45:
    """On-the-fly min consistent GCP == offline fixpoint, under RDT."""

    @pytest.mark.parametrize("protocol", ["bhmr", "bhmr-nosimple", "bhmr-causalonly"])
    @pytest.mark.parametrize("env,make,n", SCENARIOS[:3])
    def test_min_gcp_on_the_fly(self, protocol, env, make, n):
        sim = simulate(make, n, seed=13, duration=25.0)
        res = sim.run(protocol)
        history = res.history
        for pid in range(n):
            for ev in history.checkpoints(pid):
                if ev.checkpoint_kind is CheckpointKind.FINAL:
                    continue
                cid = CheckpointId(pid, ev.checkpoint_index)
                claimed = res.family[pid].min_gcp_of(cid.index)
                exact = min_consistent_gcp(history, [cid])
                assert exact == claimed, (protocol, env, cid)


class _InstrumentedBHMR(BHMRProtocol):
    """Re-evaluates the whole predicate family at every arrival and
    asserts the generality implications of section 5.2 pointwise."""

    checks = 0

    def wants_forced_checkpoint(self, pb, sender):
        decision = super().wants_forced_checkpoint(pb, sender)
        v_c1 = predicates.c1(self.tdv, self.sent_to, pb.tdv, pb.causal)
        v_c2 = predicates.c2(self.pid, self.tdv, pb.tdv, pb.simple)
        v_c2p = predicates.c2_prime(self.pid, self.tdv, pb.tdv)
        v_fdas = predicates.c_fdas(self.after_first_send, self.tdv, pb.tdv)
        v_fdi = predicates.c_fdi(self.had_communication, self.tdv, pb.tdv)
        v_nras = predicates.c_nras(self.after_first_send)
        v_cbr = predicates.c_cbr(self.had_communication)
        assert decision == (v_c1 or v_c2)
        # The paper's implication chain, on this reachable state:
        if v_c2:
            assert v_c2p, "C2 => C2'"
        if v_c1 or v_c2:
            assert v_fdas, "C1 v C2 => C_FDAS"
        if v_c1 or v_c2p:
            assert v_fdas, "C1 v C2' => C_FDAS"
        if v_fdas:
            assert v_fdi, "C_FDAS => C_FDI"
            assert v_nras, "C_FDAS => C_NRAS"
        if v_fdi:
            assert v_cbr, "C_FDI => C_CBR"
        if v_nras:
            assert v_cbr, "C_NRAS => C_CBR"
        _InstrumentedBHMR.checks += 1
        return decision


class TestPredicateImplications:
    @pytest.mark.parametrize("env,make,n", SCENARIOS)
    def test_implication_chain_on_reachable_states(self, env, make, n):
        _InstrumentedBHMR.checks = 0
        sim = simulate(make, n, seed=17)
        replay(sim.trace, lambda pid, nn: _InstrumentedBHMR(pid, nn))
        assert _InstrumentedBHMR.checks > 20, env


class TestConservativenessOrdering:
    """Measured forced counts respect the generality hierarchy.

    Counts are compared on the same trace.  Because executions diverge
    after the first differing forced checkpoint, the pointwise predicate
    implication does not *prove* count domination run by run; the paper
    observes it holds in simulation, and so do we, on every scenario.
    """

    @pytest.mark.parametrize("env,make,n", SCENARIOS)
    @pytest.mark.parametrize("seed", [19, 23])
    def test_bhmr_never_forces_more_than_fdas(self, env, make, n, seed):
        sim = simulate(make, n, seed, duration=50.0)
        results = sim.compare(["bhmr", "bhmr-nosimple", "bhmr-causalonly", "fdas"])
        forced = {k: v.metrics.forced_checkpoints for k, v in results.items()}
        assert forced["bhmr"] <= forced["fdas"], (env, forced)
        assert forced["bhmr-nosimple"] <= forced["fdas"], (env, forced)
        assert forced["bhmr-causalonly"] <= forced["fdas"], (env, forced)

    def test_fdas_below_classical(self):
        sim = simulate(lambda: RandomUniformWorkload(send_rate=2.0), 4, seed=29)
        results = sim.compare(["fdas", "nras", "cbr"])
        forced = {k: v.metrics.forced_checkpoints for k, v in results.items()}
        assert forced["fdas"] <= forced["nras"] <= forced["cbr"]


class TestOverheadAccounting:
    def test_bhmr_pays_more_bits_than_fdas(self):
        sim = simulate(lambda: RandomUniformWorkload(send_rate=1.5), 4, seed=31)
        results = sim.compare(["bhmr", "bhmr-nosimple", "fdas", "nras"])
        bits = {
            k: v.metrics.piggyback_bits_per_message for k, v in results.items()
        }
        assert bits["bhmr"] > bits["bhmr-nosimple"] > bits["fdas"] > bits["nras"]
        n = 4
        assert bits["bhmr"] == pytest.approx(32 * n + n * n + n)
        assert bits["nras"] == 0
