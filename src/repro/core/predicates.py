"""The forcing predicates of the protocol family, as inspectable functions.

Every communication-induced protocol in this library decides "take a
forced checkpoint before delivering m" by one predicate over (local
control state, piggyback).  Besides living inside the protocol classes,
the predicates are exposed here as standalone functions so that

* the test suite can verify the paper's generality claims *pointwise on
  reachable states* -- e.g. ``C1 or C2  implies  C_FDAS`` is checked at
  every arrival of every simulated run (section 5.2's argument), and
* users can study *why* a particular delivery forced a checkpoint.

Conventions: ``tdv`` is the local vector, ``m_tdv`` the piggybacked one;
boolean structures follow Figure 6's names.
"""

from __future__ import annotations

from typing import Sequence, Tuple

BoolMatrix = Tuple[Tuple[bool, ...], ...]


def new_dependency(tdv: Sequence[int], m_tdv: Sequence[int]) -> bool:
    """``exists k: m.TDV[k] > TDV[k]`` -- m brings a new dependency."""
    return any(mv > lv for mv, lv in zip(m_tdv, tdv))


def c1(
    tdv: Sequence[int],
    sent_to: Sequence[bool],
    m_tdv: Sequence[int],
    m_causal: BoolMatrix,
) -> bool:
    """Predicate C1 of the paper (section 4.1.1).

    "To the knowledge of P_i there is a non-causal message chain from
    some P_k to some P_j, breakable by P_i and without causal sibling":

        exists j: sent_to[j] and
        exists k: m.TDV[k] > TDV[k] and not m.causal[k][j]
    """
    new_deps = [k for k in range(len(tdv)) if m_tdv[k] > tdv[k]]
    if not new_deps:
        return False
    for j, sent in enumerate(sent_to):
        if not sent:
            continue
        for k in new_deps:
            if not m_causal[k][j]:
                return True
    return False


def c2(
    pid: int,
    tdv: Sequence[int],
    m_tdv: Sequence[int],
    m_simple: Sequence[bool],
) -> bool:
    """Predicate C2 of the paper (section 4.1.2).

    "A causal chain left my current interval and came back having crossed
    a checkpoint: a non-causal chain C(k,z) -> C(k,z-1) is breakable only
    by me":

        m.TDV[i] == TDV[i] and not m.simple[i]
    """
    return m_tdv[pid] == tdv[pid] and not m_simple[pid]


def c2_prime(pid: int, tdv: Sequence[int], m_tdv: Sequence[int]) -> bool:
    """Variant predicate C2' (section 5.1, suggested by Y.M. Wang).

    Replaces the ``simple`` test by "any new dependency":

        m.TDV[i] == TDV[i] and exists k: m.TDV[k] > TDV[k]
    """
    return m_tdv[pid] == tdv[pid] and new_dependency(tdv, m_tdv)


def c_fdas(
    after_first_send: bool, tdv: Sequence[int], m_tdv: Sequence[int]
) -> bool:
    """Wang's Fixed-Dependency-After-Send predicate (section 5.2)."""
    return after_first_send and new_dependency(tdv, m_tdv)


def c_fdi(
    had_communication: bool, tdv: Sequence[int], m_tdv: Sequence[int]
) -> bool:
    """Fixed-Dependency-Interval: the dependency vector may only change
    while the interval is still 'fresh' (no send or delivery yet)."""
    return had_communication and new_dependency(tdv, m_tdv)


def c_nras(after_first_send: bool) -> bool:
    """Russell's No-Receive-After-Send: any receive after a send forces."""
    return after_first_send


def c_cbr(had_any_event: bool) -> bool:
    """Checkpoint-Before-Receive: any receive into a non-fresh interval
    forces (each delivery starts its own interval)."""
    return had_any_event
