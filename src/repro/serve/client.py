"""Client libraries for the checkpointing service.

Two flavours over the same wire format:

* :class:`Client` -- a plain blocking socket client, one in-flight
  request at a time.  The right tool for scripts, the CLI ``repro
  client`` verb and tests.
* :class:`AsyncClient` -- an asyncio client with *pipelining*: requests
  are matched to replies by their ``seq`` field, so many can be in
  flight per connection.  This is what the load generator drives.

Both raise :class:`ReplyError` when the server answers ``ok: false``
(the reply's error code is on the exception, so callers can tell a
shed ``overloaded`` frame -- retryable -- from a real fault), and plain
:class:`ConnectionError` when the peer is gone.
"""

from __future__ import annotations

import asyncio
import socket
import time
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.serve import wire
from repro.types import ReproError

#: ``("tcp", host, port)`` or ``("unix", path)``.
Address = Union[Tuple[str, str, int], Tuple[str, str]]


class ReplyError(ReproError):
    """The server answered ``ok: false``; ``code`` is its error code."""

    def __init__(self, code: str, detail: str) -> None:
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail


class RequestTimeout(ReproError):
    """The server did not answer within the socket timeout.

    Retryable -- but only through :meth:`Client.reconnect` (or
    :meth:`Client.resume`): the request may be half-sent or its reply
    half-received, so the connection's framing can no longer be
    trusted.  The client invalidates the connection when raising this;
    calling again without reconnecting raises :class:`ConnectionError`.
    """


#: Error codes a sync :class:`Client` transparently retries: the frame
#: was *refused before being applied* (the owning shard is restarting,
#: or the session is mid-rebalance), so resending cannot double-apply.
RETRYABLE_CODES = frozenset({"shard_down"})


def parse_address(spec: Union[str, Address]) -> Address:
    """Parse ``"host:port"``, ``":port"``, ``"[v6]:port"`` or ``"unix:/path"``.

    Already-parsed tuples pass through, so every entrypoint can accept
    either form.  IPv6 hosts must be bracketed (``[::1]:7463``) --
    an unbracketed IPv6 literal is ambiguous with the port separator
    and is rejected with an explicit error instead of being mangled.
    """
    if isinstance(spec, tuple):
        if spec and spec[0] in ("tcp", "unix"):
            return spec  # type: ignore[return-value]
        raise ValueError(f"bad address tuple {spec!r}")
    if spec.startswith("unix:"):
        path = spec[len("unix:"):]
        if not path:
            raise ValueError("unix: address needs a path")
        return ("unix", path)
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"bad address {spec!r}; want host:port, [v6-host]:port "
            f"or unix:/path"
        )
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]
        if not host:
            raise ValueError(f"bad address {spec!r}; empty [] host")
    elif ":" in host:
        raise ValueError(
            f"ambiguous IPv6 address {spec!r}; bracket the host, "
            f"e.g. [{host}]:{port}"
        )
    return ("tcp", host or "127.0.0.1", int(port))


def _raise_if_error(reply: Dict[str, object]) -> Dict[str, object]:
    if not reply.get("ok", False):
        raise ReplyError(
            str(reply.get("error", "error")), str(reply.get("detail", ""))
        )
    return reply


class _Requests:
    """The request vocabulary, shared by the sync and async clients.

    Subclasses provide ``call(doc) -> reply`` (sync or async); this
    mixin only builds the frames, so the two clients can never drift
    apart on schema.
    """

    @staticmethod
    def _frame(kind: str, seq: int, **fields: object) -> Dict[str, object]:
        doc: Dict[str, object] = {"kind": kind, "seq": seq}
        for key, value in fields.items():
            if value is not None:
                doc[key] = value
        return doc


class Client(_Requests):
    """Blocking client: one request, one reply, in order.

    ``retries``/``retry_delay`` govern transparent retry of replies
    whose error code is in :data:`RETRYABLE_CODES` (``shard_down`` from
    a sharded deployment whose owning shard is restarting or whose
    session is mid-rebalance).  These frames were refused *before*
    application, so a resend cannot double-apply; a single-process
    server never emits them, so the knobs are inert there.
    """

    def __init__(
        self,
        address: Union[str, Address],
        timeout: Optional[float] = 10.0,
        *,
        retries: int = 8,
        retry_delay: float = 0.25,
    ) -> None:
        self.address = parse_address(address)
        self._timeout = timeout
        self._seq = 0
        self._buffer = wire.FrameBuffer()
        self._dead = False
        self.retries = retries
        self.retry_delay = retry_delay
        self._dial()

    def _dial(self) -> None:
        try:
            if self.address[0] == "unix":
                self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                self._sock.settimeout(self._timeout)
                self._sock.connect(self.address[1])
            else:
                self._sock = socket.create_connection(
                    (self.address[1], self.address[2]), timeout=self._timeout
                )
        except ConnectionError:
            raise
        except OSError as exc:
            # FileNotFoundError on a missing unix socket, EHOSTUNREACH...
            # -- normalise so callers handle exactly one exception type.
            raise ConnectionError(
                f"cannot connect to {self.address!r}: {exc}"
            ) from exc
        self._dead = False

    # ------------------------------------------------------------------
    # recovery-aware reconnect
    # ------------------------------------------------------------------
    def reconnect(
        self, retries: int = 20, delay: float = 0.25
    ) -> None:
        """Redial a server that went away (e.g. is restarting).

        Retries the dial up to ``retries`` times, ``delay`` seconds
        apart, because a crashed server replays its WAL *before*
        binding -- the socket appears only once recovery is complete.
        Raises the final :class:`ConnectionError` when it never comes
        back.  Any reply buffered from the old connection is dropped.
        """
        try:
            self._sock.close()
        except OSError:
            pass
        self._buffer = wire.FrameBuffer()
        last: Optional[ConnectionError] = None
        for attempt in range(max(1, retries)):
            if attempt:
                time.sleep(delay)
            try:
                self._dial()
                return
            except ConnectionError as exc:
                last = exc
        assert last is not None
        raise last

    def resume(self, session: str) -> Dict[str, object]:
        """Reconnect (if needed) and re-greet ``session``.

        Returns the hello reply; against a WAL-backed server it carries
        ``events`` (ingested frames recovered), ``wal_seq`` (the
        durable sequence the server's record reaches -- every frame the
        client saw acked is at or below it) and ``recovered`` (whether
        the session was rebuilt from the WAL after a crash), so a
        client knows exactly where to pick up.
        """
        try:
            return self.hello(session)
        except (ConnectionError, OSError):
            self.reconnect()
            return self.hello(session)

    # ------------------------------------------------------------------
    def call(self, doc: Dict[str, object]) -> Dict[str, object]:
        """Send one frame, wait for the matching reply (raw, may be ok=false).

        A socket timeout mid-call leaves the conversation desynced (the
        request may be half-sent, the reply half-received in
        ``self._buffer``), so the connection is *invalidated* -- the
        socket closed, the buffer dropped -- and a typed, retryable
        :class:`RequestTimeout` raised.  Calling again before
        :meth:`reconnect` raises :class:`ConnectionError` instead of
        mis-parsing from mid-frame.
        """
        if self._dead:
            raise ConnectionError(
                "connection invalidated after a timeout; reconnect() first"
            )
        try:
            wire.send_frame(self._sock, doc)
            while True:
                reply = wire.recv_frame(self._sock, self._buffer)
                if reply is None:
                    raise ConnectionError("server closed the connection")
                if reply.get("seq") == doc["seq"]:
                    return reply
        except socket.timeout as exc:
            self._invalidate()
            raise RequestTimeout(
                f"no reply within {self._timeout}s; connection invalidated, "
                f"reconnect() to retry"
            ) from exc

    def _invalidate(self) -> None:
        """Framing is no longer trustworthy: drop socket and buffer."""
        self._dead = True
        self._buffer = wire.FrameBuffer()
        try:
            self._sock.close()
        except OSError:
            pass

    def request(self, kind: str, **fields: object) -> Dict[str, object]:
        self._seq += 1
        doc = self._frame(kind, self._seq, **fields)
        attempt = 0
        while True:
            try:
                return _raise_if_error(self.call(doc))
            except ReplyError as exc:
                if exc.code not in RETRYABLE_CODES or attempt >= self.retries:
                    raise
                attempt += 1
                time.sleep(self.retry_delay)

    # -- the vocabulary -------------------------------------------------
    def hello(
        self,
        session: str,
        n: Optional[int] = None,
        protocol: Optional[str] = None,
    ) -> Dict[str, object]:
        return self.request("hello", session=session, n=n, protocol=protocol)

    def checkpoint(self, session: str, pid: int) -> Dict[str, object]:
        return self.request("checkpoint", session=session, pid=pid)

    def send(self, session: str, src: int, dst: int) -> Dict[str, object]:
        return self.request("send", session=session, src=src, dst=dst)

    def deliver(self, session: str, msg_id: int) -> Dict[str, object]:
        return self.request("deliver", session=session, msg_id=msg_id)

    def query(
        self,
        session: str,
        what: str,
        crashed: Optional[Sequence[int]] = None,
    ) -> Dict[str, object]:
        reply = self.request(
            "query",
            session=session,
            what=what,
            crashed=list(crashed) if crashed is not None else None,
        )
        return reply["result"]  # type: ignore[return-value]

    def snapshot(self, session: str) -> Dict[str, object]:
        return self.request("snapshot", session=session)

    def bye(self) -> None:
        self._seq += 1
        try:
            self.call(self._frame("bye", self._seq))
        except (ConnectionError, OSError):
            pass

    def close(self) -> None:
        try:
            self.bye()
        finally:
            self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<Client {self.address}>"


class AsyncClient(_Requests):
    """Pipelining asyncio client; create via :meth:`connect`."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._seq = 0
        self._pending: Dict[object, asyncio.Future] = {}
        self._reader_task = asyncio.ensure_future(self._read_replies())

    @classmethod
    async def connect(
        cls, address: Union[str, Address], timeout: float = 10.0
    ) -> "AsyncClient":
        addr = parse_address(address)
        try:
            if addr[0] == "unix":
                opening = asyncio.open_unix_connection(addr[1])
            else:
                opening = asyncio.open_connection(addr[1], addr[2])
            reader, writer = await asyncio.wait_for(opening, timeout=timeout)
        except ConnectionError:
            raise
        except (OSError, asyncio.TimeoutError) as exc:
            raise ConnectionError(
                f"cannot connect to {addr!r}: {exc}"
            ) from exc
        return cls(reader, writer)

    # ------------------------------------------------------------------
    async def _read_replies(self) -> None:
        error: BaseException = ConnectionError("server closed the connection")
        buffer = wire.FrameBuffer()
        try:
            while True:
                reply = buffer.next_doc()
                if reply is None:
                    data = await self._reader.read(65536)
                    if not data:
                        if buffer.pending():
                            error = wire.FrameError("closed mid-frame")
                        break
                    buffer.feed(data)
                    continue
                future = self._pending.pop(reply.get("seq"), None)
                if future is not None and not future.done():
                    future.set_result(reply)
        except (wire.FrameError, ConnectionError, OSError) as exc:
            error = exc
        except asyncio.CancelledError:
            error = ConnectionError("client closed")
        for future in self._pending.values():
            if not future.done():
                future.set_exception(error)
                # A caller that already gave up on the connection never
                # awaits these; read the exception back so their garbage
                # collection stays silent.  Awaiting them still raises.
                future.exception()
        self._pending.clear()

    def submit(self, kind: str, **fields: object) -> "asyncio.Future":
        """Fire one request without waiting; resolves to the raw reply.

        This is the pipelining primitive: N submits then N awaits keeps
        N frames in flight on one connection.
        """
        self._seq += 1
        seq = self._seq
        doc = self._frame(kind, seq, **fields)
        # get_running_loop, not the deprecated get_event_loop: submit is
        # only legal with the loop running (the reader task needs it),
        # and get_event_loop inside a running loop warns today and is
        # slated to raise on future CPython.
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[seq] = future
        try:
            self._writer.write(wire.encode_frame(doc))
        except Exception as exc:  # connection already torn down
            self._pending.pop(seq, None)
            if not future.done():
                future.set_exception(ConnectionError(str(exc)))
        return future

    async def flush(self) -> None:
        """Honour the transport's backpressure after a burst of submits."""
        await self._writer.drain()

    async def call(self, kind: str, **fields: object) -> Dict[str, object]:
        future = self.submit(kind, **fields)
        await self._writer.drain()
        return _raise_if_error(await future)

    # -- the vocabulary -------------------------------------------------
    async def hello(
        self,
        session: str,
        n: Optional[int] = None,
        protocol: Optional[str] = None,
    ) -> Dict[str, object]:
        return await self.call("hello", session=session, n=n, protocol=protocol)

    async def checkpoint(self, session: str, pid: int) -> Dict[str, object]:
        return await self.call("checkpoint", session=session, pid=pid)

    async def send(self, session: str, src: int, dst: int) -> Dict[str, object]:
        return await self.call("send", session=session, src=src, dst=dst)

    async def deliver(self, session: str, msg_id: int) -> Dict[str, object]:
        return await self.call("deliver", session=session, msg_id=msg_id)

    async def query(
        self,
        session: str,
        what: str,
        crashed: Optional[Sequence[int]] = None,
    ) -> Dict[str, object]:
        reply = await self.call(
            "query",
            session=session,
            what=what,
            crashed=list(crashed) if crashed is not None else None,
        )
        return reply["result"]  # type: ignore[return-value]

    async def snapshot(self, session: str) -> Dict[str, object]:
        return await self.call("snapshot", session=session)

    async def resume(self, session: str) -> Dict[str, object]:
        """Re-greet ``session``; see :meth:`Client.resume`.

        The async client cannot redial in place (its reader task owns
        the old transport) -- reconnect by creating a fresh client via
        :meth:`connect`, then ``resume`` to learn the recovered state.
        """
        return await self.hello(session)

    async def close(self) -> None:
        try:
            await self.call("bye")
        except (ReproError, ConnectionError, OSError):
            pass
        self._reader_task.cancel()
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def __repr__(self) -> str:
        return f"<AsyncClient pending={len(self._pending)}>"
