"""The wire protocol: length-prefixed canonical-JSON frames.

One frame is a 4-byte big-endian unsigned length followed by exactly
that many bytes of UTF-8 canonical JSON (:mod:`repro.obs.jsonio` --
sorted keys, no whitespace), so equal documents encode to equal bytes
in both directions and a recorded conversation is diffable.

Requests are objects with at least ``kind`` (one of :data:`KINDS`) and
a client-chosen ``seq`` echoed verbatim in the reply, which is what
makes pipelining safe: a client may write any number of frames before
reading, and match replies to requests by ``seq``.  Ingest replies
(``checkpoint``/``send``/``deliver``) always carry the protocol's
online decision -- ``force_checkpoint: bool`` plus the piggyback
payload -- so a client can run BHMR/FDAS as a sidecar without holding
any protocol state of its own.

The codec is sans-IO at its core (:class:`FrameBuffer` turns byte
chunks into documents) with thin adapters for asyncio streams
(:func:`read_frame` / :func:`write_frame`) and blocking sockets
(:func:`recv_frame` / :func:`send_frame`); client and server share it,
so neither can drift from the other.
"""

from __future__ import annotations

import json
import struct
from collections import deque
from typing import Dict, List, Optional

from repro.obs.jsonio import canonical_bytes

#: Request kinds understood by the server.
KINDS = (
    "hello",
    "checkpoint",
    "send",
    "deliver",
    "query",
    "snapshot",
    "ping",
    "bye",
)

#: Hard ceiling on one frame's payload size (1 MiB): a malformed or
#: hostile length prefix must not make the server allocate unbounded
#: memory.
MAX_FRAME = 1 << 20

_LEN = struct.Struct(">I")


class FrameError(Exception):
    """A frame violated the wire protocol (length, encoding or JSON)."""


def encode_frame(doc: object) -> bytes:
    """One document as its unique on-the-wire byte string."""
    payload = canonical_bytes(doc)
    if len(payload) > MAX_FRAME:
        raise FrameError(f"frame of {len(payload)} bytes exceeds {MAX_FRAME}")
    return _LEN.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> Dict[str, object]:
    """Decode one frame payload (the bytes *after* the length prefix)."""
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"undecodable frame payload: {exc}") from None
    if not isinstance(doc, dict):
        raise FrameError(f"frame payload must be an object, got {type(doc).__name__}")
    return doc


class FrameBuffer:
    """Sans-IO frame reassembly: feed byte chunks, pop documents.

    The buffer owns no socket and never blocks, which lets one
    implementation serve asyncio readers, blocking sockets and tests
    alike.  Completed documents queue inside the buffer (pipelined
    peers may complete several per chunk); :meth:`next_doc` hands them
    out in arrival order.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self._pos = 0  # consumed prefix of _buf (compacted per feed)
        self._docs: deque = deque()

    def feed(self, data: bytes) -> List[Dict[str, object]]:
        """Absorb ``data``; return every frame it completed, in order.

        The returned documents are *also* queued for :meth:`next_doc`;
        use one style or the other, not both.  When a later frame in the
        chunk raises :class:`FrameError`, every document completed
        *before* it is still queued for :meth:`next_doc` -- a pipelined
        peer's good replies must not vanish because a bad frame followed
        them in the same read.
        """
        # Compact once per chunk, not once per frame: a 64 KiB chunk of
        # small frames would otherwise memmove the tail per frame.
        if self._pos:
            del self._buf[: self._pos]
            self._pos = 0
        self._buf.extend(data)
        out: List[Dict[str, object]] = []
        try:
            while True:
                doc = self._pop()
                if doc is None:
                    return out
                out.append(doc)
        finally:
            # On both paths -- clean return and FrameError -- the frames
            # already completed reach the _docs queue exactly once.
            self._docs.extend(out)

    def next_doc(self) -> Optional[Dict[str, object]]:
        """The oldest queued document, or None if none is complete."""
        return self._docs.popleft() if self._docs else None

    def _pop(self) -> Optional[Dict[str, object]]:
        buf, pos = self._buf, self._pos
        if len(buf) - pos < _LEN.size:
            return None
        (length,) = _LEN.unpack_from(buf, pos)
        if length > MAX_FRAME:
            raise FrameError(f"frame length {length} exceeds {MAX_FRAME}")
        start = pos + _LEN.size
        if len(buf) - start < length:
            return None
        payload = bytes(buf[start : start + length])
        self._pos = start + length
        return decode_frame(payload)

    def pending(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buf) - self._pos


class RawFrameBuffer:
    """Sans-IO frame *splitting* without decoding: feed chunks, pop payloads.

    The shard router forwards frames between clients and shard
    processes verbatim; it needs frame boundaries (to route whole
    frames) but not a decoded document for every byte it moves.  This
    buffer yields each complete frame's raw payload bytes (the bytes
    after the length prefix, exactly as they arrived); callers decode
    only the payloads they actually need to inspect and re-frame with
    :func:`frame_prefix` when forwarding.

    Same compaction strategy and :data:`MAX_FRAME` policing as
    :class:`FrameBuffer`.
    """

    __slots__ = ("_buf", "_pos")

    def __init__(self) -> None:
        self._buf = bytearray()
        self._pos = 0

    def feed(self, data: bytes) -> None:
        if self._pos:
            del self._buf[: self._pos]
            self._pos = 0
        self._buf.extend(data)

    def next_payload(self) -> Optional[bytes]:
        """The next complete frame's payload bytes, or None."""
        buf, pos = self._buf, self._pos
        if len(buf) - pos < _LEN.size:
            return None
        (length,) = _LEN.unpack_from(buf, pos)
        if length > MAX_FRAME:
            raise FrameError(f"frame length {length} exceeds {MAX_FRAME}")
        start = pos + _LEN.size
        if len(buf) - start < length:
            return None
        payload = bytes(buf[start : start + length])
        self._pos = start + length
        return payload

    def pending(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buf) - self._pos


def frame_prefix(payload: bytes) -> bytes:
    """The 4-byte length prefix for one raw payload (the router's
    re-framing primitive: ``frame_prefix(p) + p`` is the wire frame)."""
    if len(payload) > MAX_FRAME:
        raise FrameError(f"frame of {len(payload)} bytes exceeds {MAX_FRAME}")
    return _LEN.pack(len(payload))


# ----------------------------------------------------------------------
# asyncio stream adapters
# ----------------------------------------------------------------------
async def read_frame(reader) -> Optional[Dict[str, object]]:
    """Read one frame from an ``asyncio.StreamReader``; None at EOF.

    EOF mid-frame (a peer that died between prefix and payload) raises
    :class:`FrameError` -- silence is only legal on a frame boundary.
    """
    import asyncio

    try:
        prefix = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("connection closed inside a frame prefix") from None
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME:
        raise FrameError(f"frame length {length} exceeds {MAX_FRAME}")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise FrameError("connection closed inside a frame payload") from None
    return decode_frame(payload)


async def write_frame(writer, doc: object) -> None:
    """Write one frame to an ``asyncio.StreamWriter`` and drain."""
    writer.write(encode_frame(doc))
    await writer.drain()


# ----------------------------------------------------------------------
# blocking socket adapters (the sync client)
# ----------------------------------------------------------------------
def send_frame(sock, doc: object) -> None:
    sock.sendall(encode_frame(doc))


def recv_frame(sock, buffer: FrameBuffer) -> Optional[Dict[str, object]]:
    """Read one frame from a blocking socket via ``buffer``; None at EOF."""
    while True:
        doc = buffer.next_doc()
        if doc is not None:
            return doc
        data = sock.recv(65536)
        if not data:
            if buffer.pending():
                raise FrameError("connection closed inside a frame")
            return None
        buffer.feed(data)


def error_reply(seq: object, code: str, detail: str) -> Dict[str, object]:
    """The uniform failure reply."""
    return {"ok": False, "seq": seq, "error": code, "detail": detail}
