"""Storage-over-time simulation: replaying a run against stable stores.

Walks a recorded history in time order, writing every checkpoint (and,
optionally, logging every sent message) to the per-process stable
stores, and periodically running the recovery-floor garbage collector.
The output is the storage footprint curve of the run -- the quantity an
operator provisions for -- under a chosen GC policy.

The interesting systems fact this surfaces (benchmarked in
``benchmarks/bench_storage.py``): a checkpointing protocol's value shows
up here twice.  More forced checkpoints cost more writes, but a faster-
advancing recovery floor reclaims more -- and the floor advances with
the *consistency* of recent checkpoints, which is what the protocols
buy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.events.event import EventKind
from repro.events.history import History
from repro.recovery.gc import global_recovery_floor
from repro.storage.store import StableStore
from repro.types import CheckpointId, ProcessId


@dataclass
class StorageReport:
    """Outcome of a storage timeline simulation."""

    samples: List[Tuple[float, int]]  # (time, total bytes on stable storage)
    peak_bytes: int
    final_bytes: int
    bytes_written: int
    bytes_reclaimed: int
    gc_runs: int
    stores: Dict[ProcessId, StableStore] = field(repr=False, default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"<StorageReport peak={self.peak_bytes} final={self.final_bytes} "
            f"written={self.bytes_written} reclaimed={self.bytes_reclaimed} "
            f"gc_runs={self.gc_runs}>"
        )


def simulate_storage(
    history: History,
    checkpoint_bytes: int = 4096,
    message_bytes: int = 64,
    log_messages: bool = True,
    gc_interval: Optional[float] = None,
) -> StorageReport:
    """Replay the run against stable stores under a GC policy.

    ``gc_interval=None`` disables garbage collection (storage grows
    monotonically); otherwise the floor-based collector runs every
    ``gc_interval`` simulated time units, discarding checkpoints
    strictly below the floor and log entries at or below it.
    """
    history = history.closed()
    n = history.num_processes
    stores = {pid: StableStore(pid) for pid in range(n)}
    send_intervals = {
        m.msg_id: history.send_interval(m) for m in history.messages.values()
    }
    samples: List[Tuple[float, int]] = []
    reclaimed = 0
    gc_runs = 0
    next_gc = gc_interval

    def total() -> int:
        return sum(store.usage_bytes() for store in stores.values())

    def run_gc(now: float) -> int:
        nonlocal gc_runs
        gc_runs += 1
        floor = global_recovery_floor(history, at_time=now)
        freed = 0
        for pid, store in stores.items():
            for index in store.checkpoint_indices():
                if index < floor.cut[pid]:
                    freed += store.discard_checkpoint(index)
            freed += store.discard_log_below(floor.cut[pid], send_intervals)
        return freed

    for ev in history.events_by_time():
        if next_gc is not None and ev.time > next_gc:
            reclaimed += run_gc(next_gc)
            samples.append((next_gc, total()))
            assert gc_interval is not None
            next_gc += gc_interval
        if ev.kind is EventKind.CHECKPOINT:
            assert ev.checkpoint_index is not None
            stores[ev.pid].write_checkpoint(
                CheckpointId(ev.pid, ev.checkpoint_index), checkpoint_bytes, ev.time
            )
            samples.append((ev.time, total()))
        elif ev.kind is EventKind.SEND and log_messages:
            assert ev.msg_id is not None
            stores[ev.pid].log_message(ev.msg_id, message_bytes, ev.time)
            samples.append((ev.time, total()))

    return StorageReport(
        samples=samples,
        peak_bytes=max((bytes_ for _, bytes_ in samples), default=0),
        final_bytes=total(),
        bytes_written=sum(store.bytes_written for store in stores.values()),
        bytes_reclaimed=reclaimed,
        gc_runs=gc_runs,
        stores=stores,
    )
