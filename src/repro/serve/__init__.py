"""``repro.serve``: the online checkpointing service.

Everything the repo can compute offline over a finished trace -- the
CIC forcing predicates, incremental R-graph closure, Z-cycle and
useless-checkpoint detection, online recovery lines -- is exposed here
as a long-running daemon that external processes talk to over a small
length-prefixed JSON wire protocol.  A *session* is one distributed
computation of ``n`` processes: the server runs the chosen protocol as
a sidecar (every ingest reply carries the ``force_checkpoint`` decision
plus the piggyback payload) and answers analysis queries incrementally,
in O(update) rather than O(replay).

Layers
------
* :mod:`repro.serve.wire` -- the frame codec and request/reply schema;
* :mod:`repro.serve.session` -- one session's live state + ingest log;
* :mod:`repro.serve.server` -- the asyncio daemon (sharded workers,
  backpressure, idle eviction, graceful drain);
* :mod:`repro.serve.snapshots` -- session snapshot/restore store;
* :mod:`repro.serve.wal` -- the durable ingest WAL (hash-chained
  append-only segments, fsync-batched group commit, crash recovery);
* :mod:`repro.serve.shardmap` -- deterministic consistent-hash session
  ownership for multi-process deployments;
* :mod:`repro.serve.router` -- N shard processes behind one asyncio
  router (per-shard WAL/snapshots, ``shard_down`` degradation,
  snapshot-verified rebalance);
* :mod:`repro.serve.client` -- sync and async client libraries
  (per-request deadlines, seeded retry backoff, circuit breaking);
* :mod:`repro.serve.loadgen` -- workload replay through N connections;
* :mod:`repro.serve.chaosproxy` -- seeded wire-level fault injection
  (latency/jitter, throttling, fragmentation, resets, stalls,
  truncation) for the chaos suites.

The blessed entrypoints are :func:`repro.api.serve` and
:func:`repro.api.connect`; the CLI verbs are ``repro serve``,
``repro client`` and ``repro loadgen``.
"""

from repro.serve.chaosproxy import ChaosConfig, ChaosProxy, ChaosSchedule
from repro.serve.client import (
    AsyncClient,
    CircuitOpen,
    Client,
    ReplyError,
    RequestTimeout,
    parse_address,
)
from repro.serve.loadgen import LoadReport, run_load
from repro.serve.router import Router, RouterConfig
from repro.serve.server import CheckpointServer, ServerConfig, ServerHandle
from repro.serve.session import ServeSession, offline_answers
from repro.serve.shardmap import ShardMap
from repro.serve.snapshots import SnapshotStore
from repro.serve.wal import (
    IngestWal,
    WalCommitter,
    WalCorruption,
    WalError,
    WalRecord,
    read_wal,
    recover_sessions,
)
from repro.serve.wire import (
    MAX_FRAME,
    FrameBuffer,
    FrameError,
    decode_frame,
    encode_frame,
    read_frame,
    write_frame,
)

__all__ = [
    "AsyncClient",
    "ChaosConfig",
    "ChaosProxy",
    "ChaosSchedule",
    "CheckpointServer",
    "CircuitOpen",
    "Client",
    "FrameBuffer",
    "FrameError",
    "ReplyError",
    "RequestTimeout",
    "IngestWal",
    "LoadReport",
    "MAX_FRAME",
    "Router",
    "RouterConfig",
    "ServeSession",
    "ServerConfig",
    "ServerHandle",
    "ShardMap",
    "SnapshotStore",
    "WalCommitter",
    "WalCorruption",
    "WalError",
    "WalRecord",
    "decode_frame",
    "encode_frame",
    "offline_answers",
    "parse_address",
    "read_frame",
    "read_wal",
    "recover_sessions",
    "run_load",
    "write_frame",
]
