"""Vector clocks and the happened-before relation of a history.

The offline :class:`Causality` object is the library's ground-truth
oracle for Lamport's happened-before relation: every event is stamped
with a vector clock in one pass, after which precedence queries are O(1).
All higher layers (causal message chains, trackability checking,
reference TDVs) are validated against it in the test suite.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.events.event import Event, EventKind
from repro.events.history import History


class VectorClock:
    """A mutable vector clock over ``n`` processes."""

    __slots__ = ("_v",)

    def __init__(self, n: int, values=None) -> None:
        self._v: List[int] = list(values) if values is not None else [0] * n

    @property
    def values(self) -> Tuple[int, ...]:
        return tuple(self._v)

    def copy(self) -> "VectorClock":
        return VectorClock(len(self._v), self._v)

    def increment(self, pid: int) -> None:
        self._v[pid] += 1

    def merge(self, other: "VectorClock") -> None:
        """Component-wise maximum, in place."""
        for k, val in enumerate(other._v):
            if val > self._v[k]:
                self._v[k] = val

    def __getitem__(self, pid: int) -> int:
        return self._v[pid]

    def __len__(self) -> int:
        return len(self._v)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VectorClock) and self._v == other._v

    def __le__(self, other: "VectorClock") -> bool:
        return all(a <= b for a, b in zip(self._v, other._v))

    def __lt__(self, other: "VectorClock") -> bool:
        return self <= other and self._v != other._v

    def concurrent_with(self, other: "VectorClock") -> bool:
        return not self <= other and not other <= self

    def __hash__(self) -> int:
        return hash(tuple(self._v))

    def __repr__(self) -> str:
        return f"VC{tuple(self._v)}"


def vector_timestamps(history: History) -> Dict[Tuple[int, int], VectorClock]:
    """Vector clock of every event, keyed by ``(pid, seq)``.

    Uses the standard rules: every event increments its own component;
    a delivery additionally merges the clock piggybacked at the send.
    """
    n = history.num_processes
    clocks = [VectorClock(n) for _ in range(n)]
    send_vc: Dict[int, VectorClock] = {}
    stamps: Dict[Tuple[int, int], VectorClock] = {}
    for ev in history.events_by_time():
        clock = clocks[ev.pid]
        if ev.kind is EventKind.DELIVER:
            assert ev.msg_id is not None
            clock.merge(send_vc[ev.msg_id])
        clock.increment(ev.pid)
        stamps[ev.ref] = clock.copy()
        if ev.kind is EventKind.SEND:
            assert ev.msg_id is not None
            send_vc[ev.msg_id] = clock.copy()
    return stamps


class Causality:
    """Happened-before oracle for one history.

    ``precedes(a, b)`` decides Lamport's ``a -> b`` in O(1) after the
    one-pass vector-clock computation.
    """

    def __init__(self, history: History) -> None:
        self._history = history
        self._stamps = vector_timestamps(history)

    def clock(self, event: Event) -> VectorClock:
        return self._stamps[event.ref]

    def precedes(self, a: Event, b: Event) -> bool:
        """True iff ``a`` happened-before ``b`` (strictly)."""
        if a.ref == b.ref:
            return False
        va, vb = self._stamps[a.ref], self._stamps[b.ref]
        # a -> b iff a's own component is dominated in b's clock.
        return va[a.pid] <= vb[a.pid] and (a.pid != b.pid or a.seq < b.seq) and va <= vb

    def concurrent(self, a: Event, b: Event) -> bool:
        return a.ref != b.ref and not self.precedes(a, b) and not self.precedes(b, a)

    def checkpoint_precedes(self, cid_a, cid_b) -> bool:
        """Causal precedence between checkpoints ``C_a -> C_b``.

        Checkpoint events are ordinary events; ``C_a -> C_b`` holds iff the
        checkpoint event of ``C_a`` happened-before that of ``C_b``.
        """
        ev_a = self._history.checkpoint_event(cid_a)
        ev_b = self._history.checkpoint_event(cid_b)
        return self.precedes(ev_a, ev_b)
