"""The online recovery manager, and the safety of sender-log GC.

Three clusters:

* ``TestOnlineLine`` -- the manager's online recovery line (live
  incremental R-graph) equals the offline fixpoint for hand-built
  patterns, simulated runs, and every crash-subset shape (partial maps,
  ``at_time`` bounds, processes sitting exactly on their last
  checkpoint).
* ``TestUnsafeOldRule`` -- the regression suite for the GC bugfix: the
  old sender-side-only rule demonstrably reclaims a message that a later
  recovery line needs replayed; the both-sides rule keeps it.
* ``TestOnlineGC`` -- the live garbage collector never drops anything a
  later ``crash()`` asks for.
"""

import itertools

import pytest

from repro.events.builder import PatternBuilder, figure1_pattern
from repro.recovery import (
    CrashSpec,
    RecoveryManager,
    build_sender_logs,
    collect_garbage,
    global_recovery_floor,
    recovery_line,
    recovery_line_rgraph,
    replay_plan,
)
from repro.sim import Simulation, SimulationConfig
from repro.types import PatternError, RecoveryError
from repro.workloads import RandomUniformWorkload


def simulated_history(protocol="bhmr", n=3, seed=0, duration=40.0):
    sim = Simulation(
        RandomUniformWorkload(send_rate=2.0),
        SimulationConfig(n=n, duration=duration, seed=seed, basic_rate=0.4),
    )
    return sim.run(protocol).history


def crash_subsets(n):
    """All non-empty crash subsets of ``range(n)``."""
    out = []
    for r in range(1, n + 1):
        out.extend(itertools.combinations(range(n), r))
    return out


class TestOnlineLine:
    def test_figure1_matches_offline_for_every_subset(self):
        h = figure1_pattern()
        manager = RecoveryManager.from_history(h)
        for crashed in crash_subsets(3):
            online = manager.online_recovery_line(list(crashed))
            offline = recovery_line(h, {p: CrashSpec(p) for p in crashed})
            assert online == offline.cut, f"crashed={crashed}"

    def test_simulated_runs_match_offline(self):
        for protocol, seed in [("bhmr", 0), ("fdas", 1), ("independent", 2)]:
            h = simulated_history(protocol=protocol, seed=seed)
            manager = RecoveryManager.from_history(h)
            for crashed in crash_subsets(3):
                online = manager.online_recovery_line(list(crashed))
                offline = recovery_line(h, {p: CrashSpec(p) for p in crashed})
                assert online == offline.cut, (protocol, seed, crashed)

    def test_crash_result_carries_plan_and_depth(self):
        h = simulated_history(protocol="independent", seed=3)
        manager = RecoveryManager.from_history(h)
        online = manager.crash([0], t=40.0)
        offline = recovery_line(h, {0: CrashSpec(0)})
        assert online.cut == offline.cut
        assert online.to_replay == sorted(
            m.msg_id for m in offline.messages_to_replay
        )
        assert online.events_undone >= 0
        assert all(d >= 0 for d in online.rollback_depth.values())
        assert online.max_depth == max(online.rollback_depth.values())

    def test_open_event_and_checkpoint_bookkeeping(self):
        b = PatternBuilder(2)
        m = b.send(0, 1)
        b.checkpoint(0)
        b.deliver(m)
        manager = RecoveryManager.from_history(b.build(close=True))
        assert manager.last_taken(0) == 1
        assert manager.last_taken(1) == 0
        assert manager.open_events(0) == 0
        assert manager.open_events(1) == 1

    def test_crash_missing_log_message_raises(self):
        b = PatternBuilder(2)
        m = b.send(0, 1)
        b.checkpoint(0)
        b.deliver(m)
        manager = RecoveryManager.from_history(b.build(close=True))
        del manager.logs[0]._messages[m]
        with pytest.raises(RecoveryError):
            manager.crash([1])

    def test_rollback_then_refeed_restores_state(self):
        """After rollback, re-feeding the undone events (piecewise
        determinism) brings the manager back to the pre-crash answer."""
        h = simulated_history(protocol="independent", seed=5)
        manager = RecoveryManager.from_history(h)
        before = manager.online_recovery_line([0])
        online = manager.crash([0], t=40.0)
        manager.rollback(online.cut)
        from repro.events.event import CheckpointKind

        for event in h.events_by_time():
            if event.is_checkpoint:
                if (
                    event.checkpoint_index == 0
                    or event.checkpoint_kind is CheckpointKind.FINAL
                ):
                    continue
                if event.checkpoint_index <= manager.last_taken(event.pid):
                    continue
                manager.on_checkpoint(event.pid, event.checkpoint_index, event.time)
            elif event.is_send:
                if event.msg_id in manager._records:
                    continue
                manager.on_send(h.message(event.msg_id), event.time)
            elif event.is_deliver:
                if manager._records[event.msg_id].deliver_interval is not None:
                    continue
                manager.on_deliver(h.message(event.msg_id), event.time)
        assert manager.online_recovery_line([0]) == before


class TestRGraphLinePinning:
    """Satellite pins for ``recovery_line_rgraph`` edge shapes."""

    def test_bound_is_last_checkpoint_no_spurious_constraint(self):
        # P0's bound equals its last taken checkpoint; the node above it
        # is the FINAL frontier only when P0 has open events.  A process
        # with *no* events after its last checkpoint must contribute no
        # rollback source at all.
        b = PatternBuilder(2)
        m = b.send(0, 1)
        b.checkpoint(0)
        b.deliver(m)
        h = b.build(close=True)
        crashes = {0: CrashSpec(0)}
        fix = recovery_line(h, crashes)
        assert fix.cut == {0: 1, 1: 1}  # nobody rolls back
        assert recovery_line_rgraph(h, crashes) == fix.cut

    def test_partial_crash_maps_with_at_time(self):
        h = simulated_history(protocol="fdas", seed=7)
        for t in (10.0, 20.0, 30.0):
            for crashed in [(0,), (1,), (0, 2)]:
                crashes = {p: CrashSpec(p, at_time=t) for p in crashed}
                fix = recovery_line(h, crashes)
                assert recovery_line_rgraph(h, crashes) == fix.cut, (t, crashed)

    def test_at_time_bounds_respected(self):
        h = simulated_history(protocol="bhmr", seed=9)
        crashes = {1: CrashSpec(1, at_time=15.0)}
        fix = recovery_line(h, crashes)
        assert fix.cut[1] <= crashes[1].restart_checkpoint(h.closed()).index


class TestEarlyFloor:
    """Satellite: the recovery floor is defined at every instant."""

    def test_floor_before_any_checkpoint_is_initial(self):
        b = PatternBuilder(3)
        b.transmit(0, 1)
        b.checkpoint(1)
        h = b.build(close=True)
        # Builder times are logical counters >= 1: t=0.5 precedes every
        # post-initial checkpoint, so all restart bounds fall back to 0.
        floor = global_recovery_floor(h, at_time=0.5)
        assert floor.cut == {0: 0, 1: 0, 2: 0}

    def test_floor_defined_at_every_time_of_simulated_run(self):
        h = simulated_history(seed=11)
        for t in (0.0, 0.5, 1.0, 5.0, 40.0):
            floor = global_recovery_floor(h, at_time=t)
            assert all(v >= 0 for v in floor.cut.values())

    def test_strict_crashspec_still_rejects_early_crash(self):
        b = PatternBuilder(2)
        b.transmit(0, 1)
        h = b.build(close=True)
        with pytest.raises(PatternError):
            CrashSpec(0, at_time=0.0).restart_checkpoint(h)


def unsafe_pattern():
    """The witness pattern for the old GC rule's unsoundness.

    P0 sends ``m`` in I(0,1) and then checkpoints C(0,1); P1 delivers
    ``m`` and never checkpoints again.  The total-failure floor is
    ``{0: 1, 1: 0}``: ``m`` is sent at the floor but delivered above it
    -- it *crosses*, and any later crash of P1 still needs it replayed.
    """
    b = PatternBuilder(2)
    m = b.send(0, 1)
    b.checkpoint(0)
    b.deliver(m)
    return b.build(close=True), m


class TestUnsafeOldRule:
    def test_floor_and_crossing_shape(self):
        h, m = unsafe_pattern()
        floor = global_recovery_floor(h)
        assert floor.cut == {0: 1, 1: 0}
        assert [x.msg_id for x in floor.messages_to_replay] == [m]

    def test_old_rule_drops_a_message_a_later_line_needs(self):
        """The regression: sender-side-only GC reclaims ``m``, then a
        crash of P1 asks for exactly ``m`` -- an unservable replay."""
        h, m = unsafe_pattern()
        logs = build_sender_logs(h)
        floor = global_recovery_floor(h)
        # The pre-fix rule: drop on send_interval <= floor[src] alone.
        old_rule_dead = [
            mid
            for mid, msg in logs[0]._messages.items()
            if h.send_interval(msg) <= floor.cut[0]
        ]
        assert old_rule_dead == [m]  # the old rule WOULD reclaim m ...
        line = recovery_line(h, {1: CrashSpec(1)})
        needed = [x.msg_id for x in replay_plan(h, line.cut).messages()]
        assert m in needed  # ... which this later line must replay.

    def test_new_rule_keeps_the_crossing_message(self):
        h, m = unsafe_pattern()
        logs = build_sender_logs(h)
        report = collect_garbage(h, logs=logs)
        assert report.reclaimed_log_messages == 0
        assert logs[0].lookup(m).msg_id == m
        # The later crash's whole plan is servable from the logs.
        line = recovery_line(h, {1: CrashSpec(1)})
        for msg in replay_plan(h, line.cut).messages():
            assert logs[msg.src].lookup(msg.msg_id).msg_id == msg.msg_id

    def test_undelivered_below_floor_is_kept(self):
        b = PatternBuilder(2)
        m = b.send(0, 1)  # never delivered: permanently in transit
        b.checkpoint(0)
        b.checkpoint(1)
        h = b.build(close=True)
        logs = build_sender_logs(h)
        collect_garbage(h, logs=logs)
        assert logs[0].lookup(m).msg_id == m


class TestOnlineGC:
    def test_online_gc_matches_offline_rule(self):
        h = simulated_history(protocol="fdas", seed=13)
        manager = RecoveryManager.from_history(h)
        gc = manager.collect_garbage()
        offline_floor = global_recovery_floor(h)
        assert gc.floor == offline_floor.cut
        logs = build_sender_logs(h)
        report = collect_garbage(h, logs=logs)
        assert gc.reclaimed_log_messages == report.reclaimed_log_messages
        for pid in range(3):
            assert set(manager.logs[pid]._messages) == set(logs[pid]._messages)

    def test_dropped_never_needed_by_any_later_crash(self):
        h = simulated_history(protocol="independent", seed=17)
        manager = RecoveryManager.from_history(h)
        gc = manager.collect_garbage()
        for crashed in crash_subsets(3):
            online = manager.crash(list(crashed), t=40.0)  # raises if unservable
            assert not set(online.to_replay) & set(gc.dropped)

    def test_gc_is_idempotent(self):
        h = simulated_history(seed=19)
        manager = RecoveryManager.from_history(h)
        first = manager.collect_garbage()
        second = manager.collect_garbage()
        assert second.reclaimed_log_messages == 0
        assert second.floor == first.floor
