"""Unit tests for the generic digraph closure (SCCs, bitset reachability)."""

import random

from repro.graph.reachability import DenseDigraph, reachable_from


def brute_force_reach(n, edges, u):
    adj = {}
    for a, b in edges:
        adj.setdefault(a, set()).add(b)
    return reachable_from(adj, u)


class TestDenseDigraph:
    def test_edges_and_counts(self):
        g = DenseDigraph(3)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        assert g.num_edges() == 2
        assert list(g.edges()) == [(0, 1), (1, 2)]
        assert g.successors(0) == {1}
        assert g.predecessors(2) == {1}

    def test_duplicate_edges_collapse(self):
        g = DenseDigraph(2)
        g.add_edge(0, 1)
        g.add_edge(0, 1)
        assert g.num_edges() == 1


class TestSCC:
    def test_dag_has_singleton_sccs(self):
        g = DenseDigraph(4)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        sccs = g.tarjan_scc()
        assert sorted(len(c) for c in sccs) == [1, 1, 1, 1]

    def test_cycle_is_one_scc(self):
        g = DenseDigraph(3)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 0)
        sccs = g.tarjan_scc()
        assert sorted(len(c) for c in sccs) == [3]

    def test_reverse_topological_emission(self):
        # 0 -> 1 -> 2: component of 2 must be emitted before 1's, etc.
        g = DenseDigraph(3)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        order = [c[0] for c in g.tarjan_scc()]
        assert order.index(2) < order.index(1) < order.index(0)


class TestClosure:
    def test_chain_reachability(self):
        g = DenseDigraph(4)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        closure = g.transitive_closure()
        assert closure.reaches(0, 2)
        assert not closure.reaches(2, 0)
        assert not closure.reaches(0, 3)
        assert closure.reachable_set(0) == {1, 2}

    def test_self_reach_requires_cycle(self):
        g = DenseDigraph(3)
        g.add_edge(0, 1)
        g.add_edge(1, 0)
        g.add_edge(1, 2)
        closure = g.transitive_closure()
        assert closure.reaches(0, 0) and closure.on_cycle(1)
        assert not closure.on_cycle(2)
        assert closure.reaches_or_equal(2, 2)

    def test_self_loop(self):
        g = DenseDigraph(2)
        g.add_edge(0, 0)
        closure = g.transitive_closure()
        assert closure.on_cycle(0)
        assert not closure.on_cycle(1)
        assert closure.cyclic_components() == [[0]]

    def test_cyclic_components_reported_sorted(self):
        g = DenseDigraph(5)
        g.add_edge(3, 4)
        g.add_edge(4, 3)
        closure = g.transitive_closure()
        assert closure.cyclic_components() == [[3, 4]]

    def test_randomised_against_bfs(self):
        rng = random.Random(42)
        for trial in range(25):
            n = rng.randrange(2, 15)
            edges = set()
            for _ in range(rng.randrange(0, 3 * n)):
                edges.add((rng.randrange(n), rng.randrange(n)))
            g = DenseDigraph(n)
            for a, b in edges:
                g.add_edge(a, b)
            closure = g.transitive_closure()
            for u in range(n):
                expect = brute_force_reach(n, edges, u)
                assert closure.reachable_set(u) == expect, (trial, u, edges)
