"""Session snapshot/restore: how idle sessions leave and re-enter RAM.

A snapshot is one canonical-JSON document: the session's identity, its
recorded ingest log, and an integrity digest of the live
:meth:`RecoveryManager.state() <repro.recovery.manager.RecoveryManager.state>`
at snapshot time.  Restore replays the log through a fresh session --
the ingest stream is the source of truth, and replay is deterministic
by construction -- then recomputes the digest and refuses to resume a
session whose rebuilt state does not match bit for bit.  That check is
what turns "replay should be deterministic" from a hope into an
enforced invariant at every eviction/restore cycle.

The store itself is either in-memory (the default: eviction frees the
live closure bitsets, protocol matrices and sender logs, keeping only
the compact log) or directory-backed (one ``<session>.json`` per
snapshot), so a server can survive a restart with its sessions intact.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Dict, List, Optional, TYPE_CHECKING, Union

from repro.obs.jsonio import canonical_bytes, canonical_dumps
from repro.serve.session import ServeSession
from repro.types import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer


def state_digest(session: ServeSession) -> str:
    """SHA-256 over the canonical manager state (the replay invariant)."""
    return hashlib.sha256(canonical_bytes(session.manager.state())).hexdigest()


def snapshot_doc(session: ServeSession, wal_seq: int = -1) -> Dict[str, object]:
    """The session as one canonical-JSON-safe snapshot document.

    ``wal_seq`` is the ingest-WAL watermark the snapshot covers: every
    WAL record of this session with seq at or below it is contained in
    ``log``, so segments whose records are all covered by such
    watermarks are reclaimable (see ``IngestWal.truncate_covered``).
    ``-1`` means "no WAL" (or nothing of this session logged yet).
    """
    return {
        "version": 2,
        "session": session.session_id,
        "n": session.n,
        "protocol": session.protocol_name,
        "events": len(session.ingest_log),
        "log": [dict(op) for op in session.ingest_log],
        "wal_seq": wal_seq,
        "digest": state_digest(session),
    }


def restore_session(
    doc: Dict[str, object],
    tracer: Optional["Tracer"] = None,
    metrics: Optional["MetricsRegistry"] = None,
) -> ServeSession:
    """Rebuild a live session from a snapshot document.

    Raises :class:`SimulationError` if the replayed state's digest does
    not match the snapshot's (a nondeterminism bug upstream, or a
    corrupted snapshot) -- resuming silently from diverged state is the
    one failure mode this layer must never allow.
    """
    session = ServeSession.replay_log(
        str(doc["session"]),
        int(doc["n"]),  # type: ignore[arg-type]
        str(doc["protocol"]),
        doc["log"],  # type: ignore[arg-type]
        tracer=tracer,
        metrics=metrics,
    )
    rebuilt = state_digest(session)
    if rebuilt != doc["digest"]:
        raise SimulationError(
            f"snapshot of session {doc['session']!r} failed integrity check: "
            f"replayed digest {rebuilt[:12]} != stored {str(doc['digest'])[:12]}"
        )
    return session


class SnapshotStore:
    """Keyed snapshot storage, in-memory or directory-backed."""

    def __init__(self, directory: Union[str, Path, None] = None) -> None:
        self._directory = Path(directory) if directory is not None else None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
            # A crash mid-save can leave a *.json.tmp behind; the real
            # snapshot (if any) is intact, so stale temps are garbage.
            for stale in self._directory.glob("*.json.tmp"):
                stale.unlink()
        self._docs: Dict[str, Dict[str, object]] = {}

    def _path(self, session_id: str) -> Path:
        assert self._directory is not None
        safe = "".join(
            c if c.isalnum() or c in "-_." else "_" for c in session_id
        )
        return self._directory / f"{safe}.json"

    def save(
        self, session: ServeSession, wal_seq: int = -1
    ) -> Dict[str, object]:
        doc = snapshot_doc(session, wal_seq=wal_seq)
        if self._directory is not None:
            self._write_atomic(self._path(session.session_id), doc)
        else:
            self._docs[session.session_id] = doc
        return doc

    @staticmethod
    def _write_atomic(path: Path, doc: Dict[str, object]) -> None:
        """Write-then-rename so a crash never leaves a torn snapshot.

        A ``kill -9`` between any two syscalls here leaves either the
        previous snapshot intact or the new one complete -- never a
        partially-written file that would halt recovery.  The payload
        is fsynced before the rename and the directory entry after it,
        so the rename itself is durable too.

        Deliberate trade-off: these fsyncs run synchronously on the
        caller's thread, which on the server is the event loop (the
        snapshot path is sync end to end, so the async-blocking lint
        rule does not see it -- see ``tools/lint_determinism.py``).
        Unlike the per-frame WAL fsync, which the group committer
        routes through an executor, snapshots are rare (idle eviction,
        explicit ``snapshot`` frames, shutdown) and the durability
        ordering requires the write to complete before the eviction or
        ack proceeds; stalling the loop for one bounded barrier is the
        simple, correct choice until profiling says otherwise.
        """
        import os

        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as f:
            f.write(canonical_dumps(doc))
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    def put(self, session_id: str, doc: Dict[str, object]) -> None:
        """Store an already-built snapshot document verbatim.

        The re-home path of a sharded deployment moves snapshot
        documents between per-shard stores without a live session in
        hand; integrity still holds because :func:`restore_session`
        verifies the digest on the way back in.
        """
        if self._directory is not None:
            self._write_atomic(self._path(session_id), doc)
        else:
            self._docs[session_id] = doc

    def load(self, session_id: str) -> Optional[Dict[str, object]]:
        if self._directory is not None:
            path = self._path(session_id)
            if not path.exists():
                return None
            import json

            return json.loads(path.read_text(encoding="utf-8"))
        return self._docs.get(session_id)

    def pop(self, session_id: str) -> Optional[Dict[str, object]]:
        """Load and forget (a restored session owns its state again)."""
        doc = self.load(session_id)
        if doc is not None:
            self.discard(session_id)
        return doc

    def discard(self, session_id: str) -> None:
        if self._directory is not None:
            path = self._path(session_id)
            if path.exists():
                path.unlink()
        else:
            self._docs.pop(session_id, None)

    def known(self) -> List[str]:
        if self._directory is not None:
            import json

            return sorted(
                str(json.loads(p.read_text(encoding="utf-8"))["session"])
                for p in self._directory.glob("*.json")
            )
        return sorted(self._docs)

    def __contains__(self, session_id: str) -> bool:
        return self.load(session_id) is not None

    def __repr__(self) -> str:
        where = self._directory or "memory"
        return f"<SnapshotStore {where} sessions={len(self.known())}>"
