"""Experiment harness: comparisons, sweeps, parallel runs and tables."""

from repro.harness.experiment import (
    ComparisonResult,
    ProtocolAggregate,
    compare_protocols,
)
from repro.harness.runner import (
    ResultCache,
    RunnerStats,
    SweepCell,
    cell_key,
    derive_cell_seeds,
    run_sweep,
)
from repro.harness.sweep import SweepResult, ratio_sweep
from repro.harness.tables import (
    render_ascii_plot,
    render_runner_stats,
    render_series,
    render_table,
)

__all__ = [
    "ComparisonResult",
    "ProtocolAggregate",
    "ResultCache",
    "RunnerStats",
    "SweepCell",
    "SweepResult",
    "cell_key",
    "compare_protocols",
    "derive_cell_seeds",
    "ratio_sweep",
    "render_ascii_plot",
    "render_runner_stats",
    "render_series",
    "render_table",
    "run_sweep",
]
