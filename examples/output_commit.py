"""Output commit: when is it safe to release output to the outside world?

    python examples/output_commit.py

A message to the *environment* (printing to an operator, firing a
missile, answering a client) cannot be rolled back.  Before releasing
such an output, the system must guarantee that no future failure will
undo the state that produced it -- i.e. the global recovery floor (the
total-failure recovery line, which future lines never cross) must have
advanced past the output's causal past.

Under the BHMR protocol the causal past of an output is exactly the
dependency vector of its process at that moment (Corollary 4.5's
minimum consistent global checkpoint), so the commit test is a simple
componentwise comparison -- no graph computation at commit time.  This
example measures, for sampled output points, the *commit latency*: how
long after the output was produced the floor catches up.
"""

from repro import api
from repro.clocks import event_tdvs
from repro.harness import render_table
from repro.recovery import global_recovery_floor


def main() -> None:
    result = api.run(
        workload="random",
        workload_args={"send_rate": 2.0},
        protocol="bhmr",
        n=3,
        duration=60.0,
        seed=8,
        basic_rate=0.5,
    )
    history = result.history
    tdvs = event_tdvs(history)

    # Sample some send events as "outputs to the environment".
    outputs = [
        ev
        for pid in range(3)
        for ev in history.events(pid)
        if ev.is_send
    ][5::20]

    rows = []
    for out_ev in outputs:
        need = tdvs[out_ev.ref]  # the output's causal past, per process
        commit_time = None
        for t in [out_ev.time + dt for dt in (0.0, 2.0, 5.0, 10.0, 20.0, 40.0)]:
            floor = global_recovery_floor(history, at_time=t)
            if all(floor.cut[p] >= need[p] for p in range(3)):
                commit_time = t
                break
        rows.append(
            {
                "output": repr(out_ev),
                "causal past": str(tuple(need)),
                "commit latency": "never (run ended)"
                if commit_time is None
                else f"{commit_time - out_ev.time:.1f}",
            }
        )
    print(render_table(rows, title="Output commit latencies (BHMR run)"))
    print(
        "\nThe commit test compares the output's dependency vector (free, "
        "Corollary 4.5) against the advancing recovery floor; once the "
        "floor dominates it, no failure can ever roll the output's "
        "causal past back."
    )


if __name__ == "__main__":
    main()
