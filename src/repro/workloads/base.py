"""Workload interface: application behaviours driving the simulation.

A workload is the *application* whose communication pattern the
checkpointing protocols instrument.  Workloads are actor-style: they
react to timers and deliveries by sending messages and arming new
timers, through the :class:`WorkloadContext` handed to every hook.

Workloads are protocol-agnostic by construction -- they run during trace
generation, before any protocol is involved (see
:mod:`repro.sim.trace`).
"""

from __future__ import annotations

import abc
import random
from typing import Any, Hashable, Optional

from repro.types import MessageId, ProcessId


class WorkloadContext(abc.ABC):
    """Capabilities a workload may use (implemented by the generator)."""

    n: int
    rng: random.Random

    @property
    @abc.abstractmethod
    def now(self) -> float:
        """Current simulation time."""

    @abc.abstractmethod
    def send(
        self,
        src: ProcessId,
        dst: ProcessId,
        size: int = 1,
        payload: Any = None,
    ) -> MessageId:
        """Send an application message; returns its id.

        ``payload`` is workload-private data retrievable at delivery with
        :meth:`payload_of`; it never reaches the protocols and does not
        count towards piggyback overhead.
        """

    @abc.abstractmethod
    def set_timer(
        self, pid: ProcessId, delay: float, tag: Hashable = None
    ) -> None:
        """Arm a timer: ``on_timer(pid, tag)`` fires after ``delay``."""

    @abc.abstractmethod
    def payload_of(self, msg_id: MessageId) -> Any:
        """The payload attached at send time."""

    @abc.abstractmethod
    def stop(self) -> None:
        """Ask the generator to stop producing events (optional use)."""


class Workload(abc.ABC):
    """Base class of all workloads.

    Subclasses override the three hooks; all state they need should live
    on the instance (a fresh instance is used per trace generation).
    """

    @abc.abstractmethod
    def on_start(self, ctx: WorkloadContext) -> None:
        """Called once at time 0: arm initial timers / send first messages."""

    def on_timer(
        self, ctx: WorkloadContext, pid: ProcessId, tag: Optional[Hashable]
    ) -> None:
        """A timer armed with ``set_timer`` fired."""

    def on_deliver(
        self, ctx: WorkloadContext, pid: ProcessId, src: ProcessId, msg_id: MessageId
    ) -> None:
        """Process ``pid`` just received ``msg_id`` from ``src``."""

    @property
    def name(self) -> str:
        return type(self).__name__
