"""Unit tests for Lamport clocks, vector clocks, matrix clocks and TDVs."""

import pytest

from repro.clocks import (
    Causality,
    LamportClock,
    MatrixClock,
    TrackabilityOracle,
    VectorClock,
    lamport_timestamps,
    tdv_snapshots,
    vector_timestamps,
)
from repro.events import PatternBuilder, figure1_pattern, random_pattern
from repro.types import CheckpointId


@pytest.fixture
def fig1():
    return figure1_pattern()


class TestLamport:
    def test_tick_monotone(self):
        c = LamportClock()
        assert c.tick() == 1
        assert c.tick() == 2

    def test_merge_jumps_past_received(self):
        c = LamportClock()
        c.tick()
        assert c.merge(10) == 11

    def test_clock_condition_on_history(self, fig1):
        stamps = lamport_timestamps(fig1)
        caus = Causality(fig1)
        for a in fig1.all_events():
            for b in fig1.all_events():
                if caus.precedes(a, b):
                    assert stamps[a.ref] < stamps[b.ref]


class TestVectorClock:
    def test_merge_is_componentwise_max(self):
        v1 = VectorClock(3, [1, 5, 2])
        v2 = VectorClock(3, [4, 0, 2])
        v1.merge(v2)
        assert v1.values == (4, 5, 2)

    def test_comparisons(self):
        small = VectorClock(2, [1, 1])
        big = VectorClock(2, [2, 1])
        other = VectorClock(2, [0, 5])
        assert small < big and small <= big
        assert not big < small
        assert small.concurrent_with(other)

    def test_copy_is_independent(self):
        v = VectorClock(2, [1, 1])
        w = v.copy()
        w.increment(0)
        assert v.values == (1, 1) and w.values == (2, 1)


class TestCausality:
    def test_send_precedes_delivery(self, fig1):
        caus = Causality(fig1)
        for m in fig1.delivered_messages():
            s = fig1.send_event(m)
            d = fig1.deliver_event(m)
            assert caus.precedes(s, d)
            assert not caus.precedes(d, s)

    def test_process_order_is_causal(self, fig1):
        caus = Causality(fig1)
        evs = fig1.events(0)
        assert caus.precedes(evs[0], evs[-1])

    def test_no_event_precedes_itself(self, fig1):
        caus = Causality(fig1)
        for e in fig1.all_events():
            assert not caus.precedes(e, e)

    def test_concurrent_events_exist_in_figure1(self, fig1):
        caus = Causality(fig1)
        # C(i,1) and C(k,1) are causally unrelated in Figure 1.
        assert not caus.checkpoint_precedes(CheckpointId(0, 1), CheckpointId(2, 1))
        assert not caus.checkpoint_precedes(CheckpointId(2, 1), CheckpointId(0, 1))

    def test_checkpoint_precedence_via_message(self, fig1):
        caus = Causality(fig1)
        # m1 carries C(i,0)'s past into P_j before C(j,1).
        assert caus.checkpoint_precedes(CheckpointId(0, 0), CheckpointId(1, 1))

    @pytest.mark.parametrize("seed", range(3))
    def test_precedes_antisymmetric_on_random(self, seed):
        h = random_pattern(n=3, steps=40, seed=seed)
        caus = Causality(h)
        evs = list(h.all_events())
        for a in evs:
            for b in evs:
                assert not (caus.precedes(a, b) and caus.precedes(b, a))

    @pytest.mark.parametrize("seed", range(3))
    def test_vector_clock_characterises_hb(self, seed):
        h = random_pattern(n=3, steps=40, seed=seed)
        caus = Causality(h)
        stamps = vector_timestamps(h)
        for a in h.all_events():
            for b in h.all_events():
                if a.ref == b.ref:
                    continue
                assert caus.precedes(a, b) == (stamps[a.ref] < stamps[b.ref])


class TestMatrixClock:
    def test_diagonal_row_is_own_vector(self):
        m = MatrixClock(0, 2)
        m.local_event()
        m.local_event()
        assert m.own_vector() == (2, 0)

    def test_deliver_merges_sender_knowledge(self):
        a = MatrixClock(0, 2)
        b = MatrixClock(1, 2)
        a.local_event()  # a knows: [1,0]
        piggy = a.snapshot()
        b.deliver(sender=0, piggyback=piggy)
        # b merged a's own row into its own and advanced.
        assert b.own_vector() == (1, 1)
        assert b.row(0) == (1, 0)

    def test_min_known_is_gc_bound(self):
        a = MatrixClock(0, 2)
        a.local_event()
        # a doesn't know whether P1 saw its event yet.
        assert a.min_known(0) == 0


class TestTDV:
    def test_own_entry_equals_checkpoint_index(self, fig1):
        snaps = tdv_snapshots(fig1)
        for cid, vec in snaps.items():
            assert vec[cid.pid] == cid.index

    def test_initial_checkpoints_all_zero(self, fig1):
        snaps = tdv_snapshots(fig1)
        for pid in range(3):
            assert snaps[CheckpointId(pid, 0)] == (0, 0, 0)

    def test_figure1_values(self, fig1):
        snaps = tdv_snapshots(fig1)
        i, j, k = 0, 1, 2
        # C(j,1) saw m1 from I(i,1): TDV[j][i] == 1.
        assert snaps[CheckpointId(j, 1)][i] == 1
        # C(i,2) saw m2 from I(j,1); m2 was sent before deliver(m3), so
        # it does not carry P_k's dependency.
        assert snaps[CheckpointId(i, 2)] == (2, 1, 0)
        # C(k,2) saw m4 (from I(j,2), after m5 from I(i,3)) and m6.
        assert snaps[CheckpointId(k, 2)][j] == 3  # via m6 sent in I(j,3)
        assert snaps[CheckpointId(k, 2)][i] == 3  # via m5 relayed by m4/m6

    def test_trackability_oracle_same_process(self, fig1):
        oracle = TrackabilityOracle(fig1)
        assert oracle.trackable(CheckpointId(0, 1), CheckpointId(0, 2))
        assert oracle.trackable(CheckpointId(0, 2), CheckpointId(0, 2))
        assert not oracle.trackable(CheckpointId(0, 2), CheckpointId(0, 1))

    def test_trackability_oracle_cross_process(self, fig1):
        oracle = TrackabilityOracle(fig1)
        # m1 gives a causal chain C(i,1) -> C(j,1).
        assert oracle.trackable(CheckpointId(0, 1), CheckpointId(1, 1))
        # No causal chain from C(k,1) reaches C(i,2): [m3, m2] is
        # non-causal (send(m2) precedes deliver(m3) at P_j).
        assert not oracle.trackable(CheckpointId(2, 1), CheckpointId(0, 2))

    def test_monotone_along_process(self, fig1):
        snaps = tdv_snapshots(fig1)
        for pid in range(3):
            for idx in range(1, fig1.last_index(pid) + 1):
                prev = snaps[CheckpointId(pid, idx - 1)]
                cur = snaps[CheckpointId(pid, idx)]
                assert all(p <= c for p, c in zip(prev, cur))
