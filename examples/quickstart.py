"""Quickstart: run the BHMR protocol over random traffic and inspect it.

    python examples/quickstart.py

Covers the 90%-use-case API in ~40 lines: configure a scenario, replay
it under a protocol, verify Rollback-Dependency Trackability offline,
and read the metrics the paper reports.
"""

from repro import SimulationConfig, Simulation, check_rdt
from repro.harness import render_table
from repro.workloads import RandomUniformWorkload


def main() -> None:
    # A scenario: 4 processes, random point-to-point traffic, basic
    # (autonomous) checkpoints roughly every 5 time units per process.
    config = SimulationConfig(n=4, duration=100.0, seed=42, basic_rate=0.2)
    sim = Simulation(RandomUniformWorkload(send_rate=1.0), config)

    # Replay the same communication pattern under the paper's protocol
    # and under FDAS, its strongest predecessor.
    rows = []
    for protocol in ("bhmr", "fdas", "independent"):
        result = sim.run(protocol)
        report = check_rdt(result.history)
        row = result.metrics.as_row()
        row["RDT"] = "yes" if report.holds else f"NO ({len(report.violations)})"
        rows.append(row)
    print(render_table(rows, title="Same trace, three protocols"))

    bhmr = sim.run("bhmr")
    fdas = sim.run("fdas")
    saved = (
        fdas.metrics.forced_checkpoints - bhmr.metrics.forced_checkpoints
    )
    print(
        f"\nBHMR forced {bhmr.metrics.forced_checkpoints} checkpoints where "
        f"FDAS forced {fdas.metrics.forced_checkpoints} "
        f"(R = {bhmr.metrics.forced_checkpoints / fdas.metrics.forced_checkpoints:.3f}, "
        f"{saved} checkpoints saved)."
    )

    # Corollary 4.5: every checkpoint already knows the minimum
    # consistent global checkpoint containing it.
    pid, index = 2, 3
    print(
        f"\nMin consistent global checkpoint containing C({pid},{index}): "
        f"{bhmr.family[pid].min_gcp_of(index)} (computed on the fly)"
    )


if __name__ == "__main__":
    main()
