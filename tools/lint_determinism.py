#!/usr/bin/env python3
"""Determinism lint: no ambient randomness or wall clock in ``src/repro``.

Every simulated run in this repo must be a pure function of its seeds --
that is what makes traces byte-identical, golden tests meaningful and
the sweep cache sound.  The enforcement is a small static pass over the
AST of every file under ``src/repro`` that flags the three ways ambient
nondeterminism leaks in:

* ``random.<fn>(...)`` -- calls on the *module-level* shared RNG
  (``random.random()``, ``random.choice(...)``, ``random.seed(...)``
  ...).  All randomness must flow through a caller-supplied, explicitly
  seeded ``random.Random`` instance.
* ``random.Random()`` with no arguments -- an unseeded RNG instance
  (seeded from the OS): every ``Random`` must be built from an explicit
  seed argument.
* ``time.time(...)`` / ``time.time_ns(...)`` -- wall clock in the
  simulation path.  (``time.perf_counter`` stays allowed: the profiler
  measures wall time *by design*, outside every deterministic artifact.)

Since the serve subsystem (``src/repro/serve``) went async, a fourth
rule protects the event loop rather than determinism: **no blocking
calls inside ``async def`` bodies** -- ``time.sleep`` (use
``asyncio.sleep``), synchronous socket operations (``.recv()``,
``.accept()``, ``.sendall()`` ...) and synchronous disk barriers
(``os.fsync`` / ``os.fdatasync``, which the ingest WAL must route
through an executor) stall every session sharing the loop.  The
blocking clients in ``repro.serve.client`` are plain sync functions,
which the rule deliberately leaves alone.

The rule is lexical: it only sees blocking calls written inside
``async def`` bodies, not ones reached *through* sync helpers called
from a coroutine.  One such case is accepted on purpose: the snapshot
store's atomic write (``repro.serve.snapshots._write_atomic``) fsyncs
synchronously on the loop via the sync ``_handle``/eviction path --
snapshots are rare and their durability must complete before the
eviction or ack proceeds; the trade-off is documented at the call
site.  The per-frame WAL fsync, by contrast, must stay off the loop
(the group committer runs it in an executor).

One escape hatch, and only one: a line ending in ``# lint:
allow-wall-clock`` may call ``time.time``/``time.time_ns``.  It exists
for *operational metadata* -- the WAL segment header stamps its
creation time for humans doing forensics on a crashed directory, and
that timestamp never enters a digest, a trace, or any other
deterministic artifact.  The pragma is deliberately loud at the call
site and suppresses nothing else (no RNG, no async-blocking rule), so
reaching for it remains a reviewed, greppable event.

Run from the repo root (exit code 1 on any violation)::

    python tools/lint_determinism.py [root ...]

``tests/test_lint_determinism.py`` wires this into the tier-1 gate.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import List, NamedTuple

#: ``module attr`` call patterns that are always forbidden.
_FORBIDDEN_CALLS = {
    ("time", "time"): "wall clock in the simulation path",
    ("time", "time_ns"): "wall clock in the simulation path",
}
_FORBIDDEN_MODULE_RNG = "call on the shared module-level RNG"
_FORBIDDEN_UNSEEDED = "random.Random() without an explicit seed argument"

#: The only pragma the lint honours, and the only rule it can relax.
_ALLOW_WALL_CLOCK = "# lint: allow-wall-clock"

#: ``module.attr`` calls that block the event loop inside ``async def``.
_BLOCKING_MODULE_CALLS = {
    ("time", "sleep"): "time.sleep blocks the event loop; use asyncio.sleep",
    ("os", "fsync"): (
        "os.fsync blocks the event loop; run it in an executor "
        "(loop.run_in_executor) like the WAL group committer does"
    ),
    ("os", "fdatasync"): (
        "os.fdatasync blocks the event loop; run it in an executor "
        "(loop.run_in_executor) like the WAL group committer does"
    ),
}
#: Method names that are synchronous socket I/O wherever they appear.
_BLOCKING_METHODS = {
    "recv": "synchronous socket recv blocks the event loop",
    "recv_into": "synchronous socket recv blocks the event loop",
    "recvfrom": "synchronous socket recv blocks the event loop",
    "recvfrom_into": "synchronous socket recv blocks the event loop",
    "accept": "synchronous socket accept blocks the event loop",
    "sendall": "synchronous socket sendall blocks the event loop",
}


class Violation(NamedTuple):
    path: Path
    line: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.message} ({self.code})"


def _module_attr(func: ast.expr):
    """``(module, attr)`` when ``func`` is ``<Name>.<attr>``, else None."""
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id, func.attr
    return None


def _async_blocking(path: Path, tree: ast.AST) -> List[Violation]:
    """Blocking calls lexically inside any ``async def`` of the tree.

    Nested defs are included on purpose: a sync helper defined inside a
    coroutine still runs on the loop when called from it.  Awaited
    method calls (``await x.recv()``) are skipped -- an awaited call is
    an async API, not synchronous socket I/O.
    """
    awaited = {
        id(node.value) for node in ast.walk(tree) if isinstance(node, ast.Await)
    }
    seen: set = set()
    found: List[Violation] = []
    for fn in ast.walk(tree):
        if not isinstance(fn, ast.AsyncFunctionDef):
            continue
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call) or id(node) in seen:
                continue
            seen.add(id(node))
            target = _module_attr(node.func)
            if target in _BLOCKING_MODULE_CALLS:
                found.append(
                    Violation(
                        path, node.lineno, f"async:{target[0]}.{target[1]}",
                        _BLOCKING_MODULE_CALLS[target],
                    )
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _BLOCKING_METHODS
                and id(node) not in awaited
            ):
                found.append(
                    Violation(
                        path, node.lineno, f"async:.{node.func.attr}",
                        _BLOCKING_METHODS[node.func.attr],
                    )
                )
    return found


def _wall_clock_waivers(source: str) -> set:
    """1-based line numbers carrying the ``allow-wall-clock`` pragma."""
    return {
        i
        for i, line in enumerate(source.splitlines(), start=1)
        if _ALLOW_WALL_CLOCK in line
    }


def check_source(path: Path, source: str) -> List[Violation]:
    """All determinism violations in one file's source text."""
    tree = ast.parse(source, filename=str(path))
    waived = _wall_clock_waivers(source)
    found: List[Violation] = _async_blocking(path, tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        target = _module_attr(node.func)
        if target is None:
            continue
        module, attr = target
        if (module, attr) in _FORBIDDEN_CALLS:
            if node.lineno in waived:
                continue  # the one sanctioned escape hatch
            found.append(
                Violation(
                    path, node.lineno, f"{module}.{attr}",
                    _FORBIDDEN_CALLS[(module, attr)],
                )
            )
        elif module == "random":
            if attr == "Random":
                if not node.args and not node.keywords:
                    found.append(
                        Violation(
                            path, node.lineno, "random.Random()",
                            _FORBIDDEN_UNSEEDED,
                        )
                    )
            else:
                found.append(
                    Violation(
                        path, node.lineno, f"random.{attr}",
                        _FORBIDDEN_MODULE_RNG,
                    )
                )
    return found


def check_tree(root: Path) -> List[Violation]:
    """Violations in every ``*.py`` under ``root``, in path order."""
    violations: List[Violation] = []
    for path in sorted(root.rglob("*.py")):
        violations.extend(check_source(path, path.read_text(encoding="utf-8")))
    return violations


def main(argv: List[str]) -> int:
    roots = [Path(arg) for arg in argv] or [
        Path(__file__).resolve().parent.parent / "src" / "repro"
    ]
    violations: List[Violation] = []
    for root in roots:
        if not root.exists():
            print(f"lint_determinism: no such path: {root}", file=sys.stderr)
            return 2
        violations.extend(check_tree(root))
    for v in violations:
        print(v.render())
    if violations:
        print(f"{len(violations)} determinism violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
