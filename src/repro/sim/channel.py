"""Point-to-point channels with random delays.

The model (paper section 2.1): each ordered pair of processes is linked
by an asynchronous reliable channel with unpredictable but finite
delays.  Channels are non-FIFO by default -- exactly the setting CIC
protocols are designed for; a FIFO option exists for protocols that need
it (Chandy-Lamport markers) and for workload studies.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from repro.sim.delays import DelayModel, Exponential
from repro.types import ProcessId

_FIFO_EPSILON = 1e-9


class ChannelMap:
    """Samples arrival times for every ordered process pair."""

    def __init__(
        self,
        n: int,
        delay: DelayModel = None,
        fifo: bool = False,
    ) -> None:
        self.n = n
        self.delay = delay if delay is not None else Exponential(mean=1.0)
        self.fifo = fifo
        self._last_arrival: Dict[Tuple[ProcessId, ProcessId], float] = {}

    def reset(self) -> None:
        """Forget per-run state (the FIFO arrival floors).

        A ``ChannelMap`` is a *model* and may be shared across runs, but
        the FIFO floors are *run* state: without a reset, a reused map
        would hand a second simulation the first run's arrival floors
        and skew every early delivery.  :class:`repro.sim.generate.
        TraceGenerator` calls this at the start of every generation, so
        per-run isolation holds no matter how the map is shared.
        """
        self._last_arrival.clear()

    def arrival_time(
        self, src: ProcessId, dst: ProcessId, send_time: float, rng: random.Random
    ) -> float:
        """Arrival time of a message sent now on channel ``src -> dst``."""
        arrival = send_time + self.delay.sample(rng)
        if self.fifo:
            key = (src, dst)
            floor = self._last_arrival.get(key, 0.0)
            arrival = max(arrival, floor + _FIFO_EPSILON)
            self._last_arrival[key] = arrival
        return arrival
