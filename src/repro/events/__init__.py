"""Event model: computations, messages, checkpoints, recorded patterns."""

from repro.events.builder import PatternBuilder, figure1_pattern
from repro.events.event import CheckpointKind, Event, EventKind, Message
from repro.events.history import History
from repro.events.io import (
    history_from_dict,
    history_to_dict,
    load_history,
    save_history,
)
from repro.events.random_pattern import ping_pong_domino_pattern, random_pattern
from repro.events.render import render_cut, render_space_time
from repro.events.validate import validate_history

__all__ = [
    "CheckpointKind",
    "Event",
    "EventKind",
    "History",
    "Message",
    "PatternBuilder",
    "figure1_pattern",
    "history_from_dict",
    "history_to_dict",
    "load_history",
    "ping_pong_domino_pattern",
    "save_history",
    "random_pattern",
    "render_cut",
    "render_space_time",
    "validate_history",
]
