"""Protocol-independent communication traces.

A key fact about communication-induced checkpointing: the protocol never
blocks, reorders or generates messages -- it only inserts forced
checkpoints.  Hence the *communication pattern* (sends, deliveries,
basic checkpoints) of a run is protocol-independent, and the fair way to
compare protocols (as the paper's simulation study does) is to generate
that pattern once and replay it under each protocol.

A :class:`Trace` is exactly this pattern: a time-ordered list of
:class:`TraceOp`.  :mod:`repro.sim.generate` produces traces from
workloads; :mod:`repro.sim.replay` folds a protocol over them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.types import MessageId, ProcessId, SimulationError


class TraceOpKind(enum.Enum):
    SEND = "send"
    DELIVER = "deliver"
    BASIC_CHECKPOINT = "basic_checkpoint"

    def __repr__(self) -> str:
        return f"TraceOpKind.{self.name}"


@dataclass(frozen=True)
class TraceOp:
    """One operation of the protocol-independent pattern.

    For SEND: ``pid`` is the sender, ``peer`` the destination.
    For DELIVER: ``pid`` is the receiver, ``peer`` the original sender.
    For BASIC_CHECKPOINT: only ``pid`` is meaningful.
    """

    time: float
    kind: TraceOpKind
    pid: ProcessId
    peer: Optional[ProcessId] = None
    msg_id: Optional[MessageId] = None
    size: int = 1

    def __repr__(self) -> str:
        if self.kind is TraceOpKind.BASIC_CHECKPOINT:
            return f"<op ckpt P{self.pid} @{self.time:.3f}>"
        arrow = (
            f"P{self.pid}->P{self.peer}"
            if self.kind is TraceOpKind.SEND
            else f"P{self.peer}->P{self.pid}"
        )
        return f"<op {self.kind.value} m{self.msg_id} {arrow} @{self.time:.3f}>"


class Trace:
    """A validated, time-ordered sequence of trace operations."""

    def __init__(self, n: int, ops: Sequence[TraceOp]) -> None:
        self.n = n
        self.ops: List[TraceOp] = sorted(ops, key=lambda op: op.time)
        self._validate()

    def _validate(self) -> None:
        sent = {}
        delivered = set()
        for op in self.ops:
            if not 0 <= op.pid < self.n:
                raise SimulationError(f"bad pid in {op!r}")
            if op.kind is TraceOpKind.SEND:
                if op.msg_id in sent:
                    raise SimulationError(f"message {op.msg_id} sent twice")
                sent[op.msg_id] = op
            elif op.kind is TraceOpKind.DELIVER:
                if op.msg_id not in sent:
                    raise SimulationError(f"delivery of unsent message {op.msg_id}")
                if op.msg_id in delivered:
                    raise SimulationError(f"message {op.msg_id} delivered twice")
                send_op = sent[op.msg_id]
                if send_op.time >= op.time:
                    raise SimulationError(f"message {op.msg_id} delivered instantly")
                if send_op.peer != op.pid or send_op.pid != op.peer:
                    raise SimulationError(f"endpoint mismatch for {op.msg_id}")
                delivered.add(op.msg_id)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[TraceOp]:
        return iter(self.ops)

    def num_messages(self) -> int:
        return sum(1 for op in self.ops if op.kind is TraceOpKind.SEND)

    def num_deliveries(self) -> int:
        return sum(1 for op in self.ops if op.kind is TraceOpKind.DELIVER)

    def num_basic_checkpoints(self) -> int:
        return sum(
            1 for op in self.ops if op.kind is TraceOpKind.BASIC_CHECKPOINT
        )

    def __repr__(self) -> str:
        return (
            f"<Trace n={self.n} ops={len(self.ops)} "
            f"msgs={self.num_messages()} basic={self.num_basic_checkpoints()}>"
        )
