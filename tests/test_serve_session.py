"""ServeSession: online ingest, queries, replay -- no sockets involved."""

import pytest

from repro.obs.jsonio import canonical_dumps
from repro.serve.session import ServeSession, SessionError, offline_answers
from repro.types import SimulationError


@pytest.fixture
def session():
    return ServeSession("t", 3, "bhmr")


def drive(session, ops):
    """Apply ops given as compact tuples; returns the replies."""
    replies = []
    for op in ops:
        if op[0] == "c":
            replies.append(session.apply({"kind": "checkpoint", "pid": op[1]}))
        elif op[0] == "s":
            replies.append(
                session.apply({"kind": "send", "src": op[1], "dst": op[2]})
            )
        else:
            replies.append(session.apply({"kind": "deliver", "msg_id": op[1]}))
    return replies


class TestConstruction:
    def test_unknown_protocol_names_registry(self):
        with pytest.raises(SimulationError, match="unknown protocol 'nope'"):
            ServeSession("t", 3, "nope")
        with pytest.raises(SimulationError, match="bhmr"):
            ServeSession("t", 3, "nope")  # the known list is in the message

    def test_bad_n(self):
        with pytest.raises(SimulationError, match="n >= 1"):
            ServeSession("t", 0, "bhmr")
        with pytest.raises(SimulationError, match="n >= 1"):
            ServeSession("t", "three", "bhmr")


class TestIngest:
    def test_checkpoint_reply(self, session):
        reply = session.apply({"kind": "checkpoint", "pid": 1})
        assert reply["ok"] is True
        assert reply["index"] == 1
        assert reply["force_checkpoint"] is False
        assert "piggyback" in reply

    def test_send_then_deliver(self, session):
        sent = session.apply({"kind": "send", "src": 0, "dst": 2})
        assert sent["ok"] is True
        assert sent["msg_id"] == 0
        assert sent["piggyback"]["type"] == "BHMRPiggyback"
        got = session.apply({"kind": "deliver", "msg_id": sent["msg_id"]})
        assert got["ok"] is True
        assert isinstance(got["force_checkpoint"], bool)
        assert session.ingest_log == [
            {"kind": "send", "src": 0, "dst": 2},
            {"kind": "deliver", "msg_id": 0},
        ]

    def test_msg_ids_are_dense(self, session):
        ids = [
            session.apply({"kind": "send", "src": 0, "dst": 1})["msg_id"]
            for _ in range(5)
        ]
        assert ids == [0, 1, 2, 3, 4]

    def test_unknown_kind(self, session):
        with pytest.raises(SessionError, match="unknown ingest op"):
            session.apply({"kind": "flush"})

    def test_bad_pid_not_logged(self, session):
        for doc in (
            {"kind": "checkpoint", "pid": 3},
            {"kind": "checkpoint", "pid": -1},
            {"kind": "checkpoint", "pid": "x"},
            {"kind": "send", "src": 0, "dst": 7},
        ):
            with pytest.raises(SessionError):
                session.apply(doc)
        assert session.ingest_log == []

    def test_self_send_refused(self, session):
        with pytest.raises(SessionError, match="src == dst"):
            session.apply({"kind": "send", "src": 1, "dst": 1})

    def test_unknown_msg_id(self, session):
        with pytest.raises(SessionError, match="unknown msg_id"):
            session.apply({"kind": "deliver", "msg_id": 99})

    def test_double_deliver_refused_and_not_logged(self, session):
        mid = session.apply({"kind": "send", "src": 0, "dst": 1})["msg_id"]
        session.apply({"kind": "deliver", "msg_id": mid})
        events = len(session.ingest_log)
        with pytest.raises(SessionError, match="delivered twice"):
            session.apply({"kind": "deliver", "msg_id": mid})
        assert len(session.ingest_log) == events


class TestQueries:
    def test_rdt_status_shape(self, session):
        drive(session, [("c", 0), ("s", 0, 1), ("d", 0), ("c", 1)])
        status = session.query("rdt_status")
        assert status["n"] == 3
        assert status["protocol"] == "bhmr"
        assert status["ensures_rdt"] is True
        assert status["events"] == 4
        assert isinstance(status["z_cycle_free"], bool)
        assert isinstance(status["useless"], list)

    def test_z_cycles_empty_on_fresh_session(self, session):
        assert session.query("z_cycles") == {"count": 0, "cycles": []}

    def test_recovery_line_defaults_to_all_crashed(self, session):
        drive(session, [("c", 0), ("s", 0, 1), ("d", 0)])
        line = session.query("recovery_line")
        assert line["crashed"] == [0, 1, 2]
        assert len(line["cut"]) == 3

    def test_recovery_line_validates_crashed(self, session):
        with pytest.raises(SessionError, match="crashed"):
            session.query("recovery_line", crashed=[7])
        with pytest.raises(SessionError, match="crashed"):
            session.query("recovery_line", crashed="all")

    def test_metrics_counts(self, session):
        drive(session, [("c", 0), ("s", 0, 1), ("d", 0), ("s", 1, 2)])
        metrics = session.query("metrics")
        assert metrics["events"] == 4
        assert metrics["sends"] == 2
        assert metrics["delivers"] == 1
        assert metrics["queries"] == 0  # itself not yet counted
        assert session.query("metrics")["queries"] == 1

    def test_queries_never_log(self, session):
        drive(session, [("c", 0)])
        session.query("rdt_status")
        session.query("z_cycles")
        assert len(session.ingest_log) == 1

    def test_unknown_query(self, session):
        with pytest.raises(SessionError, match="unknown query"):
            session.query("entropy")


class TestReplay:
    def test_replay_log_matches_live(self, session):
        drive(
            session,
            [("c", 0), ("s", 0, 1), ("s", 1, 2), ("d", 0), ("c", 2), ("d", 1)],
        )
        twin = ServeSession.replay_log("t", 3, "bhmr", session.ingest_log)
        assert twin.ingest_log == session.ingest_log
        for what in ("rdt_status", "z_cycles", "metrics"):
            assert canonical_dumps(twin.query(what)) == canonical_dumps(
                session.query(what)
            )

    def test_offline_answers_are_byte_identical(self, session):
        drive(session, [("s", 0, 1), ("d", 0), ("c", 1), ("s", 1, 0), ("d", 1)])
        live = {
            "rdt_status": session.query("rdt_status"),
            "z_cycles": session.query("z_cycles"),
            "recovery_line": session.query("recovery_line", crashed=[0]),
        }
        offline = offline_answers("t", 3, "bhmr", session.ingest_log, crashed=[0])
        assert canonical_dumps(offline) == canonical_dumps(live)
