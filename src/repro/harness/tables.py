"""Plain-text rendering of result tables and figure-like series.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that output uniform and diff-friendly.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[List[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict-rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_fmt(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[k]) for line in cells))
        for k, col in enumerate(columns)
    ]
    out = []
    if title:
        out.append(title)
    header = "  ".join(col.ljust(widths[k]) for k, col in enumerate(columns))
    out.append(header)
    out.append("-" * len(header))
    for line in cells:
        out.append("  ".join(line[k].ljust(widths[k]) for k in range(len(columns))))
    return "\n".join(out)


def render_series(
    x_label: str,
    xs: Sequence[object],
    series: Dict[str, Sequence[Optional[float]]],
    title: Optional[str] = None,
) -> str:
    """Render one-figure-worth of series as a table: one row per x."""
    rows = []
    for k, x in enumerate(xs):
        row: Dict[str, object] = {x_label: x}
        for name, values in series.items():
            row[name] = values[k]
        rows.append(row)
    return render_table(rows, title=title)


def render_runner_stats(stats, title: Optional[str] = None) -> str:
    """One-row table of a :class:`~repro.harness.runner.RunnerStats`.

    Shows worker mode, cell/cache-hit counts, worker-side busy time vs
    wall time and the resulting speedup estimate; appends per-phase
    timings (when the run was profiled) and the runner's note (e.g. a
    serial-fallback reason) when present.
    """
    out = render_table([stats.as_row()], title=title)
    phases = getattr(stats, "phase_seconds", None)
    if phases:
        out += "\nphases: " + "  ".join(
            f"{name}={phases[name]:.3f}s" for name in sorted(phases)
        )
    if getattr(stats, "note", ""):
        out += f"\n({stats.note})"
    return out


def render_ascii_plot(
    xs: Sequence[float],
    series: Dict[str, Sequence[Optional[float]]],
    width: int = 60,
    y_min: float = 0.0,
    y_max: float = 1.05,
    title: Optional[str] = None,
) -> str:
    """A rough horizontal-bar rendition of a figure (one block per series
    point), handy for eyeballing ratio curves in terminal output."""
    out = []
    if title:
        out.append(title)
    for name, values in series.items():
        out.append(f"[{name}]")
        for x, v in zip(xs, values):
            if v is None:
                out.append(f"  {x!s:>8}  (n/a)")
                continue
            clamped = min(max(v, y_min), y_max)
            bar = "#" * int(round((clamped - y_min) / (y_max - y_min) * width))
            out.append(f"  {x!s:>8}  {bar} {v:.3f}")
    return "\n".join(out)
