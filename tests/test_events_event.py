"""Unit tests for the event/message value objects."""

import pytest

from repro.events import CheckpointKind, Event, EventKind, Message
from repro.types import CheckpointId


class TestCheckpointId:
    def test_ordering_is_lexicographic(self):
        assert CheckpointId(0, 5) < CheckpointId(1, 0)
        assert CheckpointId(1, 0) < CheckpointId(1, 1)

    def test_repr_reads_like_the_paper(self):
        assert repr(CheckpointId(2, 3)) == "C(2,3)"

    def test_rejects_negative_fields(self):
        with pytest.raises(ValueError):
            CheckpointId(-1, 0)
        with pytest.raises(ValueError):
            CheckpointId(0, -1)

    def test_interval_conventions(self):
        cid = CheckpointId(1, 4)
        assert cid.interval_before == 4
        assert cid.interval_after == 5

    def test_hashable_and_equal_by_value(self):
        assert CheckpointId(1, 2) == CheckpointId(1, 2)
        assert len({CheckpointId(1, 2), CheckpointId(1, 2)}) == 1


class TestEvent:
    def test_kind_predicates(self):
        send = Event(0, 1, EventKind.SEND, 1.0, msg_id=7)
        assert send.is_send and not send.is_deliver and not send.is_checkpoint
        dlv = Event(1, 1, EventKind.DELIVER, 2.0, msg_id=7)
        assert dlv.is_deliver
        ck = Event(
            0, 2, EventKind.CHECKPOINT, 3.0,
            checkpoint_index=1, checkpoint_kind=CheckpointKind.BASIC,
        )
        assert ck.is_checkpoint

    def test_ref_is_pid_seq(self):
        ev = Event(3, 9, EventKind.INTERNAL, 4.5)
        assert ev.ref == (3, 9)

    def test_events_are_immutable(self):
        ev = Event(0, 0, EventKind.INTERNAL, 0.0)
        with pytest.raises(AttributeError):
            ev.pid = 1  # type: ignore[misc]

    def test_reprs_are_informative(self):
        ck = Event(
            0, 2, EventKind.CHECKPOINT, 3.0,
            checkpoint_index=1, checkpoint_kind=CheckpointKind.FORCED,
        )
        assert "C(0,1)" in repr(ck) and "forced" in repr(ck)
        send = Event(0, 1, EventKind.SEND, 1.0, msg_id=7)
        assert "m7" in repr(send)


class TestMessage:
    def test_delivered_flag(self):
        assert not Message(0, 0, 1, send_seq=1).delivered
        assert Message(0, 0, 1, send_seq=1, deliver_seq=4).delivered

    def test_repr_shows_transit_state(self):
        assert "in-transit" in repr(Message(0, 0, 1, send_seq=1))
        assert "dlv@4" in repr(Message(0, 0, 1, send_seq=1, deliver_seq=4))
