"""Lamport scalar clocks.

Provides both an online :class:`LamportClock` (used by examples and by the
simulator's deterministic tie-breaking) and an offline computation of
Lamport timestamps for every event of a recorded history.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.events.event import EventKind
from repro.events.history import History


class LamportClock:
    """A scalar logical clock (Lamport 1978).

    ``tick()`` stamps a local or send event; ``merge(ts)`` incorporates the
    timestamp piggybacked on a received message and stamps the delivery.
    """

    def __init__(self) -> None:
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def tick(self) -> int:
        self._value += 1
        return self._value

    def merge(self, received: int) -> int:
        self._value = max(self._value, received) + 1
        return self._value

    def __repr__(self) -> str:
        return f"LamportClock({self._value})"


def lamport_timestamps(history: History) -> Dict[Tuple[int, int], int]:
    """Offline Lamport timestamp of every event, keyed by ``(pid, seq)``.

    Events are replayed in global time order (valid because histories
    guarantee send-before-delivery times), so the result satisfies the
    clock condition: ``e -> e'`` implies ``L(e) < L(e')``.
    """
    clocks = [LamportClock() for _ in range(history.num_processes)]
    send_ts: Dict[int, int] = {}
    stamps: Dict[Tuple[int, int], int] = {}
    for ev in history.events_by_time():
        clock = clocks[ev.pid]
        if ev.kind is EventKind.DELIVER:
            assert ev.msg_id is not None
            stamp = clock.merge(send_ts[ev.msg_id])
        else:
            stamp = clock.tick()
            if ev.kind is EventKind.SEND:
                assert ev.msg_id is not None
                send_ts[ev.msg_id] = stamp
        stamps[ev.ref] = stamp
    return stamps
