"""Tier-1 wiring of the determinism lint (``tools/lint_determinism.py``).

The whole testbed's value rests on runs being pure functions of their
seeds; this gate fails the fast suite the moment anyone under
``src/repro`` reaches for the shared module-level RNG, an unseeded
``random.Random()``, or the wall clock.
"""

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"


def _load_linter():
    spec = importlib.util.spec_from_file_location(
        "lint_determinism", REPO_ROOT / "tools" / "lint_determinism.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def linter():
    return _load_linter()


def test_src_repro_is_deterministic(linter):
    violations = linter.check_tree(SRC_ROOT)
    assert not violations, "\n" + "\n".join(v.render() for v in violations)


# ----------------------------------------------------------------------
# the linter itself: each rule fires on a minimal sample, and the
# sanctioned idioms stay clean
# ----------------------------------------------------------------------
def _codes(linter, source):
    return [v.code for v in linter.check_source(Path("sample.py"), source)]


def test_flags_module_level_random(linter):
    assert _codes(linter, "import random\nx = random.random()\n") == [
        "random.random"
    ]
    assert _codes(linter, "import random\nrandom.seed(1)\n") == ["random.seed"]
    assert _codes(
        linter, "import random\nv = random.choice([1, 2])\n"
    ) == ["random.choice"]


def test_flags_unseeded_random_instance(linter):
    assert _codes(linter, "import random\nrng = random.Random()\n") == [
        "random.Random()"
    ]


def test_flags_wall_clock(linter):
    assert _codes(linter, "import time\nt = time.time()\n") == ["time.time"]
    assert _codes(linter, "import time\nt = time.time_ns()\n") == [
        "time.time_ns"
    ]


def test_allows_seeded_and_instance_idioms(linter):
    clean = (
        "import random\nimport time\n"
        "rng = random.Random(42)\n"
        "rng2 = random.Random(seed)\n"
        "x = rng.random()\n"
        "y = rng.expovariate(2.0)\n"
        "t = time.perf_counter()\n"
    )
    assert _codes(linter, clean) == []


def test_cli_entrypoint_passes_on_src(linter, capsys):
    assert linter.main([str(SRC_ROOT)]) == 0
    assert capsys.readouterr().out == ""


def test_flags_time_sleep_in_async_def(linter):
    source = (
        "import time\n"
        "async def tick():\n"
        "    time.sleep(1)\n"
    )
    assert _codes(linter, source) == ["async:time.sleep"]


def test_flags_blocking_socket_methods_in_async_def(linter):
    source = (
        "async def pump(sock):\n"
        "    data = sock.recv(4096)\n"
        "    sock.sendall(data)\n"
    )
    assert _codes(linter, source) == ["async:.recv", "async:.sendall"]


def test_flags_self_attribute_socket_calls(linter):
    source = (
        "async def pump(self):\n"
        "    return self._sock.recv(4096)\n"
    )
    assert _codes(linter, source) == ["async:.recv"]


def test_awaited_calls_are_not_blocking(linter):
    source = (
        "async def pump(conn):\n"
        "    return await conn.recv()\n"
    )
    assert _codes(linter, source) == []


def test_asyncio_sleep_is_clean(linter):
    source = (
        "import asyncio\n"
        "async def tick():\n"
        "    await asyncio.sleep(1)\n"
    )
    assert _codes(linter, source) == []


def test_sync_def_may_sleep_and_recv(linter):
    source = (
        "import time\n"
        "def pump(sock):\n"
        "    time.sleep(0.1)\n"
        "    return sock.recv(4096)\n"
    )
    assert _codes(linter, source) == []


def test_sync_helper_nested_in_async_def_is_flagged(linter):
    source = (
        "async def outer(sock):\n"
        "    def helper():\n"
        "        return sock.recv(1)\n"
        "    return helper()\n"
    )
    assert _codes(linter, source) == ["async:.recv"]


def test_flags_os_fsync_in_async_def(linter):
    source = (
        "import os\n"
        "async def flush(f):\n"
        "    os.fsync(f.fileno())\n"
        "    os.fdatasync(f.fileno())\n"
    )
    assert _codes(linter, source) == ["async:os.fsync", "async:os.fdatasync"]


def test_sync_def_may_fsync(linter):
    source = (
        "import os\n"
        "def flush(f):\n"
        "    os.fsync(f.fileno())\n"
    )
    assert _codes(linter, source) == []


def test_wall_clock_pragma_waives_only_its_line(linter):
    source = (
        "import time\n"
        "a = time.time()  # lint: allow-wall-clock\n"
        "b = time.time()\n"
    )
    assert _codes(linter, source) == ["time.time"]
    violations = linter.check_source(Path("sample.py"), source)
    assert violations[0].line == 3  # the unwaived call, not the waived one


def test_wall_clock_pragma_waives_nothing_else(linter):
    # The pragma is wall-clock-only: RNG and event-loop rules still fire.
    source = (
        "import random, time\n"
        "x = random.random()  # lint: allow-wall-clock\n"
        "async def tick():\n"
        "    time.sleep(1)  # lint: allow-wall-clock\n"
    )
    assert _codes(linter, source) == ["async:time.sleep", "random.random"]


def test_the_wal_header_is_the_only_waived_wall_clock(linter):
    """The escape hatch stays greppable and rare: exactly one use today."""
    uses = [
        path
        for path in sorted(SRC_ROOT.rglob("*.py"))
        if "# lint: allow-wall-clock" in path.read_text(encoding="utf-8")
    ]
    assert [p.name for p in uses] == ["wal.py"]
