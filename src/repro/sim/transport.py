"""A reliable transport over the unreliable physical layer.

:class:`ReliableTransport` recovers the paper's channel abstraction --
every application message delivered exactly once, after a finite delay --
on top of a :class:`repro.sim.netfaults.NetFaultModel` that loses,
duplicates, reorders and partitions physical transmissions.  The recipe
is the classical one:

* every physical copy carries the message id; the receiver keeps a
  delivered-set and hands each id to the protocol layer **exactly
  once** (duplicates are re-acked, never re-delivered);
* the receiver acks the first copy it sees (acks ride the reverse link
  and are lossy too; a lost ack is healed by the sender's retransmission
  provoking a fresh ack);
* the sender retransmits on a timer with exponential backoff and seeded
  jitter until acked -- or until the **liveness watchdog** gives up
  after ``max_attempts`` tries and flags the link ``net.degraded``
  instead of retrying forever, which is what keeps the scheduler from
  deadlocking under a permanent partition or 100% loss;
* with ``fifo=True`` the receiver additionally reconstructs per-link
  FIFO order from transport sequence numbers, releasing held messages
  when a predecessor is delivered or abandoned.

Every random decision (loss rolls, duplicate rolls, per-copy delays,
retransmission jitter) draws from the single RNG handed in by the
caller, so a faulty run is byte-deterministic in its seeds.  The
protocol layer above sees only the ``deliver`` callback -- by the time a
message reaches a protocol, the network might as well have been the
paper's reliable one.  That is the invariant the tier-2 differential
suite (``tests/test_differential_netfaults.py``) enforces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.sim.channel import ChannelMap
from repro.sim.kernel import Scheduler
from repro.sim.netfaults import NetFaultModel
from repro.types import MessageId, ProcessId, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer

Link = Tuple[ProcessId, ProcessId]


@dataclass(frozen=True)
class TransportConfig:
    """Retransmission policy of the reliable transport.

    ``rto`` is the initial retransmission timeout, multiplied by
    ``backoff`` after each attempt and capped at ``max_rto``; each timer
    adds seeded jitter uniform in ``[0, jitter * current_rto]`` to break
    synchronisation.  ``max_attempts`` is the watchdog bound: a message
    still unacked after that many physical attempts abandons the send
    and flags its link degraded.  ``fifo`` turns on per-link FIFO
    reconstruction at the receiver.
    """

    rto: float = 4.0
    backoff: float = 2.0
    max_rto: float = 30.0
    jitter: float = 0.25
    max_attempts: int = 8
    fifo: bool = False

    def __post_init__(self) -> None:
        if self.rto <= 0 or self.max_rto < self.rto:
            raise SimulationError(f"bad rto/max_rto: {self.rto}/{self.max_rto}")
        if self.backoff < 1.0:
            raise SimulationError(f"backoff must be >= 1: {self.backoff}")
        if self.jitter < 0:
            raise SimulationError(f"jitter must be >= 0: {self.jitter}")
        if self.max_attempts < 1:
            raise SimulationError(
                f"max_attempts must be >= 1: {self.max_attempts}"
            )

    def timeout(self, attempt: int) -> float:
        """The backoff timeout after physical attempt number ``attempt``."""
        return min(self.rto * self.backoff ** (attempt - 1), self.max_rto)


@dataclass
class NetReport:
    """What the physical layer did during one run (plain counts)."""

    sent: int = 0
    delivered: int = 0
    attempts: int = 0
    retransmits: int = 0
    dropped: int = 0
    duplicated: int = 0
    reordered: int = 0
    acks_sent: int = 0
    acks_lost: int = 0
    degraded: Tuple[MessageId, ...] = ()
    degraded_links: Tuple[Link, ...] = ()
    undelivered: Tuple[MessageId, ...] = ()

    def __repr__(self) -> str:
        return (
            f"<NetReport sent={self.sent} delivered={self.delivered} "
            f"retransmits={self.retransmits} dropped={self.dropped} "
            f"degraded_links={len(self.degraded_links)}>"
        )


class _Pending:
    """Sender-side state of one in-flight application message."""

    __slots__ = ("msg_id", "src", "dst", "seq", "attempts", "acked", "abandoned")

    def __init__(self, msg_id: MessageId, src: ProcessId, dst: ProcessId, seq: int):
        self.msg_id = msg_id
        self.src = src
        self.dst = dst
        self.seq = seq  # per-link transport sequence number
        self.attempts = 0
        self.acked = False
        self.abandoned = False

    @property
    def done(self) -> bool:
        return self.acked or self.abandoned


class ReliableTransport:
    """Exactly-once delivery over a faulty network, on the sim kernel.

    Parameters
    ----------
    scheduler, channels:
        The simulation kernel and the delay model of the physical links
        (the same :class:`ChannelMap` a reliable run would use).
    model:
        The physical fault model.
    config:
        Retransmission policy.
    deliver:
        ``(msg_id, src, dst) -> None`` -- the protocol-layer delivery
        hook, invoked exactly once per message (in per-link seq order
        when ``config.fifo``).
    rng:
        The seeded stream all physical randomness draws from.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        channels: ChannelMap,
        model: NetFaultModel,
        config: TransportConfig,
        deliver: Callable[[MessageId, ProcessId, ProcessId], None],
        rng: random.Random,
        tracer: Optional["Tracer"] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.scheduler = scheduler
        self.channels = channels
        self.model = model
        self.config = config
        self._deliver = deliver
        self.rng = rng
        self.tracer = tracer
        self.metrics = metrics
        self._pending: Dict[MessageId, _Pending] = {}
        self._received: Set[MessageId] = set()
        self._next_seq: Dict[Link, int] = {}
        # FIFO reconstruction state, per link: the next seq to release
        # and the buffer of arrived-but-held (seq -> message) entries.
        self._fifo_next: Dict[Link, int] = {}
        self._fifo_held: Dict[Link, Dict[int, MessageId]] = {}
        self._abandoned_seqs: Dict[Link, Set[int]] = {}
        self._degraded_links: List[Link] = []
        self.report = NetReport()

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def send(self, msg_id: MessageId, src: ProcessId, dst: ProcessId) -> None:
        """Accept one application message for reliable delivery."""
        link = (src, dst)
        seq = self._next_seq.get(link, 0)
        self._next_seq[link] = seq + 1
        pending = _Pending(msg_id, src, dst, seq)
        self._pending[msg_id] = pending
        self.report.sent += 1
        self._attempt(pending)

    def _attempt(self, pending: _Pending) -> None:
        """One physical transmission attempt (and its retry timer)."""
        if pending.done:
            return
        cfg = self.config
        if pending.attempts >= cfg.max_attempts:
            self._abandon(pending)
            return
        pending.attempts += 1
        now = self.scheduler.now
        self.report.attempts += 1
        if pending.attempts > 1:
            self.report.retransmits += 1
            if self.tracer:
                self.tracer.event(
                    "net.retransmit",
                    now,
                    msg=pending.msg_id,
                    src=pending.src,
                    dst=pending.dst,
                    attempt=pending.attempts,
                )
            if self.metrics is not None:
                self.metrics.inc("net.retransmits")
        self._transmit(pending)
        # The retry timer always arms; it self-cancels if the ack lands
        # first.  Jitter breaks retransmission synchronisation across
        # links without costing determinism (it draws from the run RNG).
        timeout = cfg.timeout(pending.attempts)
        timeout += self.rng.uniform(0.0, cfg.jitter * timeout)
        self.scheduler.schedule(timeout, lambda: self._attempt(pending))

    def _transmit(self, pending: _Pending) -> None:
        """Push one copy (or none, or two) of the message onto the wire."""
        now = self.scheduler.now
        src, dst = pending.src, pending.dst
        faults = self.model.link(src, dst)
        if self.model.is_cut(src, dst, now):
            self._drop(pending, "partition")
            return
        if faults.loss and self.rng.random() < faults.loss:
            self._drop(pending, "loss")
            return
        copies = 1
        if faults.duplicate and self.rng.random() < faults.duplicate:
            copies = 2
            self.report.duplicated += 1
            if self.tracer:
                self.tracer.event(
                    "net.dup", now, msg=pending.msg_id, src=src, dst=dst
                )
            if self.metrics is not None:
                self.metrics.inc("net.duplicated")
        for _ in range(copies):
            delay = self.channels.delay.sample(self.rng)
            if faults.reorder and self.rng.random() < faults.reorder:
                delay += self.rng.expovariate(1.0 / faults.reorder_delay)
                self.report.reordered += 1
            self.scheduler.schedule(delay, lambda: self._arrive_physical(pending))

    def _drop(self, pending: _Pending, cause: str) -> None:
        self.report.dropped += 1
        if self.tracer:
            self.tracer.event(
                "net.drop",
                self.scheduler.now,
                msg=pending.msg_id,
                src=pending.src,
                dst=pending.dst,
                cause=cause,
                attempt=pending.attempts,
            )
        if self.metrics is not None:
            self.metrics.inc("net.dropped")

    def _abandon(self, pending: _Pending) -> None:
        """The watchdog: give up on the message, degrade the link.

        The send stays recorded in the trace with no delivery (the trace
        model allows in-flight messages); the link is flagged so callers
        can tell "slow network" from "gave up".  This bound on attempts
        is what guarantees the event queue drains under 100% loss.
        """
        pending.abandoned = True
        link = (pending.src, pending.dst)
        self.report.degraded = self.report.degraded + (pending.msg_id,)
        if self.tracer:
            self.tracer.event(
                "net.degraded",
                self.scheduler.now,
                msg=pending.msg_id,
                src=pending.src,
                dst=pending.dst,
                attempts=pending.attempts,
                forever=self.model.cut_forever(
                    pending.src, pending.dst, self.scheduler.now
                ),
            )
        if link not in self._degraded_links:
            self._degraded_links.append(link)
            if self.metrics is not None:
                self.metrics.inc("net.degraded_links")
        if self.config.fifo and pending.msg_id not in self._received:
            # Leave no hole: successors held behind the abandoned seq
            # must still go out (in order).
            self._abandoned_seqs.setdefault(link, set()).add(pending.seq)
            self._fifo_release(link)

    # ------------------------------------------------------------------
    # receiver side
    # ------------------------------------------------------------------
    def _arrive_physical(self, pending: _Pending) -> None:
        """One physical copy reached the receiver."""
        msg_id = pending.msg_id
        link = (pending.src, pending.dst)
        first = msg_id not in self._received
        if first and not pending.abandoned:
            self._received.add(msg_id)
            if self.config.fifo:
                self._fifo_held.setdefault(link, {})[pending.seq] = msg_id
                self._fifo_release(link)
            else:
                self._deliver_up(msg_id, pending.src, pending.dst)
        # First copy or duplicate, the receiver always (re-)acks: a
        # duplicate arriving means the sender has not seen our ack yet.
        self._send_ack(pending)

    def _deliver_up(self, msg_id: MessageId, src: ProcessId, dst: ProcessId) -> None:
        self.report.delivered += 1
        if self.tracer:
            self.tracer.event(
                "net.deliver", self.scheduler.now, msg=msg_id, src=src, dst=dst
            )
        self._deliver(msg_id, src, dst)

    def _fifo_release(self, link: Link) -> None:
        """Release the in-order prefix of held/abandoned seqs on ``link``."""
        held = self._fifo_held.setdefault(link, {})
        abandoned = self._abandoned_seqs.setdefault(link, set())
        nxt = self._fifo_next.get(link, 0)
        while True:
            if nxt in held:
                msg_id = held.pop(nxt)
                self._deliver_up(msg_id, link[0], link[1])
            elif nxt in abandoned:
                abandoned.discard(nxt)
            else:
                break
            nxt += 1
        self._fifo_next[link] = nxt

    def _send_ack(self, pending: _Pending) -> None:
        """Ack ``pending`` back over the (equally faulty) reverse link."""
        now = self.scheduler.now
        src, dst = pending.dst, pending.src  # reverse direction
        self.report.acks_sent += 1
        faults = self.model.link(src, dst)
        if self.model.is_cut(src, dst, now) or (
            faults.loss and self.rng.random() < faults.loss
        ):
            self.report.acks_lost += 1
            if self.tracer:
                self.tracer.event(
                    "net.drop",
                    now,
                    msg=pending.msg_id,
                    src=src,
                    dst=dst,
                    cause="ack",
                    attempt=pending.attempts,
                )
            if self.metrics is not None:
                self.metrics.inc("net.dropped")
            return
        delay = self.channels.delay.sample(self.rng)
        self.scheduler.schedule(delay, lambda: self._ack_arrive(pending))

    def _ack_arrive(self, pending: _Pending) -> None:
        if pending.done:
            return
        pending.acked = True
        if self.tracer:
            self.tracer.event(
                "net.ack",
                self.scheduler.now,
                msg=pending.msg_id,
                src=pending.src,
                dst=pending.dst,
                attempts=pending.attempts,
            )

    # ------------------------------------------------------------------
    def finalize(self) -> NetReport:
        """Seal and return the run's :class:`NetReport`.

        Called after the scheduler drains; every message must have
        resolved to delivered or abandoned (anything else would mean the
        watchdog failed its liveness duty).
        """
        undelivered = tuple(
            msg_id
            for msg_id, p in sorted(self._pending.items())
            if msg_id not in self._received
        )
        for msg_id, p in sorted(self._pending.items()):
            if not p.done and msg_id not in self._received:
                raise SimulationError(
                    f"transport liveness violated: message {msg_id} neither "
                    "delivered nor abandoned after the run drained"
                )
        self.report.undelivered = undelivered
        self.report.degraded_links = tuple(self._degraded_links)
        return self.report
