"""Structural validation of histories.

:func:`validate_history` checks every well-formedness rule that the rest
of the library assumes, raising :class:`repro.types.PatternError` with a
precise description on the first violation.  Analyses never re-check
these invariants, so validation is the single gate between untrusted
pattern construction (builders, simulators, user code) and the theory
layer.
"""

from __future__ import annotations

from repro.events.event import CheckpointKind, EventKind
from repro.events.history import History
from repro.types import PatternError


def validate_history(history: History) -> None:
    """Check structural invariants; raise :class:`PatternError` if broken.

    Invariants enforced:

    1. per-process sequences are densely numbered and strictly increasing
       in time;
    2. every process starts with the initial checkpoint ``C(i, 0)`` and
       checkpoint indices are contiguous;
    3. send/deliver events reference existing messages, at the right
       endpoint, exactly once, with ``time(send) < time(deliver)``;
    4. every message's recorded seqs point back at its own events.
    """
    n = history.num_processes
    _check_sequences(history, n)
    _check_checkpoints(history, n)
    _check_messages(history, n)


def _check_sequences(history: History, n: int) -> None:
    for pid in range(n):
        prev_time = None
        for pos, ev in enumerate(history.events(pid)):
            if ev.pid != pid:
                raise PatternError(f"event {ev!r} stored under process {pid}")
            if ev.seq != pos:
                raise PatternError(
                    f"process {pid}: event at position {pos} has seq {ev.seq}"
                )
            if prev_time is not None and ev.time <= prev_time:
                raise PatternError(
                    f"process {pid}: non-increasing event times at seq {pos}"
                )
            prev_time = ev.time


def _check_checkpoints(history: History, n: int) -> None:
    for pid in range(n):
        ckpts = history.checkpoints(pid)
        first = ckpts[0]
        if first.seq != 0 or first.checkpoint_index != 0:
            raise PatternError(f"process {pid} lacks initial checkpoint C({pid},0)")
        if first.checkpoint_kind is not CheckpointKind.INITIAL:
            raise PatternError(f"C({pid},0) must have kind INITIAL")
        for expect, ev in enumerate(ckpts):
            if ev.checkpoint_index != expect:
                raise PatternError(
                    f"process {pid}: checkpoint indices not contiguous at "
                    f"index {expect} (found {ev.checkpoint_index})"
                )
            if expect > 0 and ev.checkpoint_kind is CheckpointKind.INITIAL:
                raise PatternError(f"C({pid},{expect}) wrongly marked INITIAL")


def _check_messages(history: History, n: int) -> None:
    seen_send = set()
    seen_deliver = set()
    for pid in range(n):
        for ev in history.events(pid):
            if ev.kind is EventKind.SEND:
                _check_send_event(history, ev, seen_send)
            elif ev.kind is EventKind.DELIVER:
                _check_deliver_event(history, ev, seen_deliver)
    for mid, m in history.messages.items():
        if mid != m.msg_id:
            raise PatternError(f"message table key {mid} != id {m.msg_id}")
        if m.src == m.dst:
            raise PatternError(f"message {mid} sent to self")
        if not (0 <= m.src < n and 0 <= m.dst < n):
            raise PatternError(f"message {mid} references unknown process")
        if mid not in seen_send:
            raise PatternError(f"message {mid} has no send event")
        if m.delivered:
            send_ev = history.send_event(m)
            deliver_ev = history.deliver_event(m)
            assert deliver_ev is not None
            if deliver_ev.time <= send_ev.time:
                raise PatternError(f"message {mid} delivered before being sent")


def _check_send_event(history: History, ev, seen_send) -> None:
    if ev.msg_id is None:
        raise PatternError(f"send event {ev!r} lacks msg_id")
    if ev.msg_id in seen_send:
        raise PatternError(f"message {ev.msg_id} sent twice")
    seen_send.add(ev.msg_id)
    try:
        m = history.message(ev.msg_id)
    except KeyError:
        raise PatternError(f"send event references unknown message {ev.msg_id}")
    if m.src != ev.pid or m.send_seq != ev.seq:
        raise PatternError(f"message {ev.msg_id} send endpoint mismatch")


def _check_deliver_event(history: History, ev, seen_deliver) -> None:
    if ev.msg_id is None:
        raise PatternError(f"deliver event {ev!r} lacks msg_id")
    if ev.msg_id in seen_deliver:
        raise PatternError(f"message {ev.msg_id} delivered twice")
    seen_deliver.add(ev.msg_id)
    try:
        m = history.message(ev.msg_id)
    except KeyError:
        raise PatternError(f"deliver event references unknown message {ev.msg_id}")
    if m.dst != ev.pid or m.deliver_seq != ev.seq:
        raise PatternError(f"message {ev.msg_id} deliver endpoint mismatch")
