"""The durable ingest WAL: hash-chained segments, group-committed fsync.

The service's promise after this module is simple to state: **an
acknowledged frame survives ``kill -9``**.  Every mutating frame
(session-creating ``hello``, ``checkpoint``, ``send``, ``deliver``) is
appended here and made durable *before* its acknowledgement leaves the
server; on restart the server replays the WAL tail on top of the newest
valid snapshots and recovers exactly the acknowledged prefix -- the
checkpointing analyzer finally eats its own dogfood, surviving the very
failures whose recovery lines it computes.

Three layers, smallest surface first:

* :class:`WalRecord` / :func:`read_wal` -- the on-disk format and its
  verifier.  A record is one line of canonical JSON carrying
  ``(seq, session, idx, op, prev, digest)`` where ``digest`` is the
  SHA-256 of the record body and ``prev`` chains it to the previous
  record, so any truncation, bit flip, deletion or reordering of
  segment files is *detected* on open.  The policy is
  **halt over degrade**: a torn tail (the records a crash caught
  mid-write, which by the commit ordering were never acknowledged) is
  dropped and reported; any damage that is not a pure tail raises
  :class:`WalCorruption` instead of serving silently-wrong state.
* :class:`IngestWal` -- the synchronous writer: buffered appends,
  explicit :meth:`~IngestWal.sync` (write + ``os.fsync``) batches,
  segment rotation, and snapshot-driven segment reclamation
  (:meth:`~IngestWal.truncate_covered`).  Reclamation durably records
  a *reclamation anchor* (``wal-anchor.json``) naming where the chain
  now starts, so a reopen can verify a WAL whose first segments were
  legitimately deleted -- while a chain starting past seq 0 with no
  anchor is still detected as leading-segment loss.
* :class:`WalCommitter` -- the asyncio group-commit front end: many
  shard workers ``await commit(seq)`` concurrently, one ``fsync``
  (run in an executor so the event loop never blocks on the disk)
  retires up to ``fsync_batch`` records for all of them at once.

:func:`recover_sessions` is the other half of durability: it folds the
verified records over the newest snapshots into per-session ingest
logs, the exact input :meth:`ServeSession.replay_log` needs.  The
server calls it at startup; tests and offline tools call it against a
crashed server's directories to know precisely what an honest recovery
must produce.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.jsonio import canonical_bytes
from repro.types import ReproError

__all__ = [
    "GENESIS",
    "IngestWal",
    "WalCommitter",
    "WalCorruption",
    "WalError",
    "WalRecord",
    "read_wal",
    "recover_sessions",
]


class WalError(ReproError):
    """A WAL operation was invalid (bad arguments, closed writer...)."""


class WalCorruption(WalError):
    """The WAL on disk is damaged beyond a pure torn tail.

    Raised by :func:`read_wal` / :class:`IngestWal` when the chain
    breaks anywhere that cannot be explained by a crash tearing the
    last unsynced batch: a record with well-formed successors fails its
    digest, a segment is missing or reordered, sequence numbers gap.
    The server treats this as fatal at startup -- it refuses to serve
    rather than degrade to silently-wrong state.
    """


#: The ``prev`` digest of the very first record (nothing before it).
GENESIS = "0" * 64

#: Segment file name pattern: first sequence number, zero padded so
#: lexicographic order is numeric order.
_SEGMENT_FMT = "wal-{:020d}.log"
_SEGMENT_GLOB = "wal-*.log"

#: The reclamation anchor: written durably by ``truncate_covered``
#: *before* it unlinks leading segments, recording the header (first
#: seq + chain digest) of the first surviving segment.  It is what lets
#: a later open start the chain mid-stream instead of at GENESIS --
#: without it, a chain that does not start at seq 0 is treated as
#: leading-segment deletion and halts.
_ANCHOR_NAME = "wal-anchor.json"


@dataclass(frozen=True)
class WalRecord:
    """One durable ingest operation.

    ``seq`` is the WAL-global position (0-based, gapless), ``session``
    the session it mutates, ``idx`` the operation's index in that
    session's ingest log (``-1`` for the session-creating ``hello``,
    which precedes the log), ``op`` the canonical operation document,
    ``prev``/``digest`` the hash chain.
    """

    seq: int
    session: str
    idx: int
    op: Dict[str, object]
    prev: str
    digest: str

    def body(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "session": self.session,
            "idx": self.idx,
            "op": self.op,
            "prev": self.prev,
        }

    def as_doc(self) -> Dict[str, object]:
        doc = self.body()
        doc["digest"] = self.digest
        return doc


def _chain_digest(body: Dict[str, object]) -> str:
    return hashlib.sha256(canonical_bytes(body)).hexdigest()


def make_record(
    seq: int, session: str, idx: int, op: Dict[str, object], prev: str
) -> WalRecord:
    """Mint one chained record (digest computed over the body)."""
    body = {"seq": seq, "session": session, "idx": idx, "op": op, "prev": prev}
    return WalRecord(
        seq=seq, session=session, idx=idx, op=op, prev=prev,
        digest=_chain_digest(body),
    )


def _record_from_doc(doc: Dict[str, object]) -> Optional[WalRecord]:
    """Parse + verify one record document; None when malformed."""
    try:
        seq = doc["seq"]
        session = doc["session"]
        idx = doc["idx"]
        op = doc["op"]
        prev = doc["prev"]
        digest = doc["digest"]
    except (KeyError, TypeError):
        return None
    if not (
        isinstance(seq, int)
        and isinstance(session, str)
        and isinstance(idx, int)
        and isinstance(op, dict)
        and isinstance(prev, str)
        and isinstance(digest, str)
    ):
        return None
    record = WalRecord(
        seq=seq, session=session, idx=idx, op=op, prev=prev, digest=digest
    )
    if _chain_digest(record.body()) != digest:
        return None
    return record


def _parse_line(line: bytes) -> Optional[Dict[str, object]]:
    try:
        doc = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    return doc if isinstance(doc, dict) else None


def _looks_like_record(doc: Dict[str, object]) -> bool:
    """A well-formed (though possibly mis-chained) record document."""
    return "seq" in doc and "digest" in doc and "op" in doc


def _segment_paths(directory: Path) -> List[Path]:
    return sorted(directory.glob(_SEGMENT_GLOB))


def _peek_header(path: Path) -> Optional[Dict[str, object]]:
    """The segment's header document, when its first line is intact."""
    with open(path, "rb") as f:
        line = f.readline()
    if not line.endswith(b"\n"):
        return None
    doc = _parse_line(line[:-1])
    if (
        doc is None
        or doc.get("wal") != 1
        or not isinstance(doc.get("first_seq"), int)
        or not isinstance(doc.get("prev"), str)
    ):
        return None
    return doc


def _read_anchor(directory: Path) -> Optional[Tuple[int, str]]:
    """``(first_seq, prev)`` of the reclamation anchor, if one exists.

    Raises :class:`WalCorruption` when the anchor file is present but
    unreadable -- callers only ask for it when the chain actually needs
    an anchor, so a broken one is indistinguishable from lost history.
    """
    path = directory / _ANCHOR_NAME
    if not path.exists():
        return None
    doc = _parse_line(path.read_bytes().strip())
    if (
        doc is None
        or doc.get("wal_anchor") != 1
        or not isinstance(doc.get("first_seq"), int)
        or not isinstance(doc.get("prev"), str)
    ):
        raise WalCorruption(f"{path.name}: unreadable reclamation anchor")
    return int(doc["first_seq"]), str(doc["prev"])  # type: ignore[arg-type]


@dataclass
class _Scan:
    """What scanning the segment directory established."""

    records: List[WalRecord]
    #: ``(path, byte offset)`` of the first torn byte, when the final
    #: segment ends in a torn (unacknowledged) tail; None when clean.
    torn: Optional[Tuple[Path, int]]
    #: Records dropped as the torn tail (diagnostic only).
    dropped: int
    #: Where the chain resumes: the seq the next appended record takes
    #: and the digest it links from.  Derivable from ``records`` only
    #: when the scan started at GENESIS; after snapshot-driven segment
    #: reclamation (or a tail torn down to a bare header) the anchor /
    #: header carries the truth even with zero surviving records.
    next_seq: int = 0
    prev: str = GENESIS


def _scan(directory: Path) -> _Scan:
    """Verify every segment; recover the longest provable prefix.

    Raises :class:`WalCorruption` for any damage that is not a pure
    tail of the final segment.  When leading segments were reclaimed by
    ``truncate_covered`` (their records all covered by durable
    snapshots), the chain legitimately starts past seq 0: the
    reclamation anchor -- written before the first unlink -- vouches
    for the new starting point, and the scan seeds ``prev``/``seq``
    from it instead of GENESIS.  A chain starting past 0 *without* an
    anchor is leading-segment deletion: halt.
    """
    paths = _segment_paths(directory)
    records: List[WalRecord] = []
    prev = GENESIS
    next_seq = 0
    if not paths:
        if (directory / _ANCHOR_NAME).exists():
            raise WalCorruption(
                "reclamation anchor present but no segment files -- the "
                "segments were deleted out from under it"
            )
        return _Scan([], torn=None, dropped=0)
    anchor_check: Optional[Tuple[int, str]] = None
    head = _peek_header(paths[0])
    first_seq = int(head["first_seq"]) if head is not None else 0  # type: ignore[arg-type]
    if first_seq > 0:
        anchor = _read_anchor(directory)
        if anchor is None:
            raise WalCorruption(
                f"{paths[0].name}: chain starts at seq {first_seq} with no "
                f"reclamation anchor -- leading segments are missing"
            )
        a_seq, a_prev = anchor
        if first_seq > a_seq:
            raise WalCorruption(
                f"{paths[0].name}: chain starts at seq {first_seq} but the "
                f"reclamation anchor only covers up to seq {a_seq} -- "
                f"segments past the anchor are missing"
            )
        if first_seq == a_seq:
            next_seq, prev = a_seq, a_prev
        else:
            # A crash between the anchor write and the unlinks left
            # extra leading segments behind.  Their records are all
            # snapshot-covered (that is why they were reclaimable), so
            # seed the chain from this segment's own header; every
            # following digest verifies it forward, and the anchored
            # segment's header re-checks it against the anchor.
            next_seq, prev = first_seq, str(head["prev"])  # type: ignore[index]
            anchor_check = anchor
    for p_i, path in enumerate(paths):
        final_segment = p_i == len(paths) - 1
        data = path.read_bytes()
        lines = data.split(b"\n")
        # A well-formed segment ends with a newline: final split is b"".
        offset = 0
        expect_header = True
        for l_i, line in enumerate(lines):
            is_last_line = l_i == len(lines) - 1
            if is_last_line and line == b"":
                break  # clean trailing newline
            doc = _parse_line(line)
            bad: Optional[str] = None
            if doc is None:
                bad = "undecodable line"
            elif expect_header:
                # Segment header: names its first seq and the chain
                # digest it continues from; catches file deletion and
                # reordering even before the first record.
                if doc.get("wal") != 1:
                    bad = "missing segment header"
                elif doc.get("first_seq") != next_seq:
                    raise WalCorruption(
                        f"{path.name}: segment header claims first_seq="
                        f"{doc.get('first_seq')!r}, chain is at {next_seq}"
                    )
                elif doc.get("prev") != prev:
                    raise WalCorruption(
                        f"{path.name}: segment header does not continue "
                        f"the chain (prev mismatch)"
                    )
                elif (
                    anchor_check is not None
                    and doc.get("first_seq") == anchor_check[0]
                    and doc.get("prev") != anchor_check[1]
                ):
                    raise WalCorruption(
                        f"{path.name}: segment header disagrees with the "
                        f"reclamation anchor at seq {anchor_check[0]}"
                    )
                else:
                    expect_header = False
            else:
                record = _record_from_doc(doc)
                if record is None:
                    bad = "record fails its digest"
                elif record.seq != next_seq:
                    raise WalCorruption(
                        f"{path.name}: record seq {record.seq} where "
                        f"{next_seq} expected (gap or reorder)"
                    )
                elif record.prev != prev:
                    raise WalCorruption(
                        f"{path.name}: chain break at seq {record.seq} "
                        f"(prev digest mismatch)"
                    )
                else:
                    records.append(record)
                    prev = record.digest
                    next_seq += 1
            if bad is not None:
                # Damage.  It is a *torn tail* -- droppable -- only if
                # it is in the final segment and nothing record-shaped
                # follows it; anything else is corruption.
                if not final_segment:
                    raise WalCorruption(f"{path.name}: {bad} (not the tail)")
                rest = lines[l_i + 1 :]
                for later in rest:
                    later_doc = _parse_line(later)
                    if later_doc is not None and _looks_like_record(later_doc):
                        raise WalCorruption(
                            f"{path.name}: {bad}, but verifiable records "
                            f"follow it -- not a torn tail"
                        )
                dropped = sum(1 for l in (line, *rest) if l.strip())
                return _Scan(
                    records,
                    torn=(path, offset),
                    dropped=dropped,
                    next_seq=next_seq,
                    prev=prev,
                )
            offset += len(line) + 1
        if expect_header and data:
            raise WalCorruption(f"{path.name}: no segment header")
    return _Scan(records, torn=None, dropped=0, next_seq=next_seq, prev=prev)


def read_wal(directory: Union[str, Path]) -> List[WalRecord]:
    """The verified record prefix of the WAL at ``directory``.

    Read-only: a torn tail is dropped from the result but left on
    disk.  Raises :class:`WalCorruption` on non-tail damage.
    """
    directory = Path(directory)
    if not directory.exists():
        return []
    return _scan(directory).records


class IngestWal:
    """The append-only writer (synchronous core; see module docstring).

    ``append`` buffers records in memory; ``sync`` writes a batch and
    ``fsync``\\ s it, advancing :attr:`durable_seq`.  Opening an
    existing directory verifies the chain, repairs a torn tail in
    place (truncating the file to the last provable byte) and resumes
    the chain where it left off.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        segment_records: int = 4096,
        fsync: bool = True,
    ) -> None:
        if segment_records <= 0:
            raise WalError("segment_records must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_records = segment_records
        self.fsync = fsync
        scan = _scan(self.directory)
        self.repaired_tail = 0
        if scan.torn is not None:
            path, offset = scan.torn
            with open(path, "r+b") as f:
                f.truncate(offset)
                f.flush()
                os.fsync(f.fileno())
            self.repaired_tail = scan.dropped
        self.recovered: List[WalRecord] = scan.records
        # Seed the chain from the scan, not from recovered records: after
        # snapshot-driven reclamation (or a tail torn down to its bare
        # header) the chain resumes past the last surviving record.
        self._prev = scan.prev
        self._next_seq = scan.next_seq
        self.durable_seq = self._next_seq - 1
        self._pending: Deque[WalRecord] = deque()
        self._file = None
        self._segment_path: Optional[Path] = None
        self._segment_count = 0
        # A crash mid-anchor-write can leave the tmp file behind; the
        # real anchor (if any) is intact, so the stale tmp is garbage.
        stale_anchor = self.directory / (_ANCHOR_NAME + ".tmp")
        if stale_anchor.exists():
            stale_anchor.unlink()
        paths = _segment_paths(self.directory)
        if paths and paths[-1].stat().st_size == 0:
            # A torn tail can eat the final segment's very header; the
            # repair above then leaves an empty file.  Resuming it
            # would append records under no header, so drop it and let
            # the next sync recreate the segment cleanly.
            paths[-1].unlink()
            paths = _segment_paths(self.directory)
        if paths:
            self._segment_path = paths[-1]
            # Count of records already in the final segment: those with
            # seq >= its first_seq (from the file name).
            first = int(paths[-1].name[len("wal-") : -len(".log")])
            self._segment_count = sum(1 for r in scan.records if r.seq >= first)
            if self._segment_count < self.segment_records:
                # Genuinely resume the final segment in place (the torn
                # tail, if any, was truncated above): reopening it for
                # append is what keeps ``_open_segment`` from ever
                # colliding with an existing file -- e.g. a tail torn
                # down to its bare header, whose next record must land
                # *after* that header, not under a second one.
                self._file = open(self._segment_path, "ab")
        self.fsyncs = 0
        self.rotations: List[str] = []
        self.closed = False

    # ------------------------------------------------------------------
    @property
    def last_seq(self) -> int:
        """Highest appended seq (may not be durable yet); -1 if none."""
        return self._next_seq - 1

    def pending(self) -> int:
        """Appended records not yet fsynced."""
        return len(self._pending)

    def append(self, session: str, idx: int, op: Dict[str, object]) -> WalRecord:
        """Buffer one record; durable only after a later :meth:`sync`."""
        if self.closed:
            raise WalError("append on a closed WAL")
        record = make_record(self._next_seq, session, idx, dict(op), self._prev)
        self._prev = record.digest
        self._next_seq += 1
        self._pending.append(record)
        return record

    # ------------------------------------------------------------------
    def _open_segment(self, first_seq: int, prev: str) -> None:
        path = self.directory / _SEGMENT_FMT.format(first_seq)
        if path.exists():
            # Resume (in __init__) owns every existing-file case; an
            # existing segment here means the writer's idea of the
            # chain has diverged from the directory.  Appending would
            # bury a second header mid-file and corrupt the segment, so
            # fail loudly instead (and open with "x" as a backstop).
            raise WalError(
                f"segment {path.name} already exists; refusing to "
                f"overwrite or double-header it"
            )
        self._segment_path = path
        self._segment_count = 0
        self.rotations.append(path.name)
        header = {
            "wal": 1,
            "first_seq": first_seq,
            "prev": prev,
            # Wall clock here is operational metadata only: it never
            # enters a digest, a trace or any deterministic artifact.
            "created_unix": time.time(),  # lint: allow-wall-clock
        }
        self._file = open(path, "xb")
        self._file.write(canonical_bytes(header) + b"\n")

    def sync(self, max_records: Optional[int] = None) -> int:
        """Write up to ``max_records`` pending records, fsync, return
        the new :attr:`durable_seq`.

        ``None`` drains everything pending.  One call is one fsync (or
        zero, with ``fsync=False`` -- the benchmark's no-durability
        baseline); group commit is the caller batching many logical
        commits onto one call.
        """
        if self.closed:
            raise WalError("sync on a closed WAL")
        count = len(self._pending) if max_records is None else min(
            max_records, len(self._pending)
        )
        if count == 0:
            return self.durable_seq
        wrote = False
        for _ in range(count):
            record = self._pending.popleft()
            if self._file is None or self._segment_count >= self.segment_records:
                if self._file is not None:
                    self._fsync_file()
                    self._file.close()
                self._open_segment(record.seq, record.prev)
            self._file.write(canonical_bytes(record.as_doc()) + b"\n")
            self._segment_count += 1
            self.durable_seq = record.seq
            wrote = True
        if wrote and self._file is not None:
            self._fsync_file()
        return self.durable_seq

    def _fsync_file(self) -> None:
        assert self._file is not None
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
            self.fsyncs += 1

    def drain_rotations(self) -> List[str]:
        """Segment files opened since the last call (for tracing)."""
        out, self.rotations = self.rotations, []
        return out

    # ------------------------------------------------------------------
    def segment_names(self) -> List[str]:
        return [p.name for p in _segment_paths(self.directory)]

    def _segment_covered(self, path: Path, watermarks: Dict[str, int]) -> bool:
        """Every record in the segment is at or below its session's mark."""
        for line in path.read_bytes().split(b"\n"):
            if not line.strip():
                continue
            doc = _parse_line(line)
            if doc is None or doc.get("wal") == 1:
                continue
            session = doc.get("session")
            seq = doc.get("seq")
            if watermarks.get(str(session), -1) < int(seq):  # type: ignore[arg-type]
                return False
        return True

    def _write_anchor(self, first_seq: int, prev: str) -> None:
        """Durably record where the chain resumes after reclamation.

        Atomic (write-tmp, fsync, rename, fsync directory): a crash at
        any point leaves either the previous anchor or the new one,
        never a torn file -- and the anchor is on disk *before* the
        first unlink, so a reopen always finds it when it finds a chain
        that no longer starts at GENESIS.
        """
        doc = {"wal_anchor": 1, "first_seq": first_seq, "prev": prev}
        path = self.directory / _ANCHOR_NAME
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as f:
            f.write(canonical_bytes(doc) + b"\n")
            f.flush()
            if self.fsync:
                os.fsync(f.fileno())
        os.replace(tmp, path)
        if self.fsync:
            dir_fd = os.open(self.directory, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)

    def truncate_covered(self, watermarks: Dict[str, int]) -> List[str]:
        """Reclaim closed segments fully covered by session snapshots.

        ``watermarks[session]`` is the highest WAL seq a durable
        snapshot of that session covers.  A segment is deleted only
        when *every* record in it belongs to a session whose watermark
        is at or past that record -- and never the active segment nor
        the final one (the chain needs a surviving anchor segment).
        Before the first unlink, the first surviving segment's header
        is recorded in the reclamation anchor (:meth:`_write_anchor`)
        so the next open can verify a chain that starts past seq 0.
        Returns the deleted file names.
        """
        paths = _segment_paths(self.directory)
        deletable: List[Path] = []
        for path in paths[:-1]:
            if path == self._segment_path:
                break  # never the active tail
            if not self._segment_covered(path, watermarks):
                break  # segments are ordered; later ones end even higher
            deletable.append(path)
        if not deletable:
            return []
        survivor = paths[len(deletable)]
        head = _peek_header(survivor)
        if head is None:
            raise WalCorruption(
                f"{survivor.name}: unreadable segment header; refusing to "
                f"reclaim the segments before it"
            )
        self._write_anchor(int(head["first_seq"]), str(head["prev"]))  # type: ignore[arg-type]
        removed: List[str] = []
        for path in deletable:
            path.unlink()
            removed.append(path.name)
        return removed

    def close(self) -> None:
        if self.closed:
            return
        self.sync()
        if self._file is not None:
            self._file.close()
            self._file = None
        self.closed = True

    def __repr__(self) -> str:
        return (
            f"<IngestWal {self.directory} last={self.last_seq} "
            f"durable={self.durable_seq} pending={len(self._pending)}>"
        )


class WalCommitter:
    """Asyncio group commit over one :class:`IngestWal`.

    Shard workers append records synchronously (in-order, on the loop)
    and then ``await commit(seq)``; the committer coalesces all waiters
    onto as few fsyncs as possible, each fsync retiring up to
    ``fsync_batch`` records and running in the default executor so the
    event loop keeps serving other connections meanwhile.
    """

    def __init__(self, wal: IngestWal, fsync_batch: int = 64) -> None:
        if fsync_batch <= 0:
            raise WalError("fsync_batch must be positive")
        self.wal = wal
        self.fsync_batch = fsync_batch
        self._flushing = None  # the in-flight flush future, if any
        self.commits = 0  # completed fsync batches
        self.committed_records = 0

    async def commit(self, seq: int) -> int:
        """Return once every record up to ``seq`` is durable."""
        import asyncio

        while self.wal.durable_seq < seq:
            if self._flushing is None:
                self._flushing = asyncio.ensure_future(self._flush_once())
            flushing = self._flushing
            # Shield: a cancelled waiter (dying connection) must not
            # abort the fsync other waiters' acks depend on.
            await asyncio.shield(flushing)
        return self.wal.durable_seq

    async def _flush_once(self) -> None:
        import asyncio

        loop = asyncio.get_running_loop()
        try:
            before = self.wal.durable_seq
            await loop.run_in_executor(None, self.wal.sync, self.fsync_batch)
            self.commits += 1
            self.committed_records += self.wal.durable_seq - before
        finally:
            self._flushing = None

    def __repr__(self) -> str:
        return f"<WalCommitter batch={self.fsync_batch} {self.wal!r}>"


# ----------------------------------------------------------------------
# recovery: records + snapshots -> per-session ingest logs
# ----------------------------------------------------------------------
@dataclass
class RecoveredSession:
    """One session as the WAL + snapshots prove it existed."""

    session_id: str
    n: int
    protocol: str
    log: List[Dict[str, object]]
    #: Highest WAL seq that contributed (or the snapshot watermark when
    #: every record was already covered); -1 for a snapshot-only session
    #: whose snapshot predates the WAL.
    wal_seq: int
    from_snapshot: bool


def recover_sessions(
    records: Iterable[WalRecord],
    snapshots: Optional[Dict[str, Dict[str, object]]] = None,
) -> Dict[str, RecoveredSession]:
    """Fold verified WAL records over snapshot documents.

    ``snapshots`` maps session id to its newest snapshot document
    (``repro.serve.snapshots`` schema; ``wal_seq``/``log`` are what
    matters here).  Per session the result is the snapshot's log plus
    every record with ``idx`` at or past the snapshot log's length,
    applied contiguously; a gap -- a record the chain proves existed
    whose predecessors are neither in the WAL nor covered by a
    snapshot -- raises :class:`WalCorruption` (halt over degrade).
    """
    snapshots = snapshots or {}
    out: Dict[str, RecoveredSession] = {}
    for session_id, doc in snapshots.items():
        out[session_id] = RecoveredSession(
            session_id=session_id,
            n=int(doc["n"]),  # type: ignore[arg-type]
            protocol=str(doc["protocol"]),
            log=[dict(op) for op in doc["log"]],  # type: ignore[union-attr]
            wal_seq=int(doc.get("wal_seq", -1)),  # type: ignore[arg-type]
            from_snapshot=True,
        )
    for record in records:
        session = out.get(record.session)
        if record.idx == -1:
            # Session creation.  Idempotent under a covering snapshot.
            op = record.op
            if session is None:
                out[record.session] = RecoveredSession(
                    session_id=record.session,
                    n=int(op.get("n", -1)),  # type: ignore[arg-type]
                    protocol=str(op.get("protocol", "")),
                    log=[],
                    wal_seq=record.seq,
                    from_snapshot=False,
                )
            else:
                session.wal_seq = max(session.wal_seq, record.seq)
            continue
        if session is None:
            raise WalCorruption(
                f"record seq {record.seq} mutates session "
                f"{record.session!r} with no creation record and no "
                f"snapshot -- the WAL prefix covering it is gone"
            )
        if record.idx < len(session.log):
            # Already covered by the snapshot; the record is the
            # snapshot's provenance, not new work.
            session.wal_seq = max(session.wal_seq, record.seq)
            continue
        if record.idx > len(session.log):
            raise WalCorruption(
                f"session {record.session!r}: record seq {record.seq} has "
                f"op index {record.idx} but only {len(session.log)} "
                f"operations are recoverable before it"
            )
        session.log.append(dict(record.op))
        session.wal_seq = max(session.wal_seq, record.seq)
    return out
