"""Replaying a trace under a checkpointing protocol.

Folds one protocol family (one instance per process) over a
protocol-independent trace, producing the recorded
:class:`repro.events.history.History` -- sends and deliveries verbatim,
basic checkpoints verbatim, plus the protocol's forced checkpoints
inserted immediately before the deliveries (or after the sends, for
checkpoint-after-send protocols) that triggered them.

Because the trace is shared, replaying it under several protocols is the
exact analogue of the paper's simulation study: identical communication
pattern, identical basic checkpoints, only the forced checkpoints
differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.analysis.metrics import RunMetrics, metrics_from_history
from repro.obs.profile import NULL_PROFILER
from repro.core.piggyback import Piggyback
from repro.core.protocol import CheckpointProtocol, ProtocolFamily
from repro.events.event import CheckpointKind, Event, EventKind, Message
from repro.events.history import History
from repro.events.validate import validate_history
from repro.sim.trace import Trace, TraceOp, TraceOpKind
from repro.types import MessageId, ProcessId, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.profile import Profiler
    from repro.obs.tracer import Tracer

#: Minimal spacing between consecutive events of one process; trace op
#: times are macroscopic (O(0.01+)) so nudges never reorder anything.
_EPS = 1e-9


class _Recorder:
    """Accumulates per-process event lists with strictly increasing times."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.events: List[List[Event]] = [[] for _ in range(n)]
        self.messages: Dict[MessageId, Message] = {}
        self._ckpt_index = [0] * n
        self._last_time = [-1.0] * n
        for pid in range(n):
            self.checkpoint(pid, 0.0, CheckpointKind.INITIAL)

    def _time_for(self, pid: ProcessId, requested: float) -> float:
        time = max(requested, self._last_time[pid] + _EPS)
        self._last_time[pid] = time
        return time

    def _append(self, pid: ProcessId, kind: EventKind, time: float, **fields) -> Event:
        ev = Event(
            pid=pid,
            seq=len(self.events[pid]),
            kind=kind,
            time=self._time_for(pid, time),
            **fields,
        )
        self.events[pid].append(ev)
        return ev

    def checkpoint(
        self, pid: ProcessId, time: float, kind: CheckpointKind
    ) -> Event:
        if kind is CheckpointKind.INITIAL:
            index = 0
        else:
            self._ckpt_index[pid] += 1
            index = self._ckpt_index[pid]
        return self._append(
            pid,
            EventKind.CHECKPOINT,
            time,
            checkpoint_index=index,
            checkpoint_kind=kind,
        )

    def send(self, op: TraceOp) -> Event:
        assert op.msg_id is not None and op.peer is not None
        ev = self._append(op.pid, EventKind.SEND, op.time, msg_id=op.msg_id)
        self.messages[op.msg_id] = Message(
            msg_id=op.msg_id,
            src=op.pid,
            dst=op.peer,
            send_seq=ev.seq,
            size=op.size,
        )
        return ev

    def deliver(self, op: TraceOp) -> Event:
        assert op.msg_id is not None
        m = self.messages[op.msg_id]
        ev = self._append(op.pid, EventKind.DELIVER, op.time, msg_id=op.msg_id)
        self.messages[op.msg_id] = Message(
            msg_id=m.msg_id,
            src=m.src,
            dst=m.dst,
            send_seq=m.send_seq,
            deliver_seq=ev.seq,
            size=m.size,
        )
        return ev

    def snapshot(self, pid: ProcessId) -> tuple:
        """Opaque restore token for ``pid``'s current recorded state."""
        return (len(self.events[pid]), self._ckpt_index[pid], self._last_time[pid])

    def restore(self, pid: ProcessId, snap: tuple) -> List[Event]:
        """Roll ``pid`` back to a :meth:`snapshot`; returns the undone events.

        Sends after the snapshot are forgotten (their re-execution
        re-records them identically); deliveries after it revert the
        message to in-transit.  Restoring ``_last_time`` is what makes a
        piecewise-deterministic re-execution reproduce byte-identical
        event times.
        """
        n_events, ckpt_index, last_time = snap
        undone = self.events[pid][n_events:]
        del self.events[pid][n_events:]
        self._ckpt_index[pid] = ckpt_index
        self._last_time[pid] = last_time
        for ev in undone:
            if ev.is_send:
                del self.messages[ev.msg_id]
            elif ev.is_deliver:
                # The send side may already be undone (both endpoints
                # rolled back): then there is no entry left to revert.
                m = self.messages.get(ev.msg_id)
                if m is not None:
                    self.messages[ev.msg_id] = Message(
                        msg_id=m.msg_id,
                        src=m.src,
                        dst=m.dst,
                        send_seq=m.send_seq,
                        size=m.size,
                    )
        return undone

    def build(self, close: bool) -> History:
        history = History(self.events, self.messages)
        if close:
            history = history.closed()
        validate_history(history)
        return history


@dataclass
class ReplayResult:
    """Outcome of one protocol replay."""

    protocol_name: str
    history: History
    family: ProtocolFamily
    metrics: RunMetrics

    def __repr__(self) -> str:
        return (
            f"<ReplayResult {self.protocol_name}: "
            f"forced={self.metrics.forced_checkpoints} "
            f"basic={self.metrics.basic_checkpoints}>"
        )


def replay(
    trace: Trace,
    protocol_factory: Callable[[ProcessId, int], CheckpointProtocol],
    close: bool = True,
    tracer: Optional["Tracer"] = None,
    metrics: Optional["MetricsRegistry"] = None,
    profiler: Optional["Profiler"] = None,
) -> ReplayResult:
    """Replay ``trace`` under the protocol built by ``protocol_factory``.

    The driver honours the contract documented on
    :class:`repro.core.protocol.CheckpointProtocol`.

    Observability (all optional, each free when unset): ``tracer``
    receives one ``proto.predicate`` event per delivery -- with the
    piggyback *input* and the decision, making every forced checkpoint
    auditable -- plus ``proto.forced``/``proto.ckpt`` records; ``metrics``
    maintains the ``replay.*`` counter family; ``profiler`` attributes
    the fold to ``simulate`` and history building to ``closure``.
    """
    profiler = profiler or NULL_PROFILER
    family = ProtocolFamily(protocol_factory, trace.n)
    recorder = _Recorder(trace.n)
    piggybacks: Dict[MessageId, Piggyback] = {}
    name = family.name
    with profiler.phase("simulate"):
        for op in trace:
            proto = family[op.pid]
            if op.kind is TraceOpKind.SEND:
                assert op.msg_id is not None
                pb = piggybacks[op.msg_id] = proto.on_send(op.peer)
                recorder.send(op)
                if metrics is not None:
                    metrics.inc("replay.piggyback_bits", pb.size_bits())
                if proto.wants_checkpoint_after_send():
                    recorder.checkpoint(op.pid, op.time, CheckpointKind.FORCED)
                    proto.on_checkpoint(forced=True)
                    if tracer:
                        tracer.event(
                            "proto.forced",
                            op.time,
                            protocol=name,
                            pid=op.pid,
                            cause="after_send",
                            msg=op.msg_id,
                            index=proto.tdv[op.pid] - 1,
                        )
                    if metrics is not None:
                        metrics.inc("replay.forced")
                        metrics.inc(f"replay.forced.p{op.pid}")
            elif op.kind is TraceOpKind.DELIVER:
                assert op.msg_id is not None and op.peer is not None
                pb = piggybacks[op.msg_id]
                forced = proto.wants_forced_checkpoint(pb, op.peer)
                if tracer:
                    tracer.event(
                        "proto.predicate",
                        op.time,
                        protocol=name,
                        pid=op.pid,
                        sender=op.peer,
                        msg=op.msg_id,
                        piggyback=pb,
                        forced=forced,
                    )
                if metrics is not None:
                    metrics.inc("replay.predicate_evals")
                if forced:
                    recorder.checkpoint(op.pid, op.time, CheckpointKind.FORCED)
                    proto.on_checkpoint(forced=True)
                    if tracer:
                        tracer.event(
                            "proto.forced",
                            op.time,
                            protocol=name,
                            pid=op.pid,
                            cause="predicate",
                            msg=op.msg_id,
                            index=proto.tdv[op.pid] - 1,
                        )
                    if metrics is not None:
                        metrics.inc("replay.forced")
                        metrics.inc(f"replay.forced.p{op.pid}")
                proto.on_receive(pb, op.peer)
                recorder.deliver(op)
            elif op.kind is TraceOpKind.BASIC_CHECKPOINT:
                recorder.checkpoint(op.pid, op.time, CheckpointKind.BASIC)
                proto.on_checkpoint(forced=False)
                if tracer:
                    tracer.event(
                        "proto.ckpt",
                        op.time,
                        protocol=name,
                        pid=op.pid,
                        ckpt="basic",
                        index=proto.tdv[op.pid] - 1,
                    )
                if metrics is not None:
                    metrics.inc("replay.basic")
                    metrics.inc(f"replay.basic.p{op.pid}")
            else:  # pragma: no cover - exhaustive enum
                raise SimulationError(f"unknown op {op!r}")
    with profiler.phase("closure"):
        history = recorder.build(close)
    run_metrics = metrics_from_history(
        history,
        protocol=name,
        piggyback_bits_total=family.total_piggyback_bits(),
    )
    _cross_check_forced(run_metrics, family)
    return ReplayResult(
        protocol_name=name, history=history, family=family, metrics=run_metrics
    )


def _cross_check_forced(metrics: RunMetrics, family: ProtocolFamily) -> None:
    """The history's FORCED count must equal the protocols' own count."""
    if metrics.forced_checkpoints != family.total_forced():
        raise SimulationError(
            "internal inconsistency: history records "
            f"{metrics.forced_checkpoints} forced checkpoints, protocols "
            f"counted {family.total_forced()}"
        )


def replay_many(
    trace: Trace,
    factories: Dict[str, Callable[[ProcessId, int], CheckpointProtocol]],
    close: bool = True,
) -> Dict[str, ReplayResult]:
    """Replay one trace under several protocols (the comparison setup)."""
    return {
        name: replay(trace, factory, close=close)
        for name, factory in factories.items()
    }
