"""Shared identifiers and exception hierarchy for the ``repro`` package.

The whole library speaks a single small vocabulary, fixed here:

* processes are identified by dense integers ``0 .. n-1``;
* a local checkpoint is identified by a :class:`CheckpointId` pair
  ``(pid, index)`` where ``index`` counts checkpoints of that process
  starting from the initial checkpoint ``C(i, 0)``;
* checkpoint *interval* ``I(i, x)`` (``x >= 1``) denotes the events of
  process ``i`` strictly between checkpoints ``x - 1`` and ``x``.  The
  interval that is open at the end of a computation has index
  ``last_index + 1``.

These conventions follow the Baldoni-Helary-Mostefaoui-Raynal paper (see
DESIGN.md section 4).
"""

from __future__ import annotations

from dataclasses import dataclass

ProcessId = int
MessageId = int
IntervalIndex = int


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class PatternError(ReproError):
    """A checkpoint-and-communication pattern is malformed."""


class ProtocolError(ReproError):
    """A checkpointing protocol was driven incorrectly or misconfigured."""


class SimulationError(ReproError):
    """The discrete-event simulation was configured or driven incorrectly."""


class AnalysisError(ReproError):
    """An analysis algorithm received input it cannot handle."""


class RecoveryError(ReproError):
    """Online recovery could not be carried out (e.g. a message crossing
    the recovery line is missing from its sender's log)."""


@dataclass(frozen=True, order=True)
class CheckpointId:
    """Identity of a local checkpoint ``C(pid, index)``.

    ``index`` is the per-process checkpoint counter; every process has an
    initial checkpoint with index 0.  Instances are ordered lexicographically
    by ``(pid, index)`` which gives a stable, deterministic iteration order
    for reports.
    """

    pid: ProcessId
    index: int

    def __post_init__(self) -> None:
        if self.pid < 0:
            raise ValueError(f"pid must be non-negative, got {self.pid}")
        if self.index < 0:
            raise ValueError(f"index must be non-negative, got {self.index}")

    def __repr__(self) -> str:  # C(2,5) reads like the paper's C_{2,5}
        return f"C({self.pid},{self.index})"

    @property
    def interval_before(self) -> IntervalIndex:
        """Index of the checkpoint interval that this checkpoint closes.

        By the paper's convention, interval ``I(i, x)`` is closed by
        checkpoint ``C(i, x)``; the initial checkpoint closes no interval
        (its value 0 is still returned for uniformity, but no interval 0
        contains events).
        """
        return self.index

    @property
    def interval_after(self) -> IntervalIndex:
        """Index of the checkpoint interval opened by this checkpoint."""
        return self.index + 1
