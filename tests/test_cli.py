"""CLI tests (in-process via main(argv))."""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestRun:
    def test_run_prints_metrics(self, capsys):
        code, out = run_cli(
            capsys, "run", "--protocol", "bhmr", "-n", "3", "--duration", "15"
        )
        assert code == 0
        assert "bhmr" in out and "forced" in out

    def test_run_check_rdt_pass(self, capsys):
        code, out = run_cli(
            capsys, "run", "--protocol", "fdas", "-n", "3",
            "--duration", "15", "--check-rdt",
        )
        assert code == 0 and "holds" in out

    def test_run_check_rdt_fail_sets_exit_code(self, capsys):
        code, out = run_cli(
            capsys, "run", "--protocol", "independent", "-n", "3",
            "--duration", "30", "--basic-rate", "0.5", "--check-rdt",
            "--workload-arg", "send_rate=2.0",
        )
        assert code == 1

    def test_unknown_workload_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--workload", "nope"])

    def test_workload_arg_validation(self):
        with pytest.raises(SystemExit):
            main(["run", "--workload-arg", "garbage"])


class TestCompare:
    def test_compare_table(self, capsys):
        code, out = run_cli(
            capsys, "compare", "-n", "3", "--duration", "15",
            "--protocols", "bhmr", "fdas", "--seeds", "0",
        )
        assert code == 0
        assert "bhmr" in out and "fdas" in out and "R" in out


class TestSweep:
    def test_sweep_series(self, capsys):
        code, out = run_cli(
            capsys, "sweep", "-n", "3", "--duration", "12",
            "--rates", "0.1", "0.4", "--seeds", "0",
        )
        assert code == 0
        assert "basic_rate" in out


class TestAnalyze:
    def test_figure1_reports_violation(self, capsys):
        code, out = run_cli(capsys, "analyze", "figure1")
        assert code == 1
        assert "VIOLATED" in out and "Z-cycles" in out

    def test_domino_pattern(self, capsys):
        code, out = run_cli(capsys, "analyze", "domino", "--rounds", "3")
        assert "pattern" in out

    def test_simulated_with_protocol(self, capsys):
        code, out = run_cli(
            capsys, "analyze", "simulated", "--protocol", "bhmr",
            "-n", "3", "--duration", "15",
        )
        assert code == 0 and "holds" in out


class TestRecover:
    def test_recovery_output(self, capsys):
        code, out = run_cli(
            capsys, "recover", "-n", "3", "--duration", "20",
            "--crash-pid", "1", "--crash-time", "10",
        )
        assert code == 0
        assert "recovery line" in out and "events undone" in out


class TestRegistries:
    def test_protocols_listing(self, capsys):
        code, out = run_cli(capsys, "protocols")
        assert code == 0
        assert "bhmr" in out and "independent" in out

    def test_workloads_listing(self, capsys):
        code, out = run_cli(capsys, "workloads")
        assert code == 0
        assert "client-server" in out


class TestModuleEntry:
    def test_python_dash_m(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "protocols"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0 and "bhmr" in proc.stdout


class TestSaveLoad:
    def test_run_save_then_analyze_file(self, capsys, tmp_path):
        path = str(tmp_path / "run.json")
        code, out = run_cli(
            capsys, "run", "--protocol", "bhmr", "-n", "3",
            "--duration", "15", "--save", path,
        )
        assert code == 0 and "saved" in out
        code, out = run_cli(capsys, "analyze", "file", "--path", path)
        assert code == 0 and "holds" in out

    def test_analyze_file_requires_path(self):
        with pytest.raises(SystemExit):
            main(["analyze", "file"])


RUN_ARGS = ["run", "--protocol", "bhmr", "-n", "3", "--duration", "15"]


class TestJsonMode:
    def test_run_json_is_one_canonical_document(self, capsys):
        code, out = run_cli(capsys, *RUN_ARGS, "--json")
        assert code == 0
        doc = json.loads(out)  # exactly one JSON value on stdout
        assert doc["command"] == "run" and doc["protocol"] == "bhmr"
        assert doc["run"]["forced_checkpoints"] > 0
        assert out == json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"

    def test_run_json_is_reproducible(self, capsys):
        _, out1 = run_cli(capsys, *RUN_ARGS, "--json")
        _, out2 = run_cli(capsys, *RUN_ARGS, "--json")
        assert out1 == out2

    def test_run_json_check_rdt_field_and_exit_code(self, capsys):
        code, out = run_cli(
            capsys, "run", "--protocol", "independent", "-n", "3",
            "--duration", "30", "--basic-rate", "0.5", "--check-rdt",
            "--workload-arg", "send_rate=2.0", "--json",
        )
        assert code == 1
        assert json.loads(out)["rdt"] is False

    def test_compare_json(self, capsys):
        code, out = run_cli(
            capsys, "compare", "-n", "3", "--duration", "12",
            "--protocols", "bhmr", "fdas", "--seeds", "0", "--json",
        )
        assert code == 0
        doc = json.loads(out)
        names = [p["protocol"] for p in doc["compare"]["protocols"]]
        assert names == ["bhmr", "fdas"]
        for proto in doc["compare"]["protocols"]:
            assert "forced_total" in proto and "basic_total" in proto

    def test_sweep_json_with_metrics_and_profile(self, capsys):
        code, out = run_cli(
            capsys, "sweep", "-n", "3", "--duration", "10",
            "--rates", "0.1", "0.4", "--seeds", "0",
            "--metrics", "--profile", "--json",
        )
        assert code == 0
        doc = json.loads(out)
        stats = doc["sweep"]["stats"]
        counters = doc["metrics"]["counters"]
        assert counters["sweep.cells_run"] == 2
        assert counters["replay.forced"] > 0
        assert any(k.startswith("replay.forced.p") for k in counters)
        assert set(stats["phase_seconds"]) >= {"generate", "simulate"}
        assert set(doc["profile"]) >= {"generate", "simulate"}
        assert len(doc["sweep"]["comparisons"]) == 2


class TestObsFlags:
    def test_trace_flag_writes_deterministic_file(self, capsys, tmp_path):
        a, b = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
        code, out = run_cli(capsys, *RUN_ARGS, "--trace", a)
        assert code == 0 and "trace:" in out
        run_cli(capsys, *RUN_ARGS, "--trace", b)
        data = (tmp_path / "a.jsonl").read_bytes()
        assert data == (tmp_path / "b.jsonl").read_bytes() and data
        first = json.loads(data.splitlines()[0])
        assert {"kind", "t", "seq"} <= set(first)

    def test_metrics_flag_prints_table(self, capsys):
        code, out = run_cli(capsys, *RUN_ARGS, "--metrics")
        assert code == 0
        assert "replay.forced" in out and "kernel.events" in out

    def test_profile_flag_prints_phases(self, capsys):
        code, out = run_cli(capsys, *RUN_ARGS, "--profile")
        assert code == 0
        assert "profile:" in out and "simulate=" in out

    def test_sweep_backend_serial_flag(self, capsys):
        code, out = run_cli(
            capsys, "sweep", "-n", "3", "--duration", "10",
            "--rates", "0.1", "--seeds", "0", "--backend", "serial",
        )
        assert code == 0 and "basic_rate" in out

    def test_sweep_cache_flag_round_trip(self, capsys, tmp_path):
        args = [
            "sweep", "-n", "3", "--duration", "10", "--rates", "0.1",
            "--seeds", "0", "--cache", str(tmp_path / "cache"), "--json",
            "--metrics",
        ]
        _, cold = run_cli(capsys, *args)
        _, warm = run_cli(capsys, *args)
        assert json.loads(cold)["sweep"]["comparisons"] == \
            json.loads(warm)["sweep"]["comparisons"]
        assert json.loads(warm)["sweep"]["stats"]["cache_hits"] == 1


class TestRegistriesJson:
    """The --json listings: complete, canonical, machine-readable."""

    def test_protocols_json(self, capsys):
        from repro import PROTOCOLS

        code, out = run_cli(capsys, "protocols", "--json")
        assert code == 0
        doc = json.loads(out)
        assert doc["command"] == "protocols"
        entries = doc["protocols"]
        assert {e["name"] for e in entries} == set(PROTOCOLS)
        for entry in entries:
            assert set(entry) == {
                "name", "class", "doc", "ensures_rdt", "carries_tdv", "family",
            }
            assert entry["doc"], f"{entry['name']} has no doc line"
            assert entry["family"] in ("rdt", "baseline")
            assert isinstance(entry["ensures_rdt"], bool)

    def test_workloads_json(self, capsys):
        from repro import WORKLOADS

        code, out = run_cli(capsys, "workloads", "--json")
        assert code == 0
        doc = json.loads(out)
        assert doc["command"] == "workloads"
        entries = doc["workloads"]
        assert {e["name"] for e in entries} == set(WORKLOADS)
        for entry in entries:
            assert set(entry) == {"name", "class", "doc"}
            assert entry["doc"], f"{entry['name']} has no doc line"

    def test_json_output_is_canonical(self, capsys):
        # Stable byte-for-byte across invocations: sorted keys, no noise.
        _, first = run_cli(capsys, "protocols", "--json")
        _, again = run_cli(capsys, "protocols", "--json")
        assert first == again
        assert json.dumps(json.loads(first), sort_keys=True,
                          separators=(",", ":")) + "\n" == first


class TestServiceVerbs:
    """repro serve / client / loadgen wired through the CLI."""

    @pytest.fixture
    def service(self, tmp_path):
        from repro.serve.server import ServerConfig, serve_in_thread

        config = ServerConfig(unix_path=str(tmp_path / "cli.sock"))
        with serve_in_thread(config) as handle:
            yield handle

    def test_client_roundtrip(self, capsys, service):
        addr = service.connect_address()
        code, out = run_cli(
            capsys, "client", addr, "hello", "--session", "s", "-n", "2"
        )
        assert code == 0
        assert json.loads(out)["ok"] is True
        code, out = run_cli(
            capsys, "client", addr, "checkpoint", "--session", "s", "--pid", "0"
        )
        assert json.loads(out)["index"] == 1
        code, out = run_cli(
            capsys, "client", addr, "query", "--session", "s",
            "--what", "metrics",
        )
        assert json.loads(out)["checkpoints"] == 1

    def test_client_requires_session(self, service):
        with pytest.raises(SystemExit):
            main(["client", service.connect_address(), "hello"])

    def test_client_dead_endpoint_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot connect"):
            main([
                "client", f"unix:{tmp_path}/nobody.sock", "hello",
                "--session", "s", "--timeout", "2",
            ])

    def test_loadgen_json(self, capsys, service):
        code, out = run_cli(
            capsys, "loadgen", service.connect_address(), "--json",
            "--sessions", "2", "-n", "3", "--duration", "10",
            "--window", "16", "--query-every", "20",
        )
        assert code == 0
        doc = json.loads(out)
        assert doc["command"] == "loadgen"
        load = doc["load"]
        assert load["errors"] == 0 and load["shed"] == 0
        assert load["acked"] > 0 and load["queries"] > 0
        assert load["acked"] == sum(load["per_session"].values())
