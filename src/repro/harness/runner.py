"""Parallel, cached execution of sweep experiments.

:func:`repro.harness.sweep.ratio_sweep` runs every (x, protocols, seeds)
cell of a figure serially in-process.  This module fans the same cells
out over worker processes and memoises finished cells in a
content-addressed on-disk cache, while guaranteeing bit-identical
results to the serial path:

* **Determinism.**  A cell is a pure function of (scenario factory, x,
  protocol list, baseline, seeds, verify_rdt): each simulation seeds its
  own ``random.Random`` from the cell's seed list, so neither worker
  count nor scheduling order can change a result.  The property suite in
  ``tests/test_runner_parallel.py`` pins serial == parallel for random
  cell sets, and :func:`derive_cell_seeds` derives decorrelated per-cell
  seed lists from one master seed when callers want them.

* **Content-addressed caching.**  The cache key is the SHA-256 of a
  canonical JSON description of the cell -- workload class + parameters,
  simulation config (delay model included), protocol list, baseline,
  seeds, verify flag.  The cached payload is the canonical JSON encoding
  of the :class:`~repro.harness.experiment.ComparisonResult`, so a cache
  hit returns the *same bytes* a cold run produced.  Any change to a knob
  changes the key; stale entries are simply never addressed again.

* **Portability.**  Worker processes need the scenario callable to be
  picklable (a module-level function).  When it is not -- or when only
  one worker is requested -- the runner silently degrades to the serial
  path; results are identical either way, only the wall time differs.

Timing and hit statistics are collected in :class:`RunnerStats` and
rendered by :func:`repro.harness.tables.render_runner_stats`.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.harness.experiment import ComparisonResult, compare_protocols
from repro.harness.sweep import ScenarioAt, SweepResult
from repro.obs.jsonio import canonical_bytes, canonical_dumps, jsonable
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.profile import Profiler

__all__ = [
    "ResultCache",
    "RunnerStats",
    "SweepCell",
    "cell_key",
    "comparison_from_payload",
    "comparison_to_payload",
    "derive_cell_seeds",
    "describe_cell",
    "run_sweep",
]


# ----------------------------------------------------------------------
# cells
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepCell:
    """One unit of sweep work: every protocol at one swept value."""

    x_label: str
    x: object
    scenario: ScenarioAt
    protocols: Tuple[str, ...]
    baseline: str
    seeds: Tuple[int, ...]
    verify_rdt: bool = False

    @property
    def scenario_name(self) -> str:
        return f"{self.x_label}={self.x}"


def describe_cell(cell: SweepCell) -> Dict[str, object]:
    """Canonical description of a cell -- the cache key's preimage.

    Instantiates the workload once to capture its class name and
    constructor-derived attributes; the simulation config contributes
    every field, with the delay model via its (stable dataclass) repr.
    """
    make_workload, config = cell.scenario(cell.x)
    workload = make_workload()
    return {
        "x_label": cell.x_label,
        "x": jsonable(cell.x),
        "workload": {
            "name": workload.name,
            "params": jsonable(vars(workload)),
        },
        "config": jsonable(dict(config.__dict__)),
        "protocols": list(cell.protocols),
        "baseline": cell.baseline,
        "seeds": list(cell.seeds),
        "verify_rdt": cell.verify_rdt,
    }


def cell_key(cell: SweepCell) -> str:
    """Content address of a cell: SHA-256 over its canonical description."""
    canonical = canonical_dumps(describe_cell(cell))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def derive_cell_seeds(master_seed: int, cell_tag: str, count: int) -> Tuple[int, ...]:
    """Deterministic per-cell seed list from one master seed.

    Hash-derived so that cells never share streams no matter how the
    sweep is re-sliced, yet a given (master_seed, cell_tag, i) always
    yields the same seed on every machine and worker.
    """
    seeds = []
    for i in range(count):
        digest = hashlib.sha256(
            f"{master_seed}:{cell_tag}:{i}".encode("utf-8")
        ).digest()
        seeds.append(int.from_bytes(digest[:8], "big") & 0x7FFFFFFF)
    return tuple(seeds)


# ----------------------------------------------------------------------
# result (de)serialisation -- the cached payload
# ----------------------------------------------------------------------
def comparison_to_payload(comp: ComparisonResult) -> bytes:
    """Canonical JSON encoding of a comparison (cache payload).

    The document is exactly :meth:`ComparisonResult.to_dict`, so the
    cache payload, the ``--json`` CLI report and the golden tests all
    share one encoding (and one encoder: :mod:`repro.obs.jsonio`).
    """
    return canonical_bytes(comp.to_dict())


def comparison_from_payload(payload: bytes) -> ComparisonResult:
    return ComparisonResult.from_dict(json.loads(payload.decode("utf-8")))


# ----------------------------------------------------------------------
# on-disk cache
# ----------------------------------------------------------------------
class ResultCache:
    """Content-addressed store of finished sweep cells.

    One file per cell under ``root/<key[:2]>/<key>.json``; the key is
    the SHA-256 of the cell description, the file holds the canonical
    payload bytes.  Writes are atomic (temp file + rename) so a killed
    run never leaves a torn entry, and concurrent writers of the same
    key converge on identical bytes by construction.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get_bytes(self, key: str) -> Optional[bytes]:
        path = self._path(key)
        try:
            return path.read_bytes()
        except OSError:
            return None

    def put_bytes(self, key: str, payload: bytes) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_bytes(payload)
        os.replace(tmp, path)

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))


def _resolve_cache(
    cache: Union[ResultCache, str, Path, None, bool]
) -> Optional[ResultCache]:
    """None -> env ``REPRO_SWEEP_CACHE`` (if set) else disabled;
    False -> disabled; a path or ResultCache -> that cache."""
    if cache is None:
        env = os.environ.get("REPRO_SWEEP_CACHE")
        return ResultCache(env) if env else None
    if cache is False:
        return None
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
@dataclass
class RunnerStats:
    """Where the time went in one :func:`run_sweep` call.

    ``phase_seconds`` breaks worker-side compute down by pipeline phase
    (``generate`` / ``simulate`` / ``analyze`` / ``closure``), summed
    over every executed cell regardless of which process ran it;
    ``metrics`` is the merged :class:`~repro.obs.metrics.MetricsSnapshot`
    of all executed cells plus the runner's own ``sweep.*`` counters.
    """

    workers: int = 1
    mode: str = "serial"
    cells_total: int = 0
    cache_hits: int = 0
    cell_seconds: List[float] = field(default_factory=list)
    wall_seconds: float = 0.0
    note: str = ""
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    metrics: Optional[MetricsSnapshot] = None
    #: Cell executions re-attempted after a worker crashed or hung.
    retries: int = 0

    @property
    def cells_run(self) -> int:
        return self.cells_total - self.cache_hits

    @property
    def busy_seconds(self) -> float:
        """Total worker-side compute time (the serial-equivalent cost)."""
        return sum(self.cell_seconds)

    @property
    def speedup_estimate(self) -> Optional[float]:
        """Worker compute time over wall time; > 1 means parallel/cache won."""
        if self.wall_seconds <= 0:
            return None
        return self.busy_seconds / self.wall_seconds

    def as_row(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "workers": self.workers,
            "cells": self.cells_total,
            "hits": self.cache_hits,
            "busy_s": round(self.busy_seconds, 3),
            "wall_s": round(self.wall_seconds, 3),
            "speedup": None
            if self.speedup_estimate is None
            else round(self.speedup_estimate, 2),
        }

    def to_dict(self) -> Dict[str, object]:
        """Full state as a plain dict (the ``--json`` report's ``stats``)."""
        return {
            "workers": self.workers,
            "mode": self.mode,
            "cells_total": self.cells_total,
            "cache_hits": self.cache_hits,
            "cell_seconds": list(self.cell_seconds),
            "wall_seconds": self.wall_seconds,
            "note": self.note,
            "phase_seconds": dict(sorted(self.phase_seconds.items())),
            "metrics": None if self.metrics is None else self.metrics.to_dict(),
            "retries": self.retries,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "RunnerStats":
        fields = dict(doc)
        metrics_doc = fields.pop("metrics", None)
        stats = cls(**fields)  # type: ignore[arg-type]
        if metrics_doc is not None:
            stats.metrics = MetricsSnapshot.from_dict(metrics_doc)  # type: ignore[arg-type]
        return stats


def _execute_cell(
    cell: SweepCell, collect_obs: bool = False, tracer=None
) -> Tuple[bytes, float, Optional[Dict]]:
    """Run one cell to completion; module-level so workers can unpickle it.

    With ``collect_obs`` the cell also returns its observability
    document -- per-phase timings and a metrics snapshot from a registry
    scoped to this cell -- as plain dicts so it crosses the process
    boundary.  Without it the replay runs fully uninstrumented (the
    zero-overhead default).  ``tracer`` is only ever non-None on the
    serial path: a tracer cannot follow a cell into a worker process.
    """
    start = time.perf_counter()
    profiler = Profiler() if collect_obs else None
    registry = MetricsRegistry() if collect_obs else None
    make_workload, config = cell.scenario(cell.x)
    comp = compare_protocols(
        make_workload,
        config,
        cell.protocols,
        baseline=cell.baseline,
        seeds=cell.seeds,
        scenario=cell.scenario_name,
        verify_rdt=cell.verify_rdt,
        tracer=tracer,
        metrics=registry,
        profiler=profiler,
    )
    obs_doc = None
    if collect_obs:
        obs_doc = {
            "phases": profiler.snapshot(),
            "metrics": registry.snapshot().to_dict(),
        }
    return comparison_to_payload(comp), time.perf_counter() - start, obs_doc


def _cells_picklable(cells: Sequence[SweepCell]) -> bool:
    try:
        pickle.dumps(list(cells))
        return True
    except Exception:
        return False


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear down a pool with a hung worker without waiting on it.

    ``shutdown(wait=True)`` would block forever on a wedged worker, so
    the processes are terminated directly -- and must be grabbed *before*
    ``shutdown``, which nulls the ``_processes`` dict.  ``_processes`` is
    a private attribute, stable across CPython 3.8-3.13; if it ever
    disappears the hung workers simply leak until process exit (still no
    deadlock, because the management thread notices the broken pipe).
    """
    procs = list((getattr(pool, "_processes", None) or {}).values())
    for proc in procs:
        try:
            proc.terminate()
        except Exception:  # pragma: no cover - best effort
            pass
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        try:
            proc.join(timeout=5.0)
        except Exception:  # pragma: no cover - best effort
            pass


def _run_cells_parallel(
    cells: Sequence[SweepCell],
    workers: int,
    collect_obs: bool,
    max_attempts: int = 3,
    backoff: float = 0.2,
    cell_timeout: Optional[float] = None,
) -> Tuple[List[Tuple[bytes, float, Optional[Dict]]], int, str]:
    """Run cells on a process pool, retrying crashed or hung workers.

    A worker that dies (``BrokenProcessPool`` -- OOM kill, segfault,
    ``os._exit`` in user workload code) or exceeds ``cell_timeout``
    fails only its own cells: finished cells keep their results, the
    failed ones are retried on a fresh pool after an exponential
    backoff (``backoff * 2**attempt`` seconds).  Deterministic
    exceptions *raised by* a cell are not retried -- they propagate, as
    rerunning a pure function cannot change its outcome.  Cells still
    failing after ``max_attempts`` pool rounds run serially in the
    parent as a last resort, so one poisoned worker environment cannot
    kill a whole sweep.

    Returns ``(results-in-input-order, retries, note)``.
    """
    results: List[Optional[Tuple[bytes, float, Optional[Dict]]]] = [
        None
    ] * len(cells)
    remaining = list(range(len(cells)))
    retries = 0
    note = ""
    for attempt in range(max_attempts):
        if not remaining:
            break
        if attempt:
            time.sleep(backoff * (2 ** (attempt - 1)))
        pool = ProcessPoolExecutor(
            max_workers=min(workers, len(remaining)), mp_context=_mp_context()
        )
        hung = False
        failed: List[int] = []
        try:
            futures = {
                i: pool.submit(_execute_cell, cells[i], collect_obs)
                for i in remaining
            }
            for i in remaining:
                try:
                    results[i] = futures[i].result(timeout=cell_timeout)
                except FutureTimeoutError:
                    failed.append(i)
                    hung = True
                except BrokenProcessPool:
                    failed.append(i)
        finally:
            if hung:
                _terminate_pool(pool)
            else:
                pool.shutdown(wait=True)
        retries += len(failed)
        remaining = failed
    if remaining:
        note = (
            f"{len(remaining)} cell(s) ran in-process after "
            f"{max_attempts} worker attempts"
        )
        for i in remaining:
            results[i] = _execute_cell(cells[i], collect_obs=collect_obs)
    return results, retries, note  # type: ignore[return-value]


def run_sweep(
    x_label: str,
    xs: Sequence[object],
    scenario_at: ScenarioAt,
    protocols: Sequence[str],
    baseline: str = "fdas",
    seeds: Sequence[int] = (0, 1, 2),
    verify_rdt: bool = False,
    workers: Optional[int] = None,
    cache: Union[ResultCache, str, Path, None, bool] = None,
    progress: Optional[Callable[[str], None]] = None,
    tracer=None,
    metrics: Optional[MetricsRegistry] = None,
    profiler: Optional[Profiler] = None,
    cell_timeout: Optional[float] = None,
    max_worker_attempts: int = 3,
) -> SweepResult:
    """Parallel, cached drop-in for :func:`repro.harness.sweep.ratio_sweep`.

    Returns the exact :class:`SweepResult` the serial path produces for
    the same arguments (same seeds per cell), with execution fanned out
    over ``workers`` processes and finished cells served from ``cache``.

    Parameters beyond :func:`ratio_sweep`'s:

    workers:
        Process count; ``None`` uses the scheduler-visible CPU count,
        ``<= 1`` runs serially in-process.
    cache:
        ``None`` honours the ``REPRO_SWEEP_CACHE`` env var (disabled when
        unset), ``False`` disables, a path or :class:`ResultCache`
        enables that store.
    progress:
        Optional callback receiving one line per finished cell.
    cell_timeout / max_worker_attempts:
        Worker-robustness knobs for the process backend: a cell whose
        worker crashes or exceeds ``cell_timeout`` seconds is retried
        (with exponential backoff, ``RunnerStats.retries`` counts the
        re-attempts) up to ``max_worker_attempts`` pool rounds, then run
        serially in the parent -- a dying or hung worker degrades the
        sweep instead of killing it.
    tracer:
        A :class:`repro.obs.Tracer`.  Tracing forces serial execution
        (a trace cannot deterministically interleave worker processes)
        and records every layer down to protocol predicates, plus one
        ``sweep.cell`` event per cell.
    metrics / profiler:
        When either is given (or tracing is on), each executed cell
        collects a cell-scoped metrics snapshot and per-phase timings;
        the aggregates land in ``RunnerStats.metrics`` /
        ``RunnerStats.phase_seconds`` and are folded into the passed-in
        registry/profiler.  All observability is off -- and free -- by
        default, and never changes a result byte.
    """
    if workers is None:
        try:
            workers = len(os.sched_getaffinity(0))
        except AttributeError:  # platforms without affinity masks
            workers = os.cpu_count() or 1
    collect_obs = bool(tracer) or metrics is not None or profiler is not None
    if tracer:
        workers = 1
    store = _resolve_cache(cache)
    cells = [
        SweepCell(
            x_label=x_label,
            x=x,
            scenario=scenario_at,
            protocols=tuple(protocols),
            baseline=baseline,
            seeds=tuple(seeds),
            verify_rdt=verify_rdt,
        )
        for x in xs
    ]
    stats = RunnerStats(workers=max(1, workers), cells_total=len(cells))
    if tracer:
        stats.note = "tracing active; forced serial"
    runner_metrics = MetricsRegistry() if collect_obs else None
    wall_start = time.perf_counter()

    payloads: List[Optional[bytes]] = [None] * len(cells)
    pending: List[int] = []
    keys: List[Optional[str]] = [None] * len(cells)
    for i, cell in enumerate(cells):
        if store is not None:
            keys[i] = cell_key(cell)
            hit = store.get_bytes(keys[i])
            if hit is not None:
                # A truncated/corrupted entry (disk full, manual edit) is
                # a miss, not a crash: recompute and overwrite it.
                try:
                    comparison_from_payload(hit)
                except (ValueError, KeyError, TypeError):
                    hit = None
            if hit is not None:
                payloads[i] = hit
                stats.cache_hits += 1
                stats.cell_seconds.append(0.0)
                if runner_metrics is not None:
                    runner_metrics.inc("sweep.cache_hits")
                if tracer:
                    tracer.event(
                        "sweep.cell", 0.0, x=cell.x, cached=True, key=keys[i]
                    )
                if progress is not None:
                    progress(f"[cache] {cell.scenario_name}")
                continue
        pending.append(i)

    if pending:
        to_run = [cells[i] for i in pending]
        if workers > 1 and _cells_picklable(to_run):
            stats.mode = f"process[{workers}]"
            outcomes, retries, retry_note = _run_cells_parallel(
                to_run,
                workers,
                collect_obs,
                max_attempts=max_worker_attempts,
                cell_timeout=cell_timeout,
            )
            stats.retries = retries
            if retry_note:
                stats.note = (
                    f"{stats.note}; {retry_note}" if stats.note else retry_note
                )
            if runner_metrics is not None and retries:
                runner_metrics.inc("sweep.worker_retries", retries)
        else:
            if workers > 1:
                stats.note = "scenario not picklable; fell back to serial"
            stats.mode = "serial"
            outcomes = [
                _execute_cell(cell, collect_obs=collect_obs, tracer=tracer)
                for cell in to_run
            ]
        for i, (payload, elapsed, obs_doc) in zip(pending, outcomes):
            payloads[i] = payload
            stats.cell_seconds.append(elapsed)
            if obs_doc is not None:
                stats.metrics = (
                    MetricsSnapshot.from_dict(obs_doc["metrics"])
                    if stats.metrics is None
                    else stats.metrics.merge(
                        MetricsSnapshot.from_dict(obs_doc["metrics"])
                    )
                )
                for phase, seconds in obs_doc["phases"].items():
                    stats.phase_seconds[phase] = (
                        stats.phase_seconds.get(phase, 0.0) + seconds
                    )
            if store is not None and keys[i] is not None:
                store.put_bytes(keys[i], payload)
            if tracer:
                tracer.event("sweep.cell", 0.0, x=cells[i].x, cached=False)
            if runner_metrics is not None:
                runner_metrics.inc("sweep.cells_run")
            if progress is not None:
                progress(f"[{elapsed:.2f}s] {cells[i].scenario_name}")

    comparisons = [comparison_from_payload(p) for p in payloads]  # type: ignore[arg-type]
    stats.wall_seconds = time.perf_counter() - wall_start
    if runner_metrics is not None:
        snap = runner_metrics.snapshot()
        stats.metrics = snap if stats.metrics is None else stats.metrics.merge(snap)
    if profiler is not None:
        profiler.merge_dict(stats.phase_seconds)
    if metrics is not None and stats.metrics is not None:
        metrics.absorb(stats.metrics)
    result = SweepResult(
        x_label=x_label,
        xs=list(xs),
        comparisons=comparisons,
        baseline=baseline,
    )
    result.stats = stats
    return result
