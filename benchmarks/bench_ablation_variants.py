"""E8 / ablation: what each piece of the BHMR control state buys.

The protocol's design (DESIGN.md) has two discretionary components over
FDAS: the ``causal`` matrix (detects existing causal siblings, powering
C1's restraint) and the ``simple`` vector (sharpens the same-process
test C2).  Removing them one at a time is exactly the paper's section
5.1 variant ladder:

    full (C1 v C2)  ->  no simple (C1 v C2')  ->  causal only (C1, false
    diagonal)  ->  FDAS (no matrix at all)

Measured across the three environments: each removal may only increase
forced checkpoints, and the biggest single win comes from the causal
matrix in causally-rich environments (client/server).
"""

import pytest

from repro.harness import compare_protocols, render_table
from repro.sim import SimulationConfig
from repro.workloads import (
    ClientServerWorkload,
    MasterWorkerWorkload,
    OverlappingGroupsWorkload,
    RandomUniformWorkload,
)

LADDER = ["bhmr", "bhmr-nosimple", "bhmr-causalonly", "fdas"]

ENVIRONMENTS = {
    "random": (
        lambda: RandomUniformWorkload(send_rate=1.5),
        SimulationConfig(n=6, duration=50.0, basic_rate=0.2),
    ),
    "groups": (
        lambda: OverlappingGroupsWorkload(group_size=3, overlap=1),
        SimulationConfig(n=9, duration=50.0, basic_rate=0.2),
    ),
    "client/server": (
        lambda: ClientServerWorkload(think_time=0.3, pipeline=2),
        SimulationConfig(n=6, duration=60.0, basic_rate=0.2),
    ),
    "master/worker": (
        lambda: MasterWorkerWorkload(),
        SimulationConfig(n=6, duration=60.0, basic_rate=0.2),
    ),
}


@pytest.fixture(scope="module")
def ablation():
    return {
        name: compare_protocols(make, cfg, LADDER, seeds=(0, 1, 2), scenario=name)
        for name, (make, cfg) in ENVIRONMENTS.items()
    }


def test_variant_ladder(benchmark, emit, ablation):
    rows = []
    for env, comp in ablation.items():
        row = {"environment": env}
        for proto in LADDER:
            row[proto] = comp.aggregate(proto).forced_total
        rows.append(row)
    emit(render_table(rows, title="Ablation -- forced checkpoints per variant"))
    for env, comp in ablation.items():
        forced = {p: comp.aggregate(p).forced_total for p in LADDER}
        # Dropping knowledge can only cost forced checkpoints (small
        # slack: executions diverge after the first differing decision).
        slack = 1.05
        assert forced["bhmr"] <= forced["bhmr-nosimple"] * slack, env
        assert forced["bhmr-nosimple"] <= forced["bhmr-causalonly"] * slack, env
        assert forced["bhmr-causalonly"] <= forced["fdas"] * slack, env
    # The causal matrix is what wins client/server (sibling detection).
    cs = ablation["client/server"]
    assert (
        cs.aggregate("bhmr").forced_total
        < 0.6 * cs.aggregate("fdas").forced_total
    )
    make, cfg = ENVIRONMENTS["random"]
    benchmark(lambda: compare_protocols(make, cfg, ["bhmr"], seeds=(0,)))


def test_predicate_attribution(benchmark, emit):
    """Which predicate does the forcing?  C1 dominates everywhere; C2's
    share grows where request/reply chains re-enter intervals."""
    from repro.sim import Simulation, SimulationConfig

    rows = []
    for env, (make, base_cfg) in ENVIRONMENTS.items():
        cfg = SimulationConfig(**{**base_cfg.__dict__, "seed": 0})
        res = Simulation(make(), cfg).run("bhmr")
        c1 = sum(p.c1_fires for p in res.family.members)
        c2 = sum(p.c2_fires for p in res.family.members)
        forced = res.metrics.forced_checkpoints
        rows.append(
            {"environment": env, "forced": forced, "C1 fired": c1,
             "C2 fired": c2}
        )
    emit(render_table(rows, title="Forced-checkpoint attribution (bhmr)"))
    for row in rows:
        assert row["C1 fired"] + row["C2 fired"] >= row["forced"]
    make, cfg = ENVIRONMENTS["random"]
    benchmark(
        lambda: compare_protocols(make, cfg, ["bhmr"], seeds=(0,))
    )
