"""Serialisation round-trip tests plus new cross-check tests.

Covers: JSON history round trips (in-memory, file, error cases),
recovery-line implementations agreeing, and BHMR predicate attribution.
"""

import io

import pytest
from hypothesis import given, settings

from repro.events import (
    figure1_pattern,
    history_from_dict,
    history_to_dict,
    load_history,
    random_pattern,
    save_history,
)
from repro.recovery import CrashSpec, recovery_line, recovery_line_rgraph
from repro.sim import Simulation, SimulationConfig
from repro.types import PatternError
from repro.workloads import RandomUniformWorkload

from tests.test_property_hypothesis import build_pattern, pattern_inputs


def same_history(a, b) -> bool:
    return history_to_dict(a) == history_to_dict(b)


class TestRoundTrip:
    def test_figure1_roundtrip(self):
        h = figure1_pattern()
        assert same_history(h, history_from_dict(history_to_dict(h)))

    def test_file_roundtrip(self, tmp_path):
        h = random_pattern(n=3, steps=40, seed=1)
        path = str(tmp_path / "pattern.json")
        save_history(h, path)
        assert same_history(h, load_history(path))

    def test_stream_roundtrip(self):
        h = random_pattern(n=2, steps=30, seed=2, close=False)
        buf = io.StringIO()
        save_history(h, buf)
        buf.seek(0)
        assert same_history(h, load_history(buf))

    def test_in_transit_messages_survive(self):
        h = random_pattern(n=3, steps=50, seed=3, close=False)
        restored = history_from_dict(history_to_dict(h))
        assert sorted(m.msg_id for m in h.in_transit_messages()) == sorted(
            m.msg_id for m in restored.in_transit_messages()
        )

    def test_simulated_run_roundtrip_preserves_analysis(self):
        from repro.analysis import check_rdt

        sim = Simulation(
            RandomUniformWorkload(send_rate=1.5),
            SimulationConfig(n=3, duration=20.0, seed=5, basic_rate=0.3),
        )
        h = sim.run("bhmr").history
        restored = history_from_dict(history_to_dict(h))
        assert check_rdt(h).holds == check_rdt(restored).holds

    @given(pattern_inputs)
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, inputs):
        n, ops = inputs
        h = build_pattern(n, ops)
        assert same_history(h, history_from_dict(history_to_dict(h)))


class TestErrors:
    def test_wrong_format_rejected(self):
        with pytest.raises(PatternError):
            history_from_dict({"format": "other"})

    def test_wrong_version_rejected(self):
        data = history_to_dict(figure1_pattern())
        data["version"] = 99
        with pytest.raises(PatternError):
            history_from_dict(data)

    def test_missing_send_event_rejected(self):
        data = history_to_dict(figure1_pattern())
        data["messages"].append({"id": 999, "src": 0, "dst": 1, "size": 1})
        with pytest.raises(PatternError):
            history_from_dict(data)


class TestRecoveryLineCrossCheck:
    """The fixpoint and R-graph recovery lines must agree."""

    @pytest.mark.parametrize("seed", range(5))
    def test_single_crash_agreement(self, seed):
        sim = Simulation(
            RandomUniformWorkload(send_rate=2.0),
            SimulationConfig(n=3, duration=25.0, seed=seed, basic_rate=0.4),
        )
        h = sim.run("independent").history
        for crashed in range(3):
            fixpoint = recovery_line(h, [crashed]).cut
            via_rgraph = recovery_line_rgraph(h, [crashed])
            assert fixpoint == via_rgraph, (seed, crashed)

    def test_timed_crash_agreement(self):
        sim = Simulation(
            RandomUniformWorkload(send_rate=2.0),
            SimulationConfig(n=3, duration=25.0, seed=9, basic_rate=0.4),
        )
        h = sim.run("bhmr").history
        crashes = {0: CrashSpec(0, at_time=12.0), 2: CrashSpec(2, at_time=18.0)}
        assert recovery_line(h, crashes).cut == recovery_line_rgraph(h, crashes)

    @given(pattern_inputs)
    @settings(max_examples=25, deadline=None)
    def test_total_failure_agreement_property(self, inputs):
        n, ops = inputs
        h = build_pattern(n, ops)
        assert recovery_line(h).cut == recovery_line_rgraph(h)


class TestPredicateAttribution:
    def test_fires_sum_to_at_least_forced(self):
        sim = Simulation(
            RandomUniformWorkload(send_rate=2.0),
            SimulationConfig(n=4, duration=30.0, seed=4, basic_rate=0.3),
        )
        res = sim.run("bhmr")
        c1 = sum(p.c1_fires for p in res.family.members)
        c2 = sum(p.c2_fires for p in res.family.members)
        forced = res.metrics.forced_checkpoints
        # Each forced checkpoint is attributed to C1, C2 or both.
        assert c1 + c2 >= forced > 0
        assert max(c1, c2) <= forced

    def test_causal_only_attributes_everything_to_c1(self):
        sim = Simulation(
            RandomUniformWorkload(send_rate=2.0),
            SimulationConfig(n=4, duration=25.0, seed=4, basic_rate=0.3),
        )
        res = sim.run("bhmr-causalonly")
        assert sum(p.c2_fires for p in res.family.members) == 0
        assert sum(p.c1_fires for p in res.family.members) == (
            res.metrics.forced_checkpoints
        )
