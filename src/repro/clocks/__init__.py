"""Logical clock substrates: Lamport, vector, matrix clocks and TDVs."""

from repro.clocks.lamport import LamportClock, lamport_timestamps
from repro.clocks.matrix import MatrixClock
from repro.clocks.tdv import (
    TrackabilityOracle,
    event_tdvs,
    message_tdvs,
    tdv_snapshots,
)
from repro.clocks.vector import Causality, VectorClock, vector_timestamps

__all__ = [
    "Causality",
    "LamportClock",
    "MatrixClock",
    "TrackabilityOracle",
    "VectorClock",
    "event_tdvs",
    "lamport_timestamps",
    "message_tdvs",
    "tdv_snapshots",
    "vector_timestamps",
]
