"""One live session: a distributed computation observed over the wire.

A :class:`ServeSession` is the server-side state of one client
computation of ``n`` processes checkpointing under one registry
protocol.  It is the *online* composition of three layers that already
exist offline:

* a :class:`~repro.core.protocol.ProtocolFamily` -- the CIC sidecar:
  every ``send`` mints the piggyback, every ``deliver`` evaluates the
  forcing predicate and replies ``force_checkpoint`` (the paper's
  visible, on-line decision);
* a :class:`~repro.recovery.manager.RecoveryManager` (which owns the
  live :class:`~repro.graph.incremental.IncrementalRGraph`), so
  ``rdt_status`` / ``z_cycles`` / ``recovery_line`` queries answer from
  incrementally-maintained closure state in O(update), never O(replay);
* an append-only **ingest log** of every accepted operation.

The ingest log is the session's source of truth and its differential
contract: :func:`offline_answers` replays a recorded log through a
fresh session and must produce *byte-identical* canonical-JSON answers
to the live session's -- ``tests/test_serve_differential.py`` holds
every server to that, across eviction/restore cycles.

Sessions are single-threaded by construction (the server shards each
session onto exactly one worker), so no locking appears here.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.core.piggyback import Piggyback
from repro.core.registry import PROTOCOLS, make_family
from repro.events.event import Message
from repro.obs.jsonio import jsonable
from repro.recovery.manager import RecoveryManager
from repro.types import ReproError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer


class SessionError(ReproError):
    """An ingest or query operation was invalid for the session state."""


#: Query kinds ``query`` understands.
QUERIES = ("rdt_status", "z_cycles", "recovery_line", "metrics")

#: Ingest operation kinds (the ones that mutate state and are logged).
INGEST_OPS = ("checkpoint", "send", "deliver")


#: Field-name tuples per piggyback type (``dataclasses.fields`` per
#: send showed up in the ingest profile).
_PB_FIELDS: Dict[type, tuple] = {}


def _pb_field(value: object) -> object:
    """Like :func:`jsonable` but with the piggyback shapes fast-pathed.

    Piggyback fields are ints, tuples of ints (vectors) or tuples of
    tuples of ints (the BHMR causal matrix); generic recursion over the
    matrix was the single hottest line of a send.  Output is identical
    to ``jsonable`` for these shapes, and anything else falls through
    to it.
    """
    if isinstance(value, tuple):
        if value and type(value[0]) is tuple:
            return [list(row) for row in value]
        if all(type(v) is int or type(v) is bool for v in value):
            return list(value)
    elif type(value) is int or type(value) is bool:
        return value
    return jsonable(value)


def _pb_doc(pb: Piggyback) -> Dict[str, object]:
    """The piggyback as a JSON-safe document (type, bit size, fields).

    Field-by-field conversion instead of ``dataclasses.asdict``: the
    latter deep-copies every nested tuple (the BHMR causal matrix is
    n*n of them) and dominated the ingest profile.
    """
    cls = type(pb)
    names = _PB_FIELDS.get(cls)
    if names is None:
        names = tuple(f.name for f in dataclasses.fields(pb))
        _PB_FIELDS[cls] = names
    return {
        "type": cls.__name__,
        "bits": pb.size_bits(),
        "data": {name: _pb_field(getattr(pb, name)) for name in names},
    }


class ServeSession:
    """Live state of one served computation.

    Parameters
    ----------
    session_id:
        The client-chosen name; opaque to the server beyond sharding.
    n:
        Number of processes of the computation.
    protocol:
        Registry name of the CIC protocol run as the sidecar.
    """

    def __init__(
        self,
        session_id: str,
        n: int,
        protocol: str,
        tracer: Optional["Tracer"] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        if protocol not in PROTOCOLS:
            known = ", ".join(sorted(PROTOCOLS))
            raise SimulationError(f"unknown protocol {protocol!r}; known: {known}")
        if not isinstance(n, int) or n <= 0:
            raise SimulationError(f"a session needs n >= 1 processes, got {n!r}")
        self.session_id = session_id
        self.n = n
        self.protocol_name = protocol
        self.family = make_family(protocol, n)
        self.manager = RecoveryManager(n, tracer=tracer, metrics=metrics)
        self.tracer = tracer
        self.metrics = metrics
        #: Every accepted ingest op, in order -- the recorded stream.
        self.ingest_log: List[Dict[str, object]] = []
        self._messages: Dict[int, Message] = {}
        self._piggybacks: Dict[int, Piggyback] = {}
        self._delivered: set = set()
        self._next_msg_id = 0
        self.forced_total = 0
        self.queries_answered = 0

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    @property
    def clock(self) -> float:
        """The logical ingest clock: ops so far (stamps graph events)."""
        return float(len(self.ingest_log))

    def apply(self, doc: Dict[str, object]) -> Dict[str, object]:
        """Apply one ingest operation; returns the reply body.

        ``doc`` needs ``kind`` plus the op's fields (``pid`` for
        checkpoint, ``src``/``dst`` for send, ``msg_id`` for deliver).
        Every reply carries the protocol's online decision:
        ``force_checkpoint`` plus the piggyback payload.
        """
        kind = doc.get("kind")
        if kind == "checkpoint":
            return self._apply_checkpoint(doc)
        if kind == "send":
            return self._apply_send(doc)
        if kind == "deliver":
            return self._apply_deliver(doc)
        raise SessionError(
            f"unknown ingest op {kind!r}; known: {', '.join(INGEST_OPS)}"
        )

    def _pid(self, doc: Dict[str, object], field: str) -> int:
        pid = doc.get(field)
        if not isinstance(pid, int) or not 0 <= pid < self.n:
            raise SessionError(f"{field}={pid!r} out of range for n={self.n}")
        return pid

    def _take(self, pid: int, forced: bool, t: float) -> int:
        """Record one checkpoint in both the manager and the protocol."""
        index = self.manager.last_taken(pid) + 1
        self.manager.on_checkpoint(pid, index, t)
        self.family[pid].on_checkpoint(forced=forced)
        if forced:
            self.forced_total += 1
        return index

    def _apply_checkpoint(self, doc: Dict[str, object]) -> Dict[str, object]:
        pid = self._pid(doc, "pid")
        t = self.clock
        self.ingest_log.append({"kind": "checkpoint", "pid": pid})
        index = self._take(pid, forced=False, t=t)
        return {
            "ok": True,
            "index": index,
            "force_checkpoint": False,
            "piggyback": {"tdv": list(self.family[pid].tdv)},
        }

    def _apply_send(self, doc: Dict[str, object]) -> Dict[str, object]:
        src = self._pid(doc, "src")
        dst = self._pid(doc, "dst")
        if src == dst:
            raise SessionError(f"send src == dst == {src}")
        t = self.clock
        self.ingest_log.append({"kind": "send", "src": src, "dst": dst})
        msg_id = self._next_msg_id
        self._next_msg_id += 1
        pb = self.family[src].on_send(dst)
        message = Message(
            msg_id=msg_id, src=src, dst=dst, send_seq=len(self.ingest_log) - 1
        )
        self._messages[msg_id] = message
        self._piggybacks[msg_id] = pb
        self.manager.on_send(message, t)
        forced_index: Optional[int] = None
        if self.family[src].wants_checkpoint_after_send():
            forced_index = self._take(src, forced=True, t=t)
        return {
            "ok": True,
            "msg_id": msg_id,
            "force_checkpoint": forced_index is not None,
            "forced_index": forced_index,
            "piggyback": _pb_doc(pb),
        }

    def _apply_deliver(self, doc: Dict[str, object]) -> Dict[str, object]:
        msg_id = doc.get("msg_id")
        message = self._messages.get(msg_id)  # type: ignore[arg-type]
        if message is None:
            raise SessionError(f"deliver of unknown msg_id {msg_id!r}")
        if msg_id in self._delivered:
            raise SessionError(f"message m{msg_id} delivered twice")
        t = self.clock
        self.ingest_log.append({"kind": "deliver", "msg_id": int(msg_id)})  # type: ignore[arg-type]
        self._delivered.add(msg_id)
        pb = self._piggybacks[msg_id]  # type: ignore[index]
        proto = self.family[message.dst]
        forced = proto.wants_forced_checkpoint(pb, message.src)
        forced_index: Optional[int] = None
        if forced:
            forced_index = self._take(message.dst, forced=True, t=t)
        proto.on_receive(pb, message.src)
        self.manager.on_deliver(message, t)
        return {
            "ok": True,
            "msg_id": int(msg_id),  # type: ignore[arg-type]
            "force_checkpoint": forced,
            "forced_index": forced_index,
            "piggyback": {"tdv": list(proto.tdv)},
        }

    # ------------------------------------------------------------------
    # queries (read-only, never logged)
    # ------------------------------------------------------------------
    def query(self, what: str, **params: object) -> Dict[str, object]:
        """Answer one analysis query from live incremental state."""
        if what == "rdt_status":
            answer = self._query_rdt_status()
        elif what == "z_cycles":
            answer = self._query_z_cycles()
        elif what == "recovery_line":
            answer = self._query_recovery_line(params.get("crashed"))
        elif what == "metrics":
            answer = self._query_metrics()
        else:
            raise SessionError(
                f"unknown query {what!r}; known: {', '.join(QUERIES)}"
            )
        self.queries_answered += 1
        return answer

    def _query_rdt_status(self) -> Dict[str, object]:
        rgraph = self.manager.rgraph
        useless = rgraph.useless_checkpoints()
        return {
            "events": len(self.ingest_log),
            "n": self.n,
            "protocol": self.protocol_name,
            "ensures_rdt": PROTOCOLS[self.protocol_name].ensures_rdt,
            "last_index": [self.manager.last_taken(p) for p in range(self.n)],
            "forced": self.forced_total,
            "z_cycle_free": not rgraph.has_z_cycle(),
            "useless": [[cid.pid, cid.index] for cid in useless],
        }

    def _query_z_cycles(self) -> Dict[str, object]:
        cycles = self.manager.rgraph.cycles()
        return {
            "count": len(cycles),
            "cycles": [
                [[cid.pid, cid.index] for cid in comp] for comp in cycles
            ],
        }

    def _query_recovery_line(
        self, crashed: object
    ) -> Dict[str, object]:
        if crashed is None:
            pids: Sequence[int] = range(self.n)
        elif isinstance(crashed, (list, tuple)) and all(
            isinstance(p, int) and 0 <= p < self.n for p in crashed
        ):
            pids = sorted(set(crashed))
        else:
            raise SessionError(
                f"crashed={crashed!r} must be a list of pids < {self.n}"
            )
        cut = self.manager.online_recovery_line(pids)
        plan = self.manager.replay_plan_ids(cut)
        return {
            "crashed": sorted(pids),
            "cut": [cut[p] for p in range(self.n)],
            "to_replay": len(plan),
            "logged": sum(len(log) for log in self.manager.logs.values()),
        }

    def _query_metrics(self) -> Dict[str, object]:
        log = self.ingest_log
        return {
            "events": len(log),
            "checkpoints": sum(1 for op in log if op["kind"] == "checkpoint")
            + self.forced_total,
            "sends": sum(1 for op in log if op["kind"] == "send"),
            "delivers": sum(1 for op in log if op["kind"] == "deliver"),
            "forced": self.forced_total,
            "closure_nodes": self.manager.rgraph.num_nodes(),
            "closure_edges": self.manager.rgraph.num_edges(),
            "queries": self.queries_answered,
        }

    # ------------------------------------------------------------------
    # replay / restore
    # ------------------------------------------------------------------
    @classmethod
    def replay_log(
        cls,
        session_id: str,
        n: int,
        protocol: str,
        log: Sequence[Dict[str, object]],
        tracer: Optional["Tracer"] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> "ServeSession":
        """A fresh session fed the recorded ingest stream, op by op.

        Deliver ops in a recorded log name server-assigned message ids;
        replay re-mints them in the same order, so ids line up by
        construction.
        """
        session = cls(session_id, n, protocol, tracer=tracer, metrics=metrics)
        for op in log:
            session.apply(dict(op))
        return session

    def __repr__(self) -> str:
        return (
            f"<ServeSession {self.session_id!r} n={self.n} "
            f"protocol={self.protocol_name} events={len(self.ingest_log)}>"
        )


def offline_answers(
    session_id: str,
    n: int,
    protocol: str,
    log: Sequence[Dict[str, object]],
    crashed: Optional[Sequence[int]] = None,
) -> Dict[str, object]:
    """Offline analysis of a recorded ingest stream.

    Replays ``log`` through a fresh session and returns the three
    paper-level verdicts.  The differential guarantee of the serve
    subsystem: for any live session, these answers are byte-identical
    (canonical JSON) to the ones the server gave online.
    """
    session = ServeSession.replay_log(session_id, n, protocol, log)
    return {
        "rdt_status": session.query("rdt_status"),
        "z_cycles": session.query("z_cycles"),
        "recovery_line": session.query(
            "recovery_line", crashed=list(crashed) if crashed is not None else None
        ),
    }
