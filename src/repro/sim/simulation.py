"""High-level simulation façade.

:class:`Simulation` wires a workload, a channel model and a basic
checkpoint rate into a reusable, seeded scenario: generate the trace
once, replay it under any number of protocols, and get recorded
histories plus metrics back.  This is the entry point that the
examples, the benchmarks and most tests use.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.core.registry import protocol_factory
from repro.obs.profile import NULL_PROFILER
from repro.sim.channel import ChannelMap
from repro.sim.delays import DelayModel, Exponential
from repro.sim.generate import TraceGenerator
from repro.sim.netfaults import NetFaultModel
from repro.sim.transport import NetReport, TransportConfig
from repro.sim.replay import ReplayResult, replay
from repro.sim.trace import Trace
from repro.types import SimulationError
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.profile import Profiler
    from repro.obs.tracer import Tracer
    from repro.sim.crashes import RecoveryReplayResult
    from repro.sim.faults import CrashSchedule


@dataclass
class SimulationConfig:
    """Everything that defines a scenario (all defaults are sensible).

    Attributes
    ----------
    n:
        Number of processes.
    duration:
        Simulated time horizon.
    seed:
        Master seed; two runs with equal config are identical.
    basic_rate:
        Mean basic checkpoints per process per time unit (the paper's
        simulation knob: how often applications checkpoint on their own).
    delay:
        Channel delay distribution.
    fifo:
        Whether channels preserve order (CIC protocols do not need it).
        Under ``net_faults`` this turns on the transport's per-link FIFO
        *reconstruction* instead (same observable guarantee).
    max_events:
        Kernel safety valve.
    net_faults:
        Optional :class:`~repro.sim.netfaults.NetFaultModel`: run the
        scenario over an unreliable physical network, with the reliable
        transport (:mod:`repro.sim.transport`) recovering the paper's
        channel abstraction.  ``None`` (the default) is the ideal
        reliable network.
    transport:
        Retransmission policy when ``net_faults`` is set.
    """

    n: int = 4
    duration: float = 100.0
    seed: int = 0
    basic_rate: float = 0.1
    delay: DelayModel = field(default_factory=lambda: Exponential(mean=1.0))
    fifo: bool = False
    max_events: int = 1_000_000
    net_faults: Optional[NetFaultModel] = None
    transport: Optional[TransportConfig] = None

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise SimulationError("n must be positive")
        if self.duration <= 0:
            raise SimulationError("duration must be positive")
        if self.basic_rate < 0:
            raise SimulationError("basic_rate must be non-negative")
        if self.transport is not None and self.net_faults is None:
            raise SimulationError("transport= only applies with net_faults=")


class Simulation:
    """One seeded scenario: a workload under a configuration.

    The optional observability instruments attach to every phase the
    scenario drives: trace generation (``sim.*`` events, ``generate``
    phase), protocol replay (``proto.*`` events, ``simulate``/``closure``
    phases).  All three default to off and cost nothing then.
    """

    def __init__(
        self,
        workload: Workload,
        config: Optional[SimulationConfig] = None,
        tracer: Optional["Tracer"] = None,
        metrics: Optional["MetricsRegistry"] = None,
        profiler: Optional["Profiler"] = None,
    ):
        self.workload = workload
        self.config = config if config is not None else SimulationConfig()
        self.tracer = tracer
        self.metrics = metrics
        self.profiler = profiler
        self._trace: Optional[Trace] = None
        self._net_report: Optional[NetReport] = None

    @property
    def trace(self) -> Trace:
        """The protocol-independent trace (generated lazily, cached)."""
        if self._trace is None:
            cfg = self.config
            transport = cfg.transport
            if cfg.net_faults is not None and cfg.fifo:
                # Physical copies cannot honour channel-level FIFO under
                # loss/retransmission; the transport reconstructs the
                # same observable ordering at the receiver instead.
                transport = dataclasses.replace(
                    transport if transport is not None else TransportConfig(),
                    fifo=True,
                )
            generator = TraceGenerator(
                cfg.n,
                self.workload,
                duration=cfg.duration,
                seed=cfg.seed,
                basic_rate=cfg.basic_rate,
                channels=ChannelMap(cfg.n, delay=cfg.delay, fifo=cfg.fifo),
                max_events=cfg.max_events,
                tracer=self.tracer,
                metrics=self.metrics,
                net_faults=cfg.net_faults,
                transport=transport,
            )
            with (self.profiler or NULL_PROFILER).phase("generate"):
                self._trace = generator.generate()
            self._net_report = generator.net_report
        return self._trace

    @property
    def net_report(self) -> Optional[NetReport]:
        """Physical-layer statistics of the generated trace.

        ``None`` until the trace exists, and for reliable-network runs.
        """
        self.trace  # force generation
        return self._net_report

    def run(self, protocol: str, close: bool = True) -> ReplayResult:
        """Replay the scenario under one protocol (registry name)."""
        return replay(
            self.trace,
            protocol_factory(protocol),
            close=close,
            tracer=self.tracer,
            metrics=self.metrics,
            profiler=self.profiler,
        )

    def run_factory(self, factory, close: bool = True) -> ReplayResult:
        """Replay under a protocol given as a ``(pid, n) -> protocol``
        factory (for classes not in the registry, e.g. user protocols
        under conformance testing or parameterised variants)."""
        return replay(
            self.trace,
            factory,
            close=close,
            tracer=self.tracer,
            metrics=self.metrics,
            profiler=self.profiler,
        )

    def compare(
        self, protocols: List[str], close: bool = True
    ) -> Dict[str, ReplayResult]:
        """Replay the same trace under several protocols."""
        return {name: self.run(name, close=close) for name in protocols}

    def run_with_crashes(
        self,
        protocol: str,
        schedule: "CrashSchedule",
        close: bool = True,
        cross_check: bool = True,
        gc_every_ops: Optional[int] = None,
    ) -> "RecoveryReplayResult":
        """Replay under one protocol while injecting a crash schedule.

        The trace is the same protocol-independent pattern :meth:`run`
        uses (crashes never alter what the application *would* do --
        piecewise determinism); the fold around it gains failures and
        online recoveries.  See
        :func:`repro.sim.crashes.replay_with_recovery`.
        """
        from repro.sim.crashes import replay_with_recovery

        return replay_with_recovery(
            self.trace,
            protocol_factory(protocol),
            schedule,
            close=close,
            cross_check=cross_check,
            gc_every_ops=gc_every_ops,
            tracer=self.tracer,
            metrics=self.metrics,
            profiler=self.profiler,
        )


def run_scenario(
    workload: Workload,
    protocol: str,
    config: Optional[SimulationConfig] = None,
) -> ReplayResult:
    """One-call convenience: build, generate, replay."""
    return Simulation(workload, config).run(protocol)
