"""Recovery lines: the maximum consistent cut after failures.

Given a set of crashes, the *recovery line* is the latest consistent
global checkpoint in which every crashed process sits at (or before) its
last stable checkpoint.  It is computed by classical rollback
propagation -- the greatest-fixpoint dual already implemented in
:func:`repro.analysis.gcp.max_consistent_gcp`, generalised here to
per-process upper bounds instead of pinned values.

The amount of work undone by the rollback quantifies the domino effect;
:mod:`repro.recovery.domino` builds on this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.analysis.consistency import in_transit_of_cut, is_consistent_gcp
from repro.events.history import History
from repro.recovery.failure import CrashSpec, restart_bounds
from repro.types import CheckpointId, ProcessId


@dataclass
class RecoveryLine:
    """Result of a recovery-line computation."""

    cut: Dict[ProcessId, int]
    events_undone: int
    checkpoints_discarded: int
    messages_to_replay: List  # messages crossing the line (need logging)

    def checkpoint_ids(self) -> List[CheckpointId]:
        return [CheckpointId(pid, index) for pid, index in sorted(self.cut.items())]

    @property
    def is_total_rollback(self) -> bool:
        """True when every process restarts from its initial checkpoint."""
        return all(index == 0 for index in self.cut.values())

    def __repr__(self) -> str:
        line = ", ".join(repr(c) for c in self.checkpoint_ids())
        return f"<RecoveryLine [{line}] undone={self.events_undone}>"


def recovery_line(
    history: History,
    crashes: Union[Dict[ProcessId, CrashSpec], List[ProcessId], None] = None,
) -> RecoveryLine:
    """Compute the recovery line after the given crashes.

    ``crashes`` may be a ``{pid: CrashSpec}`` mapping, a plain list of
    crashed pids (crash at end of history), or ``None`` (every process
    crashes at the end -- a total failure).

    Rollback propagation: start every process at its bound and repeatedly
    lower any process that would otherwise have received an orphan
    message.  The result is the greatest consistent cut below the bounds;
    it always exists (the initial global checkpoint is consistent).
    """
    history = history.closed()
    crash_map = _normalise(history, crashes)
    cut = restart_bounds(history, crash_map)
    changed = True
    while changed:
        changed = False
        for m in history.delivered_messages():
            deliver_interval = history.deliver_interval(m)
            assert deliver_interval is not None
            send_interval = history.send_interval(m)
            if cut[m.src] < send_interval and cut[m.dst] >= deliver_interval:
                cut[m.dst] = deliver_interval - 1
                changed = True
    assert is_consistent_gcp(history, cut)
    undone = _events_after(history, cut)
    discarded = sum(
        history.last_index(pid) - index for pid, index in cut.items()
    )
    return RecoveryLine(
        cut=cut,
        events_undone=undone,
        checkpoints_discarded=discarded,
        messages_to_replay=in_transit_of_cut(history, cut),
    )


def _normalise(
    history: History, crashes
) -> Dict[ProcessId, CrashSpec]:
    if crashes is None:
        return {pid: CrashSpec(pid) for pid in range(history.num_processes)}
    if isinstance(crashes, dict):
        return crashes
    return {pid: CrashSpec(pid) for pid in crashes}


def _events_after(history: History, cut: Dict[ProcessId, int]) -> int:
    undone = 0
    for pid in range(history.num_processes):
        limit_seq = history.checkpoint_event(CheckpointId(pid, cut[pid])).seq
        undone += sum(1 for ev in history.events(pid) if ev.seq > limit_seq)
    return undone


def recovery_line_rgraph(
    history: History,
    crashes: Union[Dict[ProcessId, CrashSpec], List[ProcessId], None] = None,
) -> Dict[ProcessId, int]:
    """The recovery line computed via R-graph reachability.

    Independent second implementation (cross-checked against the
    fixpoint in tests): entry ``j`` is the largest ``y <= bound[j]``
    such that no R-path reaches ``C(j,y)`` from any node
    ``C(p, bound[p]+1)`` -- the first checkpoint *above* a bound, whose
    outgoing zigzags are exactly the chains starting with an undone
    send.  This is Wang's rollback propagation read off the closure.
    """
    from repro.graph.rgraph import RGraph

    history = history.closed()
    crash_map = _normalise(history, crashes)
    bounds = restart_bounds(history, crash_map)
    rgraph = RGraph(history)
    sources = [
        CheckpointId(pid, bound + 1)
        for pid, bound in bounds.items()
        if history.has_checkpoint(CheckpointId(pid, bound + 1))
    ]
    cut: Dict[ProcessId, int] = {}
    for pid, bound in bounds.items():
        chosen = 0
        for y in range(bound, -1, -1):
            target = CheckpointId(pid, y)
            if not any(rgraph.reaches_strictly(src, target) for src in sources):
                chosen = y
                break
        cut[pid] = chosen
    return cut


def rollback_distance(history: History, crashed: ProcessId) -> Dict[ProcessId, int]:
    """How many checkpoints each process loses when ``crashed`` fails.

    Convenience metric used by the domino-effect experiment: per process,
    ``last_index - recovery_line_index``.
    """
    line = recovery_line(history, [crashed])
    return {
        pid: history.last_index(pid) - line.cut[pid]
        for pid in range(history.num_processes)
    }
