"""E7 / section 1 motivation: the domino effect, and why RDT kills it.

Two measurements:

* the hand-built adversarial ping-pong pattern (Randell's construction):
  under independent checkpointing the rollback cascade grows linearly
  with the number of rounds -- the *unbounded* domino effect;
* the same traffic shapes replayed under a CIC protocol: forced
  checkpoints break every chain and the cascade stays flat.
"""

import pytest

from repro.events import ping_pong_domino_pattern
from repro.harness import render_series, render_table
from repro.recovery import domino_depth, domino_report
from repro.sim import Simulation, SimulationConfig
from repro.workloads import RandomUniformWorkload

ROUNDS = [2, 5, 10, 20]


def test_unbounded_domino_on_adversarial_pattern(benchmark, emit):
    depths = [domino_depth(ping_pong_domino_pattern(r), crashed=0) for r in ROUNDS]
    emit(
        render_series(
            "rounds",
            ROUNDS,
            {"cascade depth (independent)": depths},
            title="Domino effect -- adversarial ping-pong, no protocol",
        )
    )
    # Linear, unbounded growth: each extra round costs one more rollback.
    assert all(b > a for a, b in zip(depths, depths[1:]))
    assert depths[-1] >= ROUNDS[-1]
    benchmark(lambda: domino_depth(ping_pong_domino_pattern(20), crashed=0))


@pytest.fixture(scope="module")
def traffic_runs():
    """Worst-case lost work (events undone) per single crash, per seed.

    Events undone -- not checkpoints discarded -- is the cross-protocol
    comparable metric: a CIC protocol takes *more* checkpoints, so it may
    discard more of them while losing far less work.
    """
    from repro.recovery import recovery_line

    runs = {}
    for proto in ("independent", "bhmr"):
        lost = []
        for seed in range(4):
            sim = Simulation(
                RandomUniformWorkload(send_rate=2.0),
                SimulationConfig(n=3, duration=30.0, seed=seed, basic_rate=0.5),
            )
            history = sim.run(proto).history
            lost.append(
                max(recovery_line(history, [p]).events_undone for p in range(3))
            )
        runs[proto] = lost
    return runs


def test_rdt_bounds_the_cascade(benchmark, emit, traffic_runs):
    rows = [
        {
            "protocol": proto,
            "worst events undone per seed": str(lost),
            "total": sum(lost),
        }
        for proto, lost in traffic_runs.items()
    ]
    emit(render_table(rows, title="Worst-case lost work (random traffic, n=3)"))
    # Under RDT the recovery line hugs the crash point; independent
    # checkpointing loses at least as much work on every seed and far
    # more in aggregate.
    for bhmr_lost, indep_lost in zip(traffic_runs["bhmr"], traffic_runs["independent"]):
        assert bhmr_lost <= indep_lost
    assert sum(traffic_runs["independent"]) >= 2 * sum(traffic_runs["bhmr"])
    sim = Simulation(
        RandomUniformWorkload(send_rate=2.0),
        SimulationConfig(n=3, duration=30.0, seed=0, basic_rate=0.5),
    )
    history = sim.run("bhmr").history
    benchmark(lambda: domino_report(history))
