"""Protocol unit tests: Figure 6 mechanics, hand-driven scenarios, errors.

These tests drive protocol instances directly through the driver
contract (no simulator), checking the state machine of Figure 6 step by
step on the scenarios of the paper's Figures 2-4.
"""

import pytest

from repro.core import (
    BHMRCausalOnlyProtocol,
    BHMRNoSimpleProtocol,
    BHMRProtocol,
    CASProtocol,
    CBRProtocol,
    FDASProtocol,
    FDIProtocol,
    IndependentProtocol,
    NRASProtocol,
    TDVPiggyback,
)
from repro.types import ProtocolError


class TestBaseState:
    def test_initialisation_is_s0(self):
        p = BHMRProtocol(1, 3)
        # After S0 (which includes taking C(i,0)): interval index 1.
        assert p.current_interval == 1
        assert p.saved_tdv(0) == (0, 0, 0)
        assert p.simple == [False, True, False]
        assert p.causal[0] == [True, False, False]
        assert p.causal[1] == [False, True, False]

    def test_checkpoint_advances_interval_and_saves_tdv(self):
        p = FDASProtocol(0, 2)
        p.on_checkpoint()
        assert p.current_interval == 2
        assert p.saved_tdv(1) == (1, 0)

    def test_forced_flag_counts(self):
        p = FDASProtocol(0, 2)
        p.on_checkpoint(forced=True)
        p.on_checkpoint(forced=False)
        assert p.forced_count == 1

    def test_send_sets_sent_to_and_counts_bits(self):
        p = FDASProtocol(0, 3)
        pb = p.on_send(2)
        assert p.sent_to == [False, False, True]
        assert p.after_first_send
        assert p.piggyback_bits_sent == pb.size_bits() > 0

    def test_checkpoint_resets_interval_flags(self):
        p = FDASProtocol(0, 2)
        p.on_send(1)
        p.on_receive(TDVPiggyback(tdv=(0, 1)), sender=1)
        assert p.had_communication
        p.on_checkpoint()
        assert not p.after_first_send and not p.had_communication

    def test_self_send_rejected(self):
        with pytest.raises(ProtocolError):
            FDASProtocol(0, 2).on_send(0)

    def test_bad_pid_rejected(self):
        with pytest.raises(ProtocolError):
            FDASProtocol(5, 2)

    def test_wrong_piggyback_type_rejected(self):
        p = BHMRProtocol(0, 2)
        with pytest.raises(ProtocolError):
            p.wants_forced_checkpoint(TDVPiggyback(tdv=(0, 0)), sender=1)
        p2 = FDASProtocol(0, 2)
        with pytest.raises(ProtocolError):
            p2.on_receive(
                BHMRProtocol(1, 2).make_piggyback(0), sender=1
            )


class TestFDAS:
    def test_no_send_no_force(self):
        p = FDASProtocol(0, 2)
        pb = TDVPiggyback(tdv=(0, 1))
        assert not p.wants_forced_checkpoint(pb, sender=1)

    def test_send_then_new_dependency_forces(self):
        p = FDASProtocol(0, 2)
        p.on_send(1)
        pb = TDVPiggyback(tdv=(0, 1))  # new dependency on P1's interval 1
        assert p.wants_forced_checkpoint(pb, sender=1)

    def test_send_then_old_dependency_does_not_force(self):
        p = FDASProtocol(0, 2)
        p.on_receive(TDVPiggyback(tdv=(0, 1)), sender=1)  # learn it first
        p.on_send(1)
        assert not p.wants_forced_checkpoint(TDVPiggyback(tdv=(0, 1)), sender=1)

    def test_merge_is_componentwise_max(self):
        p = FDASProtocol(0, 3)
        p.on_receive(TDVPiggyback(tdv=(0, 4, 1)), sender=1)
        p.on_receive(TDVPiggyback(tdv=(0, 2, 3)), sender=2)
        assert p.tdv == [1, 4, 3]


class TestFDI:
    def test_receive_then_new_dependency_forces(self):
        p = FDIProtocol(0, 3)
        p.on_receive(TDVPiggyback(tdv=(0, 1, 0)), sender=1)
        assert p.wants_forced_checkpoint(TDVPiggyback(tdv=(0, 0, 1)), sender=2)

    def test_fdas_would_not_force_there(self):
        p = FDASProtocol(0, 3)
        p.on_receive(TDVPiggyback(tdv=(0, 1, 0)), sender=1)
        assert not p.wants_forced_checkpoint(TDVPiggyback(tdv=(0, 0, 1)), sender=2)

    def test_fresh_interval_never_forces(self):
        p = FDIProtocol(0, 2)
        assert not p.wants_forced_checkpoint(TDVPiggyback(tdv=(0, 5)), sender=1)


class TestClassical:
    def test_nras_forces_iff_sent(self):
        p = NRASProtocol(0, 2)
        pb = p.make_piggyback(1)
        assert not p.wants_forced_checkpoint(pb, sender=1)
        p.on_send(1)
        assert p.wants_forced_checkpoint(pb, sender=1)

    def test_cbr_forces_on_any_activity(self):
        p = CBRProtocol(0, 2)
        pb = p.make_piggyback(1)
        assert not p.wants_forced_checkpoint(pb, sender=1)
        p.on_receive(pb, sender=1)
        assert p.wants_forced_checkpoint(pb, sender=1)

    def test_cas_checkpoints_after_each_send(self):
        # The hook is consulted by the driver right after each send and
        # is unconditional for CAS; it never forces at delivery time.
        p = CASProtocol(0, 2)
        p.on_send(1)
        assert p.wants_checkpoint_after_send()
        pb = p.make_piggyback(1)
        assert not p.wants_forced_checkpoint(pb, sender=1)

    def test_independent_never_forces(self):
        p = IndependentProtocol(0, 2)
        pb = p.make_piggyback(1)
        p.on_send(1)
        p.on_receive(pb, sender=1)
        assert not p.wants_forced_checkpoint(pb, sender=1)
        assert not p.ensures_rdt


def bhmr_msg(sender_proto):
    """Snapshot a piggyback the way the replay driver does."""
    return sender_proto.on_send


class TestBHMRFigure2Scenario:
    """Figure 2: P_i sent m', then m arrives bringing a new dependency
    whose chain has no known causal sibling: C1 must fire."""

    def test_c1_fires(self):
        n = 3
        i, j, k = 0, 1, 2
        pi = BHMRProtocol(i, n)
        pk = BHMRProtocol(k, n)
        pi.on_send(j)  # m' to P_j, still in my current interval
        pb = pk.on_send(i)  # m from P_k with TDV[k]=1, causal[k][j]=False
        assert pi.wants_forced_checkpoint(pb, sender=k)

    def test_no_send_means_no_c1(self):
        n = 3
        pi = BHMRProtocol(0, n)
        pk = BHMRProtocol(2, n)
        pb = pk.on_send(0)
        assert not pi.wants_forced_checkpoint(pb, sender=2)

    def test_known_sibling_suppresses_force(self):
        """Figure 3: the sender knows a causal chain C(k,.) -> C(j,.)
        exists (causal[k][j] true), so P_i need not break anything."""
        n = 3
        i, j, k = 0, 1, 2
        pl = BHMRProtocol(k, n)  # P_k will talk to P_j then to P_i
        pj = BHMRProtocol(j, n)
        pi = BHMRProtocol(i, n)
        # P_k -> P_j directly: afterwards P_j knows causal[k][j].
        pb_kj = pl.on_send(j)
        assert not pj.wants_forced_checkpoint(pb_kj, sender=k)
        pj.on_receive(pb_kj, sender=k)
        assert pj.causal[k][j]
        # P_j -> P_i: P_i learns the dependency on P_k *and* the sibling.
        pb_ji = pj.on_send(i)
        pi.on_send(j)  # P_i has sent to P_j in its current interval
        # The new dependency on k comes with causal[k][j] == True: the
        # only breakable chain (towards j) already has a sibling.  The
        # dependency on j itself also has causal[j][j] == True.
        assert not pi.wants_forced_checkpoint(pb_ji, sender=j)


class TestBHMRC2Scenario:
    """Figure 4: a causal chain leaves P_i's interval and returns having
    crossed a checkpoint: C2 must fire (and only then)."""

    @staticmethod
    def _play(crossing_checkpoint: bool):
        n = 2
        i, k = 0, 1
        pi = BHMRProtocol(i, n)
        pk = BHMRProtocol(k, n)
        pb_ik = pi.on_send(k)  # chain mu'' leaves I(i,1)
        assert not pk.wants_forced_checkpoint(pb_ik, sender=i)
        pk.on_receive(pb_ik, sender=i)
        if crossing_checkpoint:
            pk.on_checkpoint()  # C(k,1) sits inside the returning chain
        pb_ki = pk.on_send(i)  # chain mu' returns to P_i
        return pi, pb_ki

    def test_c2_fires_when_chain_crossed_a_checkpoint(self):
        pi, pb = self._play(crossing_checkpoint=True)
        assert pi.wants_forced_checkpoint(pb, sender=1)

    def test_c2_silent_when_chain_is_simple(self):
        pi, pb = self._play(crossing_checkpoint=False)
        assert not pi.wants_forced_checkpoint(pb, sender=1)

    def test_simple_flag_round_trip(self):
        pi, pb = self._play(crossing_checkpoint=True)
        assert not pb.simple[0]  # P_k reset simple[i] at its checkpoint

    def test_variants_also_fire_there(self):
        n = 2
        for cls in (BHMRNoSimpleProtocol, BHMRCausalOnlyProtocol):
            pi = cls(0, n)
            pk = cls(1, n)
            pb_ik = pi.on_send(1)
            pk.on_receive(pb_ik, sender=0)
            pk.on_checkpoint()
            pb_ki = pk.on_send(0)
            assert pi.wants_forced_checkpoint(pb_ki, sender=1), cls.name


class TestBHMRStateInvariants:
    def test_simple_own_entry_stays_true(self):
        p = BHMRProtocol(0, 3)
        p.on_checkpoint()
        p.on_checkpoint()
        assert p.simple[0]

    def test_causal_diagonal_stays_true(self):
        p = BHMRProtocol(0, 3)
        other = BHMRProtocol(1, 3)
        p.on_receive(other.on_send(0), sender=1)
        p.on_checkpoint()
        for k in range(3):
            assert p.causal[k][k]

    def test_variant2_diagonal_stays_false(self):
        p = BHMRCausalOnlyProtocol(0, 3)
        other = BHMRCausalOnlyProtocol(1, 3)
        p.on_receive(other.on_send(0), sender=1)
        p.on_checkpoint()
        for k in range(3):
            assert not p.causal[k][k]

    def test_checkpoint_resets_own_causal_row(self):
        p = BHMRProtocol(0, 3)
        other = BHMRProtocol(1, 3)
        p.on_receive(other.on_send(0), sender=1)  # sets causal[1][0]
        assert p.causal[1][0]
        p.on_checkpoint()
        assert p.causal[0] == [True, False, False]
        # Knowledge about *other* processes' chains survives checkpoints.
        assert p.causal[1][0]

    def test_transitive_closure_on_receive(self):
        # P2 knows causal[0][1] (learned elsewhere); when P2 sends to me
        # (P1... here pid 1 receiving from 2), column updates close
        # transitively: causal[l][me] |= causal[l][sender].
        n = 3
        p2 = BHMRProtocol(2, n)
        p0 = BHMRProtocol(0, n)
        p2.on_receive(p0.on_send(2), sender=0)  # causal[0][2] := True
        me = BHMRProtocol(1, n)
        me.on_receive(p2.on_send(1), sender=2)
        assert me.causal[2][1]  # direct
        assert me.causal[0][1]  # transitive through the sender

    def test_min_gcp_of_initial(self):
        p = BHMRProtocol(0, 3)
        assert p.min_gcp_of(0) == {0: 0, 1: 0, 2: 0}
