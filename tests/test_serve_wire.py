"""The wire codec: length-prefixed canonical-JSON frames, sans-IO."""

import json
import random
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import wire


class TestEncodeDecode:
    def test_roundtrip(self):
        doc = {"kind": "hello", "seq": 1, "session": "s", "n": 3}
        assert wire.decode_frame(wire.encode_frame(doc)[4:]) == doc

    def test_canonical_bytes(self):
        # Key order must not leak into the encoding.
        a = wire.encode_frame({"b": 1, "a": 2})
        b = wire.encode_frame({"a": 2, "b": 1})
        assert a == b
        assert b"\n" not in a and b" " not in a

    def test_length_prefix_is_big_endian(self):
        frame = wire.encode_frame({"x": 1})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4

    def test_oversized_frame_refused_on_encode(self):
        with pytest.raises(wire.FrameError, match="exceeds"):
            wire.encode_frame({"blob": "x" * (wire.MAX_FRAME + 1)})

    def test_non_object_payload_refused(self):
        with pytest.raises(wire.FrameError, match="object"):
            wire.decode_frame(json.dumps([1, 2, 3]).encode())

    def test_garbage_payload_refused(self):
        with pytest.raises(wire.FrameError, match="undecodable"):
            wire.decode_frame(b"\xff\xfe not json")


class TestFrameBuffer:
    def test_byte_by_byte_feed(self):
        doc = {"kind": "send", "seq": 9, "session": "s", "src": 0, "dst": 1}
        frame = wire.encode_frame(doc)
        buffer = wire.FrameBuffer()
        for i, byte in enumerate(frame):
            out = buffer.feed(bytes([byte]))
            if i < len(frame) - 1:
                assert out == []
                assert buffer.pending() == i + 1
            else:
                assert out == [doc]
        assert buffer.pending() == 0
        assert buffer.next_doc() == doc
        assert buffer.next_doc() is None

    def test_many_frames_one_chunk(self):
        docs = [{"seq": i, "kind": "checkpoint"} for i in range(100)]
        chunk = b"".join(wire.encode_frame(d) for d in docs)
        buffer = wire.FrameBuffer()
        assert buffer.feed(chunk) == docs
        assert [buffer.next_doc() for _ in docs] == docs
        assert buffer.pending() == 0

    def test_split_across_chunks(self):
        docs = [{"seq": i, "payload": "y" * 50} for i in range(10)]
        stream = b"".join(wire.encode_frame(d) for d in docs)
        buffer = wire.FrameBuffer()
        got = []
        third = len(stream) // 3
        for part in (stream[:third], stream[third : 2 * third], stream[2 * third :]):
            got.extend(buffer.feed(part))
        assert got == docs

    def test_hostile_length_prefix_refused(self):
        buffer = wire.FrameBuffer()
        with pytest.raises(wire.FrameError, match="exceeds"):
            buffer.feed(struct.pack(">I", wire.MAX_FRAME + 1) + b"x")

    def test_pending_counts_partial_frame(self):
        frame = wire.encode_frame({"seq": 1})
        buffer = wire.FrameBuffer()
        buffer.feed(frame[:7])
        assert buffer.pending() == 7

    def test_completed_docs_survive_bad_frame_in_same_chunk(self):
        """Regression: good frames preceding a FrameError must reach
        next_doc().  A pipelined peer's acks used to vanish when an
        oversized frame followed them in the same read."""
        good = [{"seq": 1, "ok": True}, {"seq": 2, "ok": True}]
        chunk = b"".join(wire.encode_frame(d) for d in good)
        chunk += struct.pack(">I", wire.MAX_FRAME + 1) + b"x"
        buffer = wire.FrameBuffer()
        with pytest.raises(wire.FrameError, match="exceeds"):
            buffer.feed(chunk)
        assert buffer.next_doc() == good[0]
        assert buffer.next_doc() == good[1]
        assert buffer.next_doc() is None

    def test_completed_docs_survive_undecodable_frame(self):
        good = {"seq": 7, "ok": True}
        bad = struct.pack(">I", 3) + b"\xff\xfe\xfd"
        buffer = wire.FrameBuffer()
        with pytest.raises(wire.FrameError, match="undecodable"):
            buffer.feed(wire.encode_frame(good) + bad)
        assert buffer.next_doc() == good


class TestRawFrameBuffer:
    """The router's passthrough splitter: boundaries without decoding."""

    def test_payloads_are_verbatim_bytes(self):
        docs = [{"seq": i, "kind": "checkpoint"} for i in range(5)]
        frames = [wire.encode_frame(d) for d in docs]
        buffer = wire.RawFrameBuffer()
        buffer.feed(b"".join(frames))
        for frame in frames:
            assert buffer.next_payload() == frame[4:]
        assert buffer.next_payload() is None
        assert buffer.pending() == 0

    def test_split_across_chunks(self):
        frame = wire.encode_frame({"seq": 1, "blob": "z" * 100})
        buffer = wire.RawFrameBuffer()
        buffer.feed(frame[:30])
        assert buffer.next_payload() is None
        assert buffer.pending() == 30
        buffer.feed(frame[30:])
        assert buffer.next_payload() == frame[4:]

    def test_hostile_length_prefix_refused(self):
        buffer = wire.RawFrameBuffer()
        buffer.feed(struct.pack(">I", wire.MAX_FRAME + 1) + b"x")
        with pytest.raises(wire.FrameError, match="exceeds"):
            buffer.next_payload()

    def test_frame_prefix_reframes(self):
        doc = {"seq": 3, "kind": "send"}
        frame = wire.encode_frame(doc)
        payload = frame[4:]
        assert wire.frame_prefix(payload) + payload == frame

    def test_frame_prefix_polices_max(self):
        with pytest.raises(wire.FrameError, match="exceeds"):
            wire.frame_prefix(b"x" * (wire.MAX_FRAME + 1))


class TestErrorReply:
    def test_shape(self):
        reply = wire.error_reply(42, "overloaded", "queue full")
        assert reply == {
            "ok": False, "seq": 42, "error": "overloaded", "detail": "queue full",
        }


@pytest.mark.tier2
class TestAdversarialFragmentation:
    """Chaos-proxy-style re-chunking must never change what decodes.

    The chaos proxy (:mod:`repro.serve.chaosproxy`) re-chunks the byte
    stream into 1-byte writes and tiny random shreds, so every split
    point -- including inside the 4-byte length prefix -- occurs in
    practice.  These properties pin the sans-IO reassembly: any
    partition of the byte stream decodes to exactly the documents a
    whole-stream feed decodes, in order, byte-identically re-encoded.
    """

    docs_strategy = st.lists(
        st.dictionaries(
            st.sampled_from(["kind", "seq", "session", "payload", "x"]),
            st.one_of(
                st.integers(min_value=-(2**31), max_value=2**31),
                st.text(max_size=12),
                st.booleans(),
                st.none(),
            ),
            max_size=5,
        ),
        min_size=1,
        max_size=8,
    )

    @given(docs=docs_strategy, seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=60, deadline=None)
    def test_random_split_points_decode_identically(self, docs, seed):
        stream = b"".join(wire.encode_frame(d) for d in docs)
        whole = wire.FrameBuffer()
        expected = whole.feed(stream)
        assert expected == docs

        rng = random.Random(seed)
        shredded = wire.FrameBuffer()
        got = []
        i = 0
        while i < len(stream):
            take = rng.randint(1, 7)
            got.extend(shredded.feed(stream[i : i + take]))
            i += take
        assert got == expected
        assert shredded.pending() == 0
        # Byte-identical, not just equal: canonical JSON means equal
        # documents re-encode to equal bytes.
        assert [wire.encode_frame(d) for d in got] == [
            wire.encode_frame(d) for d in expected
        ]

    @given(docs=docs_strategy)
    @settings(max_examples=30, deadline=None)
    def test_one_byte_feeds_across_length_prefix(self, docs):
        stream = b"".join(wire.encode_frame(d) for d in docs)
        buffer = wire.FrameBuffer()
        got = []
        for i in range(len(stream)):
            got.extend(buffer.feed(stream[i : i + 1]))
        assert got == docs
        assert buffer.pending() == 0

    @given(docs=docs_strategy, seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=30, deadline=None)
    def test_raw_buffer_agrees_with_decoding_buffer(self, docs, seed):
        stream = b"".join(wire.encode_frame(d) for d in docs)
        rng = random.Random(seed)
        raw = wire.RawFrameBuffer()
        payloads = []
        i = 0
        while i < len(stream):
            take = rng.randint(1, 5)
            raw.feed(stream[i : i + take])
            while True:
                payload = raw.next_payload()
                if payload is None:
                    break
                payloads.append(payload)
            i += take
        assert [wire.decode_frame(p) for p in payloads] == docs
        assert stream == b"".join(wire.frame_prefix(p) + p for p in payloads)
