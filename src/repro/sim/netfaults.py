"""Network fault models: the unreliable physical layer under the channels.

The paper's system model (section 2.1) assumes asynchronous *reliable*
channels with finite delays, and every CIC protocol in :mod:`repro.core`
piggybacks its control state on application messages under that
assumption.  Real networks lose, duplicate, reorder and partition.  This
module describes those physical faults as plain seeded data -- the exact
analogue of :class:`repro.sim.faults.CrashSchedule` for the network
axis -- and :mod:`repro.sim.transport` rebuilds the paper's reliable
abstraction on top of them.

A :class:`NetFaultModel` is a pure value: per-link fault rates
(:class:`LinkFaults`), a set of :class:`Partition` windows, and a seed.
Every probabilistic decision during a run is drawn from one
``random.Random`` derived from ``(scenario seed, model seed)``, so a
faulty run is a pure function of its seeds and two equal-seeded runs are
byte-identical -- traces, ``net.*`` events and all.

Models are built three ways:

* :meth:`NetFaultModel.uniform` -- one rate triple for every link (the
  CLI's ``--loss/--dup/--reorder`` flags);
* the constructor -- explicit per-link overrides and partition windows;
* :meth:`NetFaultModel.random` -- a seeded chaotic draw (per-link rates
  plus transient partitions), for chaos sweeps.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.types import ProcessId, SimulationError

#: Sentinel for a partition that never heals.
FOREVER = math.inf


@dataclass(frozen=True)
class LinkFaults:
    """Fault rates of one directed link (all probabilities in [0, 1]).

    ``loss`` applies to each physical transmission attempt;
    ``duplicate`` makes an attempt arrive twice; ``reorder`` holds one
    arriving copy back by an extra exponential delay of mean
    ``reorder_delay`` (amplifying the channels' natural reordering).
    """

    loss: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_delay: float = 4.0

    def __post_init__(self) -> None:
        for name in ("loss", "duplicate", "reorder"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise SimulationError(f"{name} rate must be in [0, 1]: {p}")
        if self.reorder_delay <= 0:
            raise SimulationError(
                f"reorder_delay must be positive: {self.reorder_delay}"
            )

    def __bool__(self) -> bool:
        return bool(self.loss or self.duplicate or self.reorder)


@dataclass(frozen=True)
class Partition:
    """One link-partition window: ``a``/``b`` cannot talk in [start, end).

    ``end=FOREVER`` is a permanent cut (the watchdog case).  Symmetric by
    default -- both directions are cut -- matching a failed physical
    link; ``symmetric=False`` cuts only ``a -> b``.
    """

    a: ProcessId
    b: ProcessId
    start: float
    end: float = FOREVER
    symmetric: bool = True

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise SimulationError(
                f"bad partition window [{self.start}, {self.end})"
            )

    def cuts(self, src: ProcessId, dst: ProcessId, time: float) -> bool:
        """Is the directed link ``src -> dst`` cut at ``time``?"""
        if not self.start <= time < self.end:
            return False
        if src == self.a and dst == self.b:
            return True
        return self.symmetric and src == self.b and dst == self.a

    @property
    def permanent(self) -> bool:
        return self.end == FOREVER

    def __repr__(self) -> str:
        end = "forever" if self.permanent else f"{self.end:g}"
        arrow = "<->" if self.symmetric else "->"
        return f"<partition P{self.a}{arrow}P{self.b} [{self.start:g}, {end})>"


@dataclass(frozen=True)
class NetFaultModel:
    """The physical network of one run: fault rates, partitions, seed.

    ``default`` applies to every directed link; ``overrides`` (keyed by
    ``(src, dst)``) replace it per link.  ``seed`` feeds the model's own
    RNG stream -- independent of the scenario seed, so the same fault
    pattern composes with any workload or protocol, exactly like
    ``CrashSchedule``.  The dataclass repr is stable, which is what lets
    the sweep result cache key on configs that carry a model.
    """

    default: LinkFaults = field(default_factory=LinkFaults)
    overrides: Tuple[Tuple[Tuple[ProcessId, ProcessId], LinkFaults], ...] = ()
    partitions: Tuple[Partition, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        # Normalise overrides to a sorted tuple so equal models share a
        # repr (and hence a cache key) regardless of construction order.
        object.__setattr__(
            self, "overrides", tuple(sorted(dict(self.overrides).items()))
        )
        object.__setattr__(
            self,
            "partitions",
            tuple(sorted(self.partitions, key=lambda p: (p.start, p.a, p.b))),
        )
        object.__setattr__(self, "_by_link", dict(self.overrides))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(
        cls,
        loss: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        partitions: Sequence[Partition] = (),
        seed: int = 0,
    ) -> "NetFaultModel":
        """One fault-rate triple for every link (the CLI's model)."""
        return cls(
            default=LinkFaults(loss=loss, duplicate=duplicate, reorder=reorder),
            partitions=tuple(partitions),
            seed=seed,
        )

    @classmethod
    def random(
        cls,
        n: int,
        duration: float,
        seed: int = 0,
        max_loss: float = 0.3,
        max_duplicate: float = 0.2,
        max_reorder: float = 0.3,
        partition_count: int = 1,
        partition_span: Tuple[float, float] = (0.05, 0.25),
    ) -> "NetFaultModel":
        """A seeded chaotic network: per-link rates plus transient cuts.

        Each directed link draws its rates uniformly in ``[0, max_*]``;
        ``partition_count`` symmetric windows land at seeded-uniform
        start times with lengths drawn as a fraction of ``duration`` in
        ``partition_span``.  A pure function of the arguments, so chaos
        sweeps are reproducible cell by cell.
        """
        if n <= 1:
            raise SimulationError("need at least two processes for a network")
        if partition_count < 0:
            raise SimulationError("partition_count must be >= 0")
        rng = random.Random(seed)
        overrides = []
        for src in range(n):
            for dst in range(n):
                if src == dst:
                    continue
                overrides.append(
                    (
                        (src, dst),
                        LinkFaults(
                            loss=rng.uniform(0.0, max_loss),
                            duplicate=rng.uniform(0.0, max_duplicate),
                            reorder=rng.uniform(0.0, max_reorder),
                        ),
                    )
                )
        partitions = []
        lo, hi = partition_span
        for _ in range(partition_count):
            a = rng.randrange(n)
            b = (a + 1 + rng.randrange(n - 1)) % n
            start = rng.uniform(0.0, duration * 0.8)
            length = duration * rng.uniform(lo, hi)
            partitions.append(Partition(a, b, start, start + length))
        return cls(overrides=tuple(overrides), partitions=tuple(partitions), seed=seed)

    # ------------------------------------------------------------------
    # queries (the transport's decision inputs)
    # ------------------------------------------------------------------
    def link(self, src: ProcessId, dst: ProcessId) -> LinkFaults:
        """The fault rates of the directed link ``src -> dst``."""
        return self._by_link.get((src, dst), self.default)  # type: ignore[attr-defined]

    def is_cut(self, src: ProcessId, dst: ProcessId, time: float) -> bool:
        """Is ``src -> dst`` inside any partition window at ``time``?"""
        return any(p.cuts(src, dst, time) for p in self.partitions)

    def cut_forever(self, src: ProcessId, dst: ProcessId, after: float) -> bool:
        """Will ``src -> dst`` stay cut from ``after`` on (never heal)?"""
        return any(
            p.permanent and p.cuts(src, dst, after) for p in self.partitions
        )

    def rng_for(self, scenario_seed: int) -> random.Random:
        """The model's RNG stream for one scenario.

        Mixing both seeds through a string seed (deterministically
        hashed by ``random.Random``) keeps fault decisions independent
        of the scenario's own draw sequence while still varying across
        scenario seeds.
        """
        return random.Random(f"netfaults:{scenario_seed}:{self.seed}")

    def __bool__(self) -> bool:
        return (
            bool(self.default)
            or any(bool(f) for _, f in self.overrides)
            or bool(self.partitions)
        )
