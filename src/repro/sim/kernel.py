"""A minimal deterministic discrete-event simulation kernel.

Plain priority-queue scheduling: callbacks fire in ``(time, seq)`` order
where ``seq`` is a global insertion counter, so simultaneous events run
in scheduling order and every run is a pure function of its inputs (all
randomness comes from the caller's seeded RNG).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.types import SimulationError


class Scheduler:
    """The event queue of one simulation."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at ``now + delay`` (delay must be >= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past ({time} < {self._now})"
            )
        heapq.heappush(self._queue, (time, self._seq, callback))
        self._seq += 1

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> float:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` have run.  Returns the final simulation time."""
        if self._running:
            raise SimulationError("scheduler is not reentrant")
        self._running = True
        try:
            processed = 0
            while self._queue:
                time, _seq, callback = self._queue[0]
                if until is not None and time > until:
                    self._now = until
                    break
                if max_events is not None and processed >= max_events:
                    break
                heapq.heappop(self._queue)
                self._now = time
                callback()
                processed += 1
                self.events_processed += 1
        finally:
            self._running = False
        return self._now

    def pending(self) -> int:
        return len(self._queue)
