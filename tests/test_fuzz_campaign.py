"""Wide seeded fuzz campaign over the whole pipeline.

Cheap but broad: many seeds x workloads x protocols, each run passed
through the (vectorized) RDT checker and spot-checked for Corollary 4.5.
Complements the hypothesis suites: those shrink counterexamples well,
this one covers realistic traffic at volume.
"""

import pytest

from repro.analysis import check_rdt, min_consistent_gcp
from repro.events import CheckpointKind
from repro.sim import Simulation, SimulationConfig
from repro.types import CheckpointId
from repro.workloads import (
    BurstyWorkload,
    ClientServerWorkload,
    OverlappingGroupsWorkload,
    RandomUniformWorkload,
)

CAMPAIGN = [
    ("random", lambda: RandomUniformWorkload(send_rate=2.0), 4),
    ("bursty", lambda: BurstyWorkload(), 4),
    ("groups", lambda: OverlappingGroupsWorkload(group_size=3, overlap=1), 6),
    ("client-server", lambda: ClientServerWorkload(pipeline=2), 4),
]


@pytest.mark.parametrize("env,make,n", CAMPAIGN)
@pytest.mark.parametrize("protocol", ["bhmr", "bhmr-nosimple", "fdas"])
def test_rdt_fuzz_campaign(env, make, n, protocol):
    """15 seeds per (environment, protocol) cell; vectorized checking."""
    for seed in range(15):
        sim = Simulation(
            make(),
            SimulationConfig(
                n=n, duration=25.0, seed=1000 + seed, basic_rate=0.3
            ),
        )
        res = sim.run(protocol)
        report = check_rdt(res.history, method="vectorized")
        assert report.holds, (env, protocol, seed, report.violations[:2])


@pytest.mark.parametrize("seed", range(10))
def test_corollary_45_fuzz(seed):
    """Spot-check min-GCP-on-the-fly on one random checkpoint per run."""
    import random

    rng = random.Random(seed)
    sim = Simulation(
        RandomUniformWorkload(send_rate=2.0),
        SimulationConfig(n=4, duration=25.0, seed=2000 + seed, basic_rate=0.3),
    )
    res = sim.run("bhmr")
    candidates = [
        CheckpointId(pid, ev.checkpoint_index)
        for pid in range(4)
        for ev in res.history.checkpoints(pid)
        if ev.checkpoint_kind is not CheckpointKind.FINAL
    ]
    cid = rng.choice(candidates)
    assert min_consistent_gcp(res.history, [cid]) == res.family[
        cid.pid
    ].min_gcp_of(cid.index)
