"""Property tests (hypothesis) for the delay models.

The contract of :class:`repro.sim.delays.DelayModel` is load-bearing for
the whole simulator: every sample must be strictly positive (channels
have non-zero delays; a zero or negative delay would let a message
arrive at or before its send and break trace validation), and sampling
must be a pure function of the RNG state so that seeded runs are
byte-reproducible.  These properties are checked over wide, adversarial
parameter ranges -- including the degenerate corners where only the
clamp keeps samples positive -- plus the constructor guard that rejects
a non-positive Exponential mean outright.
"""

import math
import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.sim.delays import Constant, Exponential, LogNormal, Uniform
from repro.types import SimulationError

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
positive = st.floats(
    min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
)
seeds = st.integers(0, 2**32 - 1)


@st.composite
def delay_models(draw):
    """Any delay model with (possibly extreme) but constructible params."""
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return Constant(draw(finite))
    if kind == 1:
        lo = draw(finite)
        return Uniform(lo, lo + draw(st.floats(0, 1e6)))
    if kind == 2:
        return Exponential(draw(positive))
    return LogNormal(
        median=draw(positive), sigma=draw(st.floats(0.0, 5.0))
    )


@settings(max_examples=200, deadline=None)
@given(model=delay_models(), seed=seeds)
def test_samples_strictly_positive_and_finite(model, seed):
    """Every draw is > 0 and finite, even at clamp-only corners
    (negative Constant, all-negative Uniform ranges)."""
    rng = random.Random(seed)
    for _ in range(20):
        value = model.sample(rng)
        assert value > 0.0
        assert math.isfinite(value)


@settings(max_examples=200, deadline=None)
@given(model=delay_models(), seed=seeds)
def test_deterministic_under_fixed_seed(model, seed):
    """Equal RNG state in, equal sample sequence out -- bitwise."""
    a = [model.sample(random.Random(seed)) for _ in range(3)]
    b = [model.sample(random.Random(seed)) for _ in range(3)]
    assert a == b
    seq_a = _sequence(model, seed, 50)
    seq_b = _sequence(model, seed, 50)
    assert seq_a == seq_b


def _sequence(model, seed, k):
    rng = random.Random(seed)
    return [model.sample(rng) for _ in range(k)]


@settings(max_examples=100, deadline=None)
@given(
    mean=st.floats(
        max_value=0.0, allow_nan=False, allow_infinity=False
    )
)
def test_exponential_rejects_nonpositive_mean(mean):
    """``Exponential(mean<=0)`` raises instead of yielding NaN/negative
    delays (or dividing by zero) mid-run."""
    with pytest.raises(SimulationError):
        Exponential(mean)


def test_exponential_rejects_nan_mean():
    with pytest.raises(SimulationError):
        Exponential(float("nan"))


def test_clamp_honored_at_extremes():
    """The documented floor: degenerate parameters still sample > 0."""
    rng = random.Random(0)
    assert Constant(-5.0).sample(rng) > 0
    assert Constant(0.0).sample(rng) > 0
    assert Uniform(-10.0, -1.0).sample(rng) > 0
    assert Exponential(1e-12).sample(rng) > 0
