"""Uniform random point-to-point traffic (the paper's general environment).

Every process, driven by an exponential timer, sends a message to a
uniformly random peer.  This is the baseline environment of simulation
studies of CIC protocols: no structure, every dependency pattern equally
likely.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.types import MessageId, ProcessId
from repro.workloads.base import Workload, WorkloadContext


class RandomUniformWorkload(Workload):
    """Each process sends to a random other at exponential intervals.

    Parameters
    ----------
    send_rate:
        Mean messages per process per time unit.
    burst:
        Messages sent per activation (1 = classic Poisson traffic).
    """

    def __init__(self, send_rate: float = 1.0, burst: int = 1) -> None:
        if send_rate <= 0:
            raise ValueError("send_rate must be positive")
        if burst < 1:
            raise ValueError("burst must be at least 1")
        self.send_rate = send_rate
        self.burst = burst

    def _arm(self, ctx: WorkloadContext, pid: ProcessId) -> None:
        ctx.set_timer(pid, ctx.rng.expovariate(self.send_rate), tag="send")

    def on_start(self, ctx: WorkloadContext) -> None:
        for pid in range(ctx.n):
            self._arm(ctx, pid)

    def on_timer(
        self, ctx: WorkloadContext, pid: ProcessId, tag: Optional[Hashable]
    ) -> None:
        if ctx.n > 1:
            for _ in range(self.burst):
                dst = ctx.rng.randrange(ctx.n - 1)
                if dst >= pid:
                    dst += 1
                ctx.send(pid, dst)
        self._arm(ctx, pid)

    def on_deliver(
        self, ctx: WorkloadContext, pid: ProcessId, src: ProcessId, msg_id: MessageId
    ) -> None:
        pass  # pure one-way traffic
