"""The lattice of consistent global checkpoints.

Consistent cuts are closed under component-wise min (meet) and max
(join): the orphan constraints are Horn clauses, and Horn-definable sets
are closed under both operations on this finite product order.  The set
of consistent global checkpoints containing a given local checkpoint
``C`` is therefore a sublattice with bottom ``min_consistent_gcp(C)``
and top ``max_consistent_gcp(C)`` -- the structure behind the paper's
debugging/output-commit applications: a debugger may walk the lattice
interval freely, every point being a legal frozen state.

This module makes the lattice concrete: meet/join, membership,
enumeration and counting of the interval between two cuts, and
single-step navigation (which process can advance/retreat while staying
consistent).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.analysis.consistency import is_consistent_gcp
from repro.events.history import History
from repro.types import AnalysisError, ProcessId

Cut = Dict[ProcessId, int]


def cut_meet(a: Cut, b: Cut) -> Cut:
    """Component-wise minimum (the lattice meet)."""
    if set(a) != set(b):
        raise AnalysisError("cuts must cover the same processes")
    return {pid: min(a[pid], b[pid]) for pid in a}


def cut_join(a: Cut, b: Cut) -> Cut:
    """Component-wise maximum (the lattice join)."""
    if set(a) != set(b):
        raise AnalysisError("cuts must cover the same processes")
    return {pid: max(a[pid], b[pid]) for pid in a}


def cut_leq(a: Cut, b: Cut) -> bool:
    """Component-wise order."""
    return all(a[pid] <= b[pid] for pid in a)


def advance_candidates(history: History, cut: Cut) -> List[ProcessId]:
    """Processes whose entry can be incremented while staying consistent."""
    history = history.closed()
    out = []
    for pid in cut:
        if cut[pid] >= history.last_index(pid):
            continue
        stepped = dict(cut)
        stepped[pid] += 1
        if is_consistent_gcp(history, stepped):
            out.append(pid)
    return out


def retreat_candidates(history: History, cut: Cut) -> List[ProcessId]:
    """Processes whose entry can be decremented while staying consistent."""
    history = history.closed()
    out = []
    for pid in cut:
        if cut[pid] == 0:
            continue
        stepped = dict(cut)
        stepped[pid] -= 1
        if is_consistent_gcp(history, stepped):
            out.append(pid)
    return out


def iter_consistent_cuts(
    history: History,
    low: Cut,
    high: Cut,
    limit: Optional[int] = None,
) -> Iterator[Cut]:
    """Enumerate consistent cuts in the interval ``[low, high]``.

    Walks the product box between the two cuts (which must satisfy
    ``low <= high``) and yields the consistent ones in lexicographic
    order.  Exponential in the box volume -- intended for the
    small windows debugging works with; ``limit`` caps the yield.
    """
    history = history.closed()
    if not cut_leq(low, high):
        raise AnalysisError("need low <= high componentwise")
    pids = sorted(low)
    yielded = 0

    def rec(k: int, partial: Cut) -> Iterator[Cut]:
        if k == len(pids):
            yield dict(partial)
            return
        pid = pids[k]
        for index in range(low[pid], high[pid] + 1):
            partial[pid] = index
            yield from rec(k + 1, partial)

    for cut in rec(0, {}):
        if is_consistent_gcp(history, cut):
            yield cut
            yielded += 1
            if limit is not None and yielded >= limit:
                return


def count_consistent_cuts(history: History, low: Cut, high: Cut) -> int:
    """Size of the consistent sublattice between two cuts."""
    return sum(1 for _ in iter_consistent_cuts(history, low, high))


def lattice_closure_check(history: History, cuts: List[Cut]) -> bool:
    """Are all pairwise meets and joins of the given consistent cuts
    consistent too?  (Always true -- exposed for direct testing and as a
    sanity probe on user-supplied data.)"""
    history = history.closed()
    for a in cuts:
        if not is_consistent_gcp(history, a):
            return False
    for a in cuts:
        for b in cuts:
            if not is_consistent_gcp(history, cut_meet(a, b)):
                return False
            if not is_consistent_gcp(history, cut_join(a, b)):
                return False
    return True
