"""Differential tests: incremental closure vs batch Tarjan closure.

The parallel harness and the online analyses are only trustworthy if the
incremental reachability machinery is *bit-identical* to the batch
closure it replaces.  This suite holds them to that contract over
randomized inputs:

* raw digraphs: random edge streams (with interleaved node growth) into
  :class:`IncrementalClosure` vs ``DenseDigraph.transitive_closure``;
* recorded patterns (2-8 processes): R-graph reachability, Z-cycle
  components, all three useless-checkpoint detectors, and full RDT
  verdicts (reports included) across closure backends.

Well over 200 randomized cases total; every assertion is exact equality.
"""

import random

import pytest

from repro.analysis import (
    check_rdt,
    find_z_cycles,
    useless_checkpoints,
    useless_checkpoints_incremental,
    useless_checkpoints_rgraph,
)
from repro.events.random_pattern import random_pattern
from repro.graph import (
    DenseDigraph,
    IncrementalClosure,
    IncrementalRGraph,
    RGraph,
)

DIGRAPH_CASES = 120
PATTERN_CASES = 110


def random_digraph_case(rng):
    n0 = rng.randrange(1, 12)
    grow = rng.randrange(0, 6)
    edges = []
    n = n0 + grow
    for _ in range(rng.randrange(0, 3 * n + 1)):
        edges.append((rng.randrange(n), rng.randrange(n)))
    return n0, grow, edges


@pytest.mark.tier2
class TestDigraphDifferential:
    @pytest.mark.parametrize("case", range(DIGRAPH_CASES))
    def test_incremental_matches_batch(self, case):
        rng = random.Random(1000 + case)
        n0, grow, edges = random_digraph_case(rng)
        n = n0 + grow
        batch = DenseDigraph(n)
        inc = IncrementalClosure(n0)
        for _ in range(grow):
            inc.add_node()
        # Duplicate a slice of the edge stream: re-insertion must be a
        # no-op for both reachability and the edge count.
        stream = edges + edges[: len(edges) // 3]
        rng.shuffle(stream)
        for u, v in stream:
            batch.add_edge(u, v)
            inc.add_edge(u, v)
        closure = batch.transitive_closure()
        assert inc.num_edges() == batch.num_edges()
        for u in range(n):
            assert inc.reach_mask(u) == closure.reach_mask(u), (case, u)
            assert inc.on_cycle(u) == closure.on_cycle(u), (case, u)
            assert inc.reachable_set(u) == closure.reachable_set(u)
        assert sorted(map(tuple, inc.cyclic_components())) == sorted(
            map(tuple, closure.cyclic_components())
        )

    def test_interleaved_growth(self):
        """Nodes appended mid-stream participate fully in the closure."""
        rng = random.Random(7)
        for case in range(30):
            inc = IncrementalClosure(2)
            edges = []
            n = 2
            for _ in range(40):
                if rng.random() < 0.25:
                    inc.add_node()
                    n += 1
                else:
                    u, v = rng.randrange(n), rng.randrange(n)
                    inc.add_edge(u, v)
                    edges.append((u, v))
            batch = DenseDigraph(n)
            for u, v in edges:
                batch.add_edge(u, v)
            closure = batch.transitive_closure()
            for u in range(n):
                assert inc.reach_mask(u) == closure.reach_mask(u), (case, u)


def pattern_for(case):
    rng = random.Random(5000 + case)
    return random_pattern(
        n=2 + case % 7,  # 2..8 processes
        steps=20 + rng.randrange(60),
        seed=5000 + case,
        p_send=0.3 + 0.3 * rng.random(),
        p_deliver=0.25 + 0.2 * rng.random(),
        p_checkpoint=0.15 + 0.2 * rng.random(),
    )


@pytest.mark.tier2
class TestPatternDifferential:
    @pytest.mark.parametrize("case", range(PATTERN_CASES))
    def test_reachability_zcycles_rdt_bit_identical(self, case):
        history = pattern_for(case)
        batch_rg = RGraph(history)
        inc_rg = RGraph(history, incremental=True)
        # Closure bitsets: the strongest statement -- every pairwise
        # reachability answer coincides.
        assert batch_rg.closure_masks() == inc_rg.closure_masks()
        assert batch_rg.cycles() == inc_rg.cycles()

        # The *online* graph (event feed with frontier nodes) agrees on
        # every real checkpoint too.
        online = IncrementalRGraph.from_history(history)
        for cid in history.checkpoint_ids():
            assert online.on_cycle(cid) == batch_rg.on_cycle(cid), (case, cid)
            batch_reach = batch_rg.reachable_set(cid)
            online_reach = {
                c for c in online.reachable_set(cid) if not online.is_frontier(c)
            }
            assert online_reach == batch_reach, (case, cid)

        # Z-cycle detection, all routes.
        assert find_z_cycles(history) == find_z_cycles(history, incremental=True)
        assert online.cycles() == batch_rg.cycles()

        # Useless checkpoints: zigzag detector vs batch R-graph detector
        # vs online incremental detector.
        expected = useless_checkpoints_rgraph(history)
        assert useless_checkpoints(history) == expected
        assert useless_checkpoints_incremental(history) == expected
        assert online.useless_checkpoints() == expected

    @pytest.mark.parametrize("case", range(0, PATTERN_CASES, 2))
    def test_rdt_verdicts_bit_identical(self, case):
        history = pattern_for(case)
        batch = check_rdt(history)
        incremental = check_rdt(history, closure="incremental")
        assert batch.holds == incremental.holds
        assert batch.checked_pairs == incremental.checked_pairs
        assert [(v.source, v.target) for v in batch.violations] == [
            (v.source, v.target) for v in incremental.violations
        ]
