"""Shared machine-readable benchmark output: ``BENCH_<name>.json``.

Every benchmark module funnels its headline numbers (throughput,
latency quantiles, speedups) through :func:`write_bench`, which merges
them into one JSON document per benchmark at the repo root --
``BENCH_runner_scaling.json``, ``BENCH_net_faults.json``,
``BENCH_serve.json`` -- so trend tracking reads files with a stable
schema instead of scraping pytest output.  Each write stamps the
process's peak RSS (via ``resource``; the image has no psutil).

Multiple tests of one module may call ``write_bench`` with the same
name: sections merge, last write of a key wins, and the file is
rewritten whole each time (atomic enough for a single process).
"""

import json
import resource
import sys
from pathlib import Path

#: Benchmarks run from the repo root; the artifacts land next to
#: ``pyproject.toml`` (and are gitignored).
REPO_ROOT = Path(__file__).resolve().parent.parent


def peak_rss_bytes() -> int:
    """The process's peak resident set size, in bytes.

    ``ru_maxrss`` is kilobytes on Linux but bytes on macOS.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak if sys.platform == "darwin" else peak * 1024


def write_bench(name: str, sections: dict, directory=None) -> Path:
    """Merge ``sections`` into ``BENCH_<name>.json``; returns the path."""
    directory = Path(directory) if directory is not None else REPO_ROOT
    path = directory / f"BENCH_{name}.json"
    doc = {}
    if path.exists():
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            doc = {}
    doc.update(sections)
    doc["bench"] = name
    doc["peak_rss_bytes"] = peak_rss_bytes()
    path.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path
