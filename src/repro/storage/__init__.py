"""Stable-storage modelling: stores, footprints, GC policies."""

from repro.storage.store import (
    CheckpointRecord,
    LogRecord,
    StableStore,
    StorageError,
)
from repro.storage.timeline import StorageReport, simulate_storage

__all__ = [
    "CheckpointRecord",
    "LogRecord",
    "StableStore",
    "StorageError",
    "StorageReport",
    "simulate_storage",
]
