"""A guided tour of RDT theory on the paper's Figure 1.

    python examples/rdt_theory_tour.py

Reconstructs the paper's running example pattern and walks through every
concept of sections 2-3: orphan messages, consistent pairs and global
checkpoints, the R-graph, message chains (causal, non-causal, siblings,
simple), on-line trackability and the RDT violations hiding in the
figure.
"""

from repro import CheckpointId, ZPathAnalyzer, check_rdt, figure1_pattern
from repro.analysis import (
    is_consistent_gcp,
    is_consistent_pair,
    orphan_messages,
    useless_checkpoints,
)
from repro.graph import RGraph

I, J, K = 0, 1, 2  # the paper's P_i, P_j, P_k
C = CheckpointId


def main() -> None:
    history = figure1_pattern()
    names = history.figure_names
    label = {v: k for k, v in names.items()}
    za = ZPathAnalyzer(history)

    print("== Consistency (section 2.2) ==")
    print(f"(C_k1, C_j1) consistent?   {is_consistent_pair(history, C(K,1), C(J,1))}")
    print(f"(C_i2, C_j2) consistent?   {is_consistent_pair(history, C(I,2), C(J,2))}")
    culprits = [label[m.msg_id] for m in orphan_messages(history, C(I, 2), C(J, 2))]
    print(f"  orphan responsible:      {culprits}")
    print(f"{{C_i1,C_j1,C_k1}} consistent GCP? "
          f"{is_consistent_gcp(history, [1, 1, 1])}")
    print(f"{{C_i2,C_j2,C_k1}} consistent GCP? "
          f"{is_consistent_gcp(history, [2, 2, 1])}")

    print("\n== The R-graph (section 3.1) ==")
    rgraph = RGraph(history)
    cross = sorted((a, b) for a, b in rgraph.edges() if a.pid != b.pid)
    for a, b in cross:
        print(f"  {a} -> {b}")

    print("\n== Message chains (section 3.2) ==")
    m = {k: [names[k]] for k in names}
    chain = m["m3"] + m["m2"]
    print(f"[m3, m2] is a chain:        {za.is_chain(chain)}")
    print(f"[m3, m2] is causal:         {za.is_causal_chain(chain)}")
    nc = m["m5"] + m["m4"]
    sib = za.causal_siblings(nc)
    print(f"[m5, m4] causal siblings:   "
          f"{[[label[x] for x in c] for c in sib]}")
    long_chain = [names[x] for x in ("m3", "m2", "m5", "m4", "m7")]
    print(f"[m3,m2,m5,m4,m7] is a (non-causal) chain: {za.is_chain(long_chain)}")

    print("\n== Rollback-Dependency Trackability (section 3.3) ==")
    from repro.analysis import explain_violation

    report = check_rdt(history)
    print(f"Figure 1 satisfies RDT?     {report.holds}")
    for violation in report.violations:
        evidence = explain_violation(history, violation.source, violation.target)
        chain = evidence["zigzag"]
        pretty = "?" if chain is None else "[" + ", ".join(label[x] for x in chain) + "]"
        print(
            f"  untrackable R-path:       {violation.source} -> "
            f"{violation.target}  (undoubled chain {pretty})"
        )
    print(f"Useless checkpoints:        {useless_checkpoints(history)}")
    print(
        "\nThe protocol of section 4 (run it: examples/quickstart.py) "
        "forces exactly the checkpoints needed to prevent such patterns."
    )


if __name__ == "__main__":
    main()
