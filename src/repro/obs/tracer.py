"""The structured trace bus: typed, deterministic, zero-cost when off.

A :class:`Tracer` collects typed events from every layer of the stack --
scheduler ticks, message deliveries, protocol predicate evaluations
(with their inputs), forced-checkpoint decisions, closure updates, sweep
cells -- and renders them as JSONL.  Two properties are contractual:

* **Determinism.**  Events are keyed by ``(t, seq)`` where ``t`` is
  *simulation* time and ``seq`` a per-tracer insertion counter; wall
  clock never appears.  Together with canonical JSON encoding
  (:mod:`repro.obs.jsonio`) this makes trace files *byte-identical*
  across runs of the same seed, so they can be diffed and golden-tested.
  (Wall-clock profiling lives in :mod:`repro.obs.profile`, deliberately
  outside the trace.)

* **Zero overhead when disabled.**  Instrumented call sites hold either
  ``None`` or a tracer and guard with ``if tracer:`` -- a disabled
  tracer is falsy, so the cost of instrumentation without tracing is
  one truthiness check, nothing allocated, nothing formatted.

Event kinds are an open vocabulary; the ones emitted by this repo are
listed in :data:`KINDS` and documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, TextIO, Union

from repro.obs.jsonio import canonical_dumps, jsonable

#: The event vocabulary emitted by the instrumented layers (informative,
#: not enforced -- user code may emit its own kinds).
KINDS = (
    "sim.step",         # scheduler processed one event
    "sim.send",         # trace generation recorded a send
    "sim.deliver",      # trace generation recorded a delivery
    "sim.basic",        # trace generation recorded a basic checkpoint
    "proto.predicate",  # forcing predicate evaluated (with inputs)
    "proto.forced",     # predicate fired: forced checkpoint taken
    "proto.ckpt",       # any checkpoint recorded during replay
    "closure.node",     # incremental R-graph grew a node
    "closure.edge",     # incremental R-graph closure absorbed an edge
    "sweep.cell",       # one sweep cell finished (or was served cached)
    "phase",            # span open/close marker (begin/end field)
    "recovery.crash",   # injected failure struck (crashed pids)
    "recovery.line",    # online recovery line computed at a crash
    "recovery.replay",  # rollback done: re-execution + log replay stats
    "net.drop",         # physical copy (or ack) lost / cut by a partition
    "net.dup",          # physical layer duplicated a transmission
    "net.retransmit",   # transport retried an unacked message
    "net.deliver",      # transport handed a message to the protocol layer
    "net.ack",          # sender received the delivery ack
    "net.degraded",     # watchdog gave up on a message; link degraded
    "serve.start",      # daemon bound its listening address
    "serve.stop",       # daemon drained and stopped (session count)
    "serve.conn",       # connection opened/closed (mark field)
    "serve.shed",       # backpressure refused a frame (full shard queue)
    "serve.snapshot",   # session snapshotted on request
    "serve.evict",      # idle session snapshotted and dropped from RAM
    "serve.restore",    # evicted session replayed back to live state
)


@dataclass(frozen=True)
class TraceEvent:
    """One typed event: kind, simulation time, sequence, open fields."""

    kind: str
    t: float
    seq: int
    fields: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {"kind": self.kind, "t": self.t, "seq": self.seq}
        doc.update(self.fields)
        return doc

    def line(self) -> str:
        """The event's canonical JSONL rendition."""
        return canonical_dumps(self.to_dict())


class _Span:
    """An open span; :meth:`end` emits the matching close event."""

    __slots__ = ("_tracer", "kind", "span_id", "_closed")

    def __init__(self, tracer: "Tracer", kind: str, span_id: int) -> None:
        self._tracer = tracer
        self.kind = kind
        self.span_id = span_id
        self._closed = False

    def end(self, t: float, **fields: object) -> None:
        if self._closed:
            return
        self._closed = True
        self._tracer.event(self.kind, t, span=self.span_id, mark="end", **fields)


class Tracer:
    """Collects trace events; falsy (and inert) when disabled.

    Parameters
    ----------
    enabled:
        A disabled tracer drops every event and is falsy, letting call
        sites share one ``if tracer:`` guard for both ``None`` and
        "constructed but off".
    stream:
        Optional text stream to write each event line to as it happens
        (events are buffered in memory regardless, for :meth:`lines` /
        :meth:`write`).
    """

    def __init__(self, enabled: bool = True, stream: Optional[TextIO] = None):
        self.enabled = enabled
        self._stream = stream
        self._events: List[TraceEvent] = []
        self._seq = 0

    def __bool__(self) -> bool:
        return self.enabled

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def event(self, kind: str, t: float, **fields: object) -> None:
        """Record one event at simulation time ``t``.

        Field values pass through :func:`repro.obs.jsonio.jsonable`, so
        tuples, dicts and dataclass-repr'able objects are all safe.
        """
        if not self.enabled:
            return
        ev = TraceEvent(
            kind=kind,
            t=t,
            seq=self._seq,
            fields={k: jsonable(v) for k, v in fields.items()},
        )
        self._seq += 1
        self._events.append(ev)
        if self._stream is not None:
            self._stream.write(ev.line() + "\n")

    def span(self, kind: str, t: float, **fields: object) -> _Span:
        """Open a span: emits the begin marker now, the end on ``.end(t)``.

        The span id is the begin event's ``seq``, which pairs the two
        markers unambiguously even when spans of one kind nest.
        """
        span_id = self._seq
        self.event(kind, t, span=span_id, mark="begin", **fields)
        return _Span(self, kind, span_id)

    # ------------------------------------------------------------------
    # inspection / output
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [ev for ev in self._events if ev.kind == kind]

    def lines(self) -> List[str]:
        """Every event as its canonical JSONL line, in emission order."""
        return [ev.line() for ev in self._events]

    def dumps(self) -> str:
        """The whole trace as one JSONL string (trailing newline)."""
        return "".join(line + "\n" for line in self.lines())

    def write(self, path: Union[str, Path]) -> int:
        """Write the buffered trace to ``path``; returns the event count."""
        Path(path).write_text(self.dumps(), encoding="utf-8")
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self._seq = 0

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return f"<Tracer {state} events={len(self._events)}>"


#: A shared, always-disabled tracer: pass where ``Optional[Tracer]``
#: feels awkward; behaviourally identical to passing ``None``.
NULL_TRACER = Tracer(enabled=False)
