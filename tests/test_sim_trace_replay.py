"""Trace generation and protocol replay tests."""

import pytest

from repro.core import protocol_factory
from repro.events import CheckpointKind, validate_history
from repro.sim import (
    Simulation,
    SimulationConfig,
    Trace,
    TraceOp,
    TraceOpKind,
    generate_trace,
    replay,
    replay_many,
)
from repro.types import SimulationError
from repro.workloads import RandomUniformWorkload


def small_config(**kw):
    defaults = dict(n=3, duration=30.0, seed=5, basic_rate=0.2)
    defaults.update(kw)
    return SimulationConfig(**defaults)


class TestTraceValidation:
    def test_rejects_double_send(self):
        ops = [
            TraceOp(1.0, TraceOpKind.SEND, 0, peer=1, msg_id=0),
            TraceOp(2.0, TraceOpKind.SEND, 0, peer=1, msg_id=0),
        ]
        with pytest.raises(SimulationError):
            Trace(2, ops)

    def test_rejects_unsent_delivery(self):
        ops = [TraceOp(1.0, TraceOpKind.DELIVER, 1, peer=0, msg_id=7)]
        with pytest.raises(SimulationError):
            Trace(2, ops)

    def test_rejects_endpoint_mismatch(self):
        ops = [
            TraceOp(1.0, TraceOpKind.SEND, 0, peer=1, msg_id=0),
            TraceOp(2.0, TraceOpKind.DELIVER, 0, peer=1, msg_id=0),
        ]
        with pytest.raises(SimulationError):
            Trace(2, ops)

    def test_sorts_by_time(self):
        ops = [
            TraceOp(2.0, TraceOpKind.DELIVER, 1, peer=0, msg_id=0),
            TraceOp(1.0, TraceOpKind.SEND, 0, peer=1, msg_id=0),
        ]
        t = Trace(2, ops)
        assert t.ops[0].kind is TraceOpKind.SEND


class TestGeneration:
    def test_deterministic_given_seed(self):
        w = RandomUniformWorkload()
        t1 = generate_trace(3, w, duration=20, seed=9)
        t2 = generate_trace(3, RandomUniformWorkload(), duration=20, seed=9)
        assert [repr(op) for op in t1] == [repr(op) for op in t2]

    def test_different_seeds_differ(self):
        t1 = generate_trace(3, RandomUniformWorkload(), duration=20, seed=1)
        t2 = generate_trace(3, RandomUniformWorkload(), duration=20, seed=2)
        assert [repr(op) for op in t1] != [repr(op) for op in t2]

    def test_all_messages_eventually_delivered(self):
        t = generate_trace(4, RandomUniformWorkload(), duration=30, seed=3)
        assert t.num_messages() == t.num_deliveries()

    def test_basic_rate_zero_means_no_basic(self):
        t = generate_trace(
            3, RandomUniformWorkload(), duration=20, seed=0, basic_rate=0.0
        )
        assert t.num_basic_checkpoints() == 0

    def test_higher_rate_more_checkpoints(self):
        lo = generate_trace(
            3, RandomUniformWorkload(), duration=50, seed=0, basic_rate=0.05
        )
        hi = generate_trace(
            3, RandomUniformWorkload(), duration=50, seed=0, basic_rate=1.0
        )
        assert hi.num_basic_checkpoints() > lo.num_basic_checkpoints()


class TestReplay:
    def test_histories_validate(self):
        sim = Simulation(RandomUniformWorkload(), small_config())
        for name in ("bhmr", "fdas", "cas", "independent"):
            res = sim.run(name)
            validate_history(res.history)

    def test_trace_content_is_preserved(self):
        sim = Simulation(RandomUniformWorkload(), small_config())
        res = sim.run("bhmr")
        t = sim.trace
        assert res.metrics.messages_delivered == t.num_deliveries()
        assert res.metrics.basic_checkpoints == t.num_basic_checkpoints()

    def test_forced_checkpoints_marked(self):
        sim = Simulation(RandomUniformWorkload(), small_config())
        res = sim.run("cbr")
        forced = res.history.checkpoint_counts(CheckpointKind.FORCED)
        assert sum(forced) == res.metrics.forced_checkpoints > 0

    def test_same_trace_under_protocols_same_messages(self):
        sim = Simulation(RandomUniformWorkload(), small_config())
        results = sim.compare(["bhmr", "fdas"])
        a, b = results["bhmr"].history, results["fdas"].history
        assert sorted(a.messages) == sorted(b.messages)
        for mid in a.messages:
            assert a.message(mid).src == b.message(mid).src
            assert a.message(mid).dst == b.message(mid).dst

    def test_independent_adds_no_checkpoints(self):
        sim = Simulation(RandomUniformWorkload(), small_config())
        res = sim.run("independent")
        assert res.metrics.forced_checkpoints == 0
        assert res.metrics.piggyback_bits_total == 0

    def test_replay_many_shares_trace(self):
        t = generate_trace(3, RandomUniformWorkload(), duration=20, seed=2)
        results = replay_many(
            t, {name: protocol_factory(name) for name in ("bhmr", "fdas")}
        )
        assert set(results) == {"bhmr", "fdas"}

    def test_replay_unclosed(self):
        t = generate_trace(3, RandomUniformWorkload(), duration=20, seed=2)
        res = replay(t, protocol_factory("bhmr"), close=False)
        validate_history(res.history)

    def test_piggyback_accounting_positive_for_tdv_family(self):
        sim = Simulation(RandomUniformWorkload(), small_config())
        res = sim.run("fdas")
        n = small_config().n
        per_msg = res.metrics.piggyback_bits_per_message
        assert per_msg == pytest.approx(32 * n)


class TestSimulationFacade:
    def test_trace_cached(self):
        sim = Simulation(RandomUniformWorkload(), small_config())
        assert sim.trace is sim.trace

    def test_config_validation(self):
        with pytest.raises(SimulationError):
            SimulationConfig(n=0)
        with pytest.raises(SimulationError):
            SimulationConfig(duration=-1)
        with pytest.raises(SimulationError):
            SimulationConfig(basic_rate=-0.1)

    def test_run_scenario_helper(self):
        from repro.sim import run_scenario

        res = run_scenario(
            RandomUniformWorkload(), "bhmr", small_config(duration=10)
        )
        assert res.protocol_name == "bhmr"
