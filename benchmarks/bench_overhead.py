"""E5 / section 5.2: the piggyback-overhead side of the trade.

"The price to be paid is in terms of increased size of piggybacked
information": FDAS ships ``n`` integers per message, the BHMR protocol
adds ``n^2 + n`` bits (causal matrix + simple vector), variant 1 saves
the ``n`` simple bits, the classical protocols ship nothing.  This bench
measures bits/message next to forced checkpoints (the quantity the
overhead buys down), and contrasts with Chandy-Lamport's *control
messages* -- the cost CIC avoids entirely.
"""

import pytest

from repro.core import run_chandy_lamport
from repro.harness import compare_protocols, render_table
from repro.sim import SimulationConfig
from repro.workloads import RandomUniformWorkload

N = 8
PROTOCOLS = ["bhmr", "bhmr-nosimple", "bhmr-causalonly", "fdas", "nras", "cbr"]


@pytest.fixture(scope="module")
def comparison():
    return compare_protocols(
        lambda: RandomUniformWorkload(send_rate=1.5),
        SimulationConfig(n=N, duration=60.0, basic_rate=0.2),
        PROTOCOLS,
        seeds=(0, 1, 2),
        scenario="overhead",
    )


def test_overhead_table(benchmark, emit, comparison):
    rows = [
        {
            "protocol": agg.protocol,
            "bits/msg": round(agg.piggyback_bits_per_message, 1),
            "forced": agg.forced_total,
            "R": None
            if agg.ratio_to_baseline is None
            else round(agg.ratio_to_baseline, 3),
        }
        for agg in comparison.protocols
    ]
    emit(render_table(rows, title=f"Piggyback overhead vs forcing (random, n={N})"))
    bits = {
        a.protocol: a.piggyback_bits_per_message for a in comparison.protocols
    }
    # Exact wire sizes (section 5.2's accounting).
    assert bits["fdas"] == pytest.approx(32 * N)
    assert bits["bhmr"] == pytest.approx(32 * N + N * N + N)
    assert bits["bhmr-nosimple"] == pytest.approx(32 * N + N * N)
    assert bits["nras"] == 0 and bits["cbr"] == 0
    # The overhead buys fewer forced checkpoints, never more.
    forced = {a.protocol: a.forced_total for a in comparison.protocols}
    assert forced["bhmr"] <= forced["fdas"] <= forced["nras"] <= forced["cbr"]
    benchmark(
        lambda: compare_protocols(
            lambda: RandomUniformWorkload(send_rate=1.5),
            SimulationConfig(n=N, duration=20.0, basic_rate=0.2),
            ["bhmr"],
            seeds=(0,),
        )
    )


def test_control_message_contrast(benchmark, emit):
    """CIC sends zero control messages; coordinated snapshots pay
    n(n-1) markers per snapshot."""
    result = run_chandy_lamport(
        RandomUniformWorkload(send_rate=1.5),
        n=N,
        duration=60.0,
        seed=0,
        snapshot_period=10.0,
    )
    rows = [
        {
            "approach": "chandy-lamport",
            "snapshots": len(result.snapshots),
            "control msgs": result.control_messages,
            "ctrl/snapshot": round(
                result.control_messages / max(len(result.snapshots), 1), 1
            ),
        },
        {"approach": "any CIC protocol", "snapshots": "-", "control msgs": 0,
         "ctrl/snapshot": 0.0},
    ]
    emit(render_table(rows, title="Control-message cost of coordination"))
    assert result.control_messages == len(result.snapshots) * N * (N - 1)
    benchmark(
        lambda: run_chandy_lamport(
            RandomUniformWorkload(send_rate=1.5),
            n=N,
            duration=20.0,
            seed=0,
            snapshot_period=10.0,
        )
    )
