"""Garbage-collection tests: recovery floors, obsolescence, monotonicity."""

import pytest

from repro.analysis import is_consistent_gcp
from repro.events import (
    PatternBuilder,
    figure1_pattern,
    ping_pong_domino_pattern,
)
from repro.recovery import (
    build_sender_logs,
    collect_garbage,
    global_recovery_floor,
    obsolete_checkpoints,
    recovery_line,
    recovery_line_monotone,
)
from repro.sim import Simulation, SimulationConfig
from repro.types import CheckpointId as C
from repro.workloads import RandomUniformWorkload


def simulated_history(protocol="bhmr", seed=4, duration=40.0):
    sim = Simulation(
        RandomUniformWorkload(send_rate=2.0),
        SimulationConfig(n=3, duration=duration, seed=seed, basic_rate=0.4),
    )
    return sim.run(protocol).history


class TestFloor:
    def test_floor_is_consistent(self):
        h = simulated_history()
        floor = global_recovery_floor(h)
        assert is_consistent_gcp(h, floor.cut)

    def test_floor_dominates_single_crash_lines(self):
        """Any (single-crash) recovery line sits at or above the floor."""
        h = simulated_history()
        floor = global_recovery_floor(h)
        for pid in range(3):
            line = recovery_line(h, [pid])
            assert all(line.cut[p] >= floor.cut[p] for p in line.cut)

    def test_domino_pattern_floor_is_initial(self):
        h = ping_pong_domino_pattern(rounds=4)
        floor = global_recovery_floor(h)
        assert floor.is_total_rollback


class TestObsolete:
    def test_obsolete_checkpoints_below_floor(self):
        h = simulated_history()
        floor = global_recovery_floor(h)
        for cid in obsolete_checkpoints(h):
            assert cid.index < floor.cut[cid.pid]

    def test_figure1_nothing_obsolete_when_floor_low(self):
        h = figure1_pattern()
        floor = global_recovery_floor(h)
        obsolete = obsolete_checkpoints(h)
        assert len(obsolete) == sum(floor.cut.values())

    def test_progress_makes_checkpoints_obsolete(self):
        """With causal traffic + per-round checkpoints, the floor tracks
        the frontier and almost everything behind it is reclaimable."""
        b = PatternBuilder(2)
        for _ in range(6):
            b.transmit(0, 1)
            b.transmit(1, 0)
            b.checkpoint_all()
        h = b.build(close=True)
        floor = global_recovery_floor(h)
        assert floor.cut == {0: 6, 1: 6}
        assert len(obsolete_checkpoints(h)) == 12


class TestCollect:
    def test_gc_report_accounting(self):
        h = simulated_history()
        logs = build_sender_logs(h)
        before = sum(len(log) for log in logs.values())
        report = collect_garbage(h, logs)
        after = sum(len(log) for log in logs.values())
        assert report.reclaimed_log_messages == before - after
        assert report.kept_checkpoints + report.reclaimed_checkpoints == (
            h.closed().num_checkpoints()
        )

    def test_gc_without_logs(self):
        h = simulated_history()
        report = collect_garbage(h)
        assert report.reclaimed_log_messages == 0

    def test_kept_logs_cover_future_replays(self):
        """After GC, every message a later recovery needs is still logged."""
        from repro.recovery import CrashSpec, replay_plan

        h = simulated_history()
        logs = build_sender_logs(h)
        collect_garbage(h, logs, at_time=20.0)
        # A crash after the GC time: its replay plan must be coverable.
        line = recovery_line(h, {0: CrashSpec(0, at_time=30.0)})
        plan = replay_plan(h, line.cut)
        for m in plan.messages():
            assert logs[m.src].lookup(m.msg_id).msg_id == m.msg_id


class TestMonotonicity:
    @pytest.mark.parametrize("seed", range(5))
    def test_floor_monotone_in_time(self, seed):
        h = simulated_history(seed=seed)
        assert recovery_line_monotone(h, [5.0, 10.0, 20.0, 30.0, 40.0])

    @pytest.mark.parametrize("protocol", ["bhmr", "independent"])
    def test_monotone_for_any_protocol(self, protocol):
        h = simulated_history(protocol=protocol)
        assert recovery_line_monotone(h, [8.0, 16.0, 24.0, 32.0])
