"""The online recovery manager: recovery lines from *live* state.

The paper's operational payoff is that under RDT a recovery line can be
determined **on-line**, from visible (piggybackable) dependency
information, at the instant a failure strikes -- no post-mortem analysis
of a finished history.  :class:`RecoveryManager` realises that: it
follows a running computation event by event (checkpoints, sends,
deliveries), maintaining

* a live :class:`~repro.graph.incremental.IncrementalRGraph` whose
  frontier nodes stand for every process's currently-open interval,
* live per-process :class:`~repro.recovery.logging.SenderLog`\\ s, and
* the interval bookkeeping needed to turn a crash into a rollback.

At crash time, :meth:`crash` answers from that live state alone: the
recovery line (rollback propagation read off the incremental closure,
survivors bounded by their frontier, crashed processes by their last
taken checkpoint), the messages that cross it (the replay plan, served
from the sender logs), and the rollback metrics.  The differential suite
cross-checks every such answer against the offline
:func:`repro.recovery.recovery_line.recovery_line` fixpoint on the
closed prefix history.

:meth:`collect_garbage` runs the *safe* log-GC rule online (both-sides
condition -- see :mod:`repro.recovery.gc`): messages are reclaimed only
when sent *and* delivered at or below the current total-failure floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

from repro.events.event import Message
from repro.graph.incremental import IncrementalRGraph
from repro.recovery.logging import SenderLog
from repro.types import CheckpointId, MessageId, ProcessId, RecoveryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.events.history import History
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer


@dataclass
class OnlineRecovery:
    """One crash handled online: the line, the plan, the damage."""

    time: float
    crashed: Tuple[ProcessId, ...]
    cut: Dict[ProcessId, int]
    bounds: Dict[ProcessId, int]
    events_undone: int
    rollback_depth: Dict[ProcessId, int]
    to_replay: List[MessageId] = field(default_factory=list)

    @property
    def max_depth(self) -> int:
        return max(self.rollback_depth.values(), default=0)

    @property
    def total_depth(self) -> int:
        return sum(self.rollback_depth.values())

    def __repr__(self) -> str:
        who = ",".join(f"P{p}" for p in self.crashed)
        return (
            f"<OnlineRecovery {who}@t={self.time:g} cut={self.cut} "
            f"undone={self.events_undone} replay={len(self.to_replay)}>"
        )


@dataclass
class OnlineGC:
    """One online garbage-collection pass over the sender logs."""

    floor: Dict[ProcessId, int]
    reclaimed_log_messages: int
    dropped: List[MessageId] = field(default_factory=list)


class _MessageRecord:
    """Live interval bookkeeping for one sent message."""

    __slots__ = ("message", "send_interval", "deliver_interval")

    def __init__(self, message: Message, send_interval: int) -> None:
        self.message = message
        self.send_interval = send_interval
        self.deliver_interval: Optional[int] = None


class RecoveryManager:
    """Follows a live run; answers recovery questions at crash time.

    Feed it with :meth:`on_checkpoint` / :meth:`on_send` /
    :meth:`on_deliver` in event order (the crash-injected replay engine
    in :mod:`repro.sim.crashes` does this; :meth:`from_history` replays
    a recorded history's feed for offline cross-checks).  After a
    rollback, the *same* events are fed again as the resumed execution
    re-runs them; the manager recognises re-taken checkpoints by index
    and the incremental closure absorbs re-inserted edges as no-ops, so
    by piecewise determinism the live graph always equals the graph of
    the current prefix.
    """

    def __init__(
        self,
        n: int,
        tracer: Optional["Tracer"] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.n = n
        self.rgraph = IncrementalRGraph(n, tracer=tracer, metrics=metrics)
        self.logs: Dict[ProcessId, SenderLog] = {
            pid: SenderLog(pid) for pid in range(n)
        }
        self.tracer = tracer
        self.metrics = metrics
        self._records: Dict[MessageId, _MessageRecord] = {}
        # Events recorded per process, and the running count at the
        # moment each checkpoint (index-aligned, incl. the checkpoint
        # event itself) was taken.  Initial checkpoints count as one
        # event, mirroring the recorder/History convention.
        self._event_count: List[int] = [1] * n
        self._count_at_ckpt: List[List[int]] = [[1] for _ in range(n)]
        #: Every message id ever dropped by online GC (for safety audits).
        self.gc_dropped: Set[MessageId] = set()

    # ------------------------------------------------------------------
    # live feed
    # ------------------------------------------------------------------
    def last_taken(self, pid: ProcessId) -> int:
        """Index of ``pid``'s last taken (stable) checkpoint."""
        return len(self._count_at_ckpt[pid]) - 1

    def open_events(self, pid: ProcessId) -> int:
        """Events in ``pid``'s currently-open interval (volatile tail)."""
        return self._event_count[pid] - self._count_at_ckpt[pid][-1]

    def on_checkpoint(self, pid: ProcessId, index: int, t: float = 0.0) -> None:
        """``pid`` took checkpoint ``index`` (its next, or a re-take).

        A re-execution after rollback re-takes checkpoints the graph has
        already seen; those update the bookkeeping but not the graph.
        """
        expected = self.last_taken(pid) + 1
        if index != expected:
            raise RecoveryError(
                f"P{pid} took checkpoint {index}, expected {expected}"
            )
        self._event_count[pid] += 1
        self._count_at_ckpt[pid].append(self._event_count[pid])
        if index > self.rgraph.last_index(pid):
            self.rgraph.take_checkpoint(pid, t=t)

    def on_send(self, message: Message, t: float = 0.0) -> None:
        """``message`` was just sent: log it, remember its interval."""
        send_interval = self.last_taken(message.src) + 1
        self._records[message.msg_id] = _MessageRecord(message, send_interval)
        self.logs[message.src].record(message)
        self._event_count[message.src] += 1

    def on_deliver(self, message: Message, t: float = 0.0) -> None:
        """``message`` was just delivered: hook its R-graph edge."""
        record = self._records[message.msg_id]
        deliver_interval = self.last_taken(message.dst) + 1
        record.deliver_interval = deliver_interval
        self._event_count[message.dst] += 1
        self.rgraph.observe_delivery(
            message.src, record.send_interval, message.dst, deliver_interval, t=t
        )

    @classmethod
    def from_history(
        cls,
        history: "History",
        tracer: Optional["Tracer"] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> "RecoveryManager":
        """Replay a recorded history's feed in time order.

        FINAL checkpoints are *not* fed: they are the closure's stand-in
        for open intervals, which the live manager represents by its
        frontier state.
        """
        from repro.events.event import CheckpointKind

        manager = cls(history.num_processes, tracer=tracer, metrics=metrics)
        for event in history.events_by_time():
            if event.is_checkpoint:
                if (
                    event.checkpoint_index == 0
                    or event.checkpoint_kind is CheckpointKind.FINAL
                ):
                    continue
                manager.on_checkpoint(event.pid, event.checkpoint_index, event.time)
            elif event.is_send:
                manager.on_send(history.message(event.msg_id), event.time)
            elif event.is_deliver:
                manager.on_deliver(history.message(event.msg_id), event.time)
        return manager

    # ------------------------------------------------------------------
    # online answers
    # ------------------------------------------------------------------
    def _bounds(self, crashed: Set[ProcessId]) -> Dict[ProcessId, int]:
        """Rollback upper bounds: crashed at their last stable
        checkpoint, survivors at their frontier (volatile state kept)."""
        bounds: Dict[ProcessId, int] = {}
        for pid in range(self.n):
            last = self.last_taken(pid)
            if pid in crashed:
                bounds[pid] = last
            else:
                bounds[pid] = last + 1 if self.open_events(pid) else last
        return bounds

    def online_recovery_line(
        self, crashed: Sequence[ProcessId]
    ) -> Dict[ProcessId, int]:
        """The recovery line, from the live graph alone.

        Wang's rollback propagation read off the incremental closure:
        the rollback sources are the *frontier* nodes of crashed
        processes with a volatile tail (their open interval is exactly
        what the crash destroys); entry ``j`` of the line is the largest
        ``y <= bound[j]`` no source R-reaches strictly.  A survivor
        entry equal to ``last_taken + 1`` means "keep the volatile
        state, do not roll back at all".
        """
        crashed_set = set(crashed)
        bounds = self._bounds(crashed_set)
        sources = [
            self.rgraph.frontier(pid)
            for pid in sorted(crashed_set)
            if self.open_events(pid)
        ]
        cut: Dict[ProcessId, int] = {}
        for pid in range(self.n):
            chosen = 0
            for y in range(bounds[pid], -1, -1):
                target = CheckpointId(pid, y)
                if not any(
                    self.rgraph.reaches_strictly(src, target) for src in sources
                ):
                    chosen = y
                    break
            cut[pid] = chosen
        return cut

    def replay_plan_ids(self, cut: Dict[ProcessId, int]) -> List[MessageId]:
        """Messages crossing ``cut``: sent at/below, not delivered at/below."""
        out = []
        for mid, record in self._records.items():
            if record.send_interval > cut[record.message.src]:
                continue
            if (
                record.deliver_interval is not None
                and record.deliver_interval <= cut[record.message.dst]
            ):
                continue
            out.append(mid)
        return sorted(out)

    def crash(self, pids: Sequence[ProcessId], t: float = 0.0) -> OnlineRecovery:
        """Handle the simultaneous failure of ``pids`` at time ``t``.

        Computes the line and the plan from live state and verifies the
        plan is fully served by the sender logs -- the call that an
        unsafe log GC makes fail.  The caller performs the actual
        rollback (:meth:`rollback` plus its own recorder/protocol state).
        """
        cut = self.online_recovery_line(pids)
        bounds = self._bounds(set(pids))
        undone = 0
        depth: Dict[ProcessId, int] = {}
        for pid in range(self.n):
            last = self.last_taken(pid)
            if cut[pid] > last:  # survivor keeping its volatile state
                depth[pid] = 0
                continue
            depth[pid] = last - cut[pid]
            undone += self._event_count[pid] - self._count_at_ckpt[pid][cut[pid]]
        plan = self.replay_plan_ids(cut)
        for mid in plan:
            src = self._records[mid].message.src
            try:
                self.logs[src].lookup(mid)
            except KeyError:
                raise RecoveryError(
                    f"message m{mid} crosses the recovery line but is gone "
                    f"from P{src}'s sender log (unsafely garbage-collected?)"
                ) from None
        return OnlineRecovery(
            time=t,
            crashed=tuple(sorted(set(pids))),
            cut=cut,
            bounds=bounds,
            events_undone=undone,
            rollback_depth=depth,
            to_replay=plan,
        )

    def rollback(self, cut: Dict[ProcessId, int]) -> None:
        """Roll the manager's bookkeeping back to ``cut``.

        The live graph is *not* rolled back: the resumed execution
        re-takes the same checkpoints and re-inserts the same edges
        (piecewise determinism), so its closure stays exact.  Messages
        sent above the cut are forgotten (their re-sends re-record
        them); deliveries above the cut revert to in-transit.
        """
        for pid in range(self.n):
            if cut[pid] > self.last_taken(pid):
                continue  # no rollback for this process
            del self._count_at_ckpt[pid][cut[pid] + 1 :]
            self._event_count[pid] = self._count_at_ckpt[pid][cut[pid]]
        dead_sends = [
            mid
            for mid, record in self._records.items()
            if record.send_interval > cut[record.message.src]
        ]
        for mid in dead_sends:
            src = self._records[mid].message.src
            del self._records[mid]
            if mid in self.logs[src]._messages:
                del self.logs[src]._messages[mid]
        for record in self._records.values():
            if (
                record.deliver_interval is not None
                and record.deliver_interval > cut[record.message.dst]
            ):
                record.deliver_interval = None

    # ------------------------------------------------------------------
    # online garbage collection (the safe rule, live)
    # ------------------------------------------------------------------
    def recovery_floor(self) -> Dict[ProcessId, int]:
        """The online total-failure line: every process crashed now."""
        return self.online_recovery_line(list(range(self.n)))

    def collect_garbage(self) -> OnlineGC:
        """Trim the sender logs with the safe (both-sides) rule.

        A logged message dies only when sent *and* delivered at or below
        the current floor; crossing and in-transit messages survive, so
        every future :meth:`crash` can still serve its replay plan.
        """
        floor = self.recovery_floor()
        dropped: List[MessageId] = []
        for mid, record in self._records.items():
            if record.send_interval > floor[record.message.src]:
                continue
            if record.deliver_interval is None:
                continue
            if record.deliver_interval > floor[record.message.dst]:
                continue
            log = self.logs[record.message.src]
            if mid in log._messages:
                del log._messages[mid]
                dropped.append(mid)
        self.gc_dropped.update(dropped)
        if self.metrics is not None:
            self.metrics.inc("recovery.gc_reclaimed", len(dropped))
        return OnlineGC(
            floor=floor,
            reclaimed_log_messages=len(dropped),
            dropped=sorted(dropped),
        )

    # ------------------------------------------------------------------
    # snapshot / restore (session eviction in ``repro.serve``)
    # ------------------------------------------------------------------
    def state(self) -> dict:
        """A JSON-safe snapshot of the whole live state.

        Messages serialise once (under ``records``, together with their
        interval bookkeeping); sender-log membership and stability marks
        are stored by id.  :meth:`from_state` inverts this exactly, so a
        restored manager answers every recovery question bit-identically
        -- the integrity digest of ``repro.serve.snapshots`` hashes this
        document.
        """
        records = [
            [
                int(mid),
                rec.message.src,
                rec.message.dst,
                rec.message.send_seq,
                rec.message.size,
                rec.send_interval,
                rec.deliver_interval,
            ]
            for mid, rec in sorted(self._records.items())
        ]
        return {
            "n": self.n,
            "rgraph": self.rgraph.state(),
            "records": records,
            "event_count": list(self._event_count),
            "count_at_ckpt": [list(counts) for counts in self._count_at_ckpt],
            "logs": {
                str(pid): {
                    "stable_upto": log.stable_upto,
                    "messages": sorted(log._messages),
                }
                for pid, log in self.logs.items()
            },
            "gc_dropped": sorted(self.gc_dropped),
        }

    @classmethod
    def from_state(
        cls,
        state: dict,
        tracer: Optional["Tracer"] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> "RecoveryManager":
        """Rebuild a manager from a :meth:`state` snapshot."""
        n = int(state["n"])
        inst = cls.__new__(cls)
        inst.n = n
        inst.rgraph = IncrementalRGraph.from_state(
            state["rgraph"], tracer=tracer, metrics=metrics
        )
        inst.tracer = tracer
        inst.metrics = metrics
        inst._records = {}
        for mid, src, dst, send_seq, size, send_iv, deliver_iv in state["records"]:
            message = Message(
                msg_id=int(mid),
                src=int(src),
                dst=int(dst),
                send_seq=int(send_seq),
                size=int(size),
            )
            record = _MessageRecord(message, int(send_iv))
            record.deliver_interval = (
                None if deliver_iv is None else int(deliver_iv)
            )
            inst._records[message.msg_id] = record
        inst._event_count = [int(x) for x in state["event_count"]]
        inst._count_at_ckpt = [
            [int(x) for x in counts] for counts in state["count_at_ckpt"]
        ]
        inst.logs = {}
        for pid_s, doc in state["logs"].items():
            pid = int(pid_s)
            log = SenderLog(pid)
            log.stable_upto = int(doc["stable_upto"])
            for mid in doc["messages"]:
                log.record(inst._records[int(mid)].message)
            inst.logs[pid] = log
        inst.gc_dropped = {int(mid) for mid in state["gc_dropped"]}
        return inst

    def __repr__(self) -> str:
        logged = sum(len(log) for log in self.logs.values())
        return (
            f"<RecoveryManager n={self.n} "
            f"ckpts={[self.last_taken(p) for p in range(self.n)]} "
            f"logged={logged}>"
        )
