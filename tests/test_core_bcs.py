"""BCS index-based protocol tests: Z-cycle freedom without RDT."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis import check_rdt, is_consistent_gcp, useless_checkpoints
from repro.core import BCSProtocol, bcs_index_cut, max_index, protocol_factory
from repro.core.index_based import IndexPiggyback
from repro.core.piggyback import TDVPiggyback
from repro.sim import Simulation, SimulationConfig, replay
from repro.types import ProtocolError
from repro.workloads import RandomUniformWorkload

from tests.test_property_hypothesis import build_trace, trace_inputs


class TestMechanics:
    def test_initial_index_zero(self):
        p = BCSProtocol(0, 2)
        assert p.sn == 0 and p.labels == [0]

    def test_basic_checkpoint_increments(self):
        p = BCSProtocol(0, 2)
        p.on_checkpoint()
        assert p.sn == 1 and p.labels == [0, 1]

    def test_greater_index_forces(self):
        p = BCSProtocol(0, 2)
        assert p.wants_forced_checkpoint(IndexPiggyback(sn=1), sender=1)
        assert not p.wants_forced_checkpoint(IndexPiggyback(sn=0), sender=1)

    def test_adoption_after_forced(self):
        p = BCSProtocol(0, 2)
        pb = IndexPiggyback(sn=3)
        assert p.wants_forced_checkpoint(pb, sender=1)
        p.on_checkpoint(forced=True)
        p.on_receive(pb, sender=1)
        assert p.sn == 3
        # The forced checkpoint is labelled with the adopted index.
        assert p.labels == [0, 3]
        # Next arrival with the same index does not force again.
        assert not p.wants_forced_checkpoint(pb, sender=1)

    def test_piggyback_is_one_index(self):
        p = BCSProtocol(0, 4)
        pb = p.on_send(1)
        assert isinstance(pb, IndexPiggyback) and pb.size_bits() == 32

    def test_wrong_piggyback_rejected(self):
        p = BCSProtocol(0, 2)
        with pytest.raises(ProtocolError):
            p.wants_forced_checkpoint(TDVPiggyback(tdv=(0, 0)), sender=1)


def bcs_run(seed=0, duration=40.0, n=4):
    sim = Simulation(
        RandomUniformWorkload(send_rate=2.0),
        SimulationConfig(n=n, duration=duration, seed=seed, basic_rate=0.4),
    )
    return sim.run("bcs")


class TestGuarantees:
    @pytest.mark.parametrize("seed", range(5))
    def test_z_cycle_freedom(self, seed):
        res = bcs_run(seed=seed)
        assert useless_checkpoints(res.history) == []

    def test_rdt_not_guaranteed(self):
        violated = sum(
            0 if check_rdt(bcs_run(seed=seed).history).holds else 1
            for seed in range(5)
        )
        assert violated >= 3  # dense traffic: hidden dependencies persist

    def test_index_cuts_are_consistent(self):
        res = bcs_run(seed=1)
        top = max_index(res.family)
        assert top >= 2
        for q in range(1, top + 1):
            cut = bcs_index_cut(res.family, q, res.history)
            assert is_consistent_gcp(res.history, cut), q

    def test_index_cuts_advance(self):
        res = bcs_run(seed=1)
        top = max_index(res.family)
        prev = None
        for q in range(1, top + 1):
            cut = bcs_index_cut(res.family, q, res.history)
            if prev is not None:
                assert all(cut[p] >= prev[p] for p in cut)
            prev = cut

    def test_index_cut_argument_validation(self):
        res = bcs_run(seed=0)
        with pytest.raises(ProtocolError):
            bcs_index_cut(res.family, 0, res.history)

    def test_forces_less_than_rdt_family(self):
        """The price of RDT: BCS (weaker guarantee) forces fewer
        checkpoints than any RDT-ensuring protocol on the same traces."""
        sim = Simulation(
            RandomUniformWorkload(send_rate=2.0),
            SimulationConfig(n=4, duration=40.0, seed=3, basic_rate=0.4),
        )
        results = sim.compare(["bcs", "bhmr", "fdas"])
        forced = {k: v.metrics.forced_checkpoints for k, v in results.items()}
        assert forced["bcs"] <= forced["bhmr"] <= forced["fdas"]


class TestPropertyZCF:
    @given(trace_inputs)
    @settings(max_examples=40, deadline=None)
    def test_bcs_never_leaves_useless_checkpoints(self, inputs):
        n, ops = inputs
        trace = build_trace(n, ops)
        result = replay(trace, protocol_factory("bcs"))
        assert useless_checkpoints(result.history) == []

    @given(trace_inputs, st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_index_cuts_consistent_on_arbitrary_traces(self, inputs, q):
        n, ops = inputs
        trace = build_trace(n, ops)
        result = replay(trace, protocol_factory("bcs"))
        cut = bcs_index_cut(result.family, q, result.history)
        assert is_consistent_gcp(result.history, cut)


class TestLazyBCS:
    def test_laziness_one_equals_bcs(self):
        from repro.core import lazy_factory
        from repro.sim import replay as sim_replay
        from repro.sim import generate_trace

        trace = generate_trace(
            4, RandomUniformWorkload(send_rate=2.0), duration=30, seed=7,
            basic_rate=0.4,
        )
        plain = replay(trace, protocol_factory("bcs"))
        lazy1 = sim_replay(trace, lazy_factory(1))
        assert (
            plain.metrics.forced_checkpoints == lazy1.metrics.forced_checkpoints
        )

    def test_laziness_reduces_forcing(self):
        from repro.core import lazy_factory
        from repro.sim import generate_trace

        trace = generate_trace(
            4, RandomUniformWorkload(send_rate=2.0), duration=40, seed=8,
            basic_rate=0.5,
        )
        forced = {}
        for z in (1, 2, 4, 8):
            forced[z] = replay(trace, lazy_factory(z)).metrics.forced_checkpoints
        assert forced[1] >= forced[2] >= forced[4] >= forced[8]
        assert forced[8] < forced[1]

    def test_epoch_boundary_cuts_consistent(self):
        from repro.core import bcs_index_cut, lazy_factory, max_index
        from repro.sim import generate_trace

        z = 3
        trace = generate_trace(
            4, RandomUniformWorkload(send_rate=2.0), duration=40, seed=9,
            basic_rate=0.5,
        )
        result = replay(trace, lazy_factory(z))
        top = max_index(result.family)
        boundaries = [q for q in range(z, top + 1, z)]
        assert boundaries
        for q in boundaries:
            cut = bcs_index_cut(result.family, q, result.history)
            assert is_consistent_gcp(result.history, cut), q

    def test_within_epoch_guarantee_lost(self):
        """With Z > 1 some run exhibits useless checkpoints (the
        guarantee BCS had is genuinely given up, not just unexercised)."""
        from repro.core import lazy_factory
        from repro.sim import generate_trace

        found = False
        for seed in range(12):
            trace = generate_trace(
                4, RandomUniformWorkload(send_rate=2.5), duration=40,
                seed=seed, basic_rate=0.6,
            )
            result = replay(trace, lazy_factory(6))
            if useless_checkpoints(result.history):
                found = True
                break
        assert found

    def test_bad_laziness_rejected(self):
        from repro.core import LazyBCSProtocol

        with pytest.raises(ProtocolError):
            LazyBCSProtocol(0, 2, laziness=0)

    def test_registry_default(self):
        from repro.core import make_protocol

        proto = make_protocol("bcs-lazy", 0, 3)
        assert proto.laziness == 4 and not proto.ensures_zcf
