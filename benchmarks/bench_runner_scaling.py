"""Serial vs parallel vs cached wall time of the sweep runner.

Tracks the tentpole claim of the parallel harness: fanning sweep cells
out over worker processes cuts wall time roughly linearly in the worker
count (on hardware that has the cores), and a warm content-addressed
cache answers the whole sweep in milliseconds -- with results
bit-identical to the serial path in every mode.

The speedup assertion is conditional on visible CPUs: on a single-core
runner the parallel pool cannot beat serial wall time, so there we only
pin result parity and record the measured times in ``extra_info`` (which
lands in BENCH_*.json for trend tracking).
"""

import os
import time

import pytest

from benchmarks._emit import write_bench
from repro.harness import ratio_sweep, render_runner_stats, run_sweep
from repro.sim import SimulationConfig
from repro.workloads import RandomUniformWorkload

PROTOCOLS = ["bhmr", "bhmr-nosimple"]
SEEDS = (0, 1)
XS = [0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 0.7, 1.0]  # 8 cells for 4 workers
PARALLEL_WORKERS = 4


def scenario_at_rate(rate):
    return (
        lambda: RandomUniformWorkload(send_rate=1.0),
        SimulationConfig(n=8, duration=40.0, basic_rate=rate),
    )


def _cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def serial_run():
    start = time.perf_counter()
    sweep = ratio_sweep(
        "basic_rate", XS, scenario_at_rate, PROTOCOLS, seeds=SEEDS
    )
    return sweep, time.perf_counter() - start


def test_parallel_matches_serial_and_scales(benchmark, emit, serial_run):
    serial_sweep, serial_s = serial_run

    def parallel():
        return run_sweep(
            "basic_rate",
            XS,
            scenario_at_rate,
            PROTOCOLS,
            seeds=SEEDS,
            workers=PARALLEL_WORKERS,
            cache=False,
        )

    parallel_sweep = benchmark.pedantic(parallel, rounds=1, iterations=1)
    parallel_s = parallel_sweep.stats.wall_seconds
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    cpus = _cpus()
    benchmark.extra_info.update(
        cpus=cpus,
        workers=PARALLEL_WORKERS,
        serial_s=round(serial_s, 3),
        parallel_s=round(parallel_s, 3),
        speedup=round(speedup, 2),
    )
    emit(
        render_runner_stats(
            parallel_sweep.stats,
            title=(
                f"Runner scaling -- serial {serial_s:.2f}s vs "
                f"{PARALLEL_WORKERS} workers {parallel_s:.2f}s "
                f"(speedup {speedup:.2f}x on {cpus} CPU(s))"
            ),
        )
    )
    write_bench(
        "runner_scaling",
        {
            "scaling": {
                "cpus": cpus,
                "workers": PARALLEL_WORKERS,
                "cells": len(XS),
                "serial_s": round(serial_s, 4),
                "parallel_s": round(parallel_s, 4),
                "speedup": round(speedup, 2),
                "throughput_cells_per_s": round(len(XS) / parallel_s, 2)
                if parallel_s > 0
                else None,
            }
        },
    )
    # Identical results, not just statistically close.
    assert parallel_sweep.ratio_series() == serial_sweep.ratio_series()
    assert parallel_sweep.forced_series() == serial_sweep.forced_series()
    if cpus >= 4:
        assert speedup >= 2.0, f"expected >= 2x at 4 workers, got {speedup:.2f}x"
    elif cpus >= 2:
        assert speedup >= 1.3, f"expected >= 1.3x at 2+ CPUs, got {speedup:.2f}x"


def test_warm_cache_short_circuits(benchmark, emit, serial_run, tmp_path_factory):
    serial_sweep, serial_s = serial_run
    cache_dir = tmp_path_factory.mktemp("sweep-cache")
    cold = run_sweep(
        "basic_rate",
        XS,
        scenario_at_rate,
        PROTOCOLS,
        seeds=SEEDS,
        workers=1,
        cache=cache_dir,
    )
    assert cold.stats.cache_hits == 0

    warm = benchmark(
        lambda: run_sweep(
            "basic_rate",
            XS,
            scenario_at_rate,
            PROTOCOLS,
            seeds=SEEDS,
            workers=1,
            cache=cache_dir,
        )
    )
    assert warm.stats.cache_hits == len(XS)
    assert warm.ratio_series() == serial_sweep.ratio_series()
    assert warm.forced_series() == cold.forced_series()
    warm_s = warm.stats.wall_seconds
    benchmark.extra_info.update(
        serial_s=round(serial_s, 3),
        warm_cache_s=round(warm_s, 4),
        cache_speedup=round(serial_s / warm_s, 1) if warm_s > 0 else None,
    )
    emit(
        f"Warm cache: {len(XS)} cells in {warm_s * 1000:.1f} ms "
        f"(cold serial {serial_s:.2f}s)"
    )
    write_bench(
        "runner_scaling",
        {
            "warm_cache": {
                "cells": len(XS),
                "warm_cache_s": round(warm_s, 5),
                "serial_s": round(serial_s, 4),
                "cache_speedup": round(serial_s / warm_s, 1)
                if warm_s > 0
                else None,
            }
        },
    )
    # A warm cache must beat rerunning the cells by a wide margin.
    assert warm_s < serial_s / 5
