"""Regenerate the golden trace expectations.

    PYTHONPATH=src python tests/golden/regen.py

Only run this to ratify a *deliberate* change in protocol behaviour;
the resulting JSON diff is what reviewers sign off on.
"""

import json
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parent.parent / "src"))
sys.path.insert(0, str(HERE.parent.parent))

from repro.harness import compare_protocols  # noqa: E402

from tests.golden.scenarios import (  # noqa: E402
    BASELINE,
    GOLDEN_SCENARIOS,
    PROTOCOLS,
    RECOVERY_CRASHES,
    RECOVERY_PROTOCOLS,
    RECOVERY_SCENARIO,
    SEEDS,
    NET_FAULT_SCENARIO,
    net_fault_model,
    net_fault_trace_lines,
    recovery_trace_lines,
)


def main() -> None:
    for name, (make_workload, config) in sorted(GOLDEN_SCENARIOS.items()):
        comp = compare_protocols(
            make_workload,
            config,
            PROTOCOLS,
            baseline=BASELINE,
            seeds=SEEDS,
            scenario=name,
        )
        doc = {
            "scenario": name,
            "baseline": BASELINE,
            "seeds": list(SEEDS),
            "protocols": {
                agg.protocol: {
                    "forced_total": agg.forced_total,
                    "forced_per_seed": agg.forced_per_seed,
                    "basic_total": agg.basic_total,
                    "messages_total": agg.messages_total,
                    "ratio_to_baseline": agg.ratio_to_baseline,
                }
                for agg in comp.protocols
            },
        }
        path = HERE / f"{name}.json"
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")

    doc = {
        "scenario": RECOVERY_SCENARIO,
        "crashes": [list(c) for c in RECOVERY_CRASHES],
        "protocols": {
            protocol: recovery_trace_lines(protocol)
            for protocol in RECOVERY_PROTOCOLS
        },
    }
    path = HERE / "recovery_events.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")

    doc = {
        "scenario": NET_FAULT_SCENARIO,
        "model": repr(net_fault_model()),
        "events": net_fault_trace_lines(),
    }
    path = HERE / "net_fault_events.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
