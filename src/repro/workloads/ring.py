"""Ring / pipeline traffic.

Two related deterministic-topology workloads:

* :class:`RingWorkload` -- a token circulates; each holder does some
  (exponentially distributed) work, then passes it on.  Optionally
  several tokens.  With one token, the traffic is purely causal and no
  RDT protocol should ever force a checkpoint (a useful boundary case).
* :class:`PipelineWorkload` -- stage ``k`` streams items to stage
  ``k+1``; sources inject at a fixed rate.  Creates long causal chains
  with occasional cross-stage concurrency.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.types import MessageId, ProcessId
from repro.workloads.base import Workload, WorkloadContext


class RingWorkload(Workload):
    """Token(s) circulating around the process ring."""

    def __init__(self, tokens: int = 1, hold_time: float = 0.5) -> None:
        if tokens < 1:
            raise ValueError("need at least one token")
        self.tokens = tokens
        self.hold_time = hold_time

    def on_start(self, ctx: WorkloadContext) -> None:
        for k in range(self.tokens):
            holder = (k * ctx.n) // self.tokens
            ctx.set_timer(holder, self._hold(ctx), tag="pass")

    def _hold(self, ctx: WorkloadContext) -> float:
        return ctx.rng.expovariate(1.0 / self.hold_time)

    def on_timer(
        self, ctx: WorkloadContext, pid: ProcessId, tag: Optional[Hashable]
    ) -> None:
        if ctx.n > 1:
            ctx.send(pid, (pid + 1) % ctx.n, payload="token")

    def on_deliver(
        self, ctx: WorkloadContext, pid: ProcessId, src: ProcessId, msg_id: MessageId
    ) -> None:
        ctx.set_timer(pid, self._hold(ctx), tag="pass")


class PipelineWorkload(Workload):
    """Items stream through stages ``0 -> 1 -> ... -> n-1``."""

    def __init__(self, inject_rate: float = 1.0, stage_time: float = 0.2) -> None:
        self.inject_rate = inject_rate
        self.stage_time = stage_time

    def on_start(self, ctx: WorkloadContext) -> None:
        ctx.set_timer(0, ctx.rng.expovariate(self.inject_rate), tag="inject")

    def on_timer(
        self, ctx: WorkloadContext, pid: ProcessId, tag: Optional[Hashable]
    ) -> None:
        if tag == "inject":
            if ctx.n > 1:
                ctx.send(0, 1, payload="item")
            ctx.set_timer(0, ctx.rng.expovariate(self.inject_rate), tag="inject")
        elif isinstance(tag, tuple) and tag[0] == "done":
            nxt = pid + 1
            if nxt < ctx.n:
                ctx.send(pid, nxt, payload="item")

    def on_deliver(
        self, ctx: WorkloadContext, pid: ProcessId, src: ProcessId, msg_id: MessageId
    ) -> None:
        # Process the item for a while, then hand it downstream.
        ctx.set_timer(
            pid, ctx.rng.expovariate(1.0 / self.stage_time), tag=("done", msg_id)
        )
