"""Harness tests: comparisons, sweeps, rendering."""

import pytest

from repro.harness import (
    compare_protocols,
    ratio_sweep,
    render_ascii_plot,
    render_series,
    render_table,
)
from repro.sim import SimulationConfig
from repro.workloads import RandomUniformWorkload


def small_cfg(**kw):
    defaults = dict(n=3, duration=25.0, basic_rate=0.25)
    defaults.update(kw)
    return SimulationConfig(**defaults)


class TestCompareProtocols:
    @pytest.fixture(scope="class")
    def comparison(self):
        return compare_protocols(
            lambda: RandomUniformWorkload(send_rate=1.5),
            small_cfg(),
            protocols=["bhmr", "fdas", "cbr"],
            seeds=(0, 1),
            scenario="unit",
            verify_rdt=True,
        )

    def test_baseline_has_ratio_one(self, comparison):
        assert comparison.ratio("fdas") == pytest.approx(1.0)

    def test_bhmr_ratio_at_most_one(self, comparison):
        assert comparison.ratio("bhmr") <= 1.0

    def test_rdt_verified(self, comparison):
        for agg in comparison.protocols:
            assert agg.rdt_ok, agg.protocol

    def test_rows_render(self, comparison):
        table = render_table(comparison.rows(), title="unit")
        assert "bhmr" in table and "R" in table

    def test_aggregate_lookup(self, comparison):
        assert comparison.aggregate("cbr").forced_total > 0
        with pytest.raises(KeyError):
            comparison.aggregate("nope")

    def test_baseline_added_automatically(self):
        comp = compare_protocols(
            lambda: RandomUniformWorkload(),
            small_cfg(duration=10.0),
            protocols=["bhmr"],
            seeds=(0,),
        )
        assert {a.protocol for a in comp.protocols} == {"bhmr", "fdas"}


class TestRatioSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        def scenario_at(rate):
            return (
                lambda: RandomUniformWorkload(send_rate=1.0),
                small_cfg(basic_rate=rate, duration=20.0),
            )

        return ratio_sweep(
            "basic_rate",
            [0.1, 0.5],
            scenario_at,
            protocols=["bhmr"],
            seeds=(0, 1),
        )

    def test_series_shape(self, sweep):
        series = sweep.ratio_series()
        assert set(series) == {"bhmr"}
        assert len(series["bhmr"]) == 2

    def test_min_max(self, sweep):
        assert sweep.min_ratio("bhmr") <= sweep.max_ratio("bhmr")

    def test_forced_series_includes_baseline(self, sweep):
        assert "fdas" in sweep.forced_series()

    def test_render_series(self, sweep):
        text = render_series(
            "basic_rate", sweep.xs, sweep.ratio_series(), title="sweep"
        )
        assert "basic_rate" in text and "bhmr" in text


class TestRendering:
    def test_empty_table(self):
        assert "(empty)" in render_table([])

    def test_none_rendered_as_dash(self):
        table = render_table([{"a": None, "b": 1}])
        assert "-" in table

    def test_float_formatting(self):
        assert "0.123" in render_table([{"x": 0.1234}])

    def test_ascii_plot(self):
        text = render_ascii_plot(
            [1, 2], {"p": [0.5, None]}, width=10, title="plot"
        )
        assert "#" in text and "(n/a)" in text


class TestPerSeedStatistics:
    @pytest.fixture(scope="class")
    def comparison(self):
        return compare_protocols(
            lambda: RandomUniformWorkload(send_rate=1.5),
            small_cfg(),
            protocols=["bhmr"],
            seeds=(0, 1, 2),
        )

    def test_per_seed_forced_sums_to_total(self, comparison):
        agg = comparison.aggregate("bhmr")
        assert sum(agg.forced_per_seed) == agg.forced_total
        assert len(agg.forced_per_seed) == 3

    def test_ratio_mean_close_to_pooled_ratio(self, comparison):
        agg = comparison.aggregate("bhmr")
        assert agg.ratio_mean is not None
        assert abs(agg.ratio_mean - agg.ratio_to_baseline) < 0.1

    def test_stddev_defined_for_multiple_seeds(self, comparison):
        agg = comparison.aggregate("bhmr")
        assert agg.ratio_stddev is not None and agg.ratio_stddev >= 0

    def test_stddev_none_for_single_seed(self):
        comp = compare_protocols(
            lambda: RandomUniformWorkload(),
            small_cfg(duration=10.0),
            protocols=["bhmr"],
            seeds=(0,),
        )
        agg = comp.aggregate("bhmr")
        assert agg.ratio_stddev is None
        assert agg.ratio_mean is not None

    def test_baseline_per_seed_ratio_is_one(self, comparison):
        agg = comparison.aggregate("fdas")
        assert all(r == 1.0 for r in agg.ratio_per_seed)


class TestSweepEdges:
    def test_min_max_ratio_none_when_unknown_protocol(self):
        def scenario_at(rate):
            return (
                lambda: RandomUniformWorkload(),
                small_cfg(basic_rate=rate, duration=8.0),
            )

        sweep = ratio_sweep(
            "r", [0.2], scenario_at, protocols=["bhmr"], seeds=(0,)
        )
        assert sweep.min_ratio("nonexistent") is None
        assert sweep.max_ratio("nonexistent") is None

    def test_baseline_excluded_from_ratio_series(self):
        def scenario_at(rate):
            return (
                lambda: RandomUniformWorkload(),
                small_cfg(basic_rate=rate, duration=8.0),
            )

        sweep = ratio_sweep(
            "r", [0.2], scenario_at, protocols=["bhmr"], seeds=(0,)
        )
        assert "fdas" not in sweep.ratio_series()
