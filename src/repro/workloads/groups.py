"""Overlapping group communication (the paper's Figure 8 environment).

Processes are organised into groups that *overlap*: consecutive groups
share ``overlap`` members (think replicated services with shared
brokers).  A process mostly multicasts within its own group(s) and
occasionally sends to a uniformly random process outside.  Overlap
members relay causality between groups, which is exactly the structure
that creates non-causal chains with (or without) causal siblings --
where the BHMR protocol's ``causal`` matrix pays off.
"""

from __future__ import annotations

from typing import Hashable, List, Optional

from repro.types import MessageId, ProcessId
from repro.workloads.base import Workload, WorkloadContext


class OverlappingGroupsWorkload(Workload):
    """Group-local multicast with overlapping membership.

    Parameters
    ----------
    group_size:
        Number of processes per group.
    overlap:
        Members shared between consecutive groups (0 <= overlap <
        group_size).  Groups tile the ring of processes with stride
        ``group_size - overlap``.
    send_rate:
        Mean activations per process per time unit.
    p_multicast:
        Probability that an activation multicasts to the whole group
        (otherwise a single message to a random group member).
    p_external:
        Probability that an activation instead sends one message to a
        uniformly random process outside every group of the sender.
    """

    def __init__(
        self,
        group_size: int = 4,
        overlap: int = 1,
        send_rate: float = 1.0,
        p_multicast: float = 0.3,
        p_external: float = 0.05,
    ) -> None:
        if not 0 <= overlap < group_size:
            raise ValueError("need 0 <= overlap < group_size")
        if not 0 <= p_multicast <= 1 or not 0 <= p_external <= 1:
            raise ValueError("probabilities must be in [0, 1]")
        self.group_size = group_size
        self.overlap = overlap
        self.send_rate = send_rate
        self.p_multicast = p_multicast
        self.p_external = p_external
        self._groups: List[List[ProcessId]] = []
        self._groups_of: List[List[int]] = []

    # ------------------------------------------------------------------
    def _build_groups(self, n: int) -> None:
        stride = self.group_size - self.overlap
        self._groups = []
        start = 0
        while start < n:
            group = [(start + k) % n for k in range(self.group_size)]
            self._groups.append(sorted(set(group)))
            start += stride
            if len(self._groups) * stride >= n:
                break
        self._groups_of = [[] for _ in range(n)]
        for gi, group in enumerate(self._groups):
            for pid in group:
                self._groups_of[pid].append(gi)

    def groups(self) -> List[List[ProcessId]]:
        """The group structure (after ``on_start``); for inspection."""
        return [list(g) for g in self._groups]

    # ------------------------------------------------------------------
    def _arm(self, ctx: WorkloadContext, pid: ProcessId) -> None:
        ctx.set_timer(pid, ctx.rng.expovariate(self.send_rate), tag="act")

    def on_start(self, ctx: WorkloadContext) -> None:
        self._build_groups(ctx.n)
        for pid in range(ctx.n):
            self._arm(ctx, pid)

    def on_timer(
        self, ctx: WorkloadContext, pid: ProcessId, tag: Optional[Hashable]
    ) -> None:
        rng = ctx.rng
        my_groups = self._groups_of[pid]
        peers = sorted(
            {m for gi in my_groups for m in self._groups[gi] if m != pid}
        )
        roll = rng.random()
        if peers and roll >= self.p_external:
            if rng.random() < self.p_multicast:
                for dst in peers:
                    ctx.send(pid, dst)
            else:
                ctx.send(pid, rng.choice(peers))
        elif ctx.n > 1:
            outsiders = [p for p in range(ctx.n) if p != pid and p not in peers]
            pool = outsiders if outsiders else [p for p in range(ctx.n) if p != pid]
            ctx.send(pid, rng.choice(pool))
        self._arm(ctx, pid)

    def on_deliver(
        self, ctx: WorkloadContext, pid: ProcessId, src: ProcessId, msg_id: MessageId
    ) -> None:
        pass
