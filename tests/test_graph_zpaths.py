"""Message-chain engine tests: chains, causality, siblings, simple chains.

Anchored on the paper's Figure 1 (section 3.2's worked examples) plus
dedicated mini-patterns for Figure 5 (simple vs non-simple chains).
"""

import pytest

from repro.events import PatternBuilder, figure1_pattern
from repro.graph import ZPathAnalyzer
from repro.types import CheckpointId as C
from repro.types import PatternError

I, J, K = 0, 1, 2


@pytest.fixture
def fig1():
    return figure1_pattern()


@pytest.fixture
def za(fig1):
    return ZPathAnalyzer(fig1)


@pytest.fixture
def names(fig1):
    return fig1.figure_names


class TestChainValidity:
    def test_single_message_is_a_chain(self, za, names):
        assert za.is_chain([names["m1"]])
        assert za.is_causal_chain([names["m1"]])

    def test_m3_m2_is_a_chain(self, za, names):
        assert za.is_chain([names["m3"], names["m2"]])

    def test_m3_m2_is_non_causal(self, za, names):
        # send(m2) precedes deliver(m3) at P_j.
        assert not za.is_causal_chain([names["m3"], names["m2"]])

    def test_m2_m5_is_causal(self, za, names):
        assert za.is_causal_chain([names["m2"], names["m5"]])

    def test_m5_m4_non_causal_m5_m6_causal(self, za, names):
        assert za.is_chain([names["m5"], names["m4"]])
        assert not za.is_causal_chain([names["m5"], names["m4"]])
        assert za.is_causal_chain([names["m5"], names["m6"]])

    def test_paper_long_chain_decomposition(self, za, names):
        chain = [names[x] for x in ("m3", "m2", "m5", "m4", "m7")]
        assert za.is_chain(chain)
        assert not za.is_causal_chain(chain)
        # Its causal sub-chains, as listed in section 3.2.
        assert za.is_causal_chain([names["m3"]])
        assert za.is_causal_chain([names["m2"], names["m5"]])
        assert za.is_causal_chain([names["m4"], names["m7"]])

    def test_wrong_process_junction_rejected(self, za, names):
        # m1 is delivered at P_j; m4 is sent by P_j -- fine.  m1 then m7
        # (sent by P_k) is not a chain.
        assert not za.is_chain([names["m1"], names["m7"]])

    def test_checkpoint_crossing_junction_rejected(self, za, names):
        # deliver(m5) is in I(j,2) but send(m2) is in I(j,1): 2 > 1.
        assert not za.is_chain([names["m5"], names["m2"]])

    def test_empty_is_not_a_chain(self, za):
        assert not za.is_chain([])


class TestChainEndpoints:
    def test_endpoints_of_m3_m2(self, za, names):
        a, b = za.chain_endpoints([names["m3"], names["m2"]])
        assert (a, b) == (C(K, 1), C(I, 2))

    def test_endpoints_of_m5_m4(self, za, names):
        a, b = za.chain_endpoints([names["m5"], names["m4"]])
        assert (a, b) == (C(I, 3), C(K, 2))

    def test_invalid_chain_raises(self, za, names):
        with pytest.raises(PatternError):
            za.chain_endpoints([names["m1"], names["m7"]])


class TestSiblings:
    def test_m5_m6_is_causal_sibling_of_m5_m4(self, za, names):
        sibs = za.causal_siblings([names["m5"], names["m4"]])
        assert [names["m5"], names["m6"]] in sibs

    def test_m3_m2_has_no_causal_sibling(self, za, names):
        assert za.causal_siblings([names["m3"], names["m2"]]) == []


class TestChainExistence:
    def test_exact_chain_exists(self, za):
        assert za.chain_exists(C(K, 1), C(I, 2), causal=False, exact=True)
        assert not za.chain_exists(C(K, 1), C(I, 2), causal=True, exact=True)

    def test_exact_vs_relaxed(self, za):
        # Causal chain m1 goes C(i,1) -> C(j,1); relaxed start from C(i,0)
        # still reaches C(j,1) (interval >= 0), exact start does not.
        assert za.chain_exists(C(I, 0), C(J, 1), causal=True, exact=False)
        assert not za.chain_exists(C(I, 0), C(J, 1), causal=True, exact=True)

    def test_self_zigzag_of_figure1(self, za):
        # [m7, m6] forms a chain C(k,3) -> C(k,2).
        assert za.chain_exists(C(K, 3), C(K, 2), causal=False, exact=True)
        assert not za.chain_exists(C(K, 3), C(K, 2), causal=True, exact=True)

    def test_reach_object(self, za):
        reach = za.reach(C(K, 1), causal=False)
        assert reach.reaches(C(I, 2))
        assert reach.reaches(C(J, 1))
        assert not reach.reaches(C(I, 1))

    def test_unknown_source_rejected(self, za):
        with pytest.raises(PatternError):
            za.reach(C(0, 99), causal=True)
        with pytest.raises(PatternError):
            za.reach(C(7, 0), causal=True)


class TestEnumeration:
    def test_enumerate_both_chains_to_ck2(self, za, names):
        chains = za.enumerate_chains(C(I, 3), C(K, 2), max_len=3)
        assert sorted(chains) == sorted(
            [[names["m5"], names["m4"]], [names["m5"], names["m6"]]]
        )

    def test_enumerate_causal_only(self, za, names):
        chains = za.enumerate_chains(C(I, 3), C(K, 2), causal=True, max_len=3)
        assert chains == [[names["m5"], names["m6"]]]

    def test_enumerate_non_causal_only(self, za, names):
        chains = za.enumerate_chains(C(I, 3), C(K, 2), causal=False, max_len=3)
        assert chains == [[names["m5"], names["m4"]]]


class TestSimpleChains:
    """Figure 5: simple vs non-simple causal message chains."""

    @pytest.fixture
    def simple_vs_nonsimple(self):
        # P0 -> P1 -> P2 twice: once with the junction inside one interval
        # (simple), once with a checkpoint between delivery and resend
        # (causal but non-simple).
        b = PatternBuilder(3)
        s1 = b.send(0, 1)
        b.deliver(s1)
        s2 = b.send(1, 2)  # same interval as deliver(s1): simple junction
        b.deliver(s2)
        n1 = b.send(0, 1)
        b.deliver(n1)
        b.checkpoint(1)  # checkpoint splits the junction
        n2 = b.send(1, 2)
        b.deliver(n2)
        h = b.build(close=True)
        return h, (s1, s2), (n1, n2)

    def test_simple_chain(self, simple_vs_nonsimple):
        h, simple, _ = simple_vs_nonsimple
        za = ZPathAnalyzer(h)
        assert za.is_simple_chain(list(simple))

    def test_non_simple_chain_is_still_causal(self, simple_vs_nonsimple):
        h, _, nonsimple = simple_vs_nonsimple
        za = ZPathAnalyzer(h)
        assert za.is_causal_chain(list(nonsimple))
        assert not za.is_simple_chain(list(nonsimple))

    def test_single_message_is_simple(self, simple_vs_nonsimple):
        h, simple, _ = simple_vs_nonsimple
        za = ZPathAnalyzer(h)
        assert za.is_simple_chain([simple[0]])
