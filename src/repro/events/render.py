"""ASCII space-time diagrams of checkpoint-and-communication patterns.

Renders a history the way the paper's figures draw them: one horizontal
lane per process, checkpoints as ``[x]`` boxes, sends and deliveries as
labelled ticks, with a message legend.  Meant for terminal inspection of
small patterns (examples, debugging, teaching); large histories are
better served by the analysis APIs.

Example (the paper's Figure 1)::

    P0 |[0]--s0------------[1]-r1-[2]-s4----------------[3]------
    P1 |[0]------r0-s1--r2-----[1]------s3-r4-[2]-s5------r6-[3]-
    ...
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.events.event import EventKind
from repro.events.history import History

_CELL = {
    EventKind.SEND: "s{}",
    EventKind.DELIVER: "r{}",
}


def render_space_time(
    history: History,
    max_width: Optional[int] = None,
    show_legend: bool = True,
) -> str:
    """Render the history as one text lane per process.

    Events are placed in global time order (one column each), so
    vertical alignment reflects the real interleaving; a send always
    appears left of its delivery.  ``max_width`` truncates output for
    very long histories (an ellipsis marks the cut).
    """
    order = history.events_by_time()
    columns: Dict[tuple, int] = {ev.ref: k for k, ev in enumerate(order)}
    ncols = len(order)
    lanes: List[List[str]] = []
    width = 0
    for pid in range(history.num_processes):
        cells = [""] * ncols
        for ev in history.events(pid):
            col = columns[ev.ref]
            if ev.kind is EventKind.CHECKPOINT:
                cells[col] = f"[{ev.checkpoint_index}]"
            elif ev.kind in _CELL:
                cells[col] = _CELL[ev.kind].format(ev.msg_id)
            else:
                cells[col] = "*"
        lanes.append(cells)
    col_width = [
        max(2, *(len(lane[k]) for lane in lanes)) for k in range(ncols)
    ] if ncols else []
    lines = []
    for pid, cells in enumerate(lanes):
        parts = []
        for k, cell in enumerate(cells):
            parts.append(cell.ljust(col_width[k], "-") if cell else "-" * col_width[k])
        lane = f"P{pid} |" + "-".join(parts)
        if max_width is not None and len(lane) > max_width:
            lane = lane[: max_width - 3] + "..."
        lines.append(lane)
        width = max(width, len(lane))
    if show_legend and history.num_messages() > 0:
        lines.append("")
        legend = []
        for m in sorted(history.messages.values(), key=lambda m: m.msg_id):
            arrow = f"m{m.msg_id}: P{m.src}->P{m.dst}"
            if not m.delivered:
                arrow += " (in transit)"
            legend.append(arrow)
        lines.append("messages: " + ", ".join(legend))
    return "\n".join(lines)


def render_cut(history: History, cut: Dict[int, int], label: str = "cut") -> str:
    """Render a global checkpoint as per-process markers under the lanes."""
    parts = [f"{label}:"]
    for pid in sorted(cut):
        parts.append(f"P{pid}@C({pid},{cut[pid]})")
    return " ".join(parts)
