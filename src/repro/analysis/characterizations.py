"""Visible characterizations of RDT (the PODC'99 layer).

The definitional statement of RDT quantifies over *all* R-paths -- an
unbounded, global object no process can see.  The characterization line
of work (Baldoni-Helary-Raynal, "Rollback-Dependency Trackability:
Visible Characterizations") reduces the quantification to path classes
that are *visible*: small, local shapes whose doubling a process can
establish from piggybacked causal knowledge.  That reduction is what
makes protocols possible at all -- the BHMR predicate ``C1 | C2`` is
precisely an on-line test for the elementary class below.

Implemented here, each as an executable checker over recorded patterns:

``check_rdt_elementary``
    The **CM-path characterization**: a pattern satisfies RDT iff every
    *elementary* non-causal path -- a causal chain followed by one more
    message across a single non-causal junction -- is doubled by a
    causal chain with the same (relaxed) endpoints.  Elementary paths
    are exactly what a receiver can see coming: the causal prefix is
    summarised by the piggybacked TDV of its last message, and the
    non-causal junction is the local send-before-delivery the receiver
    itself created.

``noncausal_junctions``
    The visible raw material: ordered message pairs ``(m, m')`` at one
    process with ``send(m')`` before ``deliver(m)`` in an interval
    configuration that chains them (``interval(deliver m) <=
    interval(send m')``).

The equivalence of the elementary characterization with definitional
RDT (`repro.analysis.rdt.check_rdt`) is property-tested on arbitrary
generated patterns in ``tests/test_characterizations.py`` -- the
executable form of the characterization theorem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.clocks.tdv import message_tdvs
from repro.events.event import Message
from repro.events.history import History
from repro.graph.zpaths import ChainReach, ZPathAnalyzer
from repro.types import CheckpointId


@dataclass(frozen=True)
class Junction:
    """A non-causal junction: ``m`` then ``m'`` at ``pid``.

    ``send(after_msg)`` precedes ``deliver(first_msg)`` in the process
    order of ``pid`` while the interval configuration still chains them
    -- the "breakable by P_i" situation of the paper's Figure 2.
    """

    pid: int
    first_msg: int  # the message whose delivery closes the junction
    after_msg: int  # the message sent before that delivery

    def __repr__(self) -> str:
        return f"<junction at P{self.pid}: m{self.first_msg} ~> m{self.after_msg}>"


@dataclass
class ElementaryViolation:
    """An undoubled elementary path.

    The path runs from ``source`` (deepest origin of a causal chain
    ending with ``junction.first_msg``) through the junction to
    ``target`` (the checkpoint closing the delivery interval of
    ``junction.after_msg``).
    """

    source: CheckpointId
    target: CheckpointId
    junction: Junction

    def __repr__(self) -> str:
        return (
            f"<undoubled elementary path {self.source} -> {self.target} "
            f"via {self.junction}>"
        )


@dataclass
class ElementaryReport:
    holds: bool
    violations: List[ElementaryViolation] = field(default_factory=list)
    junctions_checked: int = 0

    def __bool__(self) -> bool:
        return self.holds

    def __repr__(self) -> str:
        status = "holds" if self.holds else f"{len(self.violations)} violations"
        return (
            f"<ElementaryReport {status}, "
            f"{self.junctions_checked} junctions checked>"
        )


def noncausal_junctions(history: History) -> Iterator[Junction]:
    """All visible non-causal junctions of a (closed) pattern."""
    by_src: Dict[int, List[Message]] = {}
    for m in history.delivered_messages():
        by_src.setdefault(m.src, []).append(m)
    for m in history.delivered_messages():
        deliver_ev = history.deliver_event(m)
        assert deliver_ev is not None
        pid = m.dst
        deliver_interval = history.interval_of(deliver_ev)
        for after in by_src.get(pid, ()):  # messages sent by the receiver
            if after.send_seq > deliver_ev.seq:
                continue  # delivery precedes the send: causal junction
            if deliver_interval > history.send_interval(after):
                continue  # a checkpoint broke the pair: not a chain link
            yield Junction(pid=pid, first_msg=m.msg_id, after_msg=after.msg_id)


def check_rdt_elementary(
    history: History,
    analyzer: Optional[ZPathAnalyzer] = None,
    reach_cache: Optional[Dict[CheckpointId, ChainReach]] = None,
) -> ElementaryReport:
    """Decide RDT via the elementary (CM-path) characterization.

    For every non-causal junction ``(m, m')`` and every process ``k``,
    the deepest causal chain ending with ``m`` starts at
    ``C(k, m.tdv[k])`` (the TDV piggybacked on ``m`` -- precisely the
    sender's visible knowledge).  The elementary path it forms with
    ``m'`` ends at ``C(j, y)``, ``j = m'.dst``, ``y`` the delivery
    interval of ``m'``.  RDT holds iff every such path is doubled by a
    causal chain; doubling is monotone in the start index, so checking
    the deepest start per process suffices.

    An online driver re-checking growing prefixes may pass its own
    ``analyzer`` (built on the same closed history) and a persistent
    ``reach_cache`` so causal reach sets are shared across calls instead
    of being recomputed per query -- the same recompute-nothing policy
    the incremental R-graph closure applies to reachability.
    """
    history = history.closed()
    if analyzer is None:
        analyzer = ZPathAnalyzer(history)
    piggybacked = message_tdvs(history)
    if reach_cache is None:
        reach_cache = {}

    def causal_reach(cid: CheckpointId) -> ChainReach:
        if cid not in reach_cache:
            reach_cache[cid] = analyzer.reach(cid, causal=True)
        return reach_cache[cid]

    violations: List[ElementaryViolation] = []
    junctions = 0
    for junction in noncausal_junctions(history):
        junctions += 1
        after = history.message(junction.after_msg)
        deliver_ev = history.deliver_event(after)
        assert deliver_ev is not None
        target = CheckpointId(after.dst, history.interval_of(deliver_ev))
        profile = piggybacked[junction.first_msg]
        for k, z in enumerate(profile):
            if z == 0:
                continue
            source = CheckpointId(k, z)
            if k == target.pid:
                doubled = z <= target.index
            else:
                doubled = causal_reach(source).reaches(target)
            if not doubled:
                violations.append(
                    ElementaryViolation(
                        source=source, target=target, junction=junction
                    )
                )
    return ElementaryReport(
        holds=not violations,
        violations=violations,
        junctions_checked=junctions,
    )


def junction_census(history: History) -> Dict[str, int]:
    """Counts of junction kinds (reporting helper for examples/benches).

    ``causal`` counts delivery-before-send pairs that chain, i.e.
    junctions of causal chains; ``non_causal`` the visible trouble
    makers; ``broken`` pairs separated by a checkpoint (what a forced
    checkpoint achieves).
    """
    history = history.closed()
    causal = non_causal = broken = 0
    by_src: Dict[int, List[Message]] = {}
    for m in history.delivered_messages():
        by_src.setdefault(m.src, []).append(m)
    for m in history.delivered_messages():
        deliver_ev = history.deliver_event(m)
        assert deliver_ev is not None
        deliver_interval = history.interval_of(deliver_ev)
        for after in by_src.get(m.dst, ()):  # sends by the receiver
            chained = deliver_interval <= history.send_interval(after)
            if after.send_seq > deliver_ev.seq:
                if chained:
                    causal += 1
            elif chained:
                non_causal += 1
            else:
                broken += 1
    return {"causal": causal, "non_causal": non_causal, "broken": broken}
