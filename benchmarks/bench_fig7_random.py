"""E1 / Figure 7: forced-checkpoint ratio R in the random environment.

Regenerates the paper's general-environment figure: R = forced(P) /
forced(FDAS) for the BHMR protocol and its two variants, as a function
of (a) the basic-checkpoint rate and (b) the number of processes.

Paper's reported shape: R < 1 everywhere (BHMR strictly less
conservative than FDAS); the reduction is smallest in unstructured
random traffic and shrinks as n grows (fewer causal siblings per pair).
"""

import os

import pytest

from repro.harness import render_runner_stats, render_series, run_sweep
from repro.sim import Simulation, SimulationConfig
from repro.workloads import RandomUniformWorkload

PROTOCOLS = ["bhmr", "bhmr-nosimple", "bhmr-causalonly"]
SEEDS = (0, 1, 2)
# Cells fan out over worker processes (REPRO_BENCH_WORKERS=1 forces the
# serial path); results are bit-identical either way.
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "0")) or None


def scenario_at_rate(rate):
    return (
        lambda: RandomUniformWorkload(send_rate=1.0),
        SimulationConfig(n=8, duration=60.0, basic_rate=rate),
    )


def scenario_at_n(n):
    return (
        lambda: RandomUniformWorkload(send_rate=1.0),
        SimulationConfig(n=n, duration=60.0, basic_rate=0.2),
    )


@pytest.fixture(scope="module")
def rate_sweep():
    return run_sweep(
        "basic_rate",
        [0.05, 0.1, 0.2, 0.5, 1.0],
        scenario_at_rate,
        PROTOCOLS,
        seeds=SEEDS,
        workers=WORKERS,
    )


@pytest.fixture(scope="module")
def n_sweep():
    return run_sweep(
        "n", [4, 8, 12, 16], scenario_at_n, PROTOCOLS, seeds=SEEDS, workers=WORKERS
    )


def test_fig7_ratio_vs_checkpoint_rate(benchmark, emit, rate_sweep):
    emit(
        render_series(
            "basic_rate",
            rate_sweep.xs,
            rate_sweep.ratio_series(),
            title="Figure 7a -- R vs basic checkpoint rate (random, n=8)",
        )
        + "\n"
        + render_runner_stats(rate_sweep.stats)
    )
    # Shape: BHMR (and variants) never forces more than FDAS.
    for protocol in PROTOCOLS:
        assert rate_sweep.max_ratio(protocol) <= 1.0, protocol
    # The full protocol is the least conservative of the family.
    for r_full, r_v1 in zip(
        rate_sweep.ratio_series()["bhmr"],
        rate_sweep.ratio_series()["bhmr-nosimple"],
    ):
        assert r_full <= r_v1 + 0.02
    benchmark(
        lambda: Simulation(
            RandomUniformWorkload(send_rate=1.0),
            SimulationConfig(n=8, duration=60.0, basic_rate=0.2, seed=0),
        ).run("bhmr")
    )


def test_fig7_ratio_vs_process_count(benchmark, emit, n_sweep):
    emit(
        render_series(
            "n",
            n_sweep.xs,
            n_sweep.ratio_series(),
            title="Figure 7b -- R vs number of processes (random)",
        )
    )
    for protocol in PROTOCOLS:
        assert n_sweep.max_ratio(protocol) <= 1.0, protocol
    # BHMR strictly wins somewhere in the sweep.
    assert n_sweep.min_ratio("bhmr") < 1.0
    benchmark(
        lambda: Simulation(
            RandomUniformWorkload(send_rate=1.0),
            SimulationConfig(n=16, duration=60.0, basic_rate=0.2, seed=0),
        ).run("bhmr")
    )
