"""What durability costs: the ingest WAL against the no-WAL daemon.

Two layers:

* the **writer microbenchmark** -- records/s through
  :class:`repro.serve.wal.IngestWal` at different group-commit batch
  sizes, isolating the fsync amortization curve from the service around
  it (batch=1 is one disk barrier per record, the worst case the
  ``--fsync-batch`` knob allows);
* the **end-to-end differential** -- two fresh ``repro serve``
  subprocesses under the same pipelined load, one with ``--no-wal`` and
  one with the WAL at the default batch (64).  The acceptance bound:
  durable ingest sustains **at least half** the no-WAL rate (per
  server-CPU-second, the same metric ``bench_serve`` gates on) -- i.e.
  crash safety costs at most 2x.  Deep client pipelining is what makes
  this work: a full window of frames rides each fsync.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

import pytest

from benchmarks._emit import write_bench
from repro.harness import render_table
from repro.serve.loadgen import run_load
from repro.serve.wal import IngestWal

SESSIONS = 8
N = 4
DURATION = 30.0
WINDOW = 256
#: The durability bound under test: WAL ingest >= no-WAL rate / 2.
MAX_SLOWDOWN = 2.0
#: Noise guard for the end-to-end ratio.
ATTEMPTS = 2

MICRO_RECORDS = 20_000
MICRO_BATCHES = (1, 8, 64, 512)


def _proc_cpu_s(pid: int) -> float:
    """CPU seconds (user+system) consumed by ``pid`` so far (Linux)."""
    with open(f"/proc/{pid}/stat", "rb") as f:
        rest = f.read().rpartition(b")")[2].split()
    return (int(rest[11]) + int(rest[12])) / os.sysconf("SC_CLK_TCK")


# ----------------------------------------------------------------------
# writer microbenchmark
# ----------------------------------------------------------------------
def _writer_rate(directory, *, batch, fsync=True) -> float:
    wal = IngestWal(directory, segment_records=8192, fsync=fsync)
    op = {"kind": "checkpoint", "pid": 1}
    started = time.perf_counter()
    appended = 0
    while appended < MICRO_RECORDS:
        for _ in range(batch):
            wal.append("bench", appended, op)
            appended += 1
        wal.sync()
    elapsed = time.perf_counter() - started
    wal.close()
    return appended / elapsed


def test_writer_fsync_amortization(emit):
    """Records/s vs group-commit batch: the curve the knob buys."""
    rows = []
    rates = {}
    with tempfile.TemporaryDirectory() as d:
        for batch in MICRO_BATCHES:
            rate = _writer_rate(os.path.join(d, f"b{batch}"), batch=batch)
            rates[batch] = rate
            rows.append(
                {"fsync batch": batch, "records/s": f"{rate:,.0f}"}
            )
        no_fsync = _writer_rate(os.path.join(d, "nofsync"), batch=512, fsync=False)
        rows.append(
            {"fsync batch": "off (unsafe)", "records/s": f"{no_fsync:,.0f}"}
        )
    emit(
        render_table(
            rows,
            title=f"WAL writer, {MICRO_RECORDS} records, one fsync per batch",
        )
    )
    # The whole design rests on this monotonicity: batching must buy
    # real throughput, and even batch=1 must not collapse.
    assert rates[64] > rates[1], "group commit bought nothing"
    assert rates[1] > 50, "one fsync per record is unusably slow here"
    write_bench(
        "wal",
        {
            "writer": {
                "records": MICRO_RECORDS,
                "records_per_s_by_batch": {
                    str(b): round(r, 1) for b, r in rates.items()
                },
                "records_per_s_no_fsync": round(no_fsync, 1),
            }
        },
    )


# ----------------------------------------------------------------------
# end-to-end: served ingest with and without the WAL
# ----------------------------------------------------------------------
def _one_run(seed: int, *, wal: bool) -> dict:
    env = dict(os.environ)
    repo_src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = repo_src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    with tempfile.TemporaryDirectory() as d:
        sock = os.path.join(d, "serve.sock")
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--unix", sock, "--workers", "2", "--queue-depth", "1024",
            "--json",
        ]
        if wal:
            argv += ["--wal-dir", os.path.join(d, "wal"), "--fsync-batch", "64"]
        else:
            argv += ["--no-wal"]
        server = subprocess.Popen(
            argv, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            deadline = time.monotonic() + 30
            while not os.path.exists(sock):
                assert time.monotonic() < deadline, "server did not bind"
                assert server.poll() is None, server.stderr.read()
                time.sleep(0.02)
            cpu0 = _proc_cpu_s(server.pid)
            report = run_load(
                ("unix", sock),
                sessions=SESSIONS, n=N, duration=DURATION,
                window=WINDOW, query_every=0, seed=seed,
            )
            cpu = _proc_cpu_s(server.pid) - cpu0
            server.send_signal(signal.SIGINT)
            out, err = server.communicate(timeout=60)
        except Exception:
            server.kill()
            raise
    assert server.returncode == 0, err
    summary = json.loads(out)["sessions"]
    doc = report.as_doc()
    doc["server_cpu_s"] = round(cpu, 4)
    doc["events_per_cpu_s"] = round(report.acked / cpu, 1) if cpu > 0 else None
    doc["server_events"] = sum(summary.values())
    return doc


@pytest.fixture(scope="module")
def paired_runs():
    """(no-WAL, WAL) run pairs; best ratio wins the gate."""
    if not os.path.exists("/proc"):
        pytest.skip("needs /proc for per-process CPU accounting")
    pairs = []
    for attempt in range(ATTEMPTS):
        baseline = _one_run(seed=attempt, wal=False)
        durable = _one_run(seed=attempt, wal=True)
        pairs.append((baseline, durable))
        ratio = durable["events_per_cpu_s"] / baseline["events_per_cpu_s"]
        if ratio >= 1.0 / MAX_SLOWDOWN:
            break
    return pairs


def test_durable_ingest_within_2x_of_no_wal(emit, paired_runs):
    best = max(
        paired_runs,
        key=lambda p: p[1]["events_per_cpu_s"] / p[0]["events_per_cpu_s"],
    )
    baseline, durable = best
    ratio = durable["events_per_cpu_s"] / baseline["events_per_cpu_s"]
    emit(
        render_table(
            [
                {
                    "config": name,
                    "acked": r["acked"],
                    "events/cpu-s": r["events_per_cpu_s"],
                    "wall events/s": r["throughput_events_per_s"],
                    "ingest p99 (s)": r["ingest_p99_s"],
                }
                for name, r in (("no WAL", baseline), ("WAL batch=64", durable))
            ],
            title=(
                f"durability cost ({SESSIONS} sessions, n={N}, "
                f"window={WINDOW}, {DURATION:.0f}s each): "
                f"WAL/no-WAL = {ratio:.2f}"
            ),
        )
    )
    for r in (baseline, durable):
        assert r["errors"] == 0 and r["disconnects"] == 0
        assert r["server_events"] >= r["acked"]
    assert ratio >= 1.0 / MAX_SLOWDOWN, (
        f"durable ingest runs at {ratio:.2f}x the no-WAL rate; the bound "
        f"is >= {1.0 / MAX_SLOWDOWN:.2f}x (a {MAX_SLOWDOWN:.0f}x slowdown)"
    )
    write_bench(
        "wal",
        {
            "serve_differential": {
                "sessions": SESSIONS,
                "n": N,
                "window": WINDOW,
                "duration_s": DURATION,
                "no_wal_events_per_cpu_s": baseline["events_per_cpu_s"],
                "wal_events_per_cpu_s": durable["events_per_cpu_s"],
                "ratio": round(ratio, 3),
                "bound": round(1.0 / MAX_SLOWDOWN, 3),
                "wal_acked": durable["acked"],
                "runs": len(paired_runs),
            }
        },
    )
