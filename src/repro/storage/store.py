"""Stable-storage model: what checkpoints and logs actually cost.

Checkpointing literature measures protocols in forced-checkpoint counts;
operators measure them in bytes of stable storage.  This module models
the per-process stable store -- checkpoint records plus the sender
message log -- with simple, explicit cost parameters, so the garbage
collection machinery (:mod:`repro.recovery.gc`) can be evaluated in the
unit that matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.types import CheckpointId, MessageId, ProcessId, ReproError


class StorageError(ReproError):
    """Stable-store misuse (double write, unknown discard...)."""


@dataclass(frozen=True)
class CheckpointRecord:
    cid: CheckpointId
    bytes: int
    written_at: float


@dataclass(frozen=True)
class LogRecord:
    msg_id: MessageId
    bytes: int
    written_at: float


class StableStore:
    """One process's stable storage: checkpoints + sender log."""

    def __init__(self, pid: ProcessId) -> None:
        self.pid = pid
        self._checkpoints: Dict[int, CheckpointRecord] = {}
        self._log: Dict[MessageId, LogRecord] = {}
        self.bytes_written = 0
        self.peak_bytes = 0

    # ------------------------------------------------------------------
    def write_checkpoint(self, cid: CheckpointId, size: int, now: float) -> None:
        if cid.pid != self.pid:
            raise StorageError(f"{cid} does not belong to P{self.pid}")
        if cid.index in self._checkpoints:
            raise StorageError(f"{cid} already on stable storage")
        self._checkpoints[cid.index] = CheckpointRecord(cid, size, now)
        self.bytes_written += size
        self._track_peak()

    def log_message(self, msg_id: MessageId, size: int, now: float) -> None:
        if msg_id in self._log:
            raise StorageError(f"message {msg_id} already logged")
        self._log[msg_id] = LogRecord(msg_id, size, now)
        self.bytes_written += size
        self._track_peak()

    def discard_checkpoint(self, index: int) -> int:
        try:
            return self._checkpoints.pop(index).bytes
        except KeyError:
            raise StorageError(
                f"P{self.pid} has no checkpoint {index} on stable storage"
            ) from None

    def discard_log_below(self, interval: int, send_intervals: Dict[MessageId, int]):
        """Drop logged messages sent in intervals <= ``interval``."""
        dead = [
            mid
            for mid in self._log
            if send_intervals.get(mid, interval + 1) <= interval
        ]
        freed = 0
        for mid in dead:
            freed += self._log.pop(mid).bytes
        return freed

    # ------------------------------------------------------------------
    def checkpoint_indices(self) -> List[int]:
        return sorted(self._checkpoints)

    def usage_bytes(self) -> int:
        return sum(r.bytes for r in self._checkpoints.values()) + sum(
            r.bytes for r in self._log.values()
        )

    def _track_peak(self) -> None:
        self.peak_bytes = max(self.peak_bytes, self.usage_bytes())

    def __repr__(self) -> str:
        return (
            f"<StableStore P{self.pid} ckpts={len(self._checkpoints)} "
            f"log={len(self._log)} bytes={self.usage_bytes()}>"
        )
