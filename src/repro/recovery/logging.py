"""Sender-based message logging for in-transit replay.

A consistent recovery line still loses messages that *crossed* it (sent
at or before the line, delivered after it): after rollback the receiver
needs them again but the sender will not re-send.  The classical remedy
is sender-based logging: each sender keeps its outgoing messages in a
volatile log, flushed to stable storage at checkpoints; on recovery,
messages crossing the line are replayed from the senders' logs.

This module implements the bookkeeping: what must be logged, what can be
garbage-collected once a recovery line advances, and the replay plan for
a concrete recovery.  Combined with RDT and piecewise determinism this
is the setting in which the paper's reference [4] ("When Piecewise
Determinism Is Almost True") applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.analysis.consistency import in_transit_of_cut
from repro.events.event import Message
from repro.events.history import History
from repro.types import MessageId, ProcessId


@dataclass
class ReplayPlan:
    """Messages each sender must replay after a rollback to ``cut``."""

    cut: Dict[ProcessId, int]
    by_sender: Dict[ProcessId, List[Message]] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(len(v) for v in self.by_sender.values())

    def messages(self) -> List[Message]:
        out: List[Message] = []
        for pid in sorted(self.by_sender):
            out.extend(self.by_sender[pid])
        return out


class SenderLog:
    """The message log of one process.

    ``stable_upto`` tracks the last checkpoint index whose interval's
    messages are known to be on stable storage; everything later is
    volatile and lost if this process crashes.
    """

    def __init__(self, pid: ProcessId) -> None:
        self.pid = pid
        self._messages: Dict[MessageId, Message] = {}
        self.stable_upto: int = 0

    def record(self, m: Message) -> None:
        if m.src != self.pid:
            raise ValueError(f"message {m.msg_id} was not sent by P{self.pid}")
        self._messages[m.msg_id] = m

    def flush(self, checkpoint_index: int) -> None:
        """Mark the log stable up to (the send interval of) a checkpoint."""
        self.stable_upto = max(self.stable_upto, checkpoint_index)

    def __len__(self) -> int:
        return len(self._messages)

    def lookup(self, msg_id: MessageId) -> Message:
        return self._messages[msg_id]

    def collect_garbage(self, history: History, floor: Mapping[ProcessId, int]) -> int:
        """Drop messages that no future recovery line can ever need.

        ``floor`` is the cut of an advanced recovery floor (see
        :func:`repro.recovery.gc.global_recovery_floor`): no rollback
        will ever cross it again.  A logged message ``m`` is dead iff it
        lies entirely at or below the floor **on both sides**:
        ``send_interval(m) <= floor[src]`` *and* it was delivered with
        ``deliver_interval(m) <= floor[dst]``.

        The sender-side condition alone is NOT safe: a message sent at
        or below the floor but delivered above it *crosses* the floor
        (it is exactly one of ``floor.messages_to_replay``), and any
        later recovery line ``L' >= floor`` with
        ``L'[dst] < deliver_interval(m)`` still needs it replayed from
        this log.  Undelivered messages sent at or below the floor cross
        every future line for the same reason and are likewise kept.

        Returns the number of messages dropped.
        """
        safe_interval = floor[self.pid]
        dead = []
        for mid, m in self._messages.items():
            if history.send_interval(m) > safe_interval:
                continue
            if not m.delivered:
                continue  # permanently in transit: crosses every future line
            deliver_interval = history.deliver_interval(m)
            assert deliver_interval is not None
            if deliver_interval <= floor[m.dst]:
                dead.append(mid)
        for mid in dead:
            del self._messages[mid]
        return len(dead)


def build_sender_logs(history: History) -> Dict[ProcessId, SenderLog]:
    """Reconstruct every process's sender log from a recorded history."""
    logs = {pid: SenderLog(pid) for pid in range(history.num_processes)}
    for m in history.messages.values():
        logs[m.src].record(m)
    for pid in range(history.num_processes):
        logs[pid].flush(history.last_index(pid))
    return logs


def replay_plan(history: History, cut: Dict[ProcessId, int]) -> ReplayPlan:
    """The messages each sender must replay after rolling back to ``cut``.

    Exactly the messages crossing the cut: sent at or before it,
    delivered after it (or still in transit).
    """
    plan = ReplayPlan(cut=dict(cut))
    for m in in_transit_of_cut(history, cut):
        plan.by_sender.setdefault(m.src, []).append(m)
    for msgs in plan.by_sender.values():
        msgs.sort(key=lambda m: m.send_seq)
    return plan
