"""Discrete-event simulation testbed: kernel, traces, replay, crashes."""

from repro.sim.channel import ChannelMap
from repro.sim.crashes import (
    CrashRecord,
    RecoveryReplayResult,
    replay_with_recovery,
)
from repro.sim.delays import Constant, DelayModel, Exponential, LogNormal, Uniform
from repro.sim.faults import CrashSchedule, InjectedCrash
from repro.sim.generate import TraceGenerator, generate_trace
from repro.sim.kernel import Scheduler
from repro.sim.netfaults import FOREVER, LinkFaults, NetFaultModel, Partition
from repro.sim.replay import ReplayResult, replay, replay_many
from repro.sim.simulation import Simulation, SimulationConfig, run_scenario
from repro.sim.trace import Trace, TraceOp, TraceOpKind
from repro.sim.transport import NetReport, ReliableTransport, TransportConfig

__all__ = [
    "FOREVER",
    "ChannelMap",
    "Constant",
    "CrashRecord",
    "CrashSchedule",
    "DelayModel",
    "Exponential",
    "InjectedCrash",
    "LinkFaults",
    "LogNormal",
    "NetFaultModel",
    "NetReport",
    "Partition",
    "RecoveryReplayResult",
    "ReliableTransport",
    "ReplayResult",
    "Scheduler",
    "Simulation",
    "SimulationConfig",
    "Trace",
    "TraceGenerator",
    "TraceOp",
    "TraceOpKind",
    "TransportConfig",
    "Uniform",
    "generate_trace",
    "replay",
    "replay_many",
    "replay_with_recovery",
    "run_scenario",
]
