"""Snapshot/restore: digest-checked replay, memory and directory stores."""

import pytest

from repro.obs.jsonio import canonical_dumps
from repro.serve.session import ServeSession
from repro.serve.snapshots import (
    SnapshotStore,
    restore_session,
    snapshot_doc,
    state_digest,
)
from repro.types import SimulationError


def busy_session(protocol="bhmr"):
    session = ServeSession("snap", 3, protocol)
    for _ in range(3):
        mid = session.apply({"kind": "send", "src": 0, "dst": 1})["msg_id"]
        session.apply({"kind": "deliver", "msg_id": mid})
        session.apply({"kind": "checkpoint", "pid": 2})
    return session


class TestSnapshotRoundTrip:
    def test_restore_rebuilds_identical_state(self):
        session = busy_session()
        doc = snapshot_doc(session)
        twin = restore_session(doc)
        assert twin.session_id == session.session_id
        assert twin.ingest_log == session.ingest_log
        assert state_digest(twin) == doc["digest"]
        assert canonical_dumps(twin.query("rdt_status")) == canonical_dumps(
            session.query("rdt_status")
        )

    def test_restored_session_keeps_ingesting(self):
        session = busy_session()
        twin = restore_session(snapshot_doc(session))
        # Message ids continue where the log left off.
        reply = twin.apply({"kind": "send", "src": 1, "dst": 2})
        assert reply["msg_id"] == len(
            [op for op in session.ingest_log if op["kind"] == "send"]
        )

    def test_snapshot_doc_is_json_safe(self):
        doc = snapshot_doc(busy_session())
        assert canonical_dumps(doc)  # no repr fallbacks, no cycles
        assert doc["version"] == 2
        assert doc["events"] == len(doc["log"])
        assert doc["wal_seq"] == -1  # no WAL attached

    def test_snapshot_doc_records_wal_watermark(self):
        doc = snapshot_doc(busy_session(), wal_seq=41)
        assert doc["wal_seq"] == 41

    def test_tampered_log_fails_integrity_check(self):
        doc = snapshot_doc(busy_session())
        doc["log"] = doc["log"][:-1]  # drop the last op, keep the digest
        with pytest.raises(SimulationError, match="integrity"):
            restore_session(doc)

    def test_tampered_digest_fails_integrity_check(self):
        doc = snapshot_doc(busy_session())
        doc["digest"] = "0" * 64
        with pytest.raises(SimulationError, match="integrity"):
            restore_session(doc)


class TestSnapshotStore:
    @pytest.fixture(params=["memory", "directory"])
    def store(self, request, tmp_path):
        if request.param == "memory":
            return SnapshotStore()
        return SnapshotStore(tmp_path / "snaps")

    def test_save_load_pop(self, store):
        session = busy_session()
        saved = store.save(session)
        assert "snap" in store
        assert store.known() == ["snap"]
        loaded = store.load("snap")
        assert canonical_dumps(loaded) == canonical_dumps(saved)
        popped = store.pop("snap")
        assert canonical_dumps(popped) == canonical_dumps(saved)
        assert "snap" not in store
        assert store.pop("snap") is None

    def test_discard_unknown_is_a_noop(self, store):
        store.discard("ghost")
        assert store.known() == []

    def test_load_then_restore(self, store):
        session = busy_session()
        store.save(session)
        twin = restore_session(store.load("snap"))
        assert state_digest(twin) == state_digest(session)


class TestDirectoryStore:
    def test_snapshots_survive_a_new_store(self, tmp_path):
        directory = tmp_path / "snaps"
        SnapshotStore(directory).save(busy_session())
        fresh = SnapshotStore(directory)  # a restarted server
        assert fresh.known() == ["snap"]
        assert restore_session(fresh.load("snap")).ingest_log

    def test_hostile_session_ids_stay_inside_the_directory(self, tmp_path):
        directory = tmp_path / "snaps"
        store = SnapshotStore(directory)
        session = busy_session()
        session.session_id = "../escape"
        store.save(session)
        files = list(directory.glob("*.json"))
        assert len(files) == 1
        assert files[0].parent == directory


class TestAtomicWrites:
    """A crash mid-save leaves the old snapshot or the new -- never a torn one."""

    def test_stale_tmp_files_are_swept_on_open(self, tmp_path):
        directory = tmp_path / "snaps"
        directory.mkdir()
        junk = directory / "snap.json.tmp"
        junk.write_text('{"half a snapsh')  # the crash caught mid-write
        store = SnapshotStore(directory)
        assert not junk.exists()
        assert store.known() == []  # and it never masqueraded as real

    def test_crash_before_rename_keeps_the_old_snapshot(
        self, tmp_path, monkeypatch
    ):
        import os as os_module

        directory = tmp_path / "snaps"
        store = SnapshotStore(directory)
        session = busy_session()
        first = store.save(session, wal_seq=3)

        # Grow the session, then crash the save between fsync and
        # rename: os.replace raising models the power cut exactly
        # (the tmp file is complete, the directory entry is not).
        session.apply({"kind": "checkpoint", "pid": 0})

        def power_cut(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(os_module, "replace", power_cut)
        with pytest.raises(OSError, match="simulated"):
            store.save(session, wal_seq=9)
        monkeypatch.undo()

        # Recovery sees the *previous* snapshot, whole and verifiable.
        survivor = SnapshotStore(directory)
        doc = survivor.load("snap")
        assert canonical_dumps(doc) == canonical_dumps(first)
        assert restore_session(doc).ingest_log == session.ingest_log[:-1]

        # And a clean retry supersedes it atomically.
        second = survivor.save(session, wal_seq=9)
        assert survivor.load("snap")["wal_seq"] == 9
        assert second["events"] == first["events"] + 1

    def test_tmp_artifacts_never_shadow_real_snapshots(self, tmp_path):
        directory = tmp_path / "snaps"
        store = SnapshotStore(directory)
        store.save(busy_session())
        (directory / "other.json.tmp").write_text("{}")
        assert store.known() == ["snap"]
        assert store.load("other") is None
