"""The trace bus: determinism, zero-interference, event content.

The two contractual properties of :mod:`repro.obs.tracer` are golden
here: identical-seed runs produce *byte-identical* JSONL, and turning
tracing on changes nothing about the simulation's results.
"""

import json

import pytest

from repro import api
from repro.obs import NULL_TRACER, Tracer, TraceEvent
from repro.obs.tracer import KINDS

SCENARIO = dict(workload="random", n=3, duration=20.0, seed=7, basic_rate=0.3)


def traced_run(**overrides):
    tracer = Tracer()
    kwargs = dict(SCENARIO)
    kwargs.update(overrides)
    result = api.run(protocol="bhmr", tracer=tracer, **kwargs)
    return tracer, result


class TestTracerUnit:
    def test_event_records_kind_time_seq_fields(self):
        t = Tracer()
        t.event("proto.forced", 1.5, pid=2, cause="predicate")
        (ev,) = t.events
        assert ev.kind == "proto.forced" and ev.t == 1.5 and ev.seq == 0
        assert ev.fields == {"pid": 2, "cause": "predicate"}

    def test_seq_monotonic(self):
        t = Tracer()
        for k in range(5):
            t.event("sim.step", float(k))
        assert [ev.seq for ev in t] == [0, 1, 2, 3, 4]

    def test_lines_are_canonical_json(self):
        t = Tracer()
        t.event("sim.step", 1.0, b=2, a=1)
        (line,) = t.lines()
        assert line == json.dumps(
            json.loads(line), sort_keys=True, separators=(",", ":")
        )
        assert json.loads(line) == {
            "kind": "sim.step", "t": 1.0, "seq": 0, "a": 1, "b": 2,
        }

    def test_fields_pass_through_jsonable(self):
        t = Tracer()
        t.event("sim.step", 0.0, tup=(1, 2), nested={"k": (3,)})
        (ev,) = t.events
        assert ev.fields == {"tup": [1, 2], "nested": {"k": [3]}}

    def test_disabled_tracer_is_falsy_and_inert(self):
        t = Tracer(enabled=False)
        assert not t
        t.event("sim.step", 0.0)
        assert len(t) == 0
        assert not NULL_TRACER and len(NULL_TRACER) == 0

    def test_span_pairs_begin_and_end_by_id(self):
        t = Tracer()
        span = t.span("phase", 0.0, name="simulate")
        t.event("sim.step", 1.0)
        span.end(2.0, events=1)
        span.end(3.0)  # double close ignored
        begin, _, end = t.events
        assert begin.fields["mark"] == "begin"
        assert end.fields["mark"] == "end"
        assert begin.fields["span"] == end.fields["span"] == begin.seq

    def test_write_and_clear(self, tmp_path):
        t = Tracer()
        t.event("sim.step", 0.0)
        path = tmp_path / "trace.jsonl"
        assert t.write(path) == 1
        assert path.read_text().count("\n") == 1
        t.clear()
        assert len(t) == 0
        t.event("sim.step", 0.0)
        assert t.events[0].seq == 0  # seq restarts after clear

    def test_stream_receives_lines_live(self, tmp_path):
        import io

        buf = io.StringIO()
        t = Tracer(stream=buf)
        t.event("sim.step", 0.0)
        assert buf.getvalue() == t.dumps()

    def test_trace_event_frozen(self):
        ev = TraceEvent(kind="sim.step", t=0.0, seq=0)
        with pytest.raises(Exception):
            ev.t = 1.0


class TestGoldenDeterminism:
    def test_same_seed_runs_are_byte_identical(self):
        t1, _ = traced_run()
        t2, _ = traced_run()
        assert t1.dumps() == t2.dumps()
        assert len(t1) > 0

    def test_same_seed_trace_files_are_byte_identical(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        traced_run()[0].write(a)
        traced_run()[0].write(b)
        assert a.read_bytes() == b.read_bytes()

    def test_different_seed_changes_the_trace(self):
        t1, _ = traced_run(seed=7)
        t2, _ = traced_run(seed=8)
        assert t1.dumps() != t2.dumps()

    def test_no_wall_clock_in_events(self):
        tracer, _ = traced_run()
        # every t is a simulation time within the configured duration
        # (plus the recorder's epsilon nudges), never an epoch stamp
        assert all(0.0 <= ev.t < 1e6 for ev in tracer)

    def test_only_known_kinds_emitted(self):
        tracer, _ = traced_run()
        assert {ev.kind for ev in tracer} <= set(KINDS)


class TestZeroInterference:
    def test_tracing_leaves_run_metrics_bit_identical(self):
        plain = api.run(protocol="bhmr", **SCENARIO)
        _, traced = traced_run()
        assert plain.metrics == traced.metrics

    def test_tracing_leaves_comparison_bit_identical(self):
        base = api.compare(protocols=("bhmr", "fdas"), seeds=(0, 1), **SCENARIO_CMP)
        traced = api.compare(
            protocols=("bhmr", "fdas"), seeds=(0, 1), tracer=Tracer(),
            **SCENARIO_CMP,
        )
        assert base.to_dict() == traced.to_dict()
        assert base.ratio("bhmr") == traced.ratio("bhmr")

    def test_disabled_tracer_equals_no_tracer(self):
        off = Tracer(enabled=False)
        result = api.run(protocol="bhmr", tracer=off, **SCENARIO)
        assert len(off) == 0
        assert result.metrics == api.run(protocol="bhmr", **SCENARIO).metrics


SCENARIO_CMP = dict(workload="random", n=3, duration=15.0, basic_rate=0.3)


class TestEventContent:
    def test_predicate_events_carry_piggyback_input(self):
        tracer, result = traced_run()
        evals = tracer.of_kind("proto.predicate")
        assert len(evals) == result.metrics.messages_delivered
        for ev in evals:
            assert {"protocol", "pid", "sender", "msg", "piggyback", "forced"} \
                <= set(ev.fields)

    def test_forced_events_match_forced_count(self):
        tracer, result = traced_run()
        forced = tracer.of_kind("proto.forced")
        assert len(forced) == result.metrics.forced_checkpoints
        fired = [ev for ev in tracer.of_kind("proto.predicate") if ev.fields["forced"]]
        by_predicate = [ev for ev in forced if ev.fields["cause"] == "predicate"]
        assert len(fired) == len(by_predicate)

    def test_sim_layer_events_present(self):
        tracer, result = traced_run()
        assert len(tracer.of_kind("sim.send")) == result.metrics.messages_delivered
        assert len(tracer.of_kind("sim.step")) > 0

    def test_sweep_emits_cell_events_and_forces_serial(self):
        tracer = Tracer()
        sweep = api.sweep(
            workload="random", xs=(0.1, 0.4), protocols=("bhmr",),
            seeds=(0,), n=3, duration=10.0, tracer=tracer,
        )
        cells = tracer.of_kind("sweep.cell")
        assert len(cells) == 2
        assert sweep.stats.workers == 1
        assert "serial" in sweep.stats.mode or sweep.stats.workers == 1
