#!/bin/sh
# One-command verification: the determinism/async lint plus the tier-1
# test suite, exactly what CI (and the roadmap's gate) runs.
#
#     sh tools/verify.sh
#
# Exits non-zero on the first failing stage.
set -e
cd "$(dirname "$0")/.."

echo "== lint: determinism + async blocking-call rules =="
python tools/lint_determinism.py

echo "== tier-1: pytest =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -x -q

# Sharded stage (opt-in: spawns real shard subprocesses behind the
# router).  REPRO_SHARDED=1 runs the multi-process differential suite
# plus one sharded kill -9 chaos cell.
if [ "${REPRO_SHARDED:-0}" = "1" ]; then
    echo "== sharded: multi-process differential suite =="
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python -m pytest tests/test_serve_sharded.py -x -q
    echo "== sharded: kill -9 one shard mid-commit (1 cell) =="
    REPRO_CHAOS=1 REPRO_CHAOS_SHARD_CELLS=1 \
        PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python -m pytest tests/chaos/test_shard_kill9.py -x -q
fi

# Chaos stage (opt-in: spawns real server subprocesses and kill -9s
# them).  REPRO_CHAOS=1 enables it; REPRO_CHAOS_CELLS picks how many
# randomized (seed, fsync-batch, kill-mode) cells run -- the default
# below is a small smoke budget, 54 is the full grid.
if [ "${REPRO_CHAOS:-0}" = "1" ]; then
    echo "== chaos: kill -9 durability grid (${REPRO_CHAOS_CELLS:-6} cells) =="
    REPRO_CHAOS=1 REPRO_CHAOS_CELLS="${REPRO_CHAOS_CELLS:-6}" \
        PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python -m pytest tests/chaos -x -q
fi

# Wire-chaos stage (opt-in: drives the sharded deployment through the
# seeded fault-injection proxy and crash-loops a shard).  A single
# always-on smoke cell already runs inside the tier-1 suite above;
# REPRO_WIRE_CHAOS=1 runs the full grid, REPRO_WIRE_CHAOS_CELLS picks
# how many (seed, fault-profile) cells (default 4, 12 is the grid).
if [ "${REPRO_WIRE_CHAOS:-0}" = "1" ]; then
    echo "== wire chaos: seeded fault-injection grid (${REPRO_WIRE_CHAOS_CELLS:-4} cells) =="
    REPRO_WIRE_CHAOS=1 REPRO_WIRE_CHAOS_CELLS="${REPRO_WIRE_CHAOS_CELLS:-4}" \
        PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python -m pytest tests/chaos/test_wire_chaos.py -x -q
fi
