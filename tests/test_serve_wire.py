"""The wire codec: length-prefixed canonical-JSON frames, sans-IO."""

import json
import struct

import pytest

from repro.serve import wire


class TestEncodeDecode:
    def test_roundtrip(self):
        doc = {"kind": "hello", "seq": 1, "session": "s", "n": 3}
        assert wire.decode_frame(wire.encode_frame(doc)[4:]) == doc

    def test_canonical_bytes(self):
        # Key order must not leak into the encoding.
        a = wire.encode_frame({"b": 1, "a": 2})
        b = wire.encode_frame({"a": 2, "b": 1})
        assert a == b
        assert b"\n" not in a and b" " not in a

    def test_length_prefix_is_big_endian(self):
        frame = wire.encode_frame({"x": 1})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4

    def test_oversized_frame_refused_on_encode(self):
        with pytest.raises(wire.FrameError, match="exceeds"):
            wire.encode_frame({"blob": "x" * (wire.MAX_FRAME + 1)})

    def test_non_object_payload_refused(self):
        with pytest.raises(wire.FrameError, match="object"):
            wire.decode_frame(json.dumps([1, 2, 3]).encode())

    def test_garbage_payload_refused(self):
        with pytest.raises(wire.FrameError, match="undecodable"):
            wire.decode_frame(b"\xff\xfe not json")


class TestFrameBuffer:
    def test_byte_by_byte_feed(self):
        doc = {"kind": "send", "seq": 9, "session": "s", "src": 0, "dst": 1}
        frame = wire.encode_frame(doc)
        buffer = wire.FrameBuffer()
        for i, byte in enumerate(frame):
            out = buffer.feed(bytes([byte]))
            if i < len(frame) - 1:
                assert out == []
                assert buffer.pending() == i + 1
            else:
                assert out == [doc]
        assert buffer.pending() == 0
        assert buffer.next_doc() == doc
        assert buffer.next_doc() is None

    def test_many_frames_one_chunk(self):
        docs = [{"seq": i, "kind": "checkpoint"} for i in range(100)]
        chunk = b"".join(wire.encode_frame(d) for d in docs)
        buffer = wire.FrameBuffer()
        assert buffer.feed(chunk) == docs
        assert [buffer.next_doc() for _ in docs] == docs
        assert buffer.pending() == 0

    def test_split_across_chunks(self):
        docs = [{"seq": i, "payload": "y" * 50} for i in range(10)]
        stream = b"".join(wire.encode_frame(d) for d in docs)
        buffer = wire.FrameBuffer()
        got = []
        third = len(stream) // 3
        for part in (stream[:third], stream[third : 2 * third], stream[2 * third :]):
            got.extend(buffer.feed(part))
        assert got == docs

    def test_hostile_length_prefix_refused(self):
        buffer = wire.FrameBuffer()
        with pytest.raises(wire.FrameError, match="exceeds"):
            buffer.feed(struct.pack(">I", wire.MAX_FRAME + 1) + b"x")

    def test_pending_counts_partial_frame(self):
        frame = wire.encode_frame({"seq": 1})
        buffer = wire.FrameBuffer()
        buffer.feed(frame[:7])
        assert buffer.pending() == 7

    def test_completed_docs_survive_bad_frame_in_same_chunk(self):
        """Regression: good frames preceding a FrameError must reach
        next_doc().  A pipelined peer's acks used to vanish when an
        oversized frame followed them in the same read."""
        good = [{"seq": 1, "ok": True}, {"seq": 2, "ok": True}]
        chunk = b"".join(wire.encode_frame(d) for d in good)
        chunk += struct.pack(">I", wire.MAX_FRAME + 1) + b"x"
        buffer = wire.FrameBuffer()
        with pytest.raises(wire.FrameError, match="exceeds"):
            buffer.feed(chunk)
        assert buffer.next_doc() == good[0]
        assert buffer.next_doc() == good[1]
        assert buffer.next_doc() is None

    def test_completed_docs_survive_undecodable_frame(self):
        good = {"seq": 7, "ok": True}
        bad = struct.pack(">I", 3) + b"\xff\xfe\xfd"
        buffer = wire.FrameBuffer()
        with pytest.raises(wire.FrameError, match="undecodable"):
            buffer.feed(wire.encode_frame(good) + bad)
        assert buffer.next_doc() == good


class TestRawFrameBuffer:
    """The router's passthrough splitter: boundaries without decoding."""

    def test_payloads_are_verbatim_bytes(self):
        docs = [{"seq": i, "kind": "checkpoint"} for i in range(5)]
        frames = [wire.encode_frame(d) for d in docs]
        buffer = wire.RawFrameBuffer()
        buffer.feed(b"".join(frames))
        for frame in frames:
            assert buffer.next_payload() == frame[4:]
        assert buffer.next_payload() is None
        assert buffer.pending() == 0

    def test_split_across_chunks(self):
        frame = wire.encode_frame({"seq": 1, "blob": "z" * 100})
        buffer = wire.RawFrameBuffer()
        buffer.feed(frame[:30])
        assert buffer.next_payload() is None
        assert buffer.pending() == 30
        buffer.feed(frame[30:])
        assert buffer.next_payload() == frame[4:]

    def test_hostile_length_prefix_refused(self):
        buffer = wire.RawFrameBuffer()
        buffer.feed(struct.pack(">I", wire.MAX_FRAME + 1) + b"x")
        with pytest.raises(wire.FrameError, match="exceeds"):
            buffer.next_payload()

    def test_frame_prefix_reframes(self):
        doc = {"seq": 3, "kind": "send"}
        frame = wire.encode_frame(doc)
        payload = frame[4:]
        assert wire.frame_prefix(payload) + payload == frame

    def test_frame_prefix_polices_max(self):
        with pytest.raises(wire.FrameError, match="exceeds"):
            wire.frame_prefix(b"x" * (wire.MAX_FRAME + 1))


class TestErrorReply:
    def test_shape(self):
        reply = wire.error_reply(42, "overloaded", "queue full")
        assert reply == {
            "ok": False, "seq": 42, "error": "overloaded", "detail": "queue full",
        }
