"""The pinned golden scenarios (shared by the test and the regen script).

Module-level workload factories keep the scenarios picklable, so the
same cells can be pushed through the parallel runner unchanged.
"""

from repro.sim import SimulationConfig
from repro.workloads import (
    ClientServerWorkload,
    OverlappingGroupsWorkload,
    RandomUniformWorkload,
)

PROTOCOLS = ["bhmr", "bhmr-nosimple", "bhmr-causalonly", "cbr"]
BASELINE = "fdas"
SEEDS = (0, 1)


def make_random():
    return RandomUniformWorkload(send_rate=1.2)


def make_groups():
    return OverlappingGroupsWorkload(
        group_size=3, overlap=1, send_rate=1.0, p_multicast=0.4
    )


def make_client_server():
    return ClientServerWorkload(think_time=0.3, pipeline=2)


GOLDEN_SCENARIOS = {
    "random_n4": (
        make_random,
        SimulationConfig(n=4, duration=25.0, basic_rate=0.25),
    ),
    "groups_n8": (
        make_groups,
        SimulationConfig(n=8, duration=25.0, basic_rate=0.2),
    ),
    "client_server_n5": (
        make_client_server,
        SimulationConfig(n=5, duration=30.0, basic_rate=0.2),
    ),
}


# ----------------------------------------------------------------------
# crash-injection golden: the recovery.* event stream of one pinned
# fault-injected run per protocol (byte-exact, like the counts above)
# ----------------------------------------------------------------------
RECOVERY_SCENARIO = "random_n4"
RECOVERY_PROTOCOLS = ["bhmr", "fdas", "independent"]
RECOVERY_CRASHES = ((0, 8.0), (2, 18.0))


def recovery_trace_lines(protocol):
    """The serialized ``recovery.*`` events of the pinned crash run."""
    from repro.obs import Tracer
    from repro.sim import CrashSchedule, Simulation

    make_workload, config = GOLDEN_SCENARIOS[RECOVERY_SCENARIO]
    tracer = Tracer()
    sim = Simulation(make_workload(), config, tracer=tracer)
    sim.run_with_crashes(protocol, CrashSchedule.at(*RECOVERY_CRASHES))
    return [ev.line() for ev in tracer if ev.kind.startswith("recovery.")]


# ----------------------------------------------------------------------
# network-fault golden: the ``net.*`` event stream of one pinned run
# over a lossy/duplicating/reordering network with a transient
# partition and retransmission (byte-exact, protocol-independent --
# physical faults resolve during trace generation)
# ----------------------------------------------------------------------
NET_FAULT_SCENARIO = "random_n4"


def net_fault_model():
    from repro.sim import NetFaultModel, Partition

    return NetFaultModel.uniform(
        loss=0.25,
        duplicate=0.15,
        reorder=0.3,
        partitions=(Partition(0, 2, start=6.0, end=14.0),),
        seed=11,
    )


def net_fault_trace_lines():
    """The serialized ``net.*`` events of the pinned faulty generation."""
    import dataclasses

    from repro.obs import Tracer
    from repro.sim import Simulation

    make_workload, config = GOLDEN_SCENARIOS[NET_FAULT_SCENARIO]
    config = dataclasses.replace(config, net_faults=net_fault_model())
    tracer = Tracer()
    sim = Simulation(make_workload(), config, tracer=tracer)
    sim.trace  # the physical layer lives in the generation phase
    return [ev.line() for ev in tracer if ev.kind.startswith("net.")]
