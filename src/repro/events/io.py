"""JSON (de)serialisation of histories and traces.

Lets users persist simulated runs, exchange recorded patterns between
tools, and -- importantly for adoption -- feed *externally recorded*
executions into the analysis layer: anything that can emit the simple
JSON schema below can be checked for RDT, Z-cycles, recovery lines, etc.

Schema (version 1)::

    {
      "format": "repro-history", "version": 1, "n": 3,
      "events": [[{"kind": "checkpoint", "time": 0.0, "index": 0,
                   "ckind": "initial"},
                  {"kind": "send", "time": 1.5, "msg": 0}, ...], ...],
      "messages": [{"id": 0, "src": 0, "dst": 1, "size": 1}, ...]
    }

Event ``seq`` numbers and message event seqs are implicit in positions
and recomputed on load; the loaded history is fully validated.
"""

from __future__ import annotations

import json
from typing import Dict, IO, List, Union

from repro.events.event import CheckpointKind, Event, EventKind, Message
from repro.events.history import History
from repro.events.validate import validate_history
from repro.types import PatternError

_FORMAT = "repro-history"
_VERSION = 1


def history_to_dict(history: History) -> Dict:
    """The JSON-ready dict form of a history."""
    events: List[List[Dict]] = []
    for pid in range(history.num_processes):
        lane = []
        for ev in history.events(pid):
            entry: Dict[str, object] = {"kind": ev.kind.value, "time": ev.time}
            if ev.kind is EventKind.CHECKPOINT:
                entry["index"] = ev.checkpoint_index
                assert ev.checkpoint_kind is not None
                entry["ckind"] = ev.checkpoint_kind.value
            elif ev.kind in (EventKind.SEND, EventKind.DELIVER):
                entry["msg"] = ev.msg_id
            lane.append(entry)
        events.append(lane)
    messages = [
        {"id": m.msg_id, "src": m.src, "dst": m.dst, "size": m.size}
        for m in sorted(history.messages.values(), key=lambda m: m.msg_id)
    ]
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "n": history.num_processes,
        "events": events,
        "messages": messages,
    }


def history_from_dict(data: Dict) -> History:
    """Rebuild (and validate) a history from its dict form."""
    if data.get("format") != _FORMAT:
        raise PatternError(f"not a {_FORMAT} document")
    if data.get("version") != _VERSION:
        raise PatternError(f"unsupported version {data.get('version')!r}")
    n = data["n"]
    meta = {m["id"]: m for m in data["messages"]}
    send_seq: Dict[int, int] = {}
    deliver_seq: Dict[int, int] = {}
    events: List[List[Event]] = []
    for pid in range(n):
        lane: List[Event] = []
        for seq, entry in enumerate(data["events"][pid]):
            kind = EventKind(entry["kind"])
            fields: Dict[str, object] = {}
            if kind is EventKind.CHECKPOINT:
                fields["checkpoint_index"] = entry["index"]
                fields["checkpoint_kind"] = CheckpointKind(entry["ckind"])
            elif kind in (EventKind.SEND, EventKind.DELIVER):
                msg_id = entry["msg"]
                fields["msg_id"] = msg_id
                if kind is EventKind.SEND:
                    send_seq[msg_id] = seq
                else:
                    deliver_seq[msg_id] = seq
            lane.append(
                Event(pid=pid, seq=seq, kind=kind, time=entry["time"], **fields)
            )
        events.append(lane)
    messages: Dict[int, Message] = {}
    for msg_id, m in meta.items():
        if msg_id not in send_seq:
            raise PatternError(f"message {msg_id} has no send event")
        messages[msg_id] = Message(
            msg_id=msg_id,
            src=m["src"],
            dst=m["dst"],
            send_seq=send_seq[msg_id],
            deliver_seq=deliver_seq.get(msg_id),
            size=m.get("size", 1),
        )
    history = History(events, messages)
    validate_history(history)
    return history


def save_history(history: History, target: Union[str, IO[str]]) -> None:
    """Write a history as JSON to a path or open text file."""
    data = history_to_dict(history)
    if isinstance(target, str):
        with open(target, "w") as fh:
            json.dump(data, fh)
    else:
        json.dump(data, target)


def load_history(source: Union[str, IO[str]]) -> History:
    """Read a history from a path or open text file."""
    if isinstance(source, str):
        with open(source) as fh:
            data = json.load(fh)
    else:
        data = json.load(source)
    return history_from_dict(data)
