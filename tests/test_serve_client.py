"""Client-side plumbing: address parsing, error mapping, dead sockets."""

import asyncio
import os
import socket
import threading
import time
import warnings

import pytest

from repro.serve import wire
from repro.serve.client import (
    AsyncClient,
    CircuitOpen,
    Client,
    ReplyError,
    RequestTimeout,
    parse_address,
)
from repro.types import ReproError


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("10.0.0.1:7463") == ("tcp", "10.0.0.1", 7463)

    def test_bare_port_defaults_host(self):
        assert parse_address(":7463") == ("tcp", "127.0.0.1", 7463)

    def test_unix_path(self):
        assert parse_address("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")

    def test_tuples_pass_through(self):
        assert parse_address(("tcp", "h", 1)) == ("tcp", "h", 1)
        assert parse_address(("unix", "/p")) == ("unix", "/p")

    @pytest.mark.parametrize(
        "bad", ["", "no-port", "host:notaport", "unix:", ("weird", 1)]
    )
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)

    def test_bracketed_ipv6(self):
        assert parse_address("[::1]:7463") == ("tcp", "::1", 7463)
        assert parse_address("[fe80::1%eth0]:80") == ("tcp", "fe80::1%eth0", 80)

    def test_unbracketed_ipv6_rejected_with_hint(self):
        """Regression: rpartition used to mangle ``::1:7463`` into host
        ``::1`` silently wrong for other layouts -- now the ambiguity is
        an explicit error telling the caller how to write it."""
        with pytest.raises(ValueError, match=r"bracket.*\[::1\]:7463"):
            parse_address("::1:7463")

    def test_empty_brackets_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            parse_address("[]:7463")


class TestReplyError:
    def test_carries_code_and_detail(self):
        err = ReplyError("overloaded", "queue full")
        assert err.code == "overloaded"
        assert err.detail == "queue full"
        assert isinstance(err, ReproError)
        assert "overloaded" in str(err)


class TestDeadSocket:
    """api error-path satellite: a dead endpoint is a clean, fast error."""

    def test_sync_client_unix_connection_error(self, tmp_path):
        with pytest.raises(ConnectionError, match="cannot connect"):
            Client(f"unix:{tmp_path}/nobody-home.sock", timeout=2.0)

    def test_sync_client_tcp_connection_refused(self, free_tcp_port):
        with pytest.raises(ConnectionError):
            Client(f"127.0.0.1:{free_tcp_port}", timeout=2.0)

    def test_async_client_connection_error(self, tmp_path):
        async def attempt():
            await AsyncClient.connect(f"unix:{tmp_path}/gone.sock", timeout=2.0)

        with pytest.raises(ConnectionError, match="cannot connect"):
            asyncio.run(attempt())


@pytest.fixture
def free_tcp_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class _ScriptedServer:
    """A threaded unix-socket peer whose per-connection behaviour is a
    plain function -- the cheapest way to script wire-level misbehaviour
    (stalls, partial frames, scripted error codes) a real server never
    produces on cue."""

    def __init__(self, path, handler):
        self.path = str(path)
        self._handler = handler
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(self.path)
        self._listener.listen(8)
        self._conns = 0
        self._open = []
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            self._open.append(conn)
            index = self._conns
            self._conns += 1
            threading.Thread(
                target=self._run_handler, args=(index, conn), daemon=True
            ).start()

    def _run_handler(self, index, conn):
        try:
            self._handler(index, conn)
        except OSError:
            pass

    def close(self):
        self._stop.set()
        self._listener.close()
        for conn in self._open:
            try:
                conn.close()
            except OSError:
                pass
        self._thread.join(timeout=2.0)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


def _serve_ok(conn):
    """Speak the real protocol: every request gets ``{"ok": true}``."""
    buffer = wire.FrameBuffer()
    while True:
        doc = wire.recv_frame(conn, buffer)
        if doc is None:
            return
        wire.send_frame(conn, {"ok": True, "seq": doc["seq"], "echo": doc["kind"]})


class TestTimeoutInvalidation:
    """Satellite regression: a socket timeout mid-frame must not leave
    the next call parsing from the middle of an abandoned reply."""

    def test_timeout_raises_typed_error_and_invalidates(self, tmp_path):
        stalled = threading.Event()

        def handler(index, conn):
            if index == 0:
                buffer = wire.FrameBuffer()
                wire.recv_frame(conn, buffer)
                # Half a reply: a 64-byte frame's prefix plus 10 bytes,
                # then silence -- exactly the desync the old client
                # kept in self._buffer.
                conn.sendall(b"\x00\x00\x00\x40" + b'{"ok": tr')
                stalled.wait(timeout=10.0)
            else:
                _serve_ok(conn)

        path = tmp_path / "stall.sock"
        with _ScriptedServer(path, handler):
            client = Client(f"unix:{path}", timeout=0.3)
            with pytest.raises(RequestTimeout, match="reconnect"):
                client.call({"kind": "query", "seq": 1})
            # The connection is invalidated, not silently reused: a
            # second call must refuse rather than mis-parse.
            with pytest.raises(ConnectionError, match="invalidated"):
                client.call({"kind": "query", "seq": 2})
            stalled.set()
            # reconnect() makes the client whole again -- fresh socket,
            # fresh buffer, no leftover partial frame.
            client.reconnect(retries=3, delay=0.05)
            reply = client.call({"kind": "query", "seq": 3})
            assert reply == {"ok": True, "seq": 3, "echo": "query"}
            client._sock.close()

    def test_timeout_is_a_repro_error(self):
        assert issubclass(RequestTimeout, ReproError)


class TestShardDownRetry:
    """``shard_down`` replies are refused-before-apply: the sync client
    retries them transparently up to ``retries`` times."""

    def test_retries_until_shard_returns(self, tmp_path):
        down_for = 3
        seen = []

        def handler(index, conn):
            buffer = wire.FrameBuffer()
            while True:
                doc = wire.recv_frame(conn, buffer)
                if doc is None:
                    return
                seen.append(doc["kind"])
                if len(seen) <= down_for:
                    wire.send_frame(
                        conn,
                        wire.error_reply(
                            doc["seq"], "shard_down", "shard 1 restarting"
                        ),
                    )
                else:
                    wire.send_frame(conn, {"ok": True, "seq": doc["seq"]})

        path = tmp_path / "down.sock"
        with _ScriptedServer(path, handler):
            client = Client(f"unix:{path}", retries=5, retry_delay=0.01)
            assert client.request("snapshot", session="s")["ok"] is True
            assert len(seen) == down_for + 1
            client._sock.close()

    def test_retries_exhausted_raise(self, tmp_path):
        def handler(index, conn):
            buffer = wire.FrameBuffer()
            while True:
                doc = wire.recv_frame(conn, buffer)
                if doc is None:
                    return
                wire.send_frame(
                    conn, wire.error_reply(doc["seq"], "shard_down", "dead")
                )

        path = tmp_path / "dead.sock"
        with _ScriptedServer(path, handler):
            client = Client(f"unix:{path}", retries=2, retry_delay=0.01)
            with pytest.raises(ReplyError, match="shard_down"):
                client.request("snapshot", session="s")
            client._sock.close()

    def test_non_retryable_errors_pass_through(self, tmp_path):
        calls = []

        def handler(index, conn):
            buffer = wire.FrameBuffer()
            while True:
                doc = wire.recv_frame(conn, buffer)
                if doc is None:
                    return
                calls.append(doc)
                wire.send_frame(
                    conn, wire.error_reply(doc["seq"], "bad_request", "nope")
                )

        path = tmp_path / "bad.sock"
        with _ScriptedServer(path, handler):
            client = Client(f"unix:{path}", retries=5, retry_delay=0.01)
            with pytest.raises(ReplyError, match="bad_request"):
                client.request("snapshot", session="s")
            assert len(calls) == 1  # no retry on a real fault
            client._sock.close()


class TestResumeAcrossRestart:
    """``Client.resume`` against a WAL-backed server restarting
    mid-conversation: the re-greet lands on the recovered session."""

    def test_resume_reports_recovered_state(self, tmp_path):
        from repro.serve.server import ServerConfig, serve_in_thread

        config = ServerConfig(
            unix_path=str(tmp_path / "serve.sock"),
            wal_dir=str(tmp_path / "wal"),
        )
        with serve_in_thread(config) as handle:
            client = Client(handle.connect_address())
            client.hello("s", n=3)
            client.checkpoint("s", pid=0)
            client.send("s", src=0, dst=1)
        # The server is gone; the client's socket is now dead.  A fresh
        # process takes over the same socket path and WAL directory.
        with serve_in_thread(config) as handle:
            reply = client.resume("s")
            assert reply["recovered"] is True
            assert reply["events"] == 2
            assert reply["n"] == 3
            # The resumed conversation continues where it left off.
            status = client.query("s", "rdt_status")
            assert status["events"] == 2
            client.close()


class TestAsyncClientLoopApi:
    def test_submit_emits_no_deprecation_warning(self, tmp_path):
        """Regression: submit used asyncio.get_event_loop() inside the
        running loop, which warns today and breaks on future CPython."""

        def handler(index, conn):
            _serve_ok(conn)

        path = tmp_path / "async.sock"

        async def scenario():
            client = await AsyncClient.connect(f"unix:{path}")
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                future = client.submit("query", session="s")
                await client.flush()
                reply = await future
            assert reply["ok"] is True
            client._reader_task.cancel()
            client._writer.close()

        with _ScriptedServer(path, handler):
            asyncio.run(scenario())


class TestAsyncClientDeadline:
    """The per-request deadline: a stalled server must never hang an
    AsyncClient await (before this, only ``connect`` was guarded)."""

    def test_stalled_server_times_out_instead_of_hanging(self, tmp_path):
        def handler(index, conn):
            # Greet, then go silent forever: read and discard frames,
            # never reply -- the proxy's "stall" fault, scripted.
            buffer = wire.FrameBuffer()
            doc = wire.recv_frame(conn, buffer)
            if doc is not None:
                wire.send_frame(conn, {"ok": True, "seq": doc["seq"]})
            while wire.recv_frame(conn, buffer) is not None:
                pass

        path = tmp_path / "stall.sock"

        async def scenario():
            client = await AsyncClient.connect(f"unix:{path}", timeout=0.3)
            assert (await client.call("hello"))["ok"] is True
            started = time.monotonic()
            with pytest.raises(RequestTimeout, match="0.3"):
                await client.call("checkpoint", session="s", pid=0)
            elapsed = time.monotonic() - started
            assert elapsed < 5.0  # bounded, not a hang
            # The connection is invalidated: later submits fail fast.
            with pytest.raises(ConnectionError, match="invalidated"):
                await client.reply(client.submit("query", session="s"))
            await client.close()

        with _ScriptedServer(path, handler):
            asyncio.run(scenario())

    def test_deadline_failure_fails_other_inflight_futures(self, tmp_path):
        def handler(index, conn):
            buffer = wire.FrameBuffer()
            while wire.recv_frame(conn, buffer) is not None:
                pass  # never answer anything

        path = tmp_path / "stall2.sock"

        async def scenario():
            client = await AsyncClient.connect(f"unix:{path}", timeout=0.2)
            first = client.submit("checkpoint", session="s", pid=0)
            second = client.submit("checkpoint", session="s", pid=1)
            await client.flush()
            with pytest.raises(RequestTimeout):
                await client.reply(first)
            # The sibling future dies with the connection instead of
            # pending forever.
            with pytest.raises(ConnectionError):
                await asyncio.wait_for(second, timeout=2.0)
            await client.close()

        with _ScriptedServer(path, handler):
            asyncio.run(scenario())

    def test_timeout_none_disables_deadline(self, tmp_path):
        def handler(index, conn):
            _serve_ok(conn)

        path = tmp_path / "nodl.sock"

        async def scenario():
            client = await AsyncClient.connect(f"unix:{path}", timeout=None)
            assert (await client.call("query", session="s"))["ok"] is True
            await client.close()

        with _ScriptedServer(path, handler):
            asyncio.run(scenario())


class TestBackoffAndCircuit:
    def test_backoff_is_seeded_exponential_and_capped(self, tmp_path):
        def handler(index, conn):
            _serve_ok(conn)

        path = tmp_path / "bk.sock"
        with _ScriptedServer(path, handler):
            a = Client(f"unix:{path}", retry_delay=0.1, backoff_cap=0.4,
                       backoff_seed=7)
            b = Client(f"unix:{path}", retry_delay=0.1, backoff_cap=0.4,
                       backoff_seed=7)
            c = Client(f"unix:{path}", retry_delay=0.1, backoff_cap=0.4,
                       backoff_seed=8)
            da = [a._backoff_delay(i) for i in range(1, 7)]
            db = [b._backoff_delay(i) for i in range(1, 7)]
            dc = [c._backoff_delay(i) for i in range(1, 7)]
            assert da == db  # same seed -> identical jitter stream
            assert da != dc  # different seed -> fans out
            for i, delay in enumerate(da, start=1):
                base = min(0.4, 0.1 * 2 ** (i - 1))
                assert base * 0.5 <= delay < base  # jitter in [0.5x, 1x)
            a.close(); b.close(); c.close()

    def test_circuit_opens_after_consecutive_failures(self, tmp_path):
        state = {"healthy": False}

        def handler(index, conn):
            if not state["healthy"]:
                conn.close()  # slam the door: a transport-level failure
                return
            _serve_ok(conn)

        path = tmp_path / "cb.sock"
        with _ScriptedServer(path, handler):
            client = Client(
                f"unix:{path}",
                retries=0,
                circuit_threshold=2,
                circuit_cooldown=0.2,
            )
            # Two consecutive transport failures trip the breaker ...
            for _ in range(2):
                with pytest.raises(ConnectionError):
                    client.request("query", session="s")
                client.reconnect(retries=3, delay=0.01)
            # ... so the third call fails fast without touching the wire.
            with pytest.raises(CircuitOpen, match="probe allowed"):
                client.request("query", session="s")
            # After the cooldown the half-open probe goes through; a
            # healthy server closes the circuit again.  (Re-dial after
            # flipping the flag: the last reconnect above was accepted
            # by the still-unhealthy server, which doomed that socket.)
            state["healthy"] = True
            time.sleep(0.25)
            client.reconnect(retries=3, delay=0.01)
            assert client.request("query", session="s")["ok"] is True
            assert client._circuit_failures == 0
            # Closed for real: the next call is not a probe.
            assert client.request("query", session="s")["ok"] is True
            client.close()

    def test_half_open_probe_failure_reopens(self, tmp_path):
        def handler(index, conn):
            conn.close()

        path = tmp_path / "cb2.sock"
        with _ScriptedServer(path, handler):
            client = Client(
                f"unix:{path}",
                retries=0,
                circuit_threshold=1,
                circuit_cooldown=0.1,
            )
            with pytest.raises(ConnectionError):
                client.request("query", session="s")
            with pytest.raises(CircuitOpen):
                client.request("query", session="s")
            time.sleep(0.15)
            client.reconnect(retries=3, delay=0.01)
            # The probe itself fails -> straight back to open.
            with pytest.raises(ConnectionError):
                client.request("query", session="s")
            with pytest.raises(CircuitOpen):
                client.request("query", session="s")
            client._sock.close()

    def test_breaker_disabled_by_default(self, tmp_path):
        def handler(index, conn):
            conn.close()

        path = tmp_path / "cb3.sock"
        with _ScriptedServer(path, handler):
            client = Client(f"unix:{path}", retries=0)
            for _ in range(5):
                with pytest.raises(ConnectionError):
                    client.request("query", session="s")
                client.reconnect(retries=3, delay=0.01)
            # Still ConnectionError, never CircuitOpen.


class TestBrokenFraming:
    def test_truncated_frame_invalidates_and_normalises(self, tmp_path):
        def handler(index, conn):
            buffer = wire.FrameBuffer()
            doc = wire.recv_frame(conn, buffer)
            if doc is None:
                return
            # Half a reply, then FIN: truncate-on-close.
            conn.sendall(b"\x00\x00\x00\x40" + b'{"ok": true, "seq"')
            conn.close()

        path = tmp_path / "trunc.sock"
        with _ScriptedServer(path, handler):
            client = Client(f"unix:{path}", retries=0)
            with pytest.raises(ConnectionError, match="framing"):
                client.request("query", session="s")
            # Invalidated: no mis-parse from mid-frame on a dead conn.
            with pytest.raises(ConnectionError, match="invalidated"):
                client.request("query", session="s")
