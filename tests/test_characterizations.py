"""Visible-characterization tests: the PODC'99 equivalence, executable.

The central claim: definitional RDT ("all R-paths trackable")
is equivalent to the *elementary* characterization ("every causal-chain
+ one-message path across a non-causal junction is doubled").  Verified
on the paper's figures, on protocol runs, and property-based on
arbitrary hypothesis-generated patterns.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis import (
    check_rdt,
    check_rdt_elementary,
    junction_census,
    noncausal_junctions,
)
from repro.events import PatternBuilder, figure1_pattern, random_pattern
from repro.sim import Simulation, SimulationConfig
from repro.types import CheckpointId as C
from repro.workloads import RandomUniformWorkload

from tests.test_property_hypothesis import build_pattern, pattern_inputs

I, J, K = 0, 1, 2


class TestJunctions:
    def test_figure1_junctions(self):
        h = figure1_pattern()
        names = h.figure_names
        junctions = {
            (j.first_msg, j.after_msg) for j in noncausal_junctions(h)
        }
        # The two famous ones: m3 ~> m2 (at P_j, interval 1) and
        # m5 ~> m4 (at P_j, interval 2).
        assert (names["m3"], names["m2"]) in junctions
        assert (names["m5"], names["m4"]) in junctions
        # Causal pairs are not junctions.
        assert (names["m2"], names["m5"]) not in junctions

    def test_checkpoint_breaks_junction(self):
        b = PatternBuilder(2)
        m1 = b.send(1, 0)
        b.deliver(m1)
        m2 = b.send(0, 1)  # sent after deliver(m1): causal at P0
        b.checkpoint(1)  # breaks the would-be junction m2 ~> m1 at P1
        b.deliver(m2)
        h = b.build(close=True)
        assert list(noncausal_junctions(h)) == []
        assert junction_census(h)["broken"] == 1

    def test_census_counts(self):
        h = figure1_pattern()
        census = junction_census(h)
        assert census["non_causal"] >= 2
        assert census["causal"] >= 2  # e.g. m2 -> m5, m4 -> m7


class TestElementaryChecker:
    def test_figure1_fails_both_ways(self):
        h = figure1_pattern()
        assert not check_rdt(h).holds
        report = check_rdt_elementary(h)
        assert not report.holds
        endpoints = {(v.source, v.target) for v in report.violations}
        # The hidden dependency of Figure 1 shows as an undoubled
        # elementary path from C(k,1) to C(i,2).
        assert (C(K, 1), C(I, 2)) in endpoints

    def test_clean_pattern_passes(self):
        b = PatternBuilder(3)
        b.transmit(0, 1)
        b.transmit(1, 2)
        b.checkpoint_all()
        h = b.build(close=True)
        report = check_rdt_elementary(h)
        assert report.holds and report.junctions_checked == 0

    def test_doubled_junction_passes(self):
        # Non-causal junction whose elementary path has a causal sibling.
        b = PatternBuilder(3)
        m1 = b.send(0, 1)
        m2 = b.send(1, 2)  # sent before deliver(m1): junction
        b.deliver(m1)
        m3 = b.send(1, 2)  # causal sibling chain [m1, m3]
        b.deliver(m2)
        b.deliver(m3)
        h = b.build(close=True)
        assert check_rdt(h).holds
        report = check_rdt_elementary(h)
        assert report.holds and report.junctions_checked >= 1

    @pytest.mark.parametrize("seed", range(10))
    def test_equivalence_on_random_patterns(self, seed):
        h = random_pattern(n=4, steps=70, seed=seed)
        assert check_rdt(h).holds == check_rdt_elementary(h).holds

    @pytest.mark.parametrize("protocol", ["bhmr", "fdas", "cbr"])
    def test_protocol_runs_pass_elementary(self, protocol):
        sim = Simulation(
            RandomUniformWorkload(send_rate=1.5),
            SimulationConfig(n=4, duration=30.0, seed=2, basic_rate=0.3),
        )
        assert check_rdt_elementary(sim.run(protocol).history).holds

    def test_independent_run_fails_elementary(self):
        sim = Simulation(
            RandomUniformWorkload(send_rate=2.0),
            SimulationConfig(n=4, duration=30.0, seed=2, basic_rate=0.3),
        )
        history = sim.run("independent").history
        assert check_rdt(history).holds == check_rdt_elementary(history).holds


class TestEquivalenceProperty:
    """The characterization theorem, property-based."""

    @given(pattern_inputs)
    @settings(max_examples=80, deadline=None)
    def test_elementary_equals_definitional(self, inputs):
        n, ops = inputs
        history = build_pattern(n, ops)
        assert check_rdt(history).holds == check_rdt_elementary(history).holds

    @given(pattern_inputs)
    @settings(max_examples=40, deadline=None)
    def test_elementary_violations_are_real_rdt_violations(self, inputs):
        n, ops = inputs
        history = build_pattern(n, ops)
        definitional = {
            (v.source, v.target) for v in check_rdt(history).violations
        }
        for violation in check_rdt_elementary(history).violations:
            assert (violation.source, violation.target) in definitional
