"""Network-fault robustness: what reliability costs, and what survives it.

Two tables for the PR-4 subsystem:

* **Retransmission overhead vs loss rate** -- the reliable transport
  buys exactly-once delivery with retransmissions; this sweeps the loss
  rate and reports attempts/message, retransmits, drops and degraded
  links.  The overhead must grow with the loss rate and stay zero on a
  faultless network.

* **R under reordering** -- the forced-checkpoint ratio of
  bhmr/fdas/independent over traffic that crossed a heavily reordering
  (non-FIFO amplified) network.  Because faults resolve at generation
  time and the transport restores the reliable-channel model, the
  paper's ordering ``forced(bhmr) <= forced(fdas)`` must be untouched.
"""

import statistics

import pytest

from benchmarks._emit import write_bench
from repro.core import protocol_factory
from repro.harness import render_table
from repro.sim import NetFaultModel, Simulation, SimulationConfig, replay
from repro.workloads import RandomUniformWorkload

N = 4
DURATION = 60.0
SEEDS = (0, 1)
LOSS_RATES = [0.0, 0.1, 0.2, 0.4]
PROTOCOLS = ["bhmr", "fdas", "independent"]
BASELINE = "fdas"


def faulty_sim(seed, loss=0.0, duplicate=0.0, reorder=0.0, net_seed=1):
    return Simulation(
        RandomUniformWorkload(send_rate=1.5),
        SimulationConfig(
            n=N,
            duration=DURATION,
            seed=seed,
            basic_rate=0.2,
            net_faults=NetFaultModel.uniform(
                loss=loss, duplicate=duplicate, reorder=reorder, seed=net_seed
            ),
        ),
    )


@pytest.fixture(scope="module")
def loss_sweep():
    points = []
    for loss in LOSS_RATES:
        reports = []
        for seed in SEEDS:
            sim = faulty_sim(seed, loss=loss)
            sim.trace
            reports.append(sim.net_report)
        points.append(
            {
                "loss": loss,
                "attempts/msg": statistics.mean(
                    r.attempts / r.sent for r in reports
                ),
                "retransmits": sum(r.retransmits for r in reports),
                "dropped": sum(r.dropped for r in reports),
                "degraded": sum(len(r.degraded) for r in reports),
                "undelivered": sum(len(r.undelivered) for r in reports),
            }
        )
    return points


def test_retransmission_overhead_vs_loss(benchmark, emit, loss_sweep):
    emit(
        render_table(
            [
                {**p, "attempts/msg": round(p["attempts/msg"], 3)}
                for p in loss_sweep
            ],
            title=f"Reliability cost vs loss rate (random, n={N})",
        )
    )
    by_loss = {p["loss"]: p for p in loss_sweep}
    # A faultless network drops nothing; only spurious retransmits (ack
    # round-trips outliving the RTO) pad the attempt count, and barely.
    assert by_loss[0.0]["dropped"] == 0
    assert by_loss[0.0]["attempts/msg"] < 1.15
    # The overhead is monotone in the loss rate...
    attempts = [p["attempts/msg"] for p in loss_sweep]
    assert attempts == sorted(attempts)
    retrans = [p["retransmits"] for p in loss_sweep]
    assert retrans == sorted(retrans)
    # ...and retransmission outlasts uniform loss: every message lands
    # (high loss may starve some *acks*, flagging delivered messages as
    # degraded, but nothing goes undelivered).
    assert all(p["undelivered"] == 0 for p in loss_sweep)
    result = benchmark(lambda: faulty_sim(0, loss=0.2).trace)
    write_bench(
        "net_faults",
        {
            "loss_sweep": [
                {**p, "attempts/msg": round(p["attempts/msg"], 4)}
                for p in loss_sweep
            ],
            "generate_latency": {
                "p50_s": round(benchmark.stats.stats.median, 6),
                "mean_s": round(benchmark.stats.stats.mean, 6),
                "max_s": round(benchmark.stats.stats.max, 6),
                "ops": len(result.ops),
            },
        },
    )


@pytest.fixture(scope="module")
def reorder_comparison():
    """Per-protocol forced totals over heavily reordered traffic."""
    forced = {p: 0 for p in PROTOCOLS}
    messages = 0
    for seed in SEEDS:
        sim = faulty_sim(seed, duplicate=0.2, reorder=0.6, net_seed=3)
        trace = sim.trace
        messages += trace.num_messages()
        for protocol in PROTOCOLS:
            result = replay(trace, protocol_factory(protocol))
            forced[protocol] += result.metrics.forced_checkpoints
    return forced, messages


def test_r_under_reordering(benchmark, emit, reorder_comparison):
    forced, messages = reorder_comparison
    rows = [
        {
            "protocol": protocol,
            "forced": forced[protocol],
            "R": round(forced[protocol] / forced[BASELINE], 3),
        }
        for protocol in PROTOCOLS
    ]
    emit(
        render_table(
            rows,
            title=(
                f"R under a reordering network (random, n={N}, "
                f"{messages} delivered msgs)"
            ),
        )
    )
    # The transport re-established the reliable-channel model, so the
    # paper's ordering survives the chaos below it.
    assert forced["independent"] == 0
    assert 0 < forced["bhmr"] <= forced[BASELINE]
    benchmark(
        lambda: replay(
            faulty_sim(0, reorder=0.6, net_seed=3).trace,
            protocol_factory("bhmr"),
        )
    )
    write_bench(
        "net_faults",
        {
            "reordering": {
                "messages": messages,
                "forced": forced,
                "R": {
                    p: round(forced[p] / forced[BASELINE], 4) for p in PROTOCOLS
                },
                "replay_p50_s": round(benchmark.stats.stats.median, 6),
            }
        },
    )
