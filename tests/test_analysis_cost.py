"""Checkpoint-frequency trade-off tests."""

import math

import pytest

from repro.analysis import (
    checkpoint_rate_study,
    crash_loss,
    daly_interval,
    young_interval,
)
from repro.sim import Simulation, SimulationConfig
from repro.types import AnalysisError
from repro.workloads import RandomUniformWorkload


class TestFormulas:
    def test_young_known_value(self):
        # sqrt(2 * 8 * 100) = 40
        assert young_interval(8.0, 100.0) == pytest.approx(40.0)

    def test_daly_close_to_young_for_small_cost(self):
        y = young_interval(0.1, 1000.0)
        d = daly_interval(0.1, 1000.0)
        assert abs(d - y) / y < 0.01

    def test_daly_caps_at_mtbf(self):
        assert daly_interval(500.0, 100.0) == 100.0

    def test_daly_formula_value(self):
        c, m = 8.0, 100.0
        ratio = c / (2 * m)
        expect = (
            math.sqrt(2 * c * m) * (1 + math.sqrt(ratio) / 3 + ratio / 9) - c
        )
        assert daly_interval(c, m) == pytest.approx(expect)

    def test_invalid_arguments(self):
        with pytest.raises(AnalysisError):
            young_interval(0, 1)
        with pytest.raises(AnalysisError):
            daly_interval(1, 0)


def run_at_rate_factory(protocol):
    def run_at_rate(rate, seed):
        sim = Simulation(
            RandomUniformWorkload(send_rate=2.0),
            SimulationConfig(n=3, duration=60.0, seed=seed, basic_rate=rate),
        )
        return sim.run(protocol).history

    return run_at_rate


class TestCrashLoss:
    def test_no_loss_right_after_checkpoint_everywhere(self):
        from repro.events import PatternBuilder

        b = PatternBuilder(2)
        b.transmit(0, 1)
        b.checkpoint_all()
        h = b.build(close=True)
        last_time = h.checkpoints(1)[-1].time
        assert crash_loss(h, 0, at_time=last_time + 1) == 0

    def test_loss_counts_pre_crash_events_only(self):
        from repro.events import PatternBuilder

        b = PatternBuilder(2)
        b.checkpoint_all()
        m = b.send(0, 1)  # after P0's checkpoint: volatile
        b.deliver(m)
        h = b.build(close=True)
        send_time = h.send_event(h.message(m)).time
        # Crash P0 just after the send: the send (and the delivery, if
        # already happened) are lost; nothing after the crash counts.
        loss = crash_loss(h, 0, at_time=send_time + 0.5)
        assert loss >= 1


class TestRateStudy:
    @pytest.fixture(scope="class")
    def independent_points(self):
        return checkpoint_rate_study(
            run_at_rate_factory("independent"),
            rates=[0.05, 0.2, 0.8],
            seeds=(0, 1),
            crash_times=(15.0, 30.0, 45.0),
        )

    def test_overhead_increases_with_rate(self, independent_points):
        overheads = [p.overhead_events for p in independent_points]
        assert overheads == sorted(overheads)

    def test_lost_work_decreases_with_rate(self, independent_points):
        losses = [p.mean_lost_events for p in independent_points]
        assert losses == sorted(losses, reverse=True)

    def test_rows_render(self, independent_points):
        row = independent_points[0].as_row()
        assert set(row) == {"basic_rate", "checkpoints", "overhead",
                            "mean lost", "total"}

    def test_cic_flattens_the_lost_work_curve(self):
        """Under BHMR, lost work stays small at every basic rate: the
        forced checkpoints do the protecting."""
        points = checkpoint_rate_study(
            run_at_rate_factory("bhmr"),
            rates=[0.05, 0.8],
            seeds=(0,),
            crash_times=(15.0, 30.0, 45.0),
        )
        for p in points:
            assert p.mean_lost_events < 30, p
        indep = checkpoint_rate_study(
            run_at_rate_factory("independent"),
            rates=[0.05],
            seeds=(0,),
            crash_times=(15.0, 30.0, 45.0),
        )
        assert indep[0].mean_lost_events > 2 * max(
            p.mean_lost_events for p in points
        )
