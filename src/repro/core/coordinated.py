"""Coordinated snapshots: Chandy-Lamport (1985), as a baseline.

The paper contrasts communication-induced checkpointing with coordinated
approaches ("the coordination is achieved at the price of
synchronization by means of additional control messages", citing
Chandy-Lamport [3]).  To quantify that price, this module implements the
classic marker algorithm end to end:

* a single initiator (P0) starts a snapshot periodically;
* on its first marker (or on initiation) a process records its state --
  i.e. takes a checkpoint -- and sends a marker on every outgoing
  channel;
* between its own recording and the marker's arrival on an incoming
  channel, messages received on that channel are recorded as the
  channel's state.

Channels must be FIFO for markers to delimit channel states correctly;
the runner enforces that.  Each completed snapshot yields a global
checkpoint (one local checkpoint per process) plus the in-transit
messages per channel -- and the test suite verifies the cut is always a
consistent global checkpoint capturing exactly the crossing messages.

Unlike the CIC protocols, this runs *live* (control messages interleave
with application traffic), so it has its own driver built directly on
the kernel instead of the trace replayer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

from repro.analysis.metrics import RunMetrics, metrics_from_history
from repro.events.event import CheckpointKind, Event, EventKind, Message
from repro.events.history import History
from repro.events.validate import validate_history
from repro.sim.channel import ChannelMap
from repro.sim.delays import DelayModel
from repro.sim.kernel import Scheduler
from repro.types import MessageId, ProcessId, SimulationError
from repro.workloads.base import Workload, WorkloadContext


@dataclass
class SnapshotRecord:
    """One completed Chandy-Lamport snapshot."""

    snapshot_id: int
    cut: Dict[ProcessId, int]
    channel_states: Dict[Tuple[ProcessId, ProcessId], List[MessageId]]
    markers_sent: int

    def in_transit_ids(self) -> Set[MessageId]:
        out: Set[MessageId] = set()
        for msgs in self.channel_states.values():
            out.update(msgs)
        return out


@dataclass
class CoordinatedResult:
    """Outcome of a live Chandy-Lamport run."""

    history: History
    snapshots: List[SnapshotRecord]
    control_messages: int
    metrics: RunMetrics


class _ProcessState:
    """Chandy-Lamport per-process, per-snapshot bookkeeping."""

    def __init__(self, pid: ProcessId, n: int) -> None:
        self.pid = pid
        self.n = n
        self.recorded: Set[int] = set()
        # (snapshot_id, src) -> list of recorded message ids, while open.
        self.recording: Dict[Tuple[int, ProcessId], List[MessageId]] = {}
        self.closed: Dict[Tuple[int, ProcessId], List[MessageId]] = {}

    def start_recording(self, snapshot_id: int, except_src: Optional[ProcessId]):
        for src in range(self.n):
            if src == self.pid or src == except_src:
                continue
            self.recording[(snapshot_id, src)] = []

    def note_app_message(self, src: ProcessId, msg_id: MessageId) -> None:
        for (sid, rsrc), log in self.recording.items():
            if rsrc == src:
                log.append(msg_id)

    def close_channel(self, snapshot_id: int, src: ProcessId) -> List[MessageId]:
        return self.recording.pop((snapshot_id, src), [])


class ChandyLamportRunner(WorkloadContext):
    """Runs a workload live, taking periodic coordinated snapshots.

    Also acts as the workload's context (sends go through the same FIFO
    channels as markers).
    """

    def __init__(
        self,
        workload: Workload,
        n: int,
        duration: float = 100.0,
        seed: int = 0,
        snapshot_period: float = 20.0,
        delay: Optional[DelayModel] = None,
        max_events: int = 1_000_000,
    ) -> None:
        import random

        if n <= 1:
            raise SimulationError("Chandy-Lamport needs at least two processes")
        self.workload = workload
        self.n = n
        self.duration = duration
        self.rng = random.Random(seed)
        self.snapshot_period = snapshot_period
        self.scheduler = Scheduler()
        self.channels = ChannelMap(n, delay=delay, fifo=True)
        self.max_events = max_events
        # Event recording.
        self._events: List[List[Event]] = [[] for _ in range(n)]
        self._messages: Dict[MessageId, Message] = {}
        self._ckpt_index = [0] * n
        self._last_time = [-1.0] * n
        self._next_msg = 0
        self._payloads: Dict[MessageId, Any] = {}
        self._stopped = False
        # Chandy-Lamport state.
        self._proc = [_ProcessState(pid, n) for pid in range(n)]
        self._snapshot_seq = 0
        self._snapshots: Dict[int, SnapshotRecord] = {}
        self._pending_channels: Dict[int, int] = {}
        self.control_messages = 0
        for pid in range(n):
            self._record_checkpoint(pid, 0.0, CheckpointKind.INITIAL)

    # ------------------------------------------------------------------
    # event recording helpers
    # ------------------------------------------------------------------
    def _time_for(self, pid: ProcessId, requested: float) -> float:
        time = max(requested, self._last_time[pid] + 1e-9)
        self._last_time[pid] = time
        return time

    def _append(self, pid: ProcessId, kind: EventKind, **fields) -> Event:
        ev = Event(
            pid=pid,
            seq=len(self._events[pid]),
            kind=kind,
            time=self._time_for(pid, self.scheduler.now),
            **fields,
        )
        self._events[pid].append(ev)
        return ev

    def _record_checkpoint(
        self, pid: ProcessId, time: float, kind: CheckpointKind
    ) -> int:
        if kind is CheckpointKind.INITIAL:
            index = 0
        else:
            self._ckpt_index[pid] += 1
            index = self._ckpt_index[pid]
        ev = Event(
            pid=pid,
            seq=len(self._events[pid]),
            kind=EventKind.CHECKPOINT,
            time=self._time_for(pid, time),
            checkpoint_index=index,
            checkpoint_kind=kind,
        )
        self._events[pid].append(ev)
        return index

    # ------------------------------------------------------------------
    # WorkloadContext API
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.scheduler.now

    def send(
        self, src: ProcessId, dst: ProcessId, size: int = 1, payload: Any = None
    ) -> MessageId:
        if src == dst or not (0 <= src < self.n and 0 <= dst < self.n):
            raise SimulationError(f"bad send {src}->{dst}")
        if self._stopped or self.now > self.duration:
            return -1
        msg_id = self._next_msg
        self._next_msg += 1
        ev = self._append(src, EventKind.SEND, msg_id=msg_id)
        self._messages[msg_id] = Message(
            msg_id=msg_id, src=src, dst=dst, send_seq=ev.seq, size=size
        )
        self._payloads[msg_id] = payload
        arrival = self.channels.arrival_time(src, dst, self.now, self.rng)
        self.scheduler.schedule_at(
            arrival, lambda: self._deliver_app(msg_id, src, dst)
        )
        return msg_id

    def set_timer(self, pid: ProcessId, delay: float, tag: Hashable = None) -> None:
        self.scheduler.schedule(delay, lambda: self._fire_timer(pid, tag))

    def payload_of(self, msg_id: MessageId) -> Any:
        return self._payloads.get(msg_id)

    def stop(self) -> None:
        self._stopped = True

    # ------------------------------------------------------------------
    # delivery paths
    # ------------------------------------------------------------------
    def _fire_timer(self, pid: ProcessId, tag: Hashable) -> None:
        if self._stopped or self.now > self.duration:
            return
        self.workload.on_timer(self, pid, tag)

    def _deliver_app(self, msg_id: MessageId, src: ProcessId, dst: ProcessId):
        m = self._messages[msg_id]
        ev = self._append(dst, EventKind.DELIVER, msg_id=msg_id)
        self._messages[msg_id] = Message(
            msg_id=m.msg_id,
            src=m.src,
            dst=m.dst,
            send_seq=m.send_seq,
            deliver_seq=ev.seq,
            size=m.size,
        )
        self._proc[dst].note_app_message(src, msg_id)
        if not self._stopped:
            self.workload.on_deliver(self, dst, src, msg_id)

    # ------------------------------------------------------------------
    # Chandy-Lamport proper
    # ------------------------------------------------------------------
    def _send_marker(self, src: ProcessId, dst: ProcessId, snapshot_id: int):
        self.control_messages += 1
        arrival = self.channels.arrival_time(src, dst, self.now, self.rng)
        self.scheduler.schedule_at(
            arrival, lambda: self._on_marker(dst, src, snapshot_id)
        )

    def _record_and_flood(
        self, pid: ProcessId, snapshot_id: int, first_marker_src: Optional[ProcessId]
    ) -> None:
        state = self._proc[pid]
        state.recorded.add(snapshot_id)
        index = self._record_checkpoint(pid, self.now, CheckpointKind.FORCED)
        self._snapshots[snapshot_id].cut[pid] = index
        state.start_recording(snapshot_id, except_src=first_marker_src)
        for dst in range(self.n):
            if dst != pid:
                self._send_marker(pid, dst, snapshot_id)

    def _initiate_snapshot(self) -> None:
        if self._stopped or self.now > self.duration:
            return
        snapshot_id = self._snapshot_seq
        self._snapshot_seq += 1
        self._snapshots[snapshot_id] = SnapshotRecord(
            snapshot_id=snapshot_id, cut={}, channel_states={}, markers_sent=0
        )
        # Each non-initiator closes (n-1) incoming channels; the
        # initiator closes all its (n-1) incoming channels too.
        self._pending_channels[snapshot_id] = self.n * (self.n - 1)
        self._record_and_flood(0, snapshot_id, first_marker_src=None)
        self.scheduler.schedule(self.snapshot_period, self._initiate_snapshot)

    def _on_marker(self, pid: ProcessId, src: ProcessId, snapshot_id: int):
        state = self._proc[pid]
        snap = self._snapshots[snapshot_id]
        if snapshot_id not in state.recorded:
            # First marker: record now; channel src -> pid is empty.
            self._record_and_flood(pid, snapshot_id, first_marker_src=src)
            snap.channel_states[(src, pid)] = []
        else:
            snap.channel_states[(src, pid)] = state.close_channel(snapshot_id, src)
        self._pending_channels[snapshot_id] -= 1

    # ------------------------------------------------------------------
    def run(self) -> CoordinatedResult:
        if self.snapshot_period > 0:
            self.scheduler.schedule(self.snapshot_period, self._initiate_snapshot)
        self.workload.on_start(self)
        self.scheduler.run(max_events=self.max_events)
        history = History(self._events, self._messages).closed()
        validate_history(history)
        complete = [
            snap
            for sid, snap in sorted(self._snapshots.items())
            if self._pending_channels[sid] == 0
        ]
        for snap in complete:
            snap.markers_sent = self.n * (self.n - 1)
        metrics = metrics_from_history(
            history, protocol="chandy-lamport", control_messages=self.control_messages
        )
        return CoordinatedResult(
            history=history,
            snapshots=complete,
            control_messages=self.control_messages,
            metrics=metrics,
        )


def run_chandy_lamport(
    workload: Workload,
    n: int,
    duration: float = 100.0,
    seed: int = 0,
    snapshot_period: float = 20.0,
    delay: Optional[DelayModel] = None,
) -> CoordinatedResult:
    """Convenience wrapper: build the runner and run it."""
    return ChandyLamportRunner(
        workload,
        n,
        duration=duration,
        seed=seed,
        snapshot_period=snapshot_period,
        delay=delay,
    ).run()
