"""Performance benchmarks of the analysis substrate itself.

Not a paper artifact, but the practical cost profile a downstream user
cares about: R-graph closure, RDT verification (both characterizations),
zigzag reachability and recovery-line computation on a mid-size run.
"""

import pytest

from repro.analysis import check_rdt, useless_checkpoints
from repro.graph import RGraph, ZPathAnalyzer
from repro.recovery import recovery_line
from repro.sim import Simulation, SimulationConfig
from repro.workloads import RandomUniformWorkload


@pytest.fixture(scope="module")
def history():
    sim = Simulation(
        RandomUniformWorkload(send_rate=2.0),
        SimulationConfig(n=8, duration=80.0, basic_rate=0.3, seed=2),
    )
    return sim.run("bhmr").history


def test_rgraph_closure(benchmark, history):
    def build():
        rg = RGraph(history)
        first = next(iter(history.checkpoint_ids()))
        rg.reachable_set(first)
        return rg

    rg = benchmark(build)
    assert rg.num_nodes() > 50


def test_check_rdt_tdv(benchmark, history):
    report = benchmark(lambda: check_rdt(history, method="tdv"))
    assert report.holds


def test_check_rdt_chains(benchmark, history):
    report = benchmark(lambda: check_rdt(history, method="chains"))
    assert report.holds


def test_zigzag_single_source(benchmark, history):
    analyzer = ZPathAnalyzer(history)
    source = next(iter(history.checkpoint_ids()))
    benchmark(lambda: analyzer.reach(source, causal=False))


def test_useless_checkpoint_scan(benchmark, history):
    result = benchmark(lambda: useless_checkpoints(history))
    assert result == []


def test_recovery_line(benchmark, history):
    line = benchmark(lambda: recovery_line(history, [0]))
    assert set(line.cut) == set(range(history.num_processes))


def test_check_rdt_vectorized(benchmark, history):
    report = benchmark(lambda: check_rdt(history, method="vectorized"))
    assert report.holds
    # Must agree with the scalar method bit for bit.
    scalar = check_rdt(history, method="tdv")
    assert report.checked_pairs == scalar.checked_pairs
