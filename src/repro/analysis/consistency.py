"""Consistency of checkpoint pairs and global checkpoints.

Implements section 2.2 of the paper: a message ``m`` (from ``P_i`` to
``P_j``) is *orphan* with respect to the ordered pair
``(C(i,x), C(j,y))`` iff its delivery belongs to ``C(j,y)`` (delivery
interval <= y) while its send does not belong to ``C(i,x)`` (send
interval > x).  A pair is consistent iff it has no orphan; a global
checkpoint (one local checkpoint per process) is consistent iff all its
ordered pairs are.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.events.event import Message
from repro.events.history import History
from repro.types import CheckpointId, PatternError, ProcessId


def is_orphan(
    history: History, m: Message, sender_cut: int, receiver_cut: int
) -> bool:
    """Is ``m`` orphan w.r.t. sender checkpoint index / receiver index?

    ``sender_cut``/``receiver_cut`` are the checkpoint indices of the
    ordered pair ``(C(m.src, sender_cut), C(m.dst, receiver_cut))``.
    Undelivered messages are never orphan.
    """
    if not m.delivered:
        return False
    deliver_interval = history.deliver_interval(m)
    assert deliver_interval is not None
    return deliver_interval <= receiver_cut and history.send_interval(m) > sender_cut


def orphan_messages(
    history: History, a: CheckpointId, b: CheckpointId
) -> List[Message]:
    """All messages orphan w.r.t. the ordered pair ``(a, b)``."""
    return [
        m
        for m in history.messages_between(a.pid, b.pid)
        if is_orphan(history, m, a.index, b.index)
    ]


def is_consistent_pair(history: History, a: CheckpointId, b: CheckpointId) -> bool:
    """Consistency of the *unordered* pair: no orphan in either direction."""
    if a.pid == b.pid:
        return a.index == b.index
    return not orphan_messages(history, a, b) and not orphan_messages(history, b, a)


def _as_cut(history: History, gcp) -> Dict[ProcessId, int]:
    """Normalise a global checkpoint given as mapping, sequence or set."""
    n = history.num_processes
    if isinstance(gcp, Mapping):
        cut = dict(gcp)
    elif isinstance(gcp, Sequence) and gcp and isinstance(gcp[0], int):
        cut = {pid: index for pid, index in enumerate(gcp)}
    else:
        cut = {}
        for cid in gcp:
            if cid.pid in cut:
                raise PatternError(f"two checkpoints of process {cid.pid} in gcp")
            cut[cid.pid] = cid.index
    if sorted(cut) != list(range(n)):
        raise PatternError("a global checkpoint needs exactly one entry per process")
    for pid, index in cut.items():
        if not history.has_checkpoint(CheckpointId(pid, index)):
            raise PatternError(f"C({pid},{index}) does not exist")
    return cut


def orphans_of_cut(history: History, gcp) -> List[Message]:
    """All orphan messages of a global checkpoint (any pair)."""
    cut = _as_cut(history, gcp)
    return [
        m
        for m in history.delivered_messages()
        if is_orphan(history, m, cut[m.src], cut[m.dst])
    ]


def is_consistent_gcp(history: History, gcp) -> bool:
    """Definition 2.2: every pair of the global checkpoint is consistent.

    Accepts a ``{pid: index}`` mapping, a dense index sequence, or an
    iterable of :class:`CheckpointId`.
    """
    return not orphans_of_cut(history, gcp)


def in_transit_of_cut(history: History, gcp) -> List[Message]:
    """Messages sent before the cut but delivered after it (or never).

    These are the messages a recovery would have to replay from logs;
    they do not affect consistency (the model has no lost-message
    constraint) but recovery cares (see :mod:`repro.recovery.logging`).
    """
    cut = _as_cut(history, gcp)
    out = []
    for m in history.messages.values():
        if history.send_interval(m) > cut[m.src]:
            continue  # not sent before the cut
        deliver_interval = (
            history.deliver_interval(m) if m.delivered else None
        )
        if deliver_interval is None or deliver_interval > cut[m.dst]:
            out.append(m)
    return out
