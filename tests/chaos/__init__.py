"""Chaos tests: a real server process, real ``kill -9``, real recovery.

Gated behind ``REPRO_CHAOS=1`` (see ``tests/chaos/test_serve_kill9.py``)
and marked ``tier2``; ``REPRO_CHAOS_CELLS`` bounds how many randomized
cells run (default keeps CI wall time small, 54 is the full grid).
"""
