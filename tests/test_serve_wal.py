"""The ingest WAL: chain integrity, torn-tail repair, hostile disks.

Two layers:

* unit tests for the writer (append/sync/durable_seq, rotation, reopen,
  snapshot-driven truncation) and for :func:`recover_sessions`;
* hypothesis property tests that damage a real on-disk WAL -- truncate
  at an arbitrary byte, flip an arbitrary bit, delete or swap whole
  segments -- and assert the *detection contract*: :func:`read_wal`
  either returns an exact prefix of the original records or raises
  :class:`WalCorruption`.  It never returns fabricated or reordered
  state, no matter where the damage lands.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.wal import (
    GENESIS,
    IngestWal,
    WalCommitter,
    WalCorruption,
    WalError,
    make_record,
    read_wal,
    recover_sessions,
)


def fill(directory, count, *, segment_records=8, session="s", fsync=False):
    """A WAL with ``count`` checkpoint records, synced and closed."""
    wal = IngestWal(directory, segment_records=segment_records, fsync=fsync)
    for i in range(count):
        wal.append(session, i, {"kind": "checkpoint", "pid": i % 3})
    wal.sync()
    wal.close()
    return wal


# ----------------------------------------------------------------------
# writer basics
# ----------------------------------------------------------------------
class TestIngestWal:
    def test_append_is_not_durable_until_sync(self, tmp_path):
        wal = IngestWal(tmp_path, fsync=False)
        wal.append("s", 0, {"kind": "checkpoint", "pid": 0})
        assert wal.last_seq == 0 and wal.durable_seq == -1
        assert read_wal(tmp_path) == []  # nothing on disk yet
        assert wal.sync() == 0
        assert wal.durable_seq == 0
        assert [r.seq for r in read_wal(tmp_path)] == [0]

    def test_sync_batches_and_partial_drain(self, tmp_path):
        wal = IngestWal(tmp_path, fsync=False)
        for i in range(5):
            wal.append("s", i, {"kind": "checkpoint", "pid": 0})
        assert wal.sync(max_records=2) == 1
        assert wal.pending() == 3
        assert wal.sync() == 4
        assert wal.pending() == 0

    def test_chain_links_records(self, tmp_path):
        fill(tmp_path, 4)
        records = read_wal(tmp_path)
        assert records[0].prev == GENESIS
        for before, after in zip(records, records[1:]):
            assert after.prev == before.digest
            assert after.seq == before.seq + 1

    def test_rotation_by_segment_records(self, tmp_path):
        wal = fill(tmp_path, 10, segment_records=4)
        assert wal.segment_names() == [
            "wal-00000000000000000000.log",
            "wal-00000000000000000004.log",
            "wal-00000000000000000008.log",
        ]
        assert len(read_wal(tmp_path)) == 10

    def test_reopen_resumes_the_chain(self, tmp_path):
        fill(tmp_path, 5, segment_records=4)
        wal = IngestWal(tmp_path, segment_records=4, fsync=False)
        assert len(wal.recovered) == 5
        assert wal.repaired_tail == 0
        wal.append("s", 5, {"kind": "checkpoint", "pid": 1})
        wal.sync()
        wal.close()
        records = read_wal(tmp_path)
        assert [r.seq for r in records] == list(range(6))
        assert records[5].prev == records[4].digest

    def test_closed_wal_rejects_writes(self, tmp_path):
        wal = fill(tmp_path, 1)
        with pytest.raises(WalError, match="closed"):
            wal.append("s", 1, {"kind": "checkpoint", "pid": 0})
        with pytest.raises(WalError, match="closed"):
            wal.sync()

    def test_torn_tail_is_repaired_on_open(self, tmp_path):
        fill(tmp_path, 3, segment_records=100)
        path = next(tmp_path.glob("wal-*.log"))
        with open(path, "ab") as f:
            f.write(b'{"seq": 3, "ses')  # the crash mid-write
        wal = IngestWal(tmp_path, fsync=False)
        assert wal.repaired_tail == 1
        assert len(wal.recovered) == 3
        wal.close()
        # The repair truncated the junk: a fresh open is clean.
        assert IngestWal(tmp_path, fsync=False).repaired_tail == 0

    def test_mid_file_damage_halts(self, tmp_path):
        fill(tmp_path, 6, segment_records=100)
        path = next(tmp_path.glob("wal-*.log"))
        lines = path.read_bytes().split(b"\n")
        lines[2] = b"garbage"  # record 1 of 6: records follow it
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(WalCorruption, match="not a torn tail"):
            read_wal(tmp_path)

    def test_truncate_covered_respects_watermarks(self, tmp_path):
        wal = IngestWal(tmp_path, segment_records=3, fsync=False)
        for i in range(9):
            wal.append("s", i, {"kind": "checkpoint", "pid": 0})
        wal.sync()
        # Watermark 5 covers segments [0..2] and [3..5] but not [6..8],
        # which is also the active segment and must survive regardless.
        removed = wal.truncate_covered({"s": 5})
        assert removed == [
            "wal-00000000000000000000.log",
            "wal-00000000000000000003.log",
        ]
        assert wal.segment_names() == ["wal-00000000000000000006.log"]
        wal.close()
        # The survivors no longer start the chain at GENESIS; the
        # reclamation anchor written before the unlinks vouches for the
        # new starting point, so a reopen recovers exactly them (the
        # reclaimed prefix lives on in the snapshots whose watermarks
        # justified the truncation).
        assert [r.seq for r in read_wal(tmp_path)] == [6, 7, 8]
        wal = IngestWal(tmp_path, segment_records=3, fsync=False)
        assert [r.seq for r in wal.recovered] == [6, 7, 8]
        assert wal.repaired_tail == 0
        wal.append("s", 9, {"kind": "checkpoint", "pid": 0})
        wal.sync()
        wal.close()
        records = read_wal(tmp_path)
        assert [r.seq for r in records] == [6, 7, 8, 9]
        assert records[-1].prev == records[-2].digest

    def test_truncate_stops_at_first_uncovered_segment(self, tmp_path):
        wal = IngestWal(tmp_path, segment_records=2, fsync=False)
        for i in range(4):
            wal.append("a" if i < 2 else "b", i % 2, {"kind": "checkpoint", "pid": 0})
        # Force the writer past both segments so neither is active.
        for i in range(2):
            wal.append("c", i, {"kind": "checkpoint", "pid": 0})
        wal.sync()
        # 'a' is covered, 'b' is not: only the first segment may go.
        assert wal.truncate_covered({"a": 10}) == [
            "wal-00000000000000000000.log"
        ]
        wal.close()

    def test_read_missing_directory_is_empty(self, tmp_path):
        assert read_wal(tmp_path / "never-created") == []

    def test_header_only_tail_resumes_without_double_header(self, tmp_path):
        # A crash can tear away every record of the final segment,
        # leaving only its header (which torn-tail handling rightly
        # keeps).  The reopened writer must *resume* that file -- the
        # regression was recreating it with open(..., "ab"), burying a
        # second header mid-file and corrupting every later record.
        fill(tmp_path, 6, segment_records=3)
        tail = sorted(tmp_path.glob("wal-*.log"))[-1]
        blob = tail.read_bytes()
        with open(tail, "r+b") as f:
            f.truncate(blob.index(b"\n") + 1)  # keep exactly the header
        wal = IngestWal(tmp_path, segment_records=3, fsync=False)
        assert [r.seq for r in wal.recovered] == [0, 1, 2]
        for i in range(3, 6):
            wal.append("s", i, {"kind": "checkpoint", "pid": 0})
        wal.sync()
        wal.close()
        assert [r.seq for r in read_wal(tmp_path)] == list(range(6))
        # Still exactly one header in the resumed segment.
        assert tail.read_bytes().count(b'"wal":1') == 1
        assert IngestWal(tmp_path, segment_records=3, fsync=False).repaired_tail == 0

    def test_repaired_tail_resumes_appends(self, tmp_path):
        fill(tmp_path, 3, segment_records=100)
        path = next(tmp_path.glob("wal-*.log"))
        with open(path, "ab") as f:
            f.write(b'{"seq": 3, "ses')  # the crash mid-write
        wal = IngestWal(tmp_path, segment_records=100, fsync=False)
        assert wal.repaired_tail == 1
        wal.append("s", 3, {"kind": "checkpoint", "pid": 0})
        wal.sync()
        wal.close()
        records = read_wal(tmp_path)
        assert [r.seq for r in records] == [0, 1, 2, 3]
        assert records[3].prev == records[2].digest


# ----------------------------------------------------------------------
# snapshot-driven reclamation: the anchor survives crashes and reopens
# ----------------------------------------------------------------------
class TestReclamationAnchor:
    def _filled(self, tmp_path, count=12):
        wal = IngestWal(tmp_path, segment_records=3, fsync=False)
        for i in range(count):
            wal.append("s", i, {"kind": "checkpoint", "pid": 0})
        wal.sync()
        return wal

    def test_crash_between_anchor_and_unlinks_recovers(self, tmp_path):
        wal = self._filled(tmp_path)  # segments at 0, 3, 6, 9
        saved = {
            p.name: p.read_bytes() for p in sorted(tmp_path.glob("wal-*.log"))
        }
        assert wal.truncate_covered({"s": 5}) == [
            "wal-00000000000000000000.log",
            "wal-00000000000000000003.log",
        ]
        wal.close()
        # Simulate a kill -9 after unlink(segment 0) but before
        # unlink(segment 3): put segment 3 back.  Its own header seeds
        # the chain (seq 3 < the anchor's 6) and everything verifies
        # forward through the anchored segment.
        name = "wal-00000000000000000003.log"
        (tmp_path / name).write_bytes(saved[name])
        assert [r.seq for r in read_wal(tmp_path)] == list(range(3, 12))
        wal = IngestWal(tmp_path, segment_records=3, fsync=False)
        assert [r.seq for r in wal.recovered] == list(range(3, 12))
        wal.close()

    def test_deleting_the_anchored_segment_halts(self, tmp_path):
        wal = self._filled(tmp_path)
        wal.truncate_covered({"s": 5})  # anchor now vouches for seq 6
        wal.close()
        (tmp_path / "wal-00000000000000000006.log").unlink()
        with pytest.raises(WalCorruption, match="anchor"):
            read_wal(tmp_path)

    def test_anchor_without_segments_halts(self, tmp_path):
        wal = self._filled(tmp_path)
        wal.truncate_covered({"s": 5})
        wal.close()
        for path in tmp_path.glob("wal-*.log"):
            path.unlink()
        with pytest.raises(WalCorruption, match="anchor"):
            read_wal(tmp_path)

    def test_leading_deletion_without_anchor_still_halts(self, tmp_path):
        self._filled(tmp_path).close()
        sorted(tmp_path.glob("wal-*.log"))[0].unlink()
        with pytest.raises(WalCorruption, match="no\\s+reclamation anchor"):
            read_wal(tmp_path)

    def test_repeated_reclamation_cycles(self, tmp_path):
        # Snapshot -> truncate -> crash -> reopen, several times over:
        # the anchor must track the frontier, not just the first cut.
        wal = IngestWal(tmp_path, segment_records=3, fsync=False)
        seq = 0
        for cycle in range(3):
            for _ in range(6):
                wal.append("s", seq, {"kind": "checkpoint", "pid": 0})
                seq += 1
            wal.sync()
            wal.truncate_covered({"s": seq - 4})
            wal.close()
            wal = IngestWal(tmp_path, segment_records=3, fsync=False)
            assert wal.last_seq == seq - 1
            recovered = [r.seq for r in wal.recovered]
            assert recovered == list(range(recovered[0], seq))
        wal.close()


# ----------------------------------------------------------------------
# group commit
# ----------------------------------------------------------------------
class TestWalCommitter:
    def test_many_waiters_share_fsyncs(self, tmp_path):
        async def scenario():
            wal = IngestWal(tmp_path, fsync=True)
            committer = WalCommitter(wal, fsync_batch=64)
            records = [
                wal.append("s", i, {"kind": "checkpoint", "pid": 0})
                for i in range(16)
            ]
            await asyncio.gather(
                *(committer.commit(r.seq) for r in records)
            )
            assert wal.durable_seq == 15
            wal.close()
            return wal.fsyncs

        fsyncs = asyncio.run(scenario())
        # 16 concurrent commits over batch=64 coalesce; the exact count
        # depends on scheduling but must be far below one-per-record.
        assert 1 <= fsyncs <= 4

    def test_small_batch_caps_records_per_fsync(self, tmp_path):
        async def scenario():
            wal = IngestWal(tmp_path, fsync=False)
            committer = WalCommitter(wal, fsync_batch=2)
            for i in range(6):
                wal.append("s", i, {"kind": "checkpoint", "pid": 0})
            await committer.commit(5)
            wal.close()
            return committer.commits

        assert asyncio.run(scenario()) == 3  # 6 records / batch of 2

    def test_bad_batch_rejected(self, tmp_path):
        with pytest.raises(WalError, match="positive"):
            WalCommitter(IngestWal(tmp_path, fsync=False), fsync_batch=0)


# ----------------------------------------------------------------------
# recovery folding
# ----------------------------------------------------------------------
def _records(ops):
    """Chain ``(session, idx, op)`` triples into verified records."""
    out, prev = [], GENESIS
    for seq, (session, idx, op) in enumerate(ops):
        record = make_record(seq, session, idx, op, prev)
        out.append(record)
        prev = record.digest
    return out


class TestRecoverSessions:
    def test_wal_only_session(self):
        records = _records(
            [
                ("s", -1, {"kind": "hello", "n": 3, "protocol": "bhmr"}),
                ("s", 0, {"kind": "checkpoint", "pid": 0}),
                ("s", 1, {"kind": "send", "src": 0, "dst": 1}),
            ]
        )
        rec = recover_sessions(records)["s"]
        assert (rec.n, rec.protocol, rec.from_snapshot) == (3, "bhmr", False)
        assert rec.log == [
            {"kind": "checkpoint", "pid": 0},
            {"kind": "send", "src": 0, "dst": 1},
        ]
        assert rec.wal_seq == 2

    def test_snapshot_plus_tail(self):
        snapshot = {
            "n": 2,
            "protocol": "bhmr",
            "log": [{"kind": "checkpoint", "pid": 0}],
            "wal_seq": 1,
        }
        records = _records(
            [
                ("s", 1, {"kind": "checkpoint", "pid": 1}),
                ("s", 2, {"kind": "checkpoint", "pid": 0}),
            ]
        )
        rec = recover_sessions(records, {"s": snapshot})["s"]
        assert rec.from_snapshot
        assert len(rec.log) == 3
        assert rec.wal_seq == records[-1].seq

    def test_covered_records_are_idempotent(self):
        snapshot = {
            "n": 2,
            "protocol": "bhmr",
            "log": [
                {"kind": "checkpoint", "pid": 0},
                {"kind": "checkpoint", "pid": 1},
            ],
            "wal_seq": 2,
        }
        records = _records(
            [
                ("s", -1, {"kind": "hello", "n": 2, "protocol": "bhmr"}),
                ("s", 0, {"kind": "checkpoint", "pid": 0}),
                ("s", 1, {"kind": "checkpoint", "pid": 1}),
            ]
        )
        rec = recover_sessions(records, {"s": snapshot})["s"]
        assert len(rec.log) == 2  # nothing double-applied

    def test_orphan_mutation_halts(self):
        records = _records([("ghost", 0, {"kind": "checkpoint", "pid": 0})])
        with pytest.raises(WalCorruption, match="no creation record"):
            recover_sessions(records)

    def test_index_gap_halts(self):
        records = _records(
            [
                ("s", -1, {"kind": "hello", "n": 2, "protocol": "bhmr"}),
                ("s", 3, {"kind": "checkpoint", "pid": 0}),  # 0..2 missing
            ]
        )
        with pytest.raises(WalCorruption, match="op index 3"):
            recover_sessions(records)


# ----------------------------------------------------------------------
# hostile disks (property tests)
# ----------------------------------------------------------------------
def _damage_outcome(directory, original):
    """read_wal's verdict on a damaged directory, checked against the
    detection contract; returns the recovered prefix length or None on
    a (legitimate) halt."""
    try:
        records = read_wal(directory)
    except WalCorruption:
        return None
    docs = [r.as_doc() for r in records]
    assert docs == [r.as_doc() for r in original[: len(docs)]], (
        "recovered records are not a prefix of what was written"
    )
    return len(docs)


@pytest.mark.tier2
class TestHostileDisk:
    @given(
        count=st.integers(min_value=1, max_value=24),
        segment_records=st.sampled_from([3, 8, 100]),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_truncation_yields_prefix_or_halt(
        self, tmp_path_factory, count, segment_records, data
    ):
        directory = tmp_path_factory.mktemp("wal")
        fill(directory, count, segment_records=segment_records)
        original = read_wal(directory)
        paths = sorted(directory.glob("wal-*.log"))
        # Bounds must not depend on on-disk sizes (the segment header
        # carries a wall-clock timestamp whose width varies run to
        # run, and hypothesis rightly rejects unstable draw bounds):
        # draw scale-free integers and reduce them modulo the layout.
        victim = data.draw(st.integers(0, 2**32), label="segment") % len(paths)
        path = paths[victim]
        size = path.stat().st_size
        offset = data.draw(st.integers(0, 2**32), label="offset") % size
        with open(path, "r+b") as f:
            f.truncate(offset)
        survived = _damage_outcome(directory, original)
        if victim == len(paths) - 1:
            # Tail truncation is exactly what a crash does: always
            # recoverable to a prefix, never a halt.
            assert survived is not None
        # A truncated *interior* segment may halt (seq gap) -- and when
        # the truncation lands on a line boundary it silently shortens
        # the chain, which the next header's prev/first_seq catches.

    @given(
        count=st.integers(min_value=1, max_value=24),
        segment_records=st.sampled_from([3, 8, 100]),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_bit_flip_never_fabricates_state(
        self, tmp_path_factory, count, segment_records, data
    ):
        directory = tmp_path_factory.mktemp("wal")
        fill(directory, count, segment_records=segment_records)
        original = read_wal(directory)
        paths = sorted(directory.glob("wal-*.log"))
        # Scale-free draws; see test_truncation_yields_prefix_or_halt.
        path = paths[data.draw(st.integers(0, 2**32), label="segment") % len(paths)]
        blob = bytearray(path.read_bytes())
        byte_i = data.draw(st.integers(0, 2**32), label="byte") % len(blob)
        bit = data.draw(st.integers(min_value=0, max_value=7), label="bit")
        blob[byte_i] ^= 1 << bit
        path.write_bytes(bytes(blob))
        # Prefix-or-halt; a flip confined to a header's operational
        # metadata (the timestamp) may legitimately recover everything.
        _damage_outcome(directory, original)

    @given(count=st.integers(min_value=7, max_value=24), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_deleted_segment_is_detected(
        self, tmp_path_factory, count, data
    ):
        directory = tmp_path_factory.mktemp("wal")
        fill(directory, count, segment_records=3)  # >= 3 segments
        original = read_wal(directory)
        paths = sorted(directory.glob("wal-*.log"))
        victim = data.draw(st.sampled_from(range(len(paths))))
        paths[victim].unlink()
        survived = _damage_outcome(directory, original)
        if victim == len(paths) - 1:
            # Deleting the tail loses only unsnapshotted suffix records:
            # the remainder -- 3 per surviving full segment -- is a
            # verifiable prefix.
            assert survived == 3 * victim
        else:
            # An interior or leading hole breaks the chain: halt.
            assert survived is None

    @given(count=st.integers(min_value=7, max_value=24), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_swapped_segments_are_detected(
        self, tmp_path_factory, count, data
    ):
        directory = tmp_path_factory.mktemp("wal")
        fill(directory, count, segment_records=3)
        paths = sorted(directory.glob("wal-*.log"))
        i = data.draw(st.sampled_from(range(len(paths) - 1)), label="i")
        j = data.draw(
            st.sampled_from(range(i + 1, len(paths))), label="j"
        )
        a, b = paths[i].read_bytes(), paths[j].read_bytes()
        paths[i].write_bytes(b)
        paths[j].write_bytes(a)
        with pytest.raises(WalCorruption):
            read_wal(directory)

    def test_mixed_damage_diagnostic_names_the_segment(self, tmp_path):
        fill(tmp_path, 9, segment_records=3)
        victim = sorted(tmp_path.glob("wal-*.log"))[1]
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0x40
        victim.write_bytes(bytes(blob))
        with pytest.raises(WalCorruption, match=victim.name):
            read_wal(tmp_path)
