"""Tier-2 differential suite: the reliable transport really does recover
the paper's channel abstraction.

Headline guarantee of the network-fault subsystem, checked over 100+
randomized seeded ``(workload x protocol x fault-config)`` cells:

(a) **Exactly-once.**  Every application message a faulty run sends is
    delivered to the protocol layer exactly once -- unless the watchdog
    abandoned it (permanently partitioned / hopeless link), in which
    case it is delivered exactly zero times and flagged degraded.

(b) **Analysis equivalence.**  The delivered pattern validates, and
    replaying it over ideal reliable channels (the plain protocol fold)
    yields a byte-identical history -- hence identical RDT, Z-cycle and
    recovery-line verdicts.  Verdict equality is additionally asserted
    directly, not only via history identity.

(c) **Crash composition.**  Injecting crashes into a run whose pattern
    crossed the faulty network still converges byte-identically to the
    crash-free history of the same pattern -- both fault axes (PR 3's
    crash engine, this PR's network) compose.

Each cell draws its whole configuration from one seed, so a failure
reproduces from the printed cell id alone.
"""

import random

import pytest

from repro.analysis import check_rdt, find_z_cycles, useless_checkpoints
from repro.core import protocol_factory
from repro.events.io import history_to_dict
from repro.events.validate import validate_history
from repro.obs.jsonio import canonical_dumps
from repro.recovery import CrashSpec, recovery_line
from repro.sim import (
    CrashSchedule,
    NetFaultModel,
    Partition,
    Simulation,
    SimulationConfig,
    TraceOpKind,
    replay,
)
from repro.workloads import WORKLOADS

CELLS = 108
WORKLOAD_POOL = ("random", "ring", "client-server", "groups")
PROTOCOL_POOL = ("bhmr", "fdas", "cbr", "independent", "bhmr-nosimple", "cas")


def draw_cell(cell: int):
    """The full (workload, protocol, scenario, fault model) of one cell,
    drawn deterministically from the cell index."""
    rng = random.Random(900_000 + cell)
    workload_name = WORKLOAD_POOL[rng.randrange(len(WORKLOAD_POOL))]
    protocol = PROTOCOL_POOL[rng.randrange(len(PROTOCOL_POOL))]
    n = rng.randrange(3, 6)
    duration = rng.uniform(12.0, 20.0)
    style = rng.randrange(3)
    if style == 0:  # uniform rates
        model = NetFaultModel.uniform(
            loss=rng.uniform(0.0, 0.4),
            duplicate=rng.uniform(0.0, 0.3),
            reorder=rng.uniform(0.0, 0.4),
            seed=rng.randrange(1 << 16),
        )
    elif style == 1:  # chaotic per-link draw with a transient partition
        model = NetFaultModel.random(
            n,
            duration,
            seed=rng.randrange(1 << 16),
            partition_count=rng.randrange(0, 2),
        )
    else:  # explicit partition windows, one possibly permanent
        a = rng.randrange(n)
        b = (a + 1 + rng.randrange(n - 1)) % n
        start = rng.uniform(0.0, duration)
        end = float("inf") if rng.random() < 0.3 else start + rng.uniform(2, 8)
        model = NetFaultModel.uniform(
            loss=rng.uniform(0.0, 0.2),
            partitions=(Partition(a, b, start, end),),
            seed=rng.randrange(1 << 16),
        )
    config = SimulationConfig(
        n=n,
        duration=duration,
        seed=rng.randrange(1 << 16),
        basic_rate=rng.uniform(0.05, 0.3),
        net_faults=model,
    )
    return workload_name, protocol, config


def canonical_history(history) -> str:
    return canonical_dumps(history_to_dict(history))


@pytest.mark.tier2
@pytest.mark.parametrize("cell", range(CELLS))
def test_faulty_cell_differential(cell):
    workload_name, protocol, config = draw_cell(cell)
    sim = Simulation(WORKLOADS[workload_name](), config)
    trace = sim.trace
    report = sim.net_report
    assert report is not None

    # ------------------------------------------------------------------
    # (a) exactly-once at the protocol layer
    # ------------------------------------------------------------------
    sent = [op.msg_id for op in trace if op.kind is TraceOpKind.SEND]
    delivered = [op.msg_id for op in trace if op.kind is TraceOpKind.DELIVER]
    assert len(set(delivered)) == len(delivered), (cell, "duplicate delivery")
    assert set(delivered) <= set(sent), (cell, "delivery of unsent message")
    missing = set(sent) - set(delivered)
    # ...and zero times only when the watchdog explicitly gave up.
    assert missing == set(report.undelivered), cell
    assert missing <= set(report.degraded), cell
    if report.degraded:
        assert report.degraded_links, cell

    # ------------------------------------------------------------------
    # (b) the delivered pattern validates and replays identically over
    #     ideal channels -- verdicts and all
    # ------------------------------------------------------------------
    faulty = sim.run(protocol)
    validate_history(faulty.history)
    reliable = replay(trace, protocol_factory(protocol))
    assert canonical_history(faulty.history) == canonical_history(
        reliable.history
    ), (cell, "histories diverge")
    rdt_a, rdt_b = check_rdt(faulty.history), check_rdt(reliable.history)
    assert rdt_a.holds == rdt_b.holds, cell
    assert rdt_a.violations == rdt_b.violations, cell
    assert find_z_cycles(faulty.history) == find_z_cycles(reliable.history), cell
    assert useless_checkpoints(faulty.history) == useless_checkpoints(
        reliable.history
    ), cell
    mid = config.duration / 2
    crash = {0: CrashSpec(0, at_time=mid)}
    line_a = recovery_line(faulty.history, crash)
    line_b = recovery_line(reliable.history, crash)
    assert line_a.cut == line_b.cut, cell

    # ------------------------------------------------------------------
    # (c) crash injection composes: the crash-injected run over the
    #     faulty network converges to the crash-free history
    # ------------------------------------------------------------------
    schedule = CrashSchedule.random(
        config.n, config.duration, count=1, seed=700 + cell
    )
    recovered = sim.run_with_crashes(protocol, schedule, cross_check=True)
    assert canonical_history(recovered.history) == canonical_history(
        faulty.history
    ), (cell, "crash+loss run diverged from the crash-free history")
