"""The ``repro.api`` facade: signatures, equivalences, serialization."""

import pytest

from repro import api
from repro.harness import compare_protocols, ratio_sweep
from repro.harness.experiment import ComparisonResult
from repro.harness.runner import RunnerStats
from repro.harness.sweep import SweepResult
from repro.sim import Simulation, SimulationConfig
from repro.types import SimulationError
from repro.workloads import RandomUniformWorkload


class TestRun:
    def test_matches_direct_simulation(self):
        config = SimulationConfig(n=3, duration=15.0, seed=4, basic_rate=0.3)
        direct = Simulation(RandomUniformWorkload(), config).run("bhmr")
        via_api = api.run(
            workload="random", protocol="bhmr",
            n=3, duration=15.0, seed=4, basic_rate=0.3,
        )
        assert via_api.metrics == direct.metrics

    def test_workload_instance_and_factory(self):
        for spec in (RandomUniformWorkload(), RandomUniformWorkload):
            result = api.run(spec, protocol="fdas", n=3, duration=10.0)
            assert result.protocol_name == "fdas"

    def test_workload_args_reach_the_constructor(self):
        quiet = api.run(
            workload="random", workload_args={"send_rate": 0.2},
            n=3, duration=20.0,
        )
        busy = api.run(
            workload="random", workload_args={"send_rate": 3.0},
            n=3, duration=20.0,
        )
        assert busy.metrics.messages_delivered > quiet.metrics.messages_delivered

    def test_unknown_workload_raises(self):
        with pytest.raises(SimulationError, match="unknown workload"):
            api.run(workload="nope")

    def test_workload_args_require_a_name(self):
        with pytest.raises(SimulationError):
            api.run(RandomUniformWorkload(), workload_args={"send_rate": 1.0})

    def test_config_exclusive_with_knobs(self):
        with pytest.raises(SimulationError):
            api.run(config=SimulationConfig(n=3), n=4)

    def test_explicit_config_accepted(self):
        result = api.run(config=SimulationConfig(n=3, duration=10.0))
        assert result.metrics.num_processes == 3


class TestCompare:
    def test_matches_compare_protocols(self):
        config = SimulationConfig(n=3, duration=12.0, basic_rate=0.3)
        direct = compare_protocols(
            RandomUniformWorkload, config, ("bhmr", "fdas"),
            seeds=(0, 1), scenario="random",
        )
        via_api = api.compare(
            workload="random", protocols=("bhmr", "fdas"), seeds=(0, 1),
            n=3, duration=12.0, basic_rate=0.3,
        )
        assert via_api.to_dict() == direct.to_dict()

    def test_round_trips_through_dict(self):
        comp = api.compare(n=3, duration=10.0, seeds=(0,))
        again = ComparisonResult.from_dict(comp.to_dict())
        assert again.to_dict() == comp.to_dict()
        assert again.ratio("bhmr") == comp.ratio("bhmr")


class TestSweep:
    def test_serial_backend_matches_ratio_sweep(self):
        def scenario_at(rate):
            return RandomUniformWorkload, SimulationConfig(
                n=3, duration=10.0, basic_rate=rate
            )

        direct = ratio_sweep(
            "basic_rate", (0.1, 0.4), scenario_at, ("bhmr",), seeds=(0,)
        )
        via_api = api.sweep(
            workload="random", xs=(0.1, 0.4), protocols=("bhmr",),
            seeds=(0,), n=3, duration=10.0, backend="serial",
        )
        assert via_api.ratio_series() == direct.ratio_series()
        assert via_api.forced_series() == direct.forced_series()

    def test_auto_and_serial_backends_agree(self):
        kwargs = dict(
            workload="random", xs=(0.1, 0.4), protocols=("bhmr",),
            seeds=(0,), n=3, duration=10.0,
        )
        serial = api.sweep(backend="serial", **kwargs)
        auto = api.sweep(backend="auto", **kwargs)
        assert [c.to_dict() for c in serial.comparisons] == [
            c.to_dict() for c in auto.comparisons
        ]

    def test_unknown_backend_raises(self):
        with pytest.raises(SimulationError, match="backend"):
            api.sweep(backend="threads")

    def test_sweeping_n_coerces_int(self):
        sweep = api.sweep(
            workload="random", xs=(3, 4), x_label="n",
            protocols=("bhmr",), seeds=(0,), duration=8.0, backend="serial",
        )
        assert sweep.xs == [3, 4]
        assert all(
            agg.forced_total >= 0
            for comp in sweep.comparisons
            for agg in comp.protocols
        )

    def test_unsweepable_label_raises(self):
        with pytest.raises(SimulationError, match="sweep"):
            api.sweep(x_label="protocol_name", xs=(1,))

    def test_round_trips_through_dict_with_stats(self):
        sweep = api.sweep(
            workload="random", xs=(0.1,), protocols=("bhmr",), seeds=(0,),
            n=3, duration=8.0, metrics=api.MetricsRegistry(),
        )
        assert sweep.stats is not None and sweep.stats.metrics is not None
        doc = sweep.to_dict()
        again = SweepResult.from_dict(doc)
        assert again.to_dict() == doc
        assert isinstance(again.stats, RunnerStats)
        assert again.stats.metrics.counters == sweep.stats.metrics.counters

    def test_obs_instruments_surface_in_caller_objects(self):
        registry = api.MetricsRegistry()
        profiler = api.Profiler()
        api.sweep(
            workload="random", xs=(0.1, 0.3), protocols=("bhmr",),
            seeds=(0,), n=3, duration=8.0,
            metrics=registry, profiler=profiler,
        )
        snap = registry.snapshot()
        assert snap.counters["sweep.cells_run"] == 2
        assert snap.counters["replay.forced"] > 0
        phases = profiler.snapshot()
        assert {"generate", "simulate"} <= set(phases)
        assert all(v >= 0 for v in phases.values())


class TestAnalyze:
    def test_analyze_rdt_wrapper(self):
        result = api.run(protocol="fdas", n=3, duration=10.0)
        report = api.analyze_rdt(result.history)
        assert report.holds

    def test_reexports_are_the_real_objects(self):
        from repro.analysis import find_z_cycles, useless_checkpoints
        from repro.obs import MetricsRegistry, Profiler, Tracer

        assert api.find_z_cycles is find_z_cycles
        assert api.useless_checkpoints is useless_checkpoints
        assert api.Tracer is Tracer
        assert api.MetricsRegistry is MetricsRegistry
        assert api.Profiler is Profiler


class TestRunnerStatsSerialization:
    def test_round_trip_without_metrics(self):
        stats = RunnerStats(
            workers=2, mode="process", cells_total=4, cache_hits=1,
            cell_seconds=[0.1, 0.2, 0.3], wall_seconds=0.4, note="x",
            phase_seconds={"simulate": 0.25},
        )
        again = RunnerStats.from_dict(stats.to_dict())
        assert again.to_dict() == stats.to_dict()
        assert again.cells_run == 3


class TestErrorPaths:
    """Bad registry keys fail loudly: the message names the bad key and
    lists what the registry actually knows, so a typo is self-serviced."""

    def test_unknown_workload_message_lists_registry(self):
        from repro import WORKLOADS

        with pytest.raises(SimulationError) as err:
            api.run(workload="ringg", n=3, duration=10.0)
        message = str(err.value)
        assert "'ringg'" in message
        for name in WORKLOADS:
            assert name in message

    def test_unknown_protocol_message_lists_registry(self):
        from repro import PROTOCOLS

        with pytest.raises(SimulationError) as err:
            api.run(protocol="bmhr", n=3, duration=10.0)
        message = str(err.value)
        assert "'bmhr'" in message
        for name in PROTOCOLS:
            assert name in message

    def test_sweep_validates_protocols_before_simulating(self):
        with pytest.raises(SimulationError, match="unknown protocol 'nope'"):
            api.sweep(xs=[0.1], protocols=["nope"], n=3, duration=10.0)

    def test_connect_dead_socket_raises_connection_error(self, tmp_path):
        import time

        started = time.monotonic()
        with pytest.raises(ConnectionError, match="cannot connect"):
            api.connect(f"unix:{tmp_path}/gone.sock", timeout=2.0)
        assert time.monotonic() - started < 5.0
