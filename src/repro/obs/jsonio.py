"""Canonical JSON: one encoding for every serialised artifact.

Cache payloads, trace lines, metric snapshots and ``--json`` CLI reports
all need the same property: *equal values encode to equal bytes*, on any
machine, in any process.  That is what makes the result cache
content-addressable, trace files diffable, and golden tests byte-exact.
The recipe is plain ``json.dumps`` with sorted keys and no whitespace --
kept here (rather than inlined at each call site) so no producer can
drift.
"""

from __future__ import annotations

import json
from typing import Any


def jsonable(value: object) -> object:
    """A JSON-safe, deterministic rendition of an arbitrary value.

    Scalars pass through, sequences and mappings recurse (mapping keys
    stringified and sorted), anything else falls back to ``repr`` --
    which is stable for the dataclasses used throughout this codebase.
    """
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in sorted(value.items())}
    return repr(value)


def canonical_dumps(doc: Any) -> str:
    """Encode ``doc`` as canonical (sorted, compact) JSON text."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def canonical_bytes(doc: Any) -> bytes:
    """Encode ``doc`` as canonical JSON bytes (cache/trace payloads)."""
    return canonical_dumps(doc).encode("utf-8")
