"""The metrics registry: instruments, snapshots, merge semantics."""

import json

import pytest

from repro.obs import MetricsRegistry, MetricsSnapshot
from repro.obs.metrics import Counter, Gauge, Histogram


class TestInstruments:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge_last_write_wins(self):
        g = Gauge()
        g.set(3.0)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_summary(self):
        h = Histogram()
        for v in (2.0, 5.0, 3.0):
            h.observe(v)
        assert h.summary() == {"count": 3, "sum": 10.0, "min": 2.0, "max": 5.0}
        assert h.mean == pytest.approx(10.0 / 3)

    def test_empty_histogram(self):
        h = Histogram()
        assert h.mean is None
        assert h.summary() == {"count": 0, "sum": 0.0, "min": None, "max": None}

    def test_histogram_absorb_is_exact(self):
        whole, a, b = Histogram(), Histogram(), Histogram()
        for k, v in enumerate((1.0, 9.0, 4.0, 2.0)):
            whole.observe(v)
            (a if k % 2 else b).observe(v)
        a.absorb(b.summary())
        assert a.summary() == whole.summary()


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_write_through_helpers(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.set("g", 7.0)
        reg.observe("h", 1.0)
        snap = reg.snapshot()
        assert snap.counters == {"c": 2}
        assert snap.gauges == {"g": 7.0}
        assert snap.histograms["h"]["count"] == 1

    def test_cross_type_name_claim_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_len_and_clear(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.set("b", 1.0)
        assert len(reg) == 2
        reg.clear()
        assert len(reg) == 0 and not reg.snapshot()

    def test_absorb_matches_snapshot_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 2)
        a.set("g", 1.0)
        a.observe("h", 3.0)
        b.inc("c", 3)
        b.set("g", 5.0)
        b.observe("h", 1.0)
        merged = a.snapshot().merge(b.snapshot())
        a.absorb(b.snapshot())
        assert a.snapshot().to_dict() == merged.to_dict()


class TestSnapshot:
    def test_round_trips_through_plain_dicts(self):
        reg = MetricsRegistry()
        reg.inc("replay.forced", 8)
        reg.set("closure.nodes", 12.0)
        reg.observe("kernel.queue_depth", 4.0)
        snap = reg.snapshot()
        again = MetricsSnapshot.from_dict(snap.to_dict())
        assert again.to_dict() == snap.to_dict()

    def test_canonical_is_stable_json(self):
        reg = MetricsRegistry()
        reg.inc("b")
        reg.inc("a")
        text = reg.snapshot().canonical()
        assert text == json.dumps(
            json.loads(text), sort_keys=True, separators=(",", ":")
        )

    def test_truthiness(self):
        assert not MetricsSnapshot()
        assert MetricsSnapshot(counters={"x": 1})

    def test_merge_counters_add(self):
        a = MetricsSnapshot(counters={"x": 2, "y": 1})
        b = MetricsSnapshot(counters={"x": 3, "z": 4})
        assert a.merge(b).counters == {"x": 5, "y": 1, "z": 4}

    def test_merge_gauges_keep_max(self):
        a = MetricsSnapshot(gauges={"depth": 3.0})
        b = MetricsSnapshot(gauges={"depth": 9.0, "other": 1.0})
        assert a.merge(b).gauges == {"depth": 9.0, "other": 1.0}

    def test_merge_histograms_exact(self):
        whole, a, b = Histogram(), Histogram(), Histogram()
        for k, v in enumerate((1.0, 9.0, 4.0)):
            whole.observe(v)
            (a if k % 2 else b).observe(v)
        sa = MetricsSnapshot(histograms={"h": a.summary()})
        sb = MetricsSnapshot(histograms={"h": b.summary()})
        assert sa.merge(sb).histograms["h"] == whole.summary()

    def test_merge_all_over_empty_and_many(self):
        assert not MetricsSnapshot.merge_all([])
        parts = [MetricsSnapshot(counters={"x": k}) for k in (1, 2, 3)]
        assert MetricsSnapshot.merge_all(parts).counters == {"x": 6}

    def test_merge_does_not_mutate_inputs(self):
        a = MetricsSnapshot(counters={"x": 1}, histograms={"h": {
            "count": 1, "sum": 1.0, "min": 1.0, "max": 1.0,
        }})
        b = MetricsSnapshot(counters={"x": 1}, histograms={"h": {
            "count": 1, "sum": 2.0, "min": 2.0, "max": 2.0,
        }})
        a.merge(b)
        assert a.counters == {"x": 1} and a.histograms["h"]["count"] == 1
