"""Experiment harness: comparisons, sweeps and table rendering."""

from repro.harness.experiment import (
    ComparisonResult,
    ProtocolAggregate,
    compare_protocols,
)
from repro.harness.sweep import SweepResult, ratio_sweep
from repro.harness.tables import render_ascii_plot, render_series, render_table

__all__ = [
    "ComparisonResult",
    "ProtocolAggregate",
    "SweepResult",
    "compare_protocols",
    "ratio_sweep",
    "render_ascii_plot",
    "render_series",
    "render_table",
]
