"""Performance benchmarks of the analysis substrate itself.

Not a paper artifact, but the practical cost profile a downstream user
cares about: R-graph closure, RDT verification (both characterizations),
zigzag reachability and recovery-line computation on a mid-size run.
"""

import pytest

from repro.analysis import check_rdt, useless_checkpoints
from repro.graph import IncrementalClosure, IncrementalRGraph, RGraph, ZPathAnalyzer
from repro.recovery import recovery_line
from repro.sim import Simulation, SimulationConfig
from repro.workloads import RandomUniformWorkload


@pytest.fixture(scope="module")
def history():
    sim = Simulation(
        RandomUniformWorkload(send_rate=2.0),
        SimulationConfig(n=8, duration=80.0, basic_rate=0.3, seed=2),
    )
    return sim.run("bhmr").history


def test_rgraph_closure(benchmark, history):
    def build():
        rg = RGraph(history)
        first = next(iter(history.checkpoint_ids()))
        rg.reachable_set(first)
        return rg

    rg = benchmark(build)
    assert rg.num_nodes() > 50


def test_check_rdt_tdv(benchmark, history):
    report = benchmark(lambda: check_rdt(history, method="tdv"))
    assert report.holds


def test_check_rdt_chains(benchmark, history):
    report = benchmark(lambda: check_rdt(history, method="chains"))
    assert report.holds


def test_zigzag_single_source(benchmark, history):
    analyzer = ZPathAnalyzer(history)
    source = next(iter(history.checkpoint_ids()))
    benchmark(lambda: analyzer.reach(source, causal=False))


def test_useless_checkpoint_scan(benchmark, history):
    result = benchmark(lambda: useless_checkpoints(history))
    assert result == []


def test_recovery_line(benchmark, history):
    line = benchmark(lambda: recovery_line(history, [0]))
    assert set(line.cut) == set(range(history.num_processes))


def test_incremental_closure_feed(benchmark, history):
    """Cost of maintaining the closure online over the whole edge stream."""
    rg = RGraph(history)
    edges = [(u, v) for u, v in rg._graph.edges()]
    n = rg.num_nodes()

    def feed():
        inc = IncrementalClosure(n)
        for u, v in edges:
            inc.add_edge(u, v)
        return inc

    inc = benchmark(feed)
    batch = rg._graph.transitive_closure()
    assert all(inc.reach_mask(u) == batch.reach_mask(u) for u in range(n))


def test_incremental_rgraph_from_history(benchmark, history):
    """Online R-graph feed (checkpoints + deliveries in time order)."""
    closed = history.closed()
    inc = benchmark(lambda: IncrementalRGraph.from_history(closed))
    assert inc.num_nodes() > 50
    # BHMR guarantees RDT, hence no useless checkpoints.  (A cyclic SCC
    # with one checkpoint per process can still occur and is not a
    # Z-cycle under this edge convention -- so don't assert on cycles.)
    assert inc.useless_checkpoints() == []
    assert inc.cycles() == RGraph(closed).cycles()


def test_check_rdt_incremental_closure(benchmark, history):
    report = benchmark(lambda: check_rdt(history, closure="incremental"))
    assert report.holds
    assert report.checked_pairs == check_rdt(history).checked_pairs


def test_check_rdt_vectorized(benchmark, history):
    report = benchmark(lambda: check_rdt(history, method="vectorized"))
    assert report.holds
    # Must agree with the scalar method bit for bit.
    scalar = check_rdt(history, method="tdv")
    assert report.checked_pairs == scalar.checked_pairs
