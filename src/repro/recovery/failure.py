"""Crash specifications for rollback-recovery analyses.

The model is fail-stop (paper section 2.1): a crashed process loses its
volatile state and restarts from a stable local checkpoint.  A
:class:`CrashSpec` names, per crashed process, the last checkpoint that
survived on stable storage (by default the last one taken before the
crash instant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.events.history import History
from repro.types import CheckpointId, PatternError, ProcessId


@dataclass(frozen=True)
class CrashSpec:
    """One process crash.

    ``at_time=None`` means "crash at the very end of the history".  The
    crash wipes any events after the last checkpoint taken at or before
    ``at_time``; that checkpoint is the process's restart candidate.

    FINAL checkpoints (the virtual ones appended by ``History.closed()``
    to delimit open intervals) are *not* restart candidates: they stand
    for volatile end-of-run state that a crash destroys.  Surviving
    processes, by contrast, keep their volatile state and may stay at
    them.

    ``initial_is_stable`` covers crash instants that precede every
    recorded checkpoint time: instead of raising, the restart candidate
    is the initial checkpoint ``C(pid, 0)`` -- which is *always* on
    stable storage (it is taken at process start, before any event).
    :func:`repro.recovery.gc.global_recovery_floor` sets it because the
    floor must be defined at every time, including before any progress;
    the default stays strict so a hand-written spec naming an impossible
    crash instant is still flagged.
    """

    pid: ProcessId
    at_time: Optional[float] = None
    initial_is_stable: bool = False

    def restart_checkpoint(self, history: History) -> CheckpointId:
        """Last stable checkpoint available to the crashed process."""
        from repro.events.event import CheckpointKind

        candidates = [
            ev
            for ev in history.checkpoints(self.pid)
            if ev.checkpoint_kind is not CheckpointKind.FINAL
            and (self.at_time is None or ev.time <= self.at_time)
        ]
        if not candidates:
            if self.initial_is_stable:
                return CheckpointId(self.pid, 0)
            raise PatternError(
                f"process {self.pid} has no checkpoint before time {self.at_time}"
            )
        last = candidates[-1]
        assert last.checkpoint_index is not None
        return CheckpointId(self.pid, last.checkpoint_index)


def restart_bounds(
    history: History, crashes: Dict[ProcessId, CrashSpec]
) -> Dict[ProcessId, int]:
    """Upper bound on the checkpoint index each process may restart from.

    Crashed processes are bounded by their last stable checkpoint;
    surviving processes may roll back to any of their checkpoints (they
    are bounded by their last taken checkpoint).
    """
    bounds: Dict[ProcessId, int] = {}
    for pid in range(history.num_processes):
        if pid in crashes:
            bounds[pid] = crashes[pid].restart_checkpoint(history).index
        else:
            bounds[pid] = history.last_index(pid)
    return bounds
