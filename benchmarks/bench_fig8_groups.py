"""E2 / Figure 8: R in overlapping group communication environments.

The paper's Figure 8 reports the forced-checkpoint ratio when processes
communicate mostly within overlapping groups.  Swept here: the overlap
between consecutive groups and the multicast intensity -- the two knobs
that govern how much causal knowledge crosses group boundaries (which is
what the BHMR ``causal`` matrix exploits).
"""

import os

import pytest

from repro.harness import render_runner_stats, render_series, run_sweep
from repro.sim import Simulation, SimulationConfig
from repro.workloads import OverlappingGroupsWorkload

PROTOCOLS = ["bhmr", "bhmr-nosimple", "bhmr-causalonly"]
SEEDS = (0, 1, 2)
N = 12
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "0")) or None


def scenario_at_overlap(overlap):
    return (
        lambda: OverlappingGroupsWorkload(
            group_size=4, overlap=overlap, send_rate=1.0, p_multicast=0.4
        ),
        SimulationConfig(n=N, duration=60.0, basic_rate=0.2),
    )


def scenario_at_multicast(p):
    return (
        lambda: OverlappingGroupsWorkload(
            group_size=4, overlap=1, send_rate=1.0, p_multicast=p
        ),
        SimulationConfig(n=N, duration=60.0, basic_rate=0.2),
    )


@pytest.fixture(scope="module")
def overlap_sweep():
    return run_sweep(
        "overlap",
        [0, 1, 2],
        scenario_at_overlap,
        PROTOCOLS,
        seeds=SEEDS,
        workers=WORKERS,
    )


@pytest.fixture(scope="module")
def multicast_sweep():
    return run_sweep(
        "p_multicast",
        [0.0, 0.3, 0.7],
        scenario_at_multicast,
        PROTOCOLS,
        seeds=SEEDS,
        workers=WORKERS,
    )


def test_fig8_ratio_vs_overlap(benchmark, emit, overlap_sweep):
    emit(
        render_series(
            "overlap",
            overlap_sweep.xs,
            overlap_sweep.ratio_series(),
            title=f"Figure 8a -- R vs group overlap (groups of 4, n={N})",
        )
        + "\n"
        + render_runner_stats(overlap_sweep.stats)
    )
    for protocol in PROTOCOLS:
        assert overlap_sweep.max_ratio(protocol) <= 1.0, protocol
    assert overlap_sweep.min_ratio("bhmr") < 1.0
    benchmark(
        lambda: Simulation(
            OverlappingGroupsWorkload(group_size=4, overlap=1),
            SimulationConfig(n=N, duration=60.0, basic_rate=0.2, seed=0),
        ).run("bhmr")
    )


def test_fig8_ratio_vs_multicast(benchmark, emit, multicast_sweep):
    emit(
        render_series(
            "p_multicast",
            multicast_sweep.xs,
            multicast_sweep.ratio_series(),
            title=f"Figure 8b -- R vs multicast intensity (n={N})",
        )
    )
    for protocol in PROTOCOLS:
        assert multicast_sweep.max_ratio(protocol) <= 1.0, protocol
    benchmark(
        lambda: Simulation(
            OverlappingGroupsWorkload(group_size=4, overlap=1, p_multicast=0.7),
            SimulationConfig(n=N, duration=60.0, basic_rate=0.2, seed=0),
        ).run("bhmr")
    )
