"""The blessed public surface of the reproduction, in one module.

Everything a user (or the CLI, or the examples) needs rides behind four
keyword-only entrypoints plus the analysis and observability types:

* :func:`run` -- one workload under one protocol, returns the
  :class:`~repro.sim.replay.ReplayResult`;
* :func:`compare` -- several protocols over the same traces, returns the
  :class:`~repro.harness.experiment.ComparisonResult`;
* :func:`sweep` -- a figure-style parameter sweep through the parallel
  cached runner, returns the :class:`~repro.harness.sweep.SweepResult`;
* :func:`recover` -- a crash-injected run with online recovery, returns
  the :class:`~repro.sim.crashes.RecoveryReplayResult`;
* :func:`analyze_rdt` / :func:`find_z_cycles` /
  :func:`useless_checkpoints` -- the paper's offline characterizations;
* :class:`Tracer` / :mod:`metrics <repro.obs.metrics>` /
  :class:`Profiler` -- the observability instruments, accepted by every
  entrypoint via ``tracer=`` / ``metrics=`` / ``profiler=``.

Scenario arguments are uniform across entrypoints: a workload is named
by its registry string (``workload="random"``, constructor overrides in
``workload_args``), or passed as a ready :class:`Workload` instance or
zero-argument factory; the environment is either an explicit
:class:`SimulationConfig` via ``config=`` or the common knobs ``n`` /
``duration`` / ``seed`` / ``basic_rate``.  When a workload is named by
string, sweep scenarios stay picklable, so the process-pool backend
works out of the box.

Deeper layers (:mod:`repro.sim`, :mod:`repro.harness`, :mod:`repro.graph`)
remain importable for power users, but this module is the surface the
CLI and examples are built on and the one the README documents.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Union

from repro.analysis import check_rdt, find_z_cycles, useless_checkpoints
from repro.analysis.rdt import RDTReport
from repro.events.history import History
from repro.harness.experiment import ComparisonResult, compare_protocols
from repro.harness.runner import ResultCache, RunnerStats, run_sweep
from repro.harness.sweep import SweepResult
from repro.obs import metrics  # noqa: F401  (re-exported module)
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.profile import Profiler
from repro.obs.tracer import Tracer
from repro.sim import (
    CrashSchedule,
    LinkFaults,
    NetFaultModel,
    Partition,
    RecoveryReplayResult,
    ReplayResult,
    Simulation,
    SimulationConfig,
    TransportConfig,
)
from repro.core.registry import PROTOCOLS
from repro.serve.client import Client
from repro.serve.server import ServerConfig, ServerHandle, serve_in_thread
from repro.types import SimulationError
from repro.workloads import WORKLOADS
from repro.workloads.base import Workload

__all__ = [
    "ComparisonResult",
    "CrashSchedule",
    "LinkFaults",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NetFaultModel",
    "Partition",
    "Profiler",
    "RDTReport",
    "RecoveryReplayResult",
    "ReplayResult",
    "ResultCache",
    "RunnerStats",
    "ServerConfig",
    "ServerHandle",
    "SimulationConfig",
    "SweepResult",
    "Tracer",
    "TransportConfig",
    "analyze_rdt",
    "compare",
    "connect",
    "find_z_cycles",
    "metrics",
    "recover",
    "run",
    "serve",
    "sweep",
    "useless_checkpoints",
]

#: How a caller may specify the workload of a scenario.
WorkloadSpec = Union[str, Workload, Callable[[], Workload]]


def _validate_protocols(names: Sequence[str]) -> None:
    """Every protocol name must be in the registry, or SimulationError.

    The registry itself raises :class:`~repro.types.ProtocolError`; the
    api surface promises the single exception type
    :class:`SimulationError` for bad scenario arguments, naming the bad
    key and listing the valid entries.
    """
    for name in names:
        if name not in PROTOCOLS:
            known = ", ".join(sorted(PROTOCOLS))
            raise SimulationError(f"unknown protocol {name!r}; known: {known}")


# ----------------------------------------------------------------------
# scenario plumbing (module-level classes so sweep cells stay picklable)
# ----------------------------------------------------------------------
class _WorkloadFactory:
    """Builds the named registry workload; picklable by construction."""

    def __init__(self, name: str, kwargs: Dict[str, object]) -> None:
        if name not in WORKLOADS:
            known = ", ".join(sorted(WORKLOADS))
            raise SimulationError(f"unknown workload {name!r}; known: {known}")
        self.name = name
        self.kwargs = dict(kwargs)

    def __call__(self) -> Workload:
        return WORKLOADS[self.name](**self.kwargs)


class _ConstFactory:
    """Wraps a ready workload instance (one scenario, reused per seed)."""

    def __init__(self, workload: Workload) -> None:
        self.workload = workload

    def __call__(self) -> Workload:
        return self.workload


def _workload_factory(
    workload: WorkloadSpec, workload_args: Optional[Dict[str, object]]
) -> Callable[[], Workload]:
    if isinstance(workload, str):
        return _WorkloadFactory(workload, workload_args or {})
    if workload_args:
        raise SimulationError(
            "workload_args only apply when the workload is named by string"
        )
    if isinstance(workload, Workload):
        return _ConstFactory(workload)
    if callable(workload):
        return workload
    raise SimulationError(f"cannot build a workload from {workload!r}")


def _resolve_config(
    config: Optional[SimulationConfig],
    n: Optional[int],
    duration: Optional[float],
    seed: Optional[int],
    basic_rate: Optional[float],
    net_faults: Optional[NetFaultModel] = None,
    transport: Optional[TransportConfig] = None,
) -> SimulationConfig:
    """An explicit config wins; otherwise the common knobs fill defaults."""
    if config is not None:
        if any(
            v is not None
            for v in (n, duration, seed, basic_rate, net_faults, transport)
        ):
            raise SimulationError(
                "pass either config= or the n/duration/seed/basic_rate/"
                "net_faults/transport knobs, not both"
            )
        return config
    kwargs: Dict[str, object] = {}
    if n is not None:
        kwargs["n"] = n
    if duration is not None:
        kwargs["duration"] = duration
    if seed is not None:
        kwargs["seed"] = seed
    if basic_rate is not None:
        kwargs["basic_rate"] = basic_rate
    if net_faults is not None:
        kwargs["net_faults"] = net_faults
    if transport is not None:
        kwargs["transport"] = transport
    return SimulationConfig(**kwargs)  # type: ignore[arg-type]


class _ScenarioAt:
    """``x -> (workload factory, config)`` varying one config field.

    Picklable whenever the workload factory is, which keeps the default
    sweep eligible for the process-pool backend.
    """

    VARIABLE = ("n", "duration", "seed", "basic_rate")

    def __init__(
        self,
        make_workload: Callable[[], Workload],
        base_config: SimulationConfig,
        x_label: str,
    ) -> None:
        if x_label not in self.VARIABLE:
            raise SimulationError(
                f"cannot sweep {x_label!r}; sweepable: {', '.join(self.VARIABLE)}"
            )
        self.make_workload = make_workload
        self.config_kwargs = dict(base_config.__dict__)
        self.x_label = x_label

    def __call__(self, x: object):
        kwargs = dict(self.config_kwargs)
        kwargs[self.x_label] = int(x) if self.x_label == "n" else x
        return self.make_workload, SimulationConfig(**kwargs)


# ----------------------------------------------------------------------
# entrypoints
# ----------------------------------------------------------------------
def run(
    workload: WorkloadSpec = "random",
    *,
    protocol: str = "bhmr",
    workload_args: Optional[Dict[str, object]] = None,
    config: Optional[SimulationConfig] = None,
    n: Optional[int] = None,
    duration: Optional[float] = None,
    seed: Optional[int] = None,
    basic_rate: Optional[float] = None,
    net_faults: Optional[NetFaultModel] = None,
    transport: Optional[TransportConfig] = None,
    close: bool = True,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    profiler: Optional[Profiler] = None,
) -> ReplayResult:
    """Simulate one workload under one protocol; return the replay.

    ``net_faults`` runs the scenario over an unreliable physical network
    (loss/duplication/reordering/partitions per the model) with the
    reliable transport recovering exactly-once delivery; the returned
    history still satisfies the paper's channel model.
    """
    _validate_protocols([protocol])
    sim = Simulation(
        _workload_factory(workload, workload_args)(),
        _resolve_config(config, n, duration, seed, basic_rate, net_faults, transport),
        tracer=tracer,
        metrics=metrics,
        profiler=profiler,
    )
    return sim.run(protocol, close=close)


def compare(
    workload: WorkloadSpec = "random",
    *,
    protocols: Sequence[str] = ("bhmr", "fdas", "cbr"),
    baseline: str = "fdas",
    seeds: Sequence[int] = (0, 1, 2),
    verify_rdt: bool = False,
    workload_args: Optional[Dict[str, object]] = None,
    config: Optional[SimulationConfig] = None,
    n: Optional[int] = None,
    duration: Optional[float] = None,
    basic_rate: Optional[float] = None,
    scenario: Optional[str] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    profiler: Optional[Profiler] = None,
) -> ComparisonResult:
    """Replay the same traces under several protocols, aggregated over seeds."""
    _validate_protocols([*protocols, baseline])
    make_workload = _workload_factory(workload, workload_args)
    if scenario is None:
        scenario = workload if isinstance(workload, str) else "scenario"
    return compare_protocols(
        make_workload,
        _resolve_config(config, n, duration, None, basic_rate),
        protocols,
        baseline=baseline,
        seeds=seeds,
        scenario=scenario,
        verify_rdt=verify_rdt,
        tracer=tracer,
        metrics=metrics,
        profiler=profiler,
    )


def sweep(
    workload: WorkloadSpec = "random",
    *,
    xs: Sequence[object] = (0.05, 0.1, 0.2, 0.5),
    x_label: str = "basic_rate",
    protocols: Sequence[str] = ("bhmr",),
    baseline: str = "fdas",
    seeds: Sequence[int] = (0, 1),
    verify_rdt: bool = False,
    backend: str = "auto",
    workers: Optional[int] = None,
    cell_timeout: Optional[float] = None,
    cache: Union[ResultCache, str, None, bool] = False,
    workload_args: Optional[Dict[str, object]] = None,
    config: Optional[SimulationConfig] = None,
    n: Optional[int] = None,
    duration: Optional[float] = None,
    basic_rate: Optional[float] = None,
    scenario_at=None,
    progress: Optional[Callable[[str], None]] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    profiler: Optional[Profiler] = None,
) -> SweepResult:
    """R as a function of one swept scenario knob, via the cached runner.

    ``x_label`` names the :class:`SimulationConfig` field the sweep
    varies (default the paper's ``basic_rate``); ``scenario_at``
    overrides the scenario factory entirely for custom sweeps.

    ``backend`` picks the execution strategy: ``"serial"`` pins one
    in-process worker, ``"process"`` requires the process pool (with
    ``workers`` processes, default CPU count), ``"auto"`` lets the
    runner decide (parallel when picklable and CPUs allow, serial
    otherwise -- results are bit-identical either way).  ``cache``
    defaults to off; pass a path or :class:`ResultCache` to memoise
    cells, or ``None`` to honour the ``REPRO_SWEEP_CACHE`` env var.
    ``cell_timeout`` bounds one cell's wall time on the process backend;
    crashed or hung workers are retried with backoff (see
    :func:`repro.harness.runner.run_sweep`).
    """
    _validate_protocols([*protocols, baseline])
    if backend not in ("auto", "serial", "process"):
        raise SimulationError(
            f"unknown backend {backend!r}; use auto, serial or process"
        )
    if backend == "serial":
        workers = 1
    elif backend == "process" and workers is None:
        workers = None  # run_sweep resolves to the visible CPU count
    if scenario_at is None:
        scenario_at = _ScenarioAt(
            _workload_factory(workload, workload_args),
            _resolve_config(config, n, duration, None, basic_rate),
            x_label,
        )
    return run_sweep(
        x_label,
        xs,
        scenario_at,
        protocols,
        baseline=baseline,
        seeds=seeds,
        verify_rdt=verify_rdt,
        workers=workers,
        cell_timeout=cell_timeout,
        cache=cache,
        progress=progress,
        tracer=tracer,
        metrics=metrics,
        profiler=profiler,
    )


def recover(
    workload: WorkloadSpec = "random",
    *,
    protocol: str = "bhmr",
    crashes: Union["CrashSchedule", int] = 1,
    crash_seed: int = 0,
    cross_check: bool = True,
    gc_every_ops: Optional[int] = None,
    workload_args: Optional[Dict[str, object]] = None,
    config: Optional[SimulationConfig] = None,
    n: Optional[int] = None,
    duration: Optional[float] = None,
    seed: Optional[int] = None,
    basic_rate: Optional[float] = None,
    net_faults: Optional[NetFaultModel] = None,
    transport: Optional[TransportConfig] = None,
    close: bool = True,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    profiler: Optional[Profiler] = None,
) -> RecoveryReplayResult:
    """Simulate one scenario while injecting crashes and recovering online.

    ``crashes`` is either a ready :class:`CrashSchedule` or an integer
    count of crashes to draw deterministically from ``crash_seed`` (the
    draw is independent of the scenario seed, so the same fault pattern
    can be injected under different protocols).  Each crash triggers an
    online recovery -- recovery line from the live R-graph, rollback,
    sender-log replay, re-execution -- and, with ``cross_check`` (the
    default), is verified against the offline fixpoint on the prefix
    history.  ``gc_every_ops`` additionally runs the safe online
    sender-log garbage collector at that op cadence.
    """
    _validate_protocols([protocol])
    resolved = _resolve_config(
        config, n, duration, seed, basic_rate, net_faults, transport
    )
    if isinstance(crashes, int):
        schedule = CrashSchedule.random(
            resolved.n, resolved.duration, count=crashes, seed=crash_seed
        )
    else:
        schedule = crashes
    sim = Simulation(
        _workload_factory(workload, workload_args)(),
        resolved,
        tracer=tracer,
        metrics=metrics,
        profiler=profiler,
    )
    return sim.run_with_crashes(
        protocol,
        schedule,
        close=close,
        cross_check=cross_check,
        gc_every_ops=gc_every_ops,
    )


def serve(
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    unix_path: Optional[str] = None,
    workers: Optional[int] = None,
    queue_depth: int = 256,
    idle_timeout: Optional[float] = None,
    snapshot_dir: Optional[str] = None,
    wal_dir: Optional[str] = None,
    fsync_batch: int = 64,
    shard_procs: Optional[int] = None,
    data_dir: Optional[str] = None,
    config: Optional[ServerConfig] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> ServerHandle:
    """Start the online checkpointing service on a background thread.

    The returned :class:`~repro.serve.server.ServerHandle` is a context
    manager whose exit performs a graceful drain (every acknowledged
    frame applied, all sessions snapshotted); ``handle.address`` /
    ``handle.connect_address()`` give where to point :func:`connect`.
    ``port=0`` (the default) binds an ephemeral TCP port;
    ``unix_path=`` serves on a Unix socket instead.  ``wal_dir=``
    enables the durable ingest WAL: every acknowledged frame is fsynced
    (in ``fsync_batch``-record group commits) before its ack, and a
    restarted server replays the WAL so a ``kill -9`` loses nothing
    acknowledged.  ``shard_procs=`` switches to multi-process scale-out:
    N ``repro serve`` shard processes (consistent-hash session
    ownership, each with its own WAL and snapshot store under
    ``data_dir=``, which becomes required) behind an asyncio router;
    a dead shard degrades only its key range (clients see retryable
    ``shard_down``) and is respawned after WAL replay.  See
    ``docs/SERVICE.md`` for the wire protocol, durability and sharding
    semantics.
    """
    if config is not None:
        if (
            unix_path is not None
            or snapshot_dir is not None
            or wal_dir is not None
            or port != 0
            or shard_procs is not None
        ):
            raise SimulationError(
                "pass either config= or the individual server knobs, not both"
            )
        return serve_in_thread(config, tracer=tracer, metrics=metrics)
    if shard_procs is not None:
        # Multi-process scale-out: N shard daemons (each with its own
        # WAL + snapshot store under data_dir/shard-<k>/) behind an
        # asyncio router; see repro.serve.router.
        from repro.serve.router import Router, RouterConfig

        if data_dir is None:
            raise SimulationError(
                "shard_procs= needs data_dir= (per-shard WAL and "
                "snapshot directories live under it)"
            )
        if snapshot_dir is not None or wal_dir is not None:
            raise SimulationError(
                "sharded serving derives per-shard snapshot/WAL "
                "directories from data_dir=; do not pass snapshot_dir= "
                "or wal_dir="
            )
        router_config = RouterConfig(
            host=host,
            port=port,
            unix_path=unix_path,
            shard_procs=shard_procs,
            data_dir=data_dir,
            # Parallelism comes from processes here; loop workers per
            # shard default to 1 unless explicitly asked for.
            shard_workers=1 if workers is None else workers,
            queue_depth=queue_depth,
            idle_timeout=idle_timeout,
            fsync_batch=fsync_batch,
        )
        return ServerHandle(Router(router_config, tracer=tracer, metrics=metrics))
    config = ServerConfig(
        host=host,
        port=port,
        unix_path=unix_path,
        workers=4 if workers is None else workers,
        queue_depth=queue_depth,
        idle_timeout=idle_timeout,
        snapshot_dir=snapshot_dir,
        wal_dir=wal_dir,
        fsync_batch=fsync_batch,
    )
    return serve_in_thread(config, tracer=tracer, metrics=metrics)


def connect(address: str, *, timeout: Optional[float] = 10.0) -> Client:
    """A blocking client for a running service.

    ``address`` is ``"host:port"`` or ``"unix:/path"`` (what
    :meth:`ServerHandle.connect_address` returns).  Raises a plain
    :class:`ConnectionError` -- promptly, never a hang -- when nothing
    listens there.
    """
    return Client(address, timeout=timeout)


def analyze_rdt(
    history: History,
    *,
    method: str = "tdv",
    max_violations: Optional[int] = None,
) -> RDTReport:
    """Check Rollback-Dependency Trackability of a recorded pattern.

    A keyword-only wrapper over :func:`repro.analysis.check_rdt` (the
    richer knobs -- prebuilt R-graphs, closure strategy -- remain on the
    underlying function).
    """
    return check_rdt(history, method=method, max_violations=max_violations)
