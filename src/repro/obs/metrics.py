"""The metrics registry: named counters, gauges and histograms.

Every number the paper's evaluation reports (forced/basic checkpoints
per process, piggyback bytes, closure-edge updates, cache hit rates)
is incremented at its source against a :class:`MetricsRegistry` and read
back as an immutable :class:`MetricsSnapshot`.  Snapshots round-trip
through plain dicts (canonical JSON on the wire), and *merge*: the sweep
runner folds each worker's snapshot into one aggregate, so a parallel
run reports the same totals a serial one does.

Naming convention: dotted lowercase paths, with per-entity series
suffixed ``.p<pid>`` (e.g. ``replay.forced.p3``).  The registry is
plain-dict cheap; call sites that want true zero cost when metrics are
off simply hold ``None`` and guard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

from repro.obs.jsonio import canonical_dumps


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Summary statistics of an observed distribution.

    Tracks count / sum / min / max -- enough for means and extremes
    without committing to a bucket layout.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def summary(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }

    def absorb(self, summary: Mapping[str, object]) -> None:
        """Fold another histogram's summary in (exact: these stats merge)."""
        self.count += summary["count"]  # type: ignore[operator, arg-type]
        self.total += summary["sum"]  # type: ignore[operator, arg-type]
        for key, pick in (("min", min), ("max", max)):
            theirs = summary.get(key)
            if theirs is None:
                continue
            mine = getattr(self, key)
            setattr(self, key, theirs if mine is None else pick(mine, theirs))


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable read of a registry, mergeable and JSON-round-trippable."""

    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: dict(summary)
                for name, summary in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "MetricsSnapshot":
        return cls(
            counters=dict(doc.get("counters", {})),  # type: ignore[arg-type]
            gauges=dict(doc.get("gauges", {})),  # type: ignore[arg-type]
            histograms={
                name: dict(summary)
                for name, summary in doc.get("histograms", {}).items()  # type: ignore[union-attr]
            },
        )

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Aggregate two snapshots (e.g. across sweep workers).

        Counters add, gauges keep the maximum (the natural reading for
        high-water marks, the only cross-process gauge use here), and
        histogram summaries combine exactly.
        """
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        for name, value in other.gauges.items():
            gauges[name] = max(gauges[name], value) if name in gauges else value
        histograms = {name: dict(s) for name, s in self.histograms.items()}
        for name, summary in other.histograms.items():
            if name not in histograms:
                histograms[name] = dict(summary)
                continue
            mine = histograms[name]
            mine["count"] = mine["count"] + summary["count"]  # type: ignore[operator]
            mine["sum"] = mine["sum"] + summary["sum"]  # type: ignore[operator]
            for key, pick in (("min", min), ("max", max)):
                a, b = mine.get(key), summary.get(key)
                mine[key] = pick(a, b) if a is not None and b is not None else (
                    a if b is None else b
                )
        return MetricsSnapshot(
            counters=counters, gauges=gauges, histograms=histograms
        )

    @classmethod
    def merge_all(
        cls, snapshots: Iterable["MetricsSnapshot"]
    ) -> "MetricsSnapshot":
        out = cls()
        for snap in snapshots:
            out = out.merge(snap)
        return out

    def canonical(self) -> str:
        return canonical_dumps(self.to_dict())

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.histograms)


class MetricsRegistry:
    """Get-or-create store of named instruments.

    A name is permanently bound to the first instrument type that
    claimed it; asking for the same name as a different type raises,
    which catches misspelled call sites early.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _claim(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}"
                )

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            self._claim(name, "counter")
            inst = self._counters[name] = Counter()
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            self._claim(name, "gauge")
            inst = self._gauges[name] = Gauge()
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            self._claim(name, "histogram")
            inst = self._histograms[name] = Histogram()
        return inst

    # convenience write-through forms ----------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        """Fold a snapshot into this registry (counters add, gauges keep
        the maximum, histogram summaries merge exactly) -- how the sweep
        runner surfaces worker-side metrics in the caller's registry."""
        for name, value in snapshot.counters.items():
            self.counter(name).inc(value)
        for name, value in snapshot.gauges.items():
            gauge = self.gauge(name)
            gauge.set(max(gauge.value, value))
        for name, summary in snapshot.histograms.items():
            self.histogram(name).absorb(summary)

    # ------------------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters={n: c.value for n, c in self._counters.items()},
            gauges={n: g.value for n, g in self._gauges.items()},
            histograms={n: h.summary() for n, h in self._histograms.items()},
        )

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)} histograms={len(self._histograms)}>"
        )
