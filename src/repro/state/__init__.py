"""Deterministic state machines and the recovery replay engine."""

from repro.state.machine import (
    ProcessStateMachine,
    StateTrace,
    replayable_suffix,
    run_state_machines,
)
from repro.state.replay import (
    ReplayOutcome,
    execute_recovery,
    recovery_convergence_report,
)

__all__ = [
    "ProcessStateMachine",
    "ReplayOutcome",
    "StateTrace",
    "execute_recovery",
    "recovery_convergence_report",
    "replayable_suffix",
    "run_state_machines",
]
