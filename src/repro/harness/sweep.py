"""Parameter sweeps: regenerate a figure as a family of comparisons.

A figure in the paper is R (per protocol) as a function of one swept
parameter in one environment.  :func:`ratio_sweep` runs
:func:`repro.harness.experiment.compare_protocols` at every x and
collects the R series per protocol, ready for
:func:`repro.harness.tables.render_series`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.harness.experiment import ComparisonResult, compare_protocols
from repro.sim import SimulationConfig
from repro.workloads.base import Workload

#: A scenario factory: x -> (workload factory, config).
ScenarioAt = Callable[[object], Tuple[Callable[[], Workload], SimulationConfig]]


@dataclass
class SweepResult:
    """R (and raw forced counts) as a function of the swept parameter.

    ``stats`` is populated by :func:`repro.harness.runner.run_sweep`
    (a :class:`~repro.harness.runner.RunnerStats`); the serial
    :func:`ratio_sweep` leaves it ``None``.
    """

    x_label: str
    xs: List[object]
    comparisons: List[ComparisonResult]
    baseline: str
    stats: Optional[object] = None

    def ratio_series(self) -> Dict[str, List[Optional[float]]]:
        protocols = [agg.protocol for agg in self.comparisons[0].protocols]
        return {
            name: [comp.ratio(name) for comp in self.comparisons]
            for name in protocols
            if name != self.baseline
        }

    def forced_series(self) -> Dict[str, List[int]]:
        protocols = [agg.protocol for agg in self.comparisons[0].protocols]
        return {
            name: [comp.aggregate(name).forced_total for comp in self.comparisons]
            for name in protocols
        }

    def min_ratio(self, protocol: str) -> Optional[float]:
        values = [r for r in self.ratio_series().get(protocol, []) if r is not None]
        return min(values) if values else None

    def max_ratio(self, protocol: str) -> Optional[float]:
        values = [r for r in self.ratio_series().get(protocol, []) if r is not None]
        return max(values) if values else None

    def to_dict(self) -> Dict[str, object]:
        """Canonical-JSON-safe dict, including runner stats when present."""
        stats = self.stats
        return {
            "x_label": self.x_label,
            "xs": list(self.xs),
            "baseline": self.baseline,
            "comparisons": [comp.to_dict() for comp in self.comparisons],
            "stats": stats.to_dict() if hasattr(stats, "to_dict") else None,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "SweepResult":
        from repro.harness.runner import RunnerStats  # local: avoid cycle

        stats_doc = doc.get("stats")
        result = cls(
            x_label=doc["x_label"],  # type: ignore[arg-type]
            xs=list(doc["xs"]),  # type: ignore[arg-type]
            comparisons=[
                ComparisonResult.from_dict(entry)
                for entry in doc["comparisons"]  # type: ignore[union-attr]
            ],
            baseline=doc["baseline"],  # type: ignore[arg-type]
        )
        if stats_doc is not None:
            result.stats = RunnerStats.from_dict(stats_doc)  # type: ignore[arg-type]
        return result


def ratio_sweep(
    x_label: str,
    xs: Sequence[object],
    scenario_at: ScenarioAt,
    protocols: Sequence[str],
    baseline: str = "fdas",
    seeds: Sequence[int] = (0, 1, 2),
    verify_rdt: bool = False,
) -> SweepResult:
    """Run the comparison at every swept value."""
    comparisons = []
    for x in xs:
        make_workload, config = scenario_at(x)
        comparisons.append(
            compare_protocols(
                make_workload,
                config,
                protocols,
                baseline=baseline,
                seeds=seeds,
                scenario=f"{x_label}={x}",
                verify_rdt=verify_rdt,
            )
        )
    return SweepResult(
        x_label=x_label, xs=list(xs), comparisons=comparisons, baseline=baseline
    )
