"""Hand-crafting checkpoint-and-communication patterns.

:class:`PatternBuilder` is a tiny imperative DSL used throughout the test
suite to reconstruct the paper's figures event by event::

    b = PatternBuilder(3)            # processes P0, P1, P2
    m1 = b.send(0, 1)                # P0 sends m1 to P1
    b.checkpoint(1)                  # P1 takes C(1,1)
    b.deliver(m1)                    # m1 arrives at P1 (now in I(1,2))
    h = b.build()

Operations are appended in program order; each gets the next logical
timestamp, so the global time order equals the order of the calls.  A
delivery may only be issued after the corresponding send, which makes any
built history causally consistent by construction.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.events.event import CheckpointKind, Event, EventKind, Message
from repro.events.history import History
from repro.events.validate import validate_history
from repro.types import MessageId, PatternError, ProcessId


class PatternBuilder:
    """Incrementally build a :class:`History`.

    Parameters
    ----------
    n:
        Number of processes.  Initial checkpoints ``C(i, 0)`` are created
        automatically at time 0.
    """

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise PatternError("need at least one process")
        self._n = n
        self._time = 0.0
        self._events: List[List[Event]] = [[] for _ in range(n)]
        self._messages: Dict[MessageId, Message] = {}
        self._delivered: Set[MessageId] = set()
        self._next_msg = 0
        self._ckpt_index = [0] * n
        for pid in range(n):
            self._append(
                pid,
                EventKind.CHECKPOINT,
                checkpoint_index=0,
                checkpoint_kind=CheckpointKind.INITIAL,
            )

    # ------------------------------------------------------------------
    @property
    def num_processes(self) -> int:
        return self._n

    def _next_time(self) -> float:
        self._time += 1.0
        return self._time

    def _append(self, pid: ProcessId, kind: EventKind, **fields) -> Event:
        self._check_pid(pid)
        ev = Event(
            pid=pid,
            seq=len(self._events[pid]),
            kind=kind,
            time=self._next_time(),
            **fields,
        )
        self._events[pid].append(ev)
        return ev

    def _check_pid(self, pid: ProcessId) -> None:
        if not 0 <= pid < self._n:
            raise PatternError(f"no such process: {pid}")

    # ------------------------------------------------------------------
    # DSL operations
    # ------------------------------------------------------------------
    def internal(self, pid: ProcessId) -> Event:
        """Append an internal event at ``pid``."""
        return self._append(pid, EventKind.INTERNAL)

    def send(self, src: ProcessId, dst: ProcessId, size: int = 1) -> MessageId:
        """Append a send event at ``src`` for a new message to ``dst``."""
        self._check_pid(dst)
        if src == dst:
            raise PatternError("a process does not send messages to itself")
        msg_id = self._next_msg
        self._next_msg += 1
        ev = self._append(src, EventKind.SEND, msg_id=msg_id)
        self._messages[msg_id] = Message(
            msg_id=msg_id, src=src, dst=dst, send_seq=ev.seq, size=size
        )
        return msg_id

    def deliver(self, msg_id: MessageId) -> Event:
        """Append the delivery event of a previously sent message."""
        if msg_id not in self._messages:
            raise PatternError(f"unknown message {msg_id}")
        if msg_id in self._delivered:
            raise PatternError(f"message {msg_id} already delivered")
        m = self._messages[msg_id]
        ev = self._append(m.dst, EventKind.DELIVER, msg_id=msg_id)
        self._messages[msg_id] = Message(
            msg_id=m.msg_id,
            src=m.src,
            dst=m.dst,
            send_seq=m.send_seq,
            deliver_seq=ev.seq,
            size=m.size,
        )
        self._delivered.add(msg_id)
        return ev

    def transmit(self, src: ProcessId, dst: ProcessId, size: int = 1) -> MessageId:
        """Send and immediately deliver a message (a causal chain of one)."""
        msg_id = self.send(src, dst, size=size)
        self.deliver(msg_id)
        return msg_id

    def checkpoint(
        self, pid: ProcessId, kind: CheckpointKind = CheckpointKind.BASIC
    ) -> int:
        """Append a checkpoint at ``pid``; returns its index."""
        self._check_pid(pid)
        self._ckpt_index[pid] += 1
        index = self._ckpt_index[pid]
        self._append(
            pid, EventKind.CHECKPOINT, checkpoint_index=index, checkpoint_kind=kind
        )
        return index

    def checkpoint_all(self) -> None:
        """Take one checkpoint on every process (e.g. to close a pattern)."""
        for pid in range(self._n):
            self.checkpoint(pid)

    # ------------------------------------------------------------------
    def build(self, validate: bool = True, close: bool = False) -> History:
        """Freeze the pattern into a :class:`History`.

        ``close=True`` appends FINAL checkpoints to any process whose last
        interval contains events and drops in-transit messages, producing a
        closed history suitable for whole-pattern analyses.
        """
        h = History(self._events, self._messages)
        if close:
            h = h.closed()
        if validate:
            validate_history(h)
        return h


def figure1_pattern() -> History:
    """The checkpoint and communication pattern of the paper's Figure 1a.

    Three processes ``i=0, j=1, k=2``; checkpoints ``C(i,0..3)``,
    ``C(j,0..3)``, ``C(k,0..3)`` and messages ``m1..m7`` (ids 0..6 here).
    The figure fixes, in particular:

    * ``m1``: ``I(i,1) -> I(j,1)``; ``m2``: ``I(j,1) -> I(i,2)``
    * ``m3``: ``I(k,1) -> I(j,1)``; ``m4``: ``I(j,2) -> I(k,2)``
    * ``m5``: ``I(i,3) -> I(j,2)`` (orphan w.r.t. ``(C(i,2), C(j,2))``)
    * ``m6``: ``I(j,3) -> I(k,2)``; ``m7``: ``I(k,3) -> I(j,3)``

    It exhibits the non-causal chain ``[m5, m4]`` with causal sibling
    ``[m5, m6]`` and the non-causal chain ``[m3, m2]`` from ``C(k,1)`` to
    ``C(i,2)``.
    """
    i, j, k = 0, 1, 2
    b = PatternBuilder(3)
    # Interval 1 activity.  send(m2) precedes deliver(m3) at P_j, so the
    # junction m3 -> m2 is non-causal (both in I(j,1)): [m3, m2] is a
    # non-causal chain from C(k,1) to C(i,2).
    m1 = b.send(i, j)
    b.deliver(m1)
    m2 = b.send(j, i)
    m3 = b.send(k, j)
    b.deliver(m3)
    # First checkpoints.
    b.checkpoint(i)  # C(i,1)
    b.checkpoint(j)  # C(j,1)
    b.checkpoint(k)  # C(k,1)
    # Interval 2 activity.  send(m4) precedes deliver(m5) at P_j, so
    # [m5, m4] is non-causal; [m5, m6] is its causal sibling.
    b.deliver(m2)  # m2 arrives at i in I(i,2): junction m2 -> m5 is causal
    b.checkpoint(i)  # C(i,2)
    m5 = b.send(i, j)  # sent in I(i,3)
    m4 = b.send(j, k)  # sent in I(j,2), before deliver(m5)
    b.deliver(m5)  # delivered at j in I(j,2): orphan w.r.t. (C(i,2), C(j,2))
    b.checkpoint(j)  # C(j,2)
    m6 = b.send(j, k)  # sent in I(j,3), after deliver(m5): causal sibling
    b.deliver(m4)  # both delivered at k in I(k,2)
    b.deliver(m6)
    b.checkpoint(k)  # C(k,2)
    m7 = b.send(k, j)  # sent in I(k,3)
    b.deliver(m7)  # delivered at j in I(j,3): junction m4 -> m7 is causal
    b.checkpoint(i)  # C(i,3)
    b.checkpoint(j)  # C(j,3)
    b.checkpoint(k)  # C(k,3)
    history = b.build()
    # Expose the figure's message names for tests: m1..m7 -> ids.
    history.figure_names = {  # type: ignore[attr-defined]
        "m1": m1, "m2": m2, "m3": m3, "m4": m4, "m5": m5, "m6": m6, "m7": m7,
    }
    return history
