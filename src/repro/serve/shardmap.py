"""Consistent-hash shard ownership: which shard process owns a session.

The router and every shard process must agree, forever and across
restarts, on the mapping ``session id -> shard index``.  Anything
ambient (dict iteration order, interpreter hash randomisation, wall
clock) is therefore banned from the construction; the ring is a pure
function of ``(shards, replicas)`` built from SHA-256, so two processes
that agree on those two integers agree on every placement -- and the
serialized form (:meth:`ShardMap.to_doc`) lets them *prove* it instead
of assuming it.

Why a consistent-hash ring rather than ``crc32(session) % shards`` (the
in-process worker pool's rule): when the shard count changes across a
restart, a modulus reshuffles nearly every session, while the ring
moves only the sessions whose arc changed owner -- the "rollback scope
follows ownership" discipline needs that locality, because every moved
session pays a snapshot-verified re-home (see ``router.py``).

On top of the ring sits one small escape hatch: an explicit
``overrides`` table written by the ``rebalance`` admin verb.  A session
in ``overrides`` lives where the table says, not where the ring says;
the table is part of the serialized document, so a router restart
cannot silently forget a migration.  The startup reconcile pass
(:meth:`Router.reconcile_layout <repro.serve.router.Router._reconcile>`)
folds overrides back into ring placement by physically moving the
sessions, then clears the table -- overrides are a migration in flight,
not a second source of truth.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.jsonio import canonical_dumps
from repro.types import SimulationError

#: Ring points per shard.  64 keeps the worst/best shard load ratio
#: within ~20% for realistic session counts while the ring stays small
#: enough to rebuild on every start (shards * replicas points).
DEFAULT_REPLICAS = 64


def _point(label: str) -> int:
    """A ring position: the first 8 bytes of SHA-256, big-endian.

    SHA-256 rather than ``hash()``: Python's string hashing is
    randomized per process (PYTHONHASHSEED), and the whole design rests
    on every process computing identical placements.
    """
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big"
    )


class ShardMap:
    """Deterministic session-id -> shard-index map (ring + overrides)."""

    def __init__(
        self,
        shards: int,
        replicas: int = DEFAULT_REPLICAS,
        overrides: Optional[Dict[str, int]] = None,
    ) -> None:
        if shards <= 0:
            raise SimulationError(f"shard count must be positive, got {shards}")
        if replicas <= 0:
            raise SimulationError(
                f"replica count must be positive, got {replicas}"
            )
        self.shards = shards
        self.replicas = replicas
        self.overrides: Dict[str, int] = dict(overrides or {})
        for sid, shard in self.overrides.items():
            if not 0 <= shard < shards:
                raise SimulationError(
                    f"override {sid!r} -> {shard} outside 0..{shards - 1}"
                )
        points: List[Tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(replicas):
                points.append((_point(f"shard:{shard}:{replica}"), shard))
        points.sort()
        self._ring_points = [p for p, _ in points]
        self._ring_owners = [s for _, s in points]

    # ------------------------------------------------------------------
    def ring_owner(self, session_id: str) -> int:
        """Placement by the ring alone, ignoring overrides."""
        where = bisect_right(self._ring_points, _point(session_id))
        if where == len(self._ring_points):
            where = 0  # wrap: past the last point owns from the first
        return self._ring_owners[where]

    def owner(self, session_id: str) -> int:
        """The shard index that owns ``session_id`` right now."""
        override = self.overrides.get(session_id)
        if override is not None:
            return override
        return self.ring_owner(session_id)

    # ------------------------------------------------------------------
    def to_doc(self) -> Dict[str, object]:
        """The serialized layout (canonical-JSON-safe)."""
        return {
            "version": 1,
            "shards": self.shards,
            "replicas": self.replicas,
            "overrides": dict(sorted(self.overrides.items())),
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, object]) -> "ShardMap":
        if doc.get("version") != 1:
            raise SimulationError(
                f"unsupported shardmap version {doc.get('version')!r}"
            )
        overrides = doc.get("overrides") or {}
        return cls(
            int(doc["shards"]),  # type: ignore[arg-type]
            int(doc.get("replicas", DEFAULT_REPLICAS)),  # type: ignore[arg-type]
            {str(k): int(v) for k, v in dict(overrides).items()},  # type: ignore[arg-type]
        )

    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Persist atomically (write-tmp, fsync, rename) to ``path``."""
        import os

        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as f:
            f.write(canonical_dumps(self.to_doc()))
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    @classmethod
    def load(cls, path: Union[str, Path]) -> Optional["ShardMap"]:
        """The layout stored at ``path``, or None if none exists."""
        import json

        path = Path(path)
        if not path.exists():
            return None
        return cls.from_doc(json.loads(path.read_text(encoding="utf-8")))

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ShardMap) and self.to_doc() == other.to_doc()
        )

    def __repr__(self) -> str:
        return (
            f"<ShardMap shards={self.shards} replicas={self.replicas} "
            f"overrides={len(self.overrides)}>"
        )
