"""Online R-graph maintenance over a *growing* pattern.

:class:`repro.graph.rgraph.RGraph` is built once from a finished
history.  :class:`IncrementalRGraph` instead follows a computation as it
happens: processes take checkpoints and deliver messages one at a time,
and reachability / Z-cycle / useless-checkpoint queries are answered
online from an :class:`~repro.graph.reachability.IncrementalClosure`
that is updated edge by edge -- no per-query recondensation.

The online trick is the *frontier node*: for every process the graph
always contains one node for the checkpoint that will close the
currently-open interval (index ``last_index + 1``).  A message delivered
in an open interval hooks onto frontier nodes; when the checkpoint is
actually taken the frontier node simply *becomes* it (same node id) and
a fresh frontier is appended behind a succession edge.  This mirrors how
a CIC protocol sees the pattern: the sender piggybacks its current
interval index, the receiver attributes the delivery to its own open
interval.

Fed the events of a closed history in time order
(:meth:`IncrementalRGraph.from_history`), the resulting reachability
over real (non-frontier) checkpoints is bit-identical to the batch
``RGraph`` of that history -- the differential suite in
``tests/test_differential_closure.py`` holds the two to that contract.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, TYPE_CHECKING

from repro.events.history import History
from repro.graph.reachability import IncrementalClosure
from repro.types import CheckpointId, PatternError, ProcessId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer


class IncrementalRGraph:
    """R-graph of a pattern under construction, with online closure.

    Optionally instrumented: ``tracer`` receives ``closure.node`` /
    ``closure.edge`` events (the latter with the number of bitsets the
    closure actually updated), ``metrics`` maintains ``closure.nodes``,
    ``closure.edges`` and ``closure.edge_updates``.  Feed methods accept
    the simulation time ``t`` purely to stamp those events; it defaults
    to 0.0 and has no semantic effect.
    """

    def __init__(
        self,
        n: int,
        tracer: Optional["Tracer"] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        if n <= 0:
            raise PatternError("an R-graph needs at least one process")
        self._n = n
        self.tracer = tracer
        self.metrics = metrics
        self._closure = IncrementalClosure()
        self._nodes: List[CheckpointId] = []
        self._id_of: Dict[CheckpointId, int] = {}
        # Index of the last *taken* checkpoint per process; the frontier
        # node sits at last_index + 1.
        self._last_index = [0] * n
        for pid in range(n):
            self._new_node(CheckpointId(pid, 0))
        for pid in range(n):
            self._new_node(CheckpointId(pid, 1))
            self._add_edge(CheckpointId(pid, 0), CheckpointId(pid, 1))

    # ------------------------------------------------------------------
    # construction feed
    # ------------------------------------------------------------------
    def _new_node(self, cid: CheckpointId, t: float = 0.0) -> int:
        node = self._closure.add_node()
        self._id_of[cid] = node
        self._nodes.append(cid)
        if self.tracer:
            self.tracer.event("closure.node", t, pid=cid.pid, index=cid.index)
        if self.metrics is not None:
            self.metrics.set("closure.nodes", len(self._nodes))
        return node

    def _add_edge(self, a: CheckpointId, b: CheckpointId, t: float = 0.0) -> None:
        touched = self._closure.add_edge(self._id_of[a], self._id_of[b])
        if self.tracer:
            self.tracer.event(
                "closure.edge",
                t,
                src=[a.pid, a.index],
                dst=[b.pid, b.index],
                touched=touched,
            )
        if self.metrics is not None:
            self.metrics.inc("closure.edges")
            self.metrics.inc("closure.edge_updates", touched)

    def take_checkpoint(self, pid: ProcessId, t: float = 0.0) -> CheckpointId:
        """Process ``pid`` takes its next checkpoint.

        The existing frontier node becomes the concrete checkpoint
        ``C(pid, last_index + 1)``; a new frontier is appended with the
        succession edge.  Returns the id of the checkpoint just taken.
        """
        taken = CheckpointId(pid, self._last_index[pid] + 1)
        self._last_index[pid] = taken.index
        frontier = CheckpointId(pid, taken.index + 1)
        self._new_node(frontier, t)
        self._add_edge(taken, frontier, t)
        return taken

    def observe_delivery(
        self,
        src: ProcessId,
        send_interval: int,
        dst: ProcessId,
        deliver_interval: Optional[int] = None,
        t: float = 0.0,
    ) -> None:
        """Record the delivery of one message as an R-graph edge.

        ``send_interval`` is the sender's interval index at send time
        (what CIC protocols piggyback); ``deliver_interval`` defaults to
        the receiver's currently-open interval.  Both may name frontier
        checkpoints -- the edge endpoints solidify when those
        checkpoints are taken.
        """
        if deliver_interval is None:
            deliver_interval = self._last_index[dst] + 1
        if send_interval > self._last_index[src] + 1:
            raise PatternError(
                f"send interval {send_interval} is in P{src}'s future "
                f"(frontier is {self._last_index[src] + 1})"
            )
        if deliver_interval > self._last_index[dst] + 1:
            raise PatternError(
                f"deliver interval {deliver_interval} is in P{dst}'s future "
                f"(frontier is {self._last_index[dst] + 1})"
            )
        self._add_edge(
            CheckpointId(src, send_interval),
            CheckpointId(dst, deliver_interval),
            t,
        )

    @classmethod
    def from_history(
        cls,
        history: History,
        tracer: Optional["Tracer"] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> "IncrementalRGraph":
        """Replay a (closed) history's events in time order.

        Equivalent to what a live simulation feed would have produced;
        the closed history guarantees every message edge lands between
        real checkpoints.
        """
        history = history.closed()
        inc = cls(history.num_processes, tracer=tracer, metrics=metrics)
        for event in history.events_by_time():
            if event.is_checkpoint:
                if event.checkpoint_index == 0:
                    continue  # initial checkpoints exist from construction
                taken = inc.take_checkpoint(event.pid, t=event.time)
                assert taken.index == event.checkpoint_index
            elif event.is_deliver:
                m = history.message(event.msg_id)
                inc.observe_delivery(
                    m.src,
                    history.send_interval(m),
                    m.dst,
                    history.deliver_interval(m),
                    t=event.time,
                )
        return inc

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def num_processes(self) -> int:
        return self._n

    def last_index(self, pid: ProcessId) -> int:
        return self._last_index[pid]

    def frontier(self, pid: ProcessId) -> CheckpointId:
        """The node standing for ``pid``'s next (not yet taken) checkpoint."""
        return CheckpointId(pid, self._last_index[pid] + 1)

    def has_node(self, cid: CheckpointId) -> bool:
        return cid in self._id_of

    def num_nodes(self) -> int:
        return len(self._nodes)

    def num_edges(self) -> int:
        return self._closure.num_edges()

    def is_frontier(self, cid: CheckpointId) -> bool:
        return cid.index > self._last_index[cid.pid]

    # ------------------------------------------------------------------
    # online queries
    # ------------------------------------------------------------------
    def has_rpath(self, a: CheckpointId, b: CheckpointId) -> bool:
        """R-path ``a -> b`` (trivial ``a == a`` included), as of now."""
        return self._closure.reaches_or_equal(self._id_of[a], self._id_of[b])

    def reaches_strictly(self, a: CheckpointId, b: CheckpointId) -> bool:
        return self._closure.reaches(self._id_of[a], self._id_of[b])

    def reachable_set(self, a: CheckpointId) -> Set[CheckpointId]:
        ids = self._closure.reachable_set(self._id_of[a])
        return {self._nodes[v] for v in ids}

    def on_cycle(self, cid: CheckpointId) -> bool:
        return self._closure.on_cycle(self._id_of[cid])

    def has_z_cycle(self) -> bool:
        """Any Z-cycle (cyclic SCC) in the pattern so far?"""
        return bool(self._closure.cyclic_components())

    def cycles(self) -> List[List[CheckpointId]]:
        """Cyclic SCCs, each sorted, ordered by smallest member."""
        comps = [
            sorted(self._nodes[v] for v in comp)
            for comp in self._closure.cyclic_components()
        ]
        return sorted(comps, key=lambda comp: comp[0])

    def useless_checkpoints(self) -> List[CheckpointId]:
        """Checkpoints straddled by a backward R-path, as of now.

        ``C(p, x)`` is useless iff there is an R-path ``C(p,u) -> C(p,v)``
        with ``u > x >= v`` -- read directly off the closure bitsets of
        ``p``'s own nodes, frontier excluded.
        """
        out: Set[CheckpointId] = set()
        for pid in range(self._n):
            # The frontier (index last+1) participates as a path *source*:
            # a chain leaving the open interval can already doom taken
            # checkpoints, even though its closing checkpoint is pending.
            node_of = [
                self._id_of[CheckpointId(pid, x)]
                for x in range(self._last_index[pid] + 2)
            ]
            for u in range(1, self._last_index[pid] + 2):
                mask = self._closure.reach_mask(node_of[u])
                for v in range(u):
                    if mask >> node_of[v] & 1:
                        # Everything in [v, u) is straddled, hence useless.
                        out.update(CheckpointId(pid, x) for x in range(v, u))
                        break
        return sorted(out)

    # ------------------------------------------------------------------
    # snapshot / restore (session eviction in ``repro.serve``)
    # ------------------------------------------------------------------
    def state(self) -> dict:
        """A JSON-safe snapshot: nodes, frontier indices, closure."""
        return {
            "n": self._n,
            "last_index": list(self._last_index),
            "nodes": [[cid.pid, cid.index] for cid in self._nodes],
            "closure": self._closure.state(),
        }

    @classmethod
    def from_state(
        cls,
        state: dict,
        tracer: Optional["Tracer"] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> "IncrementalRGraph":
        """Rebuild a graph from a :meth:`state` snapshot.

        The restored instance answers every query bit-identically to
        the snapshotted one and accepts further feed calls; tracer and
        metrics attach fresh (instrument state is not part of a
        snapshot).
        """
        inst = cls.__new__(cls)
        inst._n = int(state["n"])
        inst.tracer = tracer
        inst.metrics = metrics
        inst._closure = IncrementalClosure.from_state(state["closure"])
        inst._nodes = [
            CheckpointId(int(pid), int(index)) for pid, index in state["nodes"]
        ]
        inst._id_of = {cid: node for node, cid in enumerate(inst._nodes)}
        inst._last_index = [int(x) for x in state["last_index"]]
        return inst

    def __repr__(self) -> str:
        return (
            f"<IncrementalRGraph n={self._n} nodes={self.num_nodes()} "
            f"edges={self.num_edges()}>"
        )
