"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's evaluation artifacts
(DESIGN.md's per-experiment index) and *prints* the same rows/series the
paper reports -- the ``emit`` fixture writes through pytest's capture so
the tables appear in ``bench_output.txt``.
"""

import pytest


@pytest.fixture
def emit(capsys):
    """Print ``text`` directly to the terminal, bypassing capture."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _emit
