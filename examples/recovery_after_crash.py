"""Rollback recovery end to end: crash, recovery line, message replay.

    python examples/recovery_after_crash.py

Walks the classical use-case of consistent checkpoints: a process
crashes mid-run; the recovery line (latest consistent cut below the
crash) is computed by rollback propagation; messages crossing the line
are replayed from sender-based logs.  Run twice -- once under
independent checkpointing, once under the BHMR protocol -- to see the
domino effect appear and disappear.
"""

from repro import CrashSpec, api, recovery_line
from repro.harness import render_table
from repro.recovery import build_sender_logs, replay_plan


def crash_and_recover(protocol: str, seed: int = 7):
    history = api.run(
        workload="random",
        workload_args={"send_rate": 2.0},
        protocol=protocol,
        n=3,
        duration=40.0,
        seed=seed,
        basic_rate=0.4,
    ).history

    # P1 crashes at simulated time 30; its volatile tail is lost.
    crash = {1: CrashSpec(1, at_time=30.0)}
    line = recovery_line(history, crash)

    logs = build_sender_logs(history)
    plan = replay_plan(history, line.cut)
    return history, line, logs, plan


def main() -> None:
    rows = []
    for protocol in ("independent", "bhmr"):
        history, line, logs, plan = crash_and_recover(protocol)
        rows.append(
            {
                "protocol": protocol,
                "recovery line": ", ".join(map(repr, line.checkpoint_ids())),
                "events undone": line.events_undone,
                "ckpts discarded": line.checkpoints_discarded,
                "msgs to replay": plan.total,
            }
        )
    print(render_table(rows, title="Crash of P1 at t=30 (same traffic)"))

    history, line, logs, plan = crash_and_recover("bhmr")
    print("\nReplay plan after recovery (sender -> messages):")
    for sender, msgs in sorted(plan.by_sender.items()):
        ids = ", ".join(f"m{m.msg_id}" for m in msgs)
        print(f"  P{sender} (log holds {len(logs[sender])} msgs): {ids}")

    # Actually execute the recovery and prove convergence by state digest.
    from repro.state import recovery_convergence_report

    print("\nExecuting the recovery (piecewise-deterministic replay):")
    for report_line in recovery_convergence_report(history, line.cut, logs):
        print(f"  {report_line}")
    print("\nWithout sender logs the same replay gets stuck:")
    for report_line in recovery_convergence_report(history, line.cut, None):
        print(f"  {report_line}")


if __name__ == "__main__":
    main()
