"""Z-cycle and useless-checkpoint detection tests."""

import pytest

from repro.analysis import (
    check_rdt,
    find_z_cycles,
    has_z_cycle,
    useless_checkpoints,
    useless_checkpoints_rgraph,
)
from repro.events import PatternBuilder, figure1_pattern, random_pattern
from repro.types import CheckpointId as C

I, J, K = 0, 1, 2


def zcycle_pattern():
    """The paper's Figure 4 shape: a chain from C(k,z) back to C(k,z-1).

    P_k sends mu' after its checkpoint; P_i relays back before P_k's
    checkpoint: C(k,1) becomes useless.
    """
    b = PatternBuilder(2)  # P0 = P_k, P1 = P_i
    mu2 = b.send(1, 0)  # the returning message, sent early by P_i
    b.deliver(mu2)  # delivered at P_k in I(0,1)
    b.checkpoint(0)  # C(0,1)
    mu1 = b.send(0, 1)  # sent by P_k in I(0,2)
    b.deliver(mu1)  # delivered at P_i in I(1,1): zigzag closes
    return b.build(close=True)


class TestZCyclePattern:
    def test_useless_checkpoint_found(self):
        h = zcycle_pattern()
        assert useless_checkpoints(h) == [C(0, 1)]

    def test_rgraph_detector_agrees(self):
        h = zcycle_pattern()
        assert useless_checkpoints_rgraph(h) == [C(0, 1)]

    def test_z_cycles_reported(self):
        h = zcycle_pattern()
        assert has_z_cycle(h)
        (cycle,) = find_z_cycles(h)
        assert C(0, 1) in cycle or C(0, 2) in cycle

    def test_z_cycle_implies_rdt_violation(self):
        assert not check_rdt(zcycle_pattern()).holds


class TestFigure1:
    def test_ck2_is_useless(self):
        h = figure1_pattern()
        assert useless_checkpoints(h) == [C(K, 2)]
        assert useless_checkpoints_rgraph(h) == [C(K, 2)]

    def test_cycle_members(self):
        (cycle,) = find_z_cycles(figure1_pattern())
        assert set(cycle) == {C(J, 3), C(K, 2), C(K, 3)}


class TestCleanPatterns:
    def test_causal_traffic_has_no_z_cycle(self):
        b = PatternBuilder(3)
        b.transmit(0, 1)
        b.transmit(1, 2)
        b.checkpoint_all()
        b.transmit(2, 0)
        h = b.build(close=True)
        assert not has_z_cycle(h)
        assert useless_checkpoints(h) == []

    def test_no_messages_no_cycles(self):
        b = PatternBuilder(2)
        b.checkpoint_all()
        assert useless_checkpoints(b.build()) == []


class TestProperties:
    @pytest.mark.parametrize("seed", range(10))
    def test_detectors_agree_on_random_patterns(self, seed):
        h = random_pattern(n=4, steps=70, seed=seed)
        assert useless_checkpoints(h) == useless_checkpoints_rgraph(h)

    @pytest.mark.parametrize("seed", range(10))
    def test_rdt_implies_no_useless_checkpoints(self, seed):
        h = random_pattern(n=3, steps=50, seed=seed)
        if check_rdt(h).holds:
            assert useless_checkpoints(h) == []
