"""Observability: structured tracing, metrics and profiling.

Three independent instruments with one design rule each:

* :class:`Tracer` (:mod:`repro.obs.tracer`) -- typed events keyed by
  simulation time + sequence, canonical JSONL, byte-stable across runs
  of the same seed; free when disabled.
* :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) -- named
  counters/gauges/histograms, snapshot-able and mergeable across sweep
  workers.
* :class:`Profiler` (:mod:`repro.obs.profile`) -- wall-clock per-phase
  timing, deliberately *not* part of the trace so traces stay
  deterministic.

:mod:`repro.obs.jsonio` holds the canonical JSON encoder they (and the
result cache) share.  ``docs/OBSERVABILITY.md`` documents the event
schema and metric names.
"""

from repro.obs.jsonio import canonical_bytes, canonical_dumps, jsonable
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.profile import NULL_PROFILER, PHASES, Profiler
from repro.obs.tracer import KINDS, NULL_TRACER, TraceEvent, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "KINDS",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_PROFILER",
    "NULL_TRACER",
    "PHASES",
    "Profiler",
    "TraceEvent",
    "Tracer",
    "canonical_bytes",
    "canonical_dumps",
    "jsonable",
]
