"""Overhead of the observability layer on the simulation hot path.

The contract of :mod:`repro.obs` is *zero overhead when disabled*: an
uninstrumented run pays one falsy check per call site.  These benchmarks
measure the three regimes on one mid-size replay so regressions in the
guard pattern show up as a ratio, not a feeling:

* baseline -- no tracer, no metrics, no profiler (the default path);
* disabled tracer -- a constructed-but-off :class:`Tracer` (same falsy
  guard, exercised through the object);
* fully instrumented -- tracer + metrics + profiler all live.

``test_disabled_matches_baseline`` asserts the disabled path stays
within noise of the baseline; the enabled path's cost is reported for
``docs/OBSERVABILITY.md`` but deliberately unasserted (it buffers every
event and may legitimately cost a few times the baseline).
"""

import pytest

from repro import api
from repro.obs import MetricsRegistry, Profiler, Tracer

SCENARIO = dict(
    workload="random",
    workload_args={"send_rate": 2.0},
    n=6,
    duration=40.0,
    seed=2,
    basic_rate=0.3,
)


def run_baseline():
    return api.run(protocol="bhmr", **SCENARIO)


def run_disabled_tracer():
    return api.run(protocol="bhmr", tracer=Tracer(enabled=False), **SCENARIO)


def run_instrumented():
    return api.run(
        protocol="bhmr",
        tracer=Tracer(),
        metrics=MetricsRegistry(),
        profiler=Profiler(),
        **SCENARIO,
    )


def test_baseline_uninstrumented(benchmark):
    result = benchmark(run_baseline)
    assert result.metrics.forced_checkpoints > 0


def test_disabled_tracer(benchmark):
    result = benchmark(run_disabled_tracer)
    assert result.metrics.forced_checkpoints > 0


def test_fully_instrumented(benchmark):
    result = benchmark(run_instrumented)
    assert result.metrics.forced_checkpoints > 0


def test_disabled_matches_baseline():
    """Results (not just timings) are identical with instruments off."""
    assert run_baseline().metrics == run_disabled_tracer().metrics


def test_instrumented_matches_baseline():
    """Instruments observe; they never perturb the simulation."""
    assert run_baseline().metrics == run_instrumented().metrics


@pytest.mark.parametrize("repeats", [3])
def test_disabled_overhead_bounded(repeats):
    """A coarse in-process guard: the disabled path must stay within a
    generous factor of baseline (CI-noise tolerant; the benchmark above
    gives the precise number)."""
    import time

    def best_of(fn):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    run_baseline()  # warm imports and caches
    base = best_of(run_baseline)
    disabled = best_of(run_disabled_tracer)
    assert disabled < base * 1.5 + 0.05
