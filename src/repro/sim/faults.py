"""Deterministic crash schedules for fault-injection runs.

A :class:`CrashSchedule` is the fault model of one run: which processes
crash, and at which simulated instants.  Schedules are plain data --
built explicitly from :class:`InjectedCrash` entries or drawn
deterministically from a seed (:meth:`CrashSchedule.random`) -- so a
crash-injected run is a pure function of ``(scenario seed, crash seed)``
and two runs with equal seeds produce byte-identical traces.

The model is fail-stop with instantaneous recovery: at each scheduled
instant the named process loses its volatile state (everything after its
last checkpoint), the online recovery engine
(:mod:`repro.sim.crashes`) computes the recovery line, rolls the system
back, replays crossing messages from the sender logs and resumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.types import ProcessId, SimulationError


@dataclass(frozen=True)
class InjectedCrash:
    """One scheduled failure: process ``pid`` crashes at time ``time``."""

    pid: ProcessId
    time: float

    def __repr__(self) -> str:
        return f"<crash P{self.pid}@t={self.time:g}>"


class CrashSchedule:
    """An ordered set of injected crashes.

    Crashes are kept sorted by ``(time, pid)``; simultaneous crashes of
    several processes form one *crash group* and are recovered together
    (a multi-process failure).
    """

    def __init__(self, crashes: Sequence[InjectedCrash] = ()) -> None:
        self.crashes: Tuple[InjectedCrash, ...] = tuple(
            sorted(crashes, key=lambda c: (c.time, c.pid))
        )
        for crash in self.crashes:
            if crash.time < 0:
                raise SimulationError(f"crash time must be >= 0: {crash!r}")

    @classmethod
    def at(cls, *specs: Tuple[ProcessId, float]) -> "CrashSchedule":
        """Explicit schedule from ``(pid, time)`` pairs."""
        return cls([InjectedCrash(pid, t) for pid, t in specs])

    @classmethod
    def random(
        cls,
        n: int,
        duration: float,
        count: int = 1,
        seed: int = 0,
        margin: float = 0.1,
    ) -> "CrashSchedule":
        """``count`` crashes at seeded-uniform times on seeded processes.

        Times fall in ``[margin * duration, (1 - margin) * duration]`` so
        crashes land mid-run rather than on the empty prologue/epilogue.
        The draw is a pure function of the arguments -- one
        ``random.Random(seed)`` stream, independent of the scenario's own
        RNG, so the same schedule can be injected into different
        workloads and protocols.
        """
        if n <= 0:
            raise SimulationError("need at least one process to crash")
        if count < 0:
            raise SimulationError("crash count must be >= 0")
        rng = random.Random(seed)
        lo, hi = margin * duration, (1.0 - margin) * duration
        crashes = [
            InjectedCrash(rng.randrange(n), rng.uniform(lo, hi))
            for _ in range(count)
        ]
        return cls(crashes)

    # ------------------------------------------------------------------
    def groups(self) -> List[Tuple[float, List[ProcessId]]]:
        """Crashes grouped by instant: ``[(time, [pids...]), ...]``.

        Several crashes of the *same* process at one instant collapse to
        one; distinct instants stay separate recoveries.
        """
        grouped: Dict[float, List[ProcessId]] = {}
        for crash in self.crashes:
            pids = grouped.setdefault(crash.time, [])
            if crash.pid not in pids:
                pids.append(crash.pid)
        return [(t, grouped[t]) for t in sorted(grouped)]

    def __len__(self) -> int:
        return len(self.crashes)

    def __iter__(self) -> Iterator[InjectedCrash]:
        return iter(self.crashes)

    def __bool__(self) -> bool:
        return bool(self.crashes)

    def __repr__(self) -> str:
        inner = ", ".join(repr(c) for c in self.crashes)
        return f"<CrashSchedule [{inner}]>"
