"""Workload behaviour tests: each environment produces its intended shape."""

import pytest

from repro.sim import generate_trace, TraceOpKind
from repro.workloads import (
    BurstyWorkload,
    ClientServerWorkload,
    MasterWorkerWorkload,
    OverlappingGroupsWorkload,
    PipelineWorkload,
    RandomUniformWorkload,
    RingWorkload,
    WORKLOADS,
)


def messages_of(trace):
    return [op for op in trace if op.kind is TraceOpKind.SEND]


class TestRandomUniform:
    def test_produces_traffic(self):
        t = generate_trace(4, RandomUniformWorkload(send_rate=2.0), duration=20, seed=0)
        assert t.num_messages() > 20

    def test_no_self_sends_and_all_pairs_used(self):
        t = generate_trace(4, RandomUniformWorkload(send_rate=3.0), duration=60, seed=0)
        pairs = {(op.pid, op.peer) for op in messages_of(t)}
        assert all(a != b for a, b in pairs)
        assert len(pairs) == 12  # all ordered pairs of 4 processes

    def test_burst_parameter(self):
        t = generate_trace(
            3, RandomUniformWorkload(send_rate=1.0, burst=3), duration=20, seed=0
        )
        assert t.num_messages() % 3 == 0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            RandomUniformWorkload(send_rate=0)
        with pytest.raises(ValueError):
            RandomUniformWorkload(burst=0)


class TestGroups:
    def test_group_structure_overlaps(self):
        w = OverlappingGroupsWorkload(group_size=4, overlap=1)
        generate_trace(9, w, duration=5, seed=0)
        groups = w.groups()
        assert len(groups) >= 2
        assert set(groups[0]) & set(groups[1])  # consecutive groups share

    def test_traffic_mostly_intra_group(self):
        w = OverlappingGroupsWorkload(
            group_size=4, overlap=1, send_rate=2.0, p_external=0.05
        )
        t = generate_trace(9, w, duration=60, seed=1)
        member = {}
        for gi, group in enumerate(w.groups()):
            for pid in group:
                member.setdefault(pid, set()).add(gi)
        msgs = messages_of(t)
        intra = sum(
            1 for op in msgs if member[op.pid] & member[op.peer]
        )
        assert intra / len(msgs) > 0.8

    def test_rejects_bad_overlap(self):
        with pytest.raises(ValueError):
            OverlappingGroupsWorkload(group_size=3, overlap=3)


class TestClientServer:
    def test_chain_traffic_only_adjacent_or_replies(self):
        t = generate_trace(5, ClientServerWorkload(), duration=80, seed=2)
        for op in messages_of(t):
            src, dst = op.pid, op.peer
            # requests go i -> i+1 (client 0 -> 1); replies go back along
            # held requester links, which are also chain-adjacent here.
            assert abs(src - dst) == 1, (src, dst)

    def test_requests_keep_flowing(self):
        t = generate_trace(4, ClientServerWorkload(think_time=0.5), duration=80, seed=3)
        assert t.num_messages() > 40

    def test_pipeline_increases_traffic(self):
        lo = generate_trace(4, ClientServerWorkload(pipeline=1), duration=60, seed=4)
        hi = generate_trace(4, ClientServerWorkload(pipeline=4), duration=60, seed=4)
        assert hi.num_messages() > lo.num_messages()

    def test_needs_two_processes(self):
        with pytest.raises(ValueError):
            generate_trace(1, ClientServerWorkload(), duration=5, seed=0)

    def test_last_server_always_replies(self):
        # With forward probability 1, requests always reach S_{n-1} which
        # must reply; conversations still complete.
        t = generate_trace(
            4, ClientServerWorkload(forward_probability=1.0), duration=60, seed=5
        )
        msgs = messages_of(t)
        assert any(op.pid == 3 and op.peer == 2 for op in msgs)


class TestRingAndPipeline:
    def test_ring_passes_token_around(self):
        t = generate_trace(5, RingWorkload(), duration=60, seed=0)
        pairs = {(op.pid, op.peer) for op in messages_of(t)}
        assert pairs <= {((k), (k + 1) % 5) for k in range(5)}
        assert len(pairs) == 5

    def test_multiple_tokens(self):
        one = generate_trace(6, RingWorkload(tokens=1), duration=40, seed=1)
        three = generate_trace(6, RingWorkload(tokens=3), duration=40, seed=1)
        assert three.num_messages() > one.num_messages()

    def test_pipeline_flows_downstream(self):
        t = generate_trace(4, PipelineWorkload(), duration=60, seed=0)
        for op in messages_of(t):
            assert op.peer == op.pid + 1

    def test_ring_rejects_zero_tokens(self):
        with pytest.raises(ValueError):
            RingWorkload(tokens=0)


class TestMasterWorker:
    def test_star_topology(self):
        t = generate_trace(5, MasterWorkerWorkload(), duration=60, seed=0)
        for op in messages_of(t):
            assert op.pid == 0 or op.peer == 0

    def test_all_workers_used(self):
        t = generate_trace(5, MasterWorkerWorkload(), duration=60, seed=0)
        dispatched = {op.peer for op in messages_of(t) if op.pid == 0}
        assert dispatched == {1, 2, 3, 4}

    def test_needs_two_processes(self):
        with pytest.raises(ValueError):
            generate_trace(1, MasterWorkerWorkload(), duration=5, seed=0)


class TestBursty:
    def test_bursts_have_length(self):
        t = generate_trace(4, BurstyWorkload(burst_length=5), duration=60, seed=0)
        assert t.num_messages() >= 5

    def test_rejects_bad_burst(self):
        with pytest.raises(ValueError):
            BurstyWorkload(burst_length=0)


class TestRegistry:
    def test_all_workloads_generate_valid_traces(self):
        for name, cls in WORKLOADS.items():
            t = generate_trace(4, cls(), duration=20, seed=0)
            assert t.num_messages() > 0, name


class TestBulkSynchronous:
    def test_supersteps_produce_all_to_all(self):
        from repro.workloads import BulkSynchronousWorkload

        t = generate_trace(4, BulkSynchronousWorkload(compute_time=0.5), duration=40, seed=0)
        pairs = {(op.pid, op.peer) for op in messages_of(t)}
        assert len(pairs) == 12  # every ordered pair exchanged

    def test_bounded_supersteps(self):
        from repro.workloads import BulkSynchronousWorkload

        t = generate_trace(
            3, BulkSynchronousWorkload(compute_time=0.2, supersteps=2),
            duration=60, seed=1,
        )
        # Each superstep is n(n-1) = 6 messages; at most 2 rounds run.
        assert t.num_messages() <= 12

    def test_rounds_advance(self):
        from repro.workloads import BulkSynchronousWorkload

        w = BulkSynchronousWorkload(compute_time=0.3)
        generate_trace(3, w, duration=40, seed=2)
        assert all(r >= 2 for r in w._round.values())

    def test_rejects_bad_compute_time(self):
        from repro.workloads import BulkSynchronousWorkload

        with pytest.raises(ValueError):
            BulkSynchronousWorkload(compute_time=0)

    def test_bsp_is_benign_for_bhmr(self):
        """The probe the workload exists for: near-zero forcing."""
        from repro.sim import Simulation, SimulationConfig
        from repro.workloads import BulkSynchronousWorkload

        sim = Simulation(
            BulkSynchronousWorkload(compute_time=1.0),
            SimulationConfig(n=4, duration=40.0, seed=0, basic_rate=0.2),
        )
        results = sim.compare(["bhmr", "fdas"])
        bhmr = results["bhmr"].metrics.forced_checkpoints
        fdas = results["fdas"].metrics.forced_checkpoints
        assert bhmr <= fdas
