"""The chaos proxy itself: deterministic schedules, honest forwarding.

Two families:

* **planning** -- the fault schedule is a pure function of
  ``(seed, connection index)``: two proxies with the same seed produce
  identical plans (the replay-bit-identically contract the chaos grid
  leans on), different seeds diverge, and the rate knobs shape what is
  drawn;
* **forwarding** -- with no faults scheduled the proxy is invisible
  (byte-identical replies through every fragmentation mode), and each
  fault kind produces exactly the client-visible failure it models:
  reset -> ConnectionError, stall -> RequestTimeout (never a hang),
  truncate -> ConnectionError on broken framing.
"""

import pytest

from repro.obs.jsonio import canonical_dumps
from repro.serve.chaosproxy import (
    ChaosConfig,
    ChaosProxy,
    ChaosSchedule,
    _FrameSplitter,
)
from repro.serve.client import Client, RequestTimeout
from repro.serve.server import ServerConfig, ServerHandle, serve_in_thread
from repro.serve import wire
from repro.types import SimulationError


def _proxy_handle(upstream: str, config: ChaosConfig) -> ServerHandle:
    """Host a proxy on its own loop thread, like any other daemon."""
    return ServerHandle(ChaosProxy(upstream, config))


@pytest.fixture()
def backend(tmp_path):
    handle = serve_in_thread(
        ServerConfig(unix_path=str(tmp_path / "srv.sock"))
    )
    try:
        yield handle
    finally:
        handle.close()


class TestSchedule:
    CONFIG = ChaosConfig(
        seed=7,
        latency_s=0.001,
        jitter_s=0.002,
        fragment="shred",
        reset_rate=0.2,
        stall_rate=0.2,
        truncate_rate=0.2,
        fault_after=(10, 500),
    )

    def test_same_seed_same_schedule(self):
        a = ChaosSchedule(self.CONFIG)
        b = ChaosSchedule(ChaosConfig(**vars(self.CONFIG)))
        assert [a.plan(i) for i in range(64)] == [b.plan(i) for i in range(64)]

    def test_two_proxies_same_seed_identical_fault_schedules(self):
        # The tentpole determinism claim, stated on the proxy itself.
        p1 = ChaosProxy("unix:/nowhere", self.CONFIG)
        p2 = ChaosProxy("unix:/nowhere", self.CONFIG)
        plans1 = [p1.schedule.plan(i) for i in range(50)]
        plans2 = [p2.schedule.plan(i) for i in range(50)]
        assert plans1 == plans2

    def test_different_seeds_diverge(self):
        a = ChaosSchedule(self.CONFIG)
        b = ChaosSchedule(
            ChaosConfig(**{**vars(self.CONFIG), "seed": 8})
        )
        assert [a.plan(i) for i in range(64)] != [b.plan(i) for i in range(64)]

    def test_plan_is_stateless(self):
        sched = ChaosSchedule(self.CONFIG)
        assert sched.plan(3) == sched.plan(3)
        # Planning out of order changes nothing: no hidden RNG state.
        late = sched.plan(40)
        early = sched.plan(1)
        assert sched.plan(40) == late and sched.plan(1) == early

    def test_rates_bound_fault_kinds(self):
        only_resets = ChaosSchedule(
            ChaosConfig(seed=3, reset_rate=1.0, fault_after=(5, 50))
        )
        for i in range(32):
            plan = only_resets.plan(i)
            for direction in (plan.up, plan.down):
                assert direction.fault is not None
                assert direction.fault.kind == "reset"
                assert 5 <= direction.fault.after_bytes <= 50
        none = ChaosSchedule(ChaosConfig(seed=3))
        for i in range(32):
            plan = none.plan(i)
            assert plan.up.fault is None and plan.down.fault is None

    def test_bad_configs_refused(self):
        with pytest.raises(SimulationError, match="sum"):
            ChaosSchedule(ChaosConfig(reset_rate=0.6, stall_rate=0.6))
        with pytest.raises(SimulationError, match="fragment"):
            ChaosSchedule(ChaosConfig(fragment="confetti"))
        with pytest.raises(SimulationError, match="fault_after"):
            ChaosSchedule(ChaosConfig(fault_after=(10, 5)))


class TestFrameSplitter:
    def test_splits_exactly_at_frame_boundaries(self):
        frames = [
            wire.encode_frame({"seq": i, "kind": "checkpoint"})
            for i in range(5)
        ]
        splitter = _FrameSplitter()
        pieces = splitter.split(b"".join(frames))
        assert pieces == frames

    def test_partial_frames_carry_across_chunks(self):
        frame = wire.encode_frame({"seq": 1, "kind": "send", "payload": "xy"})
        splitter = _FrameSplitter()
        # Feed in fragments that split inside the length prefix and
        # inside the payload; boundaries must still land between frames.
        out = []
        for chunk in (frame[:2], frame[2:7], frame[7:] + frame[:3], frame[3:]):
            out.extend(splitter.split(chunk))
        assert b"".join(out) == frame + frame
        # Each complete frame ends exactly at a piece boundary.
        joined = b"".join(out)
        assert joined[: len(frame)] == frame


class TestTransparentForwarding:
    def _answers(self, address: str, sid: str) -> list:
        with Client(address, timeout=5.0) as client:
            client.hello(sid, n=3, protocol="bhmr")
            out = []
            out.append(client.checkpoint(sid, pid=0))
            reply = client.send(sid, src=0, dst=1)
            out.append(reply)
            out.append(client.deliver(sid, msg_id=reply["msg_id"]))
            out.append(client.query(sid, "rdt_status"))
            return out

    @pytest.mark.parametrize("fragment", ["none", "byte", "shred", "frame"])
    def test_no_faults_is_byte_invisible(self, backend, fragment):
        # Two fresh sessions receive the same ops, one direct and one
        # through the proxy; with no faults scheduled the proxy must be
        # invisible -- byte-identical replies (canonical JSON makes the
        # comparison exact, not just structural).
        direct = self._answers(backend.connect_address(), f"fwd-d-{fragment}")
        proxy = _proxy_handle(
            backend.connect_address(),
            ChaosConfig(seed=11, fragment=fragment, jitter_s=0.0005),
        )
        try:
            proxied = self._answers(
                proxy.connect_address(), f"fwd-p-{fragment}"
            )
        finally:
            proxy.close()
        assert canonical_dumps(proxied) == canonical_dumps(direct)

    def test_latency_is_added_but_answers_survive(self, backend):
        proxy = _proxy_handle(
            backend.connect_address(),
            ChaosConfig(seed=2, latency_s=0.002, jitter_s=0.001, bandwidth=1 << 20),
        )
        try:
            with Client(proxy.connect_address(), timeout=5.0) as client:
                client.hello("chaos-lat", n=2, protocol="bhmr")
                for _ in range(10):
                    assert client.checkpoint("chaos-lat", pid=0)["ok"] is True
        finally:
            summary = proxy.close()
        assert summary["forwarded_bytes"] > 0
        assert summary["connections"] == 1


class TestFaults:
    def test_reset_surfaces_as_connection_error(self, backend):
        proxy = _proxy_handle(
            backend.connect_address(),
            ChaosConfig(seed=5, reset_rate=1.0, fault_after=(30, 60)),
        )
        try:
            client = Client(proxy.connect_address(), timeout=2.0, retries=0)
            with pytest.raises((ConnectionError, RequestTimeout)):
                client.hello("chaos-rst", n=2, protocol="bhmr")
                for _ in range(50):
                    client.checkpoint("chaos-rst", pid=0)
        finally:
            proxy.close()

    def test_stall_surfaces_as_timeout_not_hang(self, backend):
        from time import monotonic

        proxy = _proxy_handle(
            backend.connect_address(),
            ChaosConfig(seed=5, stall_rate=1.0, fault_after=(10, 40)),
        )
        try:
            client = Client(proxy.connect_address(), timeout=0.5, retries=0)
            started = monotonic()
            with pytest.raises((RequestTimeout, ConnectionError)):
                client.hello("chaos-stall", n=2, protocol="bhmr")
                for _ in range(50):
                    client.checkpoint("chaos-stall", pid=0)
            # The deadline held: no eternal hang, and the connection is
            # invalidated for the caller to reconnect.
            assert monotonic() - started < 5.0
        finally:
            proxy.close()

    def test_truncate_surfaces_as_connection_error(self, backend):
        proxy = _proxy_handle(
            backend.connect_address(),
            ChaosConfig(seed=9, truncate_rate=1.0, fault_after=(30, 60)),
        )
        try:
            client = Client(proxy.connect_address(), timeout=2.0, retries=0)
            with pytest.raises((ConnectionError, RequestTimeout)):
                client.hello("chaos-trunc", n=2, protocol="bhmr")
                for _ in range(50):
                    client.checkpoint("chaos-trunc", pid=0)
        finally:
            proxy.close()

    def test_scheduled_faults_do_fire(self, backend):
        """A full-rate schedule actually lands its faults on the wire.

        (Exact fault *counts* are racy by design -- the up and down
        directions race to fire first -- but with reset_rate=1.0 every
        connection that moves enough bytes must abort, and the
        *schedule* driving it is pinned by TestSchedule.)
        """
        proxy = _proxy_handle(
            backend.connect_address(),
            ChaosConfig(seed=21, reset_rate=1.0, fault_after=(20, 200)),
        )
        try:
            broke = 0
            for conn_i in range(6):
                try:
                    client = Client(
                        proxy.connect_address(), timeout=1.0, retries=0
                    )
                    client.hello(f"chaos-det-{conn_i}", n=2, protocol="bhmr")
                    for _ in range(20):
                        client.checkpoint(f"chaos-det-{conn_i}", pid=0)
                except (ConnectionError, RequestTimeout):
                    broke += 1
        finally:
            summary = proxy.close()
        assert broke == 6
        assert summary["faults"] >= 6
        assert summary["connections"] == 6
