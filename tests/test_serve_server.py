"""The live daemon: request vocabulary, backpressure, eviction, drain."""

import asyncio
import threading
import time

import pytest

from repro import api
from repro.obs import MetricsRegistry, Tracer
from repro.serve.client import AsyncClient, Client, ReplyError
from repro.serve.loadgen import run_load
from repro.serve.server import CheckpointServer, ServerConfig, serve_in_thread
from repro.types import SimulationError


@pytest.fixture
def server(tmp_path):
    config = ServerConfig(unix_path=str(tmp_path / "serve.sock"))
    with serve_in_thread(config) as handle:
        yield handle


@pytest.fixture
def client(server):
    with Client(server.connect_address()) as c:
        yield c


class TestVocabulary:
    def test_hello_creates_session(self, client):
        reply = client.hello("alpha", n=3, protocol="fdas")
        assert reply["session"] == "alpha"
        assert reply["n"] == 3
        assert reply["protocol"] == "fdas"
        assert reply["resumed"] is False
        assert reply["events"] == 0

    def test_hello_defaults_protocol(self, client):
        assert client.hello("beta", n=2)["protocol"] == "bhmr"

    def test_full_ingest_cycle(self, client):
        client.hello("s", n=3)
        checkpointed = client.checkpoint("s", pid=0)
        assert checkpointed["index"] == 1
        sent = client.send("s", src=0, dst=1)
        assert sent["msg_id"] == 0
        assert "piggyback" in sent and "force_checkpoint" in sent
        got = client.deliver("s", msg_id=sent["msg_id"])
        assert isinstance(got["force_checkpoint"], bool)
        status = client.query("s", "rdt_status")
        assert status["events"] == 3
        snap = client.snapshot("s")
        assert snap["events"] == 3 and len(snap["digest"]) == 64

    def test_reattach_reports_progress(self, client, server):
        client.hello("s", n=2)
        client.checkpoint("s", pid=0)
        with Client(server.connect_address()) as other:
            reply = other.hello("s")
            assert reply["events"] == 1
            assert reply["n"] == 2

    def test_hello_mismatch_refused(self, client):
        client.hello("s", n=2, protocol="bhmr")
        with pytest.raises(ReplyError, match="session_mismatch"):
            client.hello("s", n=5)
        with pytest.raises(ReplyError, match="session_mismatch"):
            client.hello("s", protocol="fdas")

    def test_unknown_session_needs_hello(self, client):
        with pytest.raises(ReplyError, match="hello"):
            client.checkpoint("ghost", pid=0)

    def test_session_errors_carry_code(self, client):
        client.hello("s", n=2)
        with pytest.raises(ReplyError) as err:
            client.send("s", src=0, dst=0)
        assert err.value.code == "bad_session"

    def test_unknown_protocol_in_hello(self, client):
        with pytest.raises(ReplyError, match="unknown protocol"):
            client.hello("s", n=2, protocol="nope")

    def test_bad_kind_refused(self, client):
        reply = client.call({"kind": "reboot", "seq": 1})
        assert reply["ok"] is False and reply["error"] == "bad_request"

    def test_missing_session_refused(self, client):
        reply = client.call({"kind": "checkpoint", "seq": 1, "pid": 0})
        assert reply["ok"] is False and reply["error"] == "bad_request"

    def test_tcp_transport(self):
        with serve_in_thread(ServerConfig(host="127.0.0.1", port=0)) as handle:
            assert handle.address[0] == "tcp"
            with Client(handle.connect_address()) as c:
                assert c.hello("t", n=2)["ok"] is True


class TestObservability:
    def test_trace_and_metrics(self, tmp_path):
        tracer, metrics = Tracer(), MetricsRegistry()
        config = ServerConfig(unix_path=str(tmp_path / "obs.sock"))
        with serve_in_thread(config, tracer=tracer, metrics=metrics) as handle:
            with Client(handle.connect_address()) as c:
                c.hello("s", n=2)
                c.checkpoint("s", pid=0)
                c.snapshot("s")
        kinds = {ev.kind for ev in tracer.events}
        assert {"serve.start", "serve.conn", "serve.snapshot", "serve.stop"} <= kinds
        snap = metrics.snapshot()
        assert snap.counters["serve.ingest"] == 1


class TestBackpressure:
    def test_full_shard_sheds_with_overloaded(self, tmp_path):
        async def scenario():
            sock = str(tmp_path / "shed.sock")
            server = CheckpointServer(
                ServerConfig(unix_path=sock, workers=1, queue_depth=2)
            )
            await server.start()
            # Freeze the worker pool so the shard queue can only fill.
            for task in server._workers:
                task.cancel()
            await asyncio.sleep(0)
            client = await AsyncClient.connect(f"unix:{sock}")
            first = client.submit("hello", session="s", n=2)
            second = client.submit("checkpoint", session="s", pid=0)
            third = client.submit("checkpoint", session="s", pid=0)
            await client.flush()
            reply = await third
            assert reply["ok"] is False
            assert reply["error"] == "overloaded"
            assert server.shed_frames == 1
            # White-box cleanup: the frozen shard never drains, so
            # release the accounting before stopping the server.
            for conn in list(server._conns):
                conn.pending = 0
                conn.drained.set()
            for queue in server._queues:
                while not queue.empty():
                    queue.get_nowait()
                    queue.task_done()
            first.cancel()
            second.cancel()
            client._reader_task.cancel()
            client._writer.close()
            await server.stop()

        asyncio.run(scenario())


class TestEvictionRestore:
    def test_idle_session_evicts_and_restores(self, tmp_path):
        config = ServerConfig(
            unix_path=str(tmp_path / "evict.sock"), idle_timeout=0.2
        )
        with serve_in_thread(config) as handle:
            with Client(handle.connect_address()) as c:
                c.hello("s", n=2)
                c.checkpoint("s", pid=0)
                before = c.query("s", "rdt_status")
                deadline = time.monotonic() + 5.0
                while "s" in handle.server.sessions:
                    assert time.monotonic() < deadline, "never evicted"
                    time.sleep(0.05)
                assert "s" in handle.server.store
                # Any frame naming the session restores it transparently.
                after = c.query("s", "rdt_status")
                assert after == before
                assert "s" in handle.server.sessions

    def test_hello_after_eviction_reports_resumed(self, tmp_path):
        config = ServerConfig(
            unix_path=str(tmp_path / "resume.sock"), idle_timeout=0.2
        )
        with serve_in_thread(config) as handle:
            with Client(handle.connect_address()) as c:
                c.hello("s", n=2)
                c.checkpoint("s", pid=0)
                deadline = time.monotonic() + 5.0
                while "s" in handle.server.sessions:
                    assert time.monotonic() < deadline, "never evicted"
                    time.sleep(0.05)
                reply = c.hello("s")
                assert reply["resumed"] is True
                assert reply["events"] == 1


class TestGracefulShutdownUnderLoad:
    def test_no_acked_frame_is_lost(self, tmp_path):
        """Stop the server mid-load: every client-acked ingest frame
        must be present in the drained server's per-session counts."""
        config = ServerConfig(unix_path=str(tmp_path / "drain.sock"))
        handle = serve_in_thread(config)
        summary = {}

        def stopper():
            time.sleep(0.25)
            summary.update(handle.close())

        thread = threading.Thread(target=stopper)
        thread.start()
        report = run_load(
            handle.connect_address(),
            sessions=4, n=4, duration=120.0, window=64, seed=3,
        )
        thread.join()
        # The stop raced a live load: by design nothing errors, acked
        # frames survive, and cut-off sessions count as disconnects.
        assert report.errors == 0
        assert report.acked > 0
        for sid, acked in report.per_session.items():
            assert acked <= summary.get(sid, 0), (
                f"{sid}: client saw {acked} acks, server drained "
                f"{summary.get(sid, 0)} events"
            )

    def test_close_is_idempotent(self, tmp_path):
        handle = serve_in_thread(ServerConfig(unix_path=str(tmp_path / "x.sock")))
        with Client(handle.connect_address()) as c:
            c.hello("s", n=2)
            c.checkpoint("s", pid=0)
        assert handle.close() == {"s": 1}
        assert handle.close() == {"s": 1}


class TestLoadgenDrainsSendFutures:
    def test_send_futures_drain_to_undelivered_count(self, tmp_path):
        """Regression: ``_drive_session`` never popped ``send_futures``,
        pinning one reply doc per send for the whole run (a real RSS
        leak on long ``--duration`` runs).  Now each deliver pops its
        send's future, so what remains at the end is exactly the
        trace's never-delivered sends -- and the function reports it."""
        from repro.serve.loadgen import LoadReport, _drive_session
        from repro.sim.generate import generate_trace
        from repro.sim.trace import TraceOpKind
        from repro.workloads import WORKLOADS

        trace = generate_trace(
            4, WORKLOADS["random"](), duration=40.0, seed=11, basic_rate=0.1
        )
        sent = {
            op.msg_id for op in trace.ops if op.kind is TraceOpKind.SEND
        }
        delivered = {
            op.msg_id for op in trace.ops if op.kind is TraceOpKind.DELIVER
        }
        undelivered = len(sent - delivered)
        assert sent, "trace must exercise the send path"

        config = ServerConfig(unix_path=str(tmp_path / "drainload.sock"))
        with serve_in_thread(config) as handle:
            report = LoadReport(sessions=1)
            leftovers = asyncio.run(
                _drive_session(
                    handle.connect_address(),
                    "drain-s", "bhmr", trace, 32, 0, report,
                )
            )
        assert report.errors == 0 and report.disconnects == 0
        assert leftovers == undelivered
        # Every delivered send's reply was released as it was consumed.
        assert leftovers < len(sent)


class TestApiFacade:
    def test_api_serve_and_connect(self, tmp_path):
        with api.serve(unix_path=str(tmp_path / "api.sock")) as handle:
            client = api.connect(handle.connect_address())
            assert client.hello("s", n=2)["ok"] is True
            client.close()

    def test_api_serve_config_exclusive_with_knobs(self, tmp_path):
        with pytest.raises(SimulationError):
            api.serve(
                config=ServerConfig(unix_path=str(tmp_path / "c.sock")),
                unix_path=str(tmp_path / "d.sock"),
            )

    def test_api_connect_dead_socket_is_clean(self, tmp_path):
        started = time.monotonic()
        with pytest.raises(ConnectionError):
            api.connect(f"unix:{tmp_path}/dead.sock", timeout=2.0)
        assert time.monotonic() - started < 5.0  # error, not a hang


class TestWalFailureHalts:
    """A failing disk (ENOSPC, EIO) mid-group-commit must not kill a
    shard worker silently: queued frames get explicit ``wal_failure``
    errors, intake halts, and shutdown skips the snapshot pass (whose
    watermarks would otherwise cover frames that were never durably
    acked -- phantoms on the next recovery)."""

    def test_commit_failure_errors_halts_and_skips_snapshots(self, tmp_path):
        from repro.serve.wal import read_wal

        config = ServerConfig(
            unix_path=str(tmp_path / "fail.sock"),
            wal_dir=str(tmp_path / "wal"),
            snapshot_dir=str(tmp_path / "snaps"),
        )
        with serve_in_thread(config) as handle:
            with Client(handle.connect_address()) as c:
                c.hello("s", n=3)
                c.checkpoint("s", pid=0)  # durable while the disk is fine

                def broken_sync(max_records=None):
                    raise OSError(28, "No space left on device")

                handle.server.wal.sync = broken_sync
                with pytest.raises(ReplyError) as err:
                    c.checkpoint("s", pid=1)
                assert err.value.code == "wal_failure"
                # The halted server answers, it does not hang: further
                # frames on the same connection are refused explicitly.
                with pytest.raises((ReplyError, ConnectionError)):
                    c.checkpoint("s", pid=2)
            # Intake is closed: new connections cannot be served.
            with pytest.raises((ReplyError, ConnectionError, OSError)):
                with Client(handle.connect_address()) as other:
                    other.hello("other", n=2)
        # Shutdown skipped the snapshot pass: no snapshot may stamp a
        # watermark over the frame whose ack never left the server.
        assert list((tmp_path / "snaps").glob("*.json")) == []
        # The durable prefix -- hello plus the first checkpoint -- is
        # intact and verifiable.
        assert [r.idx for r in read_wal(tmp_path / "wal")] == [-1, 0]


class TestSnapshotDurabilityRace:
    """Frames racing snapshots and evictions: the commit barrier holds.

    The regression of record: a frame arriving while the idle sweeper
    was snapshotting its session could be snapshotted *before* its WAL
    record was fsynced -- a crash then resurrected a frame whose ack
    never left the server (a phantom), or dropped one whose ack did.
    Both orderings are pinned here without killing anything: by reading
    the WAL from disk right after each ack, and by replaying the trace
    ordering of commits vs snapshots.
    """

    def test_acked_frames_are_on_disk_during_eviction_storm(self, tmp_path):
        from repro.serve.wal import read_wal

        config = ServerConfig(
            unix_path=str(tmp_path / "race.sock"),
            workers=2,
            idle_timeout=0.05,  # the sweeper fires constantly
            wal_dir=str(tmp_path / "wal"),
            fsync_batch=4,
        )
        evictions = 0
        with serve_in_thread(config) as handle:
            with Client(handle.connect_address()) as c:
                c.hello("s", n=3)
                last_wal_seq = -1
                for i in range(60):
                    reply = c.checkpoint("s", pid=i % 3)
                    assert reply["wal_seq"] > last_wal_seq, (
                        "acks must carry strictly increasing WAL positions"
                    )
                    last_wal_seq = reply["wal_seq"]
                    if i % 10 == 9:
                        # Let the session go idle so the sweeper
                        # snapshots + evicts it mid-conversation.
                        time.sleep(0.12)
                        evictions += 1
                        # The ack we already hold must be durable *now*,
                        # not at the next graceful close: a concurrent
                        # kill -9 is allowed at any point of this loop.
                        on_disk = read_wal(config.wal_dir)
                        assert on_disk and on_disk[-1].seq >= last_wal_seq
                status = c.query("s", "rdt_status")
                assert status["events"] == 60
        assert evictions == 6
        # After the drain every record is durable and the chain intact.
        assert read_wal(config.wal_dir)[-1].seq >= last_wal_seq

    def test_trace_orders_every_snapshot_behind_a_commit(self, tmp_path):
        tracer = Tracer()
        config = ServerConfig(
            unix_path=str(tmp_path / "order.sock"),
            workers=2,
            idle_timeout=0.05,
            wal_dir=str(tmp_path / "wal"),
            snapshot_dir=str(tmp_path / "snaps"),
            fsync_batch=8,
        )
        with serve_in_thread(config, tracer=tracer) as handle:
            with Client(handle.connect_address()) as c:
                c.hello("s", n=3)
                for i in range(40):
                    c.checkpoint("s", pid=i % 3)
                    if i % 13 == 12:
                        c.snapshot("s")  # explicit, racing the sweeper
                    if i % 10 == 9:
                        time.sleep(0.12)  # and let the sweeper evict
        commits = 0
        durable = -1
        snapshots = 0
        for ev in tracer.events:
            if ev.kind == "serve.wal.commit":
                commits += 1
                durable = max(durable, int(ev.fields["seq"]))
            elif ev.kind == "serve.snapshot":
                snapshots += 1
                assert int(ev.fields["wal_seq"]) <= durable, (
                    "a snapshot covered WAL records that were not yet "
                    "durable when it was written"
                )
        assert commits > 0 and snapshots >= 3  # the race actually ran


class TestPing:
    """The health verb: sessionless, cheap, honest about degradation."""

    def test_ping_needs_no_session(self, tmp_path):
        config = ServerConfig(unix_path=str(tmp_path / "ping.sock"))
        with serve_in_thread(config) as handle:
            with Client(handle.connect_address()) as client:
                reply = client.ping()
                assert reply["ok"] is True
                assert reply["pong"] is True
                assert reply["role"] == "server"
                assert reply["sessions"] == 0
                assert reply["degraded"] is False
                client.hello("ping-s", n=2)
                assert client.ping()["sessions"] == 1

    def test_ping_answers_on_a_wal_degraded_server(self, tmp_path):
        """A halted server refuses ingest but still answers health
        probes -- and says so, instead of presenting as healthy."""
        config = ServerConfig(
            unix_path=str(tmp_path / "deg.sock"),
            wal_dir=str(tmp_path / "wal"),
        )
        with serve_in_thread(config) as handle:
            with Client(handle.connect_address()) as client:
                client.hello("s", n=2)

                def broken_sync(max_records=None):
                    raise OSError(28, "No space left on device")

                handle.server.wal.sync = broken_sync
                with pytest.raises(ReplyError) as err:
                    client.checkpoint("s", pid=0)
                assert err.value.code == "wal_failure"
                reply = client.ping()
                assert reply["ok"] is True and reply["degraded"] is True
