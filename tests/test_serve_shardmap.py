"""The consistent-hash shard map: deterministic, serializable, stable."""

import random

import pytest

from repro.serve.shardmap import ShardMap
from repro.types import SimulationError


def _session_ids(count, seed=0x5AD):
    rng = random.Random(seed)
    return [f"sess-{rng.getrandbits(48):012x}" for _ in range(count)]


class TestDeterminism:
    def test_same_parameters_same_placement(self):
        a, b = ShardMap(5), ShardMap(5)
        for sid in _session_ids(500):
            assert a.owner(sid) == b.owner(sid)

    def test_serialization_roundtrip(self):
        layout = ShardMap(4, replicas=32, overrides={"hot": 2})
        again = ShardMap.from_doc(layout.to_doc())
        assert again == layout
        for sid in _session_ids(200):
            assert again.owner(sid) == layout.owner(sid)

    def test_pinned_placements(self):
        """Golden placements: the ring must never drift across
        refactors -- a silent change would orphan every WAL directory
        of a deployed sharded server."""
        layout = ShardMap(3)
        assert {
            sid: layout.owner(sid)
            for sid in ["a", "b", "load-0-1", "alpha", "sess-42"]
        } == {"a": 1, "b": 0, "load-0-1": 0, "alpha": 2, "sess-42": 2}
        # A wider fingerprint: any edit to the point construction or
        # the wrap rule changes this value.
        fingerprint = sum(
            layout.owner(f"s{i}") * (3 ** (i % 10)) for i in range(100)
        )
        assert fingerprint == 279564


class TestBalance:
    def test_load_spreads_across_shards(self):
        layout = ShardMap(4)
        counts = [0] * 4
        ids = _session_ids(4000)
        for sid in ids:
            counts[layout.owner(sid)] += 1
        assert min(counts) > 0
        # With 64 replicas the arc lengths are uneven but bounded; the
        # worst shard must not own more than twice the fair share.
        assert max(counts) < 2 * (len(ids) / 4)

    def test_single_shard_owns_everything(self):
        layout = ShardMap(1)
        assert all(layout.owner(sid) == 0 for sid in _session_ids(50))


class TestResizeLocality:
    def test_growth_moves_only_a_fraction(self):
        """The reason for a ring over a modulus: going 4 -> 5 shards
        must move roughly 1/5 of sessions, not nearly all of them."""
        before, after = ShardMap(4), ShardMap(5)
        ids = _session_ids(4000)
        moved = sum(1 for sid in ids if before.owner(sid) != after.owner(sid))
        assert moved / len(ids) < 0.35  # modulus would move ~0.8
        assert moved > 0  # the new shard did take ownership of something

    def test_surviving_shards_keep_their_sessions(self):
        before, after = ShardMap(4), ShardMap(5)
        for sid in _session_ids(2000):
            if before.owner(sid) == after.owner(sid):
                continue
            # Every move lands on the new shard or rebalances within
            # bounds -- never to an index outside the new layout.
            assert 0 <= after.owner(sid) < 5


class TestOverrides:
    def test_override_wins_over_ring(self):
        layout = ShardMap(4)
        sid = next(s for s in _session_ids(100) if layout.ring_owner(s) != 3)
        layout.overrides[sid] = 3
        assert layout.owner(sid) == 3
        assert layout.ring_owner(sid) != 3

    def test_override_outside_range_refused(self):
        with pytest.raises(SimulationError, match="outside"):
            ShardMap(2, overrides={"s": 5})

    def test_overrides_serialize(self):
        layout = ShardMap(3, overrides={"b": 1, "a": 2})
        doc = layout.to_doc()
        assert doc["overrides"] == {"a": 2, "b": 1}
        assert ShardMap.from_doc(doc).owner("a") == 2


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "shardmap.json"
        layout = ShardMap(6, overrides={"x": 4})
        layout.save(path)
        assert ShardMap.load(path) == layout
        assert not list(tmp_path.glob("*.tmp"))  # atomic write cleaned up

    def test_load_missing_returns_none(self, tmp_path):
        assert ShardMap.load(tmp_path / "absent.json") is None

    def test_bad_version_refused(self):
        with pytest.raises(SimulationError, match="version"):
            ShardMap.from_doc({"version": 99, "shards": 2})


class TestValidation:
    @pytest.mark.parametrize("shards", [0, -1])
    def test_nonpositive_shards_refused(self, shards):
        with pytest.raises(SimulationError, match="positive"):
            ShardMap(shards)

    def test_nonpositive_replicas_refused(self):
        with pytest.raises(SimulationError, match="positive"):
            ShardMap(2, replicas=0)
