"""The checkpointing protocols: BHMR (the paper's contribution), its
variants, FDAS/FDI, the classical protocols, and the independent
baseline."""

from repro.core.baselines import IndependentProtocol
from repro.core.bhmr import (
    BHMRCausalOnlyProtocol,
    BHMRNoSimpleProtocol,
    BHMRProtocol,
)
from repro.core.classical import CASProtocol, CBRProtocol, NRASProtocol
from repro.core.coordinated import (
    ChandyLamportRunner,
    CoordinatedResult,
    SnapshotRecord,
    run_chandy_lamport,
)
from repro.core.fdas import FDASProtocol, FDIProtocol
from repro.core.index_based import (
    BCSProtocol,
    IndexPiggyback,
    LazyBCSProtocol,
    bcs_index_cut,
    lazy_factory,
    max_index,
)
from repro.core.piggyback import (
    BHMRNoSimplePiggyback,
    BHMRPiggyback,
    EmptyPiggyback,
    FlagPiggyback,
    Piggyback,
    TDVPiggyback,
)
from repro.core.protocol import CheckpointProtocol, ProtocolFamily
from repro.core.registry import (
    PROTOCOLS,
    RDT_FAMILY,
    make_family,
    make_protocol,
    protocol_class,
    protocol_factory,
)

__all__ = [
    "BCSProtocol",
    "BHMRCausalOnlyProtocol",
    "IndexPiggyback",
    "LazyBCSProtocol",
    "bcs_index_cut",
    "lazy_factory",
    "max_index",
    "BHMRNoSimplePiggyback",
    "BHMRNoSimpleProtocol",
    "BHMRPiggyback",
    "BHMRProtocol",
    "CASProtocol",
    "CBRProtocol",
    "ChandyLamportRunner",
    "CheckpointProtocol",
    "CoordinatedResult",
    "SnapshotRecord",
    "run_chandy_lamport",
    "EmptyPiggyback",
    "FDASProtocol",
    "FDIProtocol",
    "FlagPiggyback",
    "IndependentProtocol",
    "NRASProtocol",
    "PROTOCOLS",
    "Piggyback",
    "ProtocolFamily",
    "RDT_FAMILY",
    "TDVPiggyback",
    "make_family",
    "make_protocol",
    "protocol_class",
    "protocol_factory",
]
