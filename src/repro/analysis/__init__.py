"""Pattern analyses: consistency, RDT, Z-cycles, global checkpoints."""

from repro.analysis.characterizations import (
    ElementaryReport,
    ElementaryViolation,
    Junction,
    check_rdt_elementary,
    junction_census,
    noncausal_junctions,
)
from repro.analysis.cost import (
    RatePoint,
    checkpoint_rate_study,
    crash_loss,
    daly_interval,
    young_interval,
)
from repro.analysis.consistency import (
    in_transit_of_cut,
    is_consistent_gcp,
    is_consistent_pair,
    is_orphan,
    orphan_messages,
    orphans_of_cut,
)
from repro.analysis.lattice import (
    advance_candidates,
    count_consistent_cuts,
    cut_join,
    cut_leq,
    cut_meet,
    iter_consistent_cuts,
    lattice_closure_check,
    retreat_candidates,
)
from repro.analysis.gcp import (
    can_belong_to_same_gcp,
    max_consistent_gcp,
    max_gcp_rdt,
    min_consistent_gcp,
    min_gcp_rdt,
)
from repro.analysis.metrics import RunMetrics, forced_ratio, metrics_from_history
from repro.analysis.rdt import (
    RDTReport,
    RDTViolation,
    check_rdt,
    explain_violation,
    untracked_pairs,
)
from repro.analysis.zcycle import (
    find_z_cycles,
    has_z_cycle,
    useless_checkpoints,
    useless_checkpoints_incremental,
    useless_checkpoints_rgraph,
)

__all__ = [
    "ElementaryReport",
    "ElementaryViolation",
    "Junction",
    "RDTReport",
    "RatePoint",
    "checkpoint_rate_study",
    "check_rdt_elementary",
    "crash_loss",
    "daly_interval",
    "explain_violation",
    "young_interval",
    "junction_census",
    "noncausal_junctions",
    "RDTViolation",
    "RunMetrics",
    "advance_candidates",
    "can_belong_to_same_gcp",
    "check_rdt",
    "count_consistent_cuts",
    "cut_join",
    "cut_leq",
    "cut_meet",
    "iter_consistent_cuts",
    "lattice_closure_check",
    "retreat_candidates",
    "find_z_cycles",
    "forced_ratio",
    "has_z_cycle",
    "in_transit_of_cut",
    "is_consistent_gcp",
    "is_consistent_pair",
    "is_orphan",
    "max_consistent_gcp",
    "max_gcp_rdt",
    "metrics_from_history",
    "min_consistent_gcp",
    "min_gcp_rdt",
    "orphan_messages",
    "orphans_of_cut",
    "untracked_pairs",
    "useless_checkpoints",
    "useless_checkpoints_incremental",
    "useless_checkpoints_rgraph",
]
