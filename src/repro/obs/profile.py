"""Wall-clock phase profiling, kept strictly outside the trace.

A :class:`Profiler` accumulates elapsed seconds per named phase
(``generate`` / ``simulate`` / ``analyze`` / ``closure`` are the ones
the stack emits) so the harness can answer "where does the time go".
Wall times are non-deterministic by nature, which is exactly why they
live here and never in :mod:`repro.obs.tracer` events: traces stay
byte-stable, profiles report reality.

Call sites take an optional profiler and normalise with
``profiler = profiler or NULL_PROFILER``; the null object's ``phase``
context manager is a shared no-op, so un-profiled runs pay one attribute
call and no allocation per phase.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping

#: Phase names used by the instrumented layers (informative).
PHASES = ("generate", "simulate", "analyze", "closure")


class Profiler:
    """Accumulates (seconds, entry count) per phase name."""

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + count

    def merge_dict(self, phases: Mapping[str, float]) -> None:
        """Fold a ``{phase: seconds}`` dict in (e.g. from a sweep worker)."""
        for name, seconds in phases.items():
            self.add(name, seconds)

    def snapshot(self) -> Dict[str, float]:
        """``{phase: total_seconds}``, sorted by name for stable output."""
        return {name: self.seconds[name] for name in sorted(self.seconds)}

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def __bool__(self) -> bool:
        return True

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={self.seconds[name]:.3f}s" for name in sorted(self.seconds)
        )
        return f"<Profiler {parts or 'empty'}>"


class _NullProfiler(Profiler):
    """Discards everything; falsy so callers can detect 'profiling off'."""

    def __init__(self) -> None:
        super().__init__()
        self._noop = _NOOP_CM

    def phase(self, name: str):  # type: ignore[override]
        return self._noop

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        pass

    def __bool__(self) -> bool:
        return False


class _NoopContext:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NOOP_CM = _NoopContext()

#: Shared inert profiler; ``profiler or NULL_PROFILER`` at function entry.
NULL_PROFILER = _NullProfiler()
