"""Checkpoint and log garbage collection.

Stable storage is finite: checkpoints (and sender logs) that can never
again appear on a recovery line should be reclaimed.  The safe rule
implemented here rests on a monotonicity fact about rollback
propagation:

    Let ``L`` be the recovery line for a *total* failure at time ``t``
    (every process bounded by its last stable checkpoint).  Any recovery
    line computed later -- for any crash pattern, after any amount of
    further execution -- is componentwise >= ``L``.

Sketch: future messages are sent and delivered in intervals beyond the
current bounds, so they add no orphan constraint below them; ``L``
therefore stays consistent in every extension, and the greatest
consistent cut under the (only growing) future bounds dominates it.
``tests/test_recovery_gc.py`` checks the monotonicity property on
simulated runs by comparing lines at increasing crash times.

Consequently every checkpoint strictly below ``L`` is *obsolete* and
reclaimable, as is every logged message that lies entirely at or below
``L`` **on both sides**: sent in an interval ``<= L[src]`` *and*
delivered in an interval ``<= L[dst]``.  The sender-side condition alone
is not safe: a message sent at or below ``L`` but delivered above it
*crosses* ``L`` (it is exactly one of ``L.messages_to_replay``) and is
still needed by any later line ``L' >= L`` whose receiver entry satisfies
``L'[dst] < deliver_interval`` -- such lines exist whenever the receiver
can still be rolled back into the crossing delivery's interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.events.history import History
from repro.recovery.failure import CrashSpec
from repro.recovery.logging import SenderLog
from repro.recovery.recovery_line import RecoveryLine, recovery_line
from repro.types import CheckpointId, ProcessId


@dataclass
class GCReport:
    """What a garbage-collection pass reclaimed."""

    line: RecoveryLine
    obsolete_checkpoints: List[CheckpointId]
    kept_checkpoints: int
    reclaimed_log_messages: int = 0

    @property
    def reclaimed_checkpoints(self) -> int:
        return len(self.obsolete_checkpoints)

    def __repr__(self) -> str:
        return (
            f"<GCReport reclaimed={self.reclaimed_checkpoints} ckpts, "
            f"{self.reclaimed_log_messages} log msgs, kept={self.kept_checkpoints}>"
        )


def global_recovery_floor(
    history: History, at_time: Optional[float] = None
) -> RecoveryLine:
    """The total-failure recovery line: the floor future lines never cross.

    Defined at *every* ``at_time``, including instants before a process
    has taken its first post-initial checkpoint: the initial checkpoint
    is always stable, so such a process is simply bounded at index 0
    (``initial_is_stable``) rather than erroring.
    """
    history = history.closed()
    crashes = {
        pid: CrashSpec(pid, at_time=at_time, initial_is_stable=True)
        for pid in range(history.num_processes)
    }
    return recovery_line(history, crashes)


def obsolete_checkpoints(
    history: History, at_time: Optional[float] = None
) -> List[CheckpointId]:
    """Checkpoints strictly below the global recovery floor."""
    floor = global_recovery_floor(history, at_time=at_time)
    out: List[CheckpointId] = []
    for pid, floor_index in floor.cut.items():
        out.extend(CheckpointId(pid, x) for x in range(floor_index))
    return out


def collect_garbage(
    history: History,
    logs: Optional[Dict[ProcessId, SenderLog]] = None,
    at_time: Optional[float] = None,
) -> GCReport:
    """One GC pass: identify obsolete checkpoints, trim sender logs.

    ``logs`` (from :func:`repro.recovery.logging.build_sender_logs` or a
    live deployment) is trimmed in place: messages sent *and delivered*
    at or below the floor can never need replay again.  Messages merely
    sent below it may still cross a later recovery line and are kept
    (see :meth:`repro.recovery.logging.SenderLog.collect_garbage`).
    """
    history = history.closed()
    floor = global_recovery_floor(history, at_time=at_time)
    obsolete = [
        CheckpointId(pid, x)
        for pid, floor_index in floor.cut.items()
        for x in range(floor_index)
    ]
    total = history.num_checkpoints()
    reclaimed_msgs = 0
    if logs is not None:
        for pid, log in logs.items():
            reclaimed_msgs += log.collect_garbage(history, floor.cut)
    return GCReport(
        line=floor,
        obsolete_checkpoints=obsolete,
        kept_checkpoints=total - len(obsolete),
        reclaimed_log_messages=reclaimed_msgs,
    )


def recovery_line_monotone(history: History, times: List[float]) -> bool:
    """Check the monotonicity fact underlying GC on one history.

    For increasing crash times, the total-failure recovery lines must be
    componentwise non-decreasing.  Exposed as a function (rather than
    only a test) so users can sanity-check the rule on their own traces.
    """
    history = history.closed()
    previous: Optional[Dict[ProcessId, int]] = None
    for t in sorted(times):
        cut = global_recovery_floor(history, at_time=t).cut
        if previous is not None:
            if any(cut[p] < previous[p] for p in cut):
                return False
        previous = cut
    return True
