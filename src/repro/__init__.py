"""repro: communication-induced checkpointing with RDT.

Reproduction of Baldoni-Helary-Mostefaoui-Raynal's communication-induced
checkpointing protocol ensuring Rollback-Dependency Trackability, the
surrounding RDT theory (visible characterizations), the FDAS/classical
protocol family it is compared against, and the simulation testbed that
regenerates the paper's evaluation.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.  The most commonly used names are re-exported
here; subpackages hold the full API:

* :mod:`repro.events` -- computations, messages, checkpoint patterns;
* :mod:`repro.clocks` -- Lamport/vector/matrix clocks, TDVs;
* :mod:`repro.graph` -- R-graph and message-chain (Z-path) engines;
* :mod:`repro.analysis` -- consistency, RDT, Z-cycles, min/max GCPs;
* :mod:`repro.recovery` -- crashes, recovery lines, domino, logging;
* :mod:`repro.core` -- the protocols (BHMR, FDAS, classical, CL);
* :mod:`repro.sim` -- the discrete-event testbed;
* :mod:`repro.workloads` -- the evaluation environments;
* :mod:`repro.harness` -- comparisons, sweeps, tables;
* :mod:`repro.obs` -- tracing, metrics, profiling instruments;
* :mod:`repro.api` -- the blessed high-level facade (start here).
"""

from repro.analysis import (
    can_belong_to_same_gcp,
    check_rdt,
    find_z_cycles,
    is_consistent_gcp,
    is_consistent_pair,
    max_consistent_gcp,
    min_consistent_gcp,
    useless_checkpoints,
)
from repro.core import (
    PROTOCOLS,
    RDT_FAMILY,
    BHMRProtocol,
    CheckpointProtocol,
    FDASProtocol,
    make_protocol,
    run_chandy_lamport,
)
from repro.events import (
    History,
    PatternBuilder,
    figure1_pattern,
    random_pattern,
    validate_history,
)
from repro.graph import RGraph, ZPathAnalyzer
from repro.obs import MetricsRegistry, MetricsSnapshot, Profiler, Tracer
from repro.recovery import CrashSpec, domino_report, recovery_line
from repro.sim import ReplayResult, Simulation, SimulationConfig, run_scenario
from repro.types import (
    AnalysisError,
    CheckpointId,
    PatternError,
    ProtocolError,
    ReproError,
    SimulationError,
)
from repro.workloads import WORKLOADS

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "BHMRProtocol",
    "CheckpointId",
    "CheckpointProtocol",
    "CrashSpec",
    "FDASProtocol",
    "History",
    "MetricsRegistry",
    "MetricsSnapshot",
    "PROTOCOLS",
    "Profiler",
    "PatternBuilder",
    "PatternError",
    "ProtocolError",
    "RDT_FAMILY",
    "ReplayResult",
    "ReproError",
    "RGraph",
    "Simulation",
    "SimulationConfig",
    "SimulationError",
    "Tracer",
    "WORKLOADS",
    "ZPathAnalyzer",
    "__version__",
    "can_belong_to_same_gcp",
    "check_rdt",
    "domino_report",
    "figure1_pattern",
    "find_z_cycles",
    "is_consistent_gcp",
    "is_consistent_pair",
    "make_protocol",
    "max_consistent_gcp",
    "min_consistent_gcp",
    "random_pattern",
    "recovery_line",
    "run_chandy_lamport",
    "run_scenario",
    "useless_checkpoints",
    "validate_history",
]
