"""Unit tests for the standalone forcing predicates."""

from repro.core import predicates


class TestNewDependency:
    def test_detects_strictly_greater_entry(self):
        assert predicates.new_dependency([1, 0, 2], [1, 1, 2])
        assert not predicates.new_dependency([1, 1, 2], [1, 1, 2])
        assert not predicates.new_dependency([2, 2, 2], [1, 1, 1])


class TestC1:
    def test_requires_a_sent_to_and_a_new_uncovered_dep(self):
        tdv = [1, 0, 0]
        m_tdv = (0, 1, 0)  # new dependency on P1
        no_cover = ((False,) * 3,) * 3
        assert predicates.c1(tdv, [False, False, True], m_tdv, no_cover)
        assert not predicates.c1(tdv, [False, False, False], m_tdv, no_cover)

    def test_covered_dependency_does_not_fire(self):
        tdv = [1, 0, 0]
        m_tdv = (0, 1, 0)
        # causal[1][2] true: the chain towards P2 has a sibling.
        causal = (
            (False, False, False),
            (False, False, True),
            (False, False, False),
        )
        assert not predicates.c1(tdv, [False, False, True], m_tdv, causal)
        # ...but a send towards P0 is not covered.
        assert predicates.c1(tdv, [True, False, False], m_tdv, causal)

    def test_no_new_dependency_never_fires(self):
        assert not predicates.c1([2, 2, 2], [True, True, True], (1, 1, 1),
                                 ((False,) * 3,) * 3)


class TestC2Family:
    def test_c2_needs_equal_own_entry_and_nonsimple(self):
        assert predicates.c2(0, [3, 0], (3, 1), (False, True))
        assert not predicates.c2(0, [3, 0], (2, 1), (False, True))
        assert not predicates.c2(0, [3, 0], (3, 1), (True, True))

    def test_c2_prime(self):
        assert predicates.c2_prime(0, [3, 0], (3, 1))
        assert not predicates.c2_prime(0, [3, 0], (2, 1))
        assert not predicates.c2_prime(0, [3, 1], (3, 1))


class TestBaselinePredicates:
    def test_fdas(self):
        assert predicates.c_fdas(True, [0, 0], (0, 1))
        assert not predicates.c_fdas(False, [0, 0], (0, 1))
        assert not predicates.c_fdas(True, [0, 1], (0, 1))

    def test_fdi(self):
        assert predicates.c_fdi(True, [0, 0], (0, 1))
        assert not predicates.c_fdi(False, [0, 0], (0, 1))

    def test_nras_and_cbr_are_flag_only(self):
        assert predicates.c_nras(True) and not predicates.c_nras(False)
        assert predicates.c_cbr(True) and not predicates.c_cbr(False)
