"""Bulk-synchronous (BSP-style) phased computation.

Processes compute in supersteps: local work, then an all-to-all exchange,
then (logical) barrier -- here realised purely by message counting, no
extra synchronisation primitive.  Each process starts its next superstep
once it has received the current superstep's message from every peer.

Checkpointing folklore says BSP-ish traffic is benign -- the exchange
pattern gives every dependency a causal double almost for free -- so the
BHMR protocol should force very little here; the workload exists to
probe that end of the spectrum (contrast with `random_uniform`).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.types import MessageId, ProcessId
from repro.workloads.base import Workload, WorkloadContext


class BulkSynchronousWorkload(Workload):
    """All-to-all exchanges separated by local computation.

    Parameters
    ----------
    compute_time:
        Mean local computation before each exchange.
    supersteps:
        Stop after this many rounds (0 = run until the horizon).
    """

    def __init__(self, compute_time: float = 1.0, supersteps: int = 0) -> None:
        if compute_time <= 0:
            raise ValueError("compute_time must be positive")
        self.compute_time = compute_time
        self.supersteps = supersteps
        self._round: Dict[ProcessId, int] = {}
        self._received: Dict[ProcessId, Dict[int, int]] = {}

    def on_start(self, ctx: WorkloadContext) -> None:
        self._round = {pid: 0 for pid in range(ctx.n)}
        self._received = {pid: {} for pid in range(ctx.n)}
        for pid in range(ctx.n):
            self._arm_compute(ctx, pid)

    def _arm_compute(self, ctx: WorkloadContext, pid: ProcessId) -> None:
        ctx.set_timer(
            pid, ctx.rng.expovariate(1.0 / self.compute_time), tag="exchange"
        )

    def on_timer(
        self, ctx: WorkloadContext, pid: ProcessId, tag: Optional[Hashable]
    ) -> None:
        if tag != "exchange":
            return
        rnd = self._round[pid]
        if self.supersteps and rnd >= self.supersteps:
            return
        for dst in range(ctx.n):
            if dst != pid:
                ctx.send(pid, dst, payload=("step", rnd))

    def on_deliver(
        self, ctx: WorkloadContext, pid: ProcessId, src: ProcessId, msg_id: MessageId
    ) -> None:
        payload = ctx.payload_of(msg_id)
        if not (isinstance(payload, tuple) and payload[0] == "step"):
            return
        rnd = payload[1]
        counts = self._received[pid]
        counts[rnd] = counts.get(rnd, 0) + 1
        # Barrier reached for my current round: advance and compute.
        if rnd == self._round[pid] and counts[rnd] == ctx.n - 1:
            self._round[pid] += 1
            self._arm_compute(ctx, pid)
