"""The domino effect, measured.

Uncoordinated checkpointing risks unbounded rollback cascades (Randell's
domino effect, paper section 1).  This module quantifies the cascade on
any recorded pattern: :func:`domino_depth` measures how far the recovery
line falls behind the crash point, and :func:`domino_report` summarises
the worst case over single-process crashes.

The companion experiment (``benchmarks/bench_domino.py``) shows the
effect growing without bound on the ping-pong pattern under independent
checkpointing, and staying at zero extra rollbacks under any protocol of
the RDT family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.events.history import History
from repro.recovery.recovery_line import recovery_line, rollback_distance
from repro.types import ProcessId


@dataclass
class DominoReport:
    """Worst-case rollback cascade over all single-process crashes."""

    per_crash_depth: Dict[ProcessId, int]
    worst_crash: ProcessId
    worst_depth: int
    total_rollback_reached: bool

    def __repr__(self) -> str:
        return (
            f"<DominoReport worst=crash(P{self.worst_crash}) "
            f"depth={self.worst_depth} total={self.total_rollback_reached}>"
        )


def domino_depth(history: History, crashed: ProcessId) -> int:
    """Cascade depth of one crash: checkpoints lost by *other* processes.

    The crashed process necessarily restarts from its own last
    checkpoint; any additional checkpoints discarded elsewhere (and any
    further slips of the crashed process itself) are cascade.  The
    returned depth is the maximum, over processes, of the number of
    checkpoints that process discards.
    """
    distance = rollback_distance(history, crashed)
    return max(distance.values())


def domino_report(history: History) -> DominoReport:
    """Measure the cascade for each possible single-process crash."""
    history = history.closed()
    depths: Dict[ProcessId, int] = {}
    total = False
    for pid in range(history.num_processes):
        depths[pid] = domino_depth(history, pid)
        if recovery_line(history, [pid]).is_total_rollback:
            total = True
    worst = max(depths, key=lambda p: depths[p])
    return DominoReport(
        per_crash_depth=depths,
        worst_crash=worst,
        worst_depth=depths[worst],
        total_rollback_reached=total,
    )


def domino_depths_by_rounds(
    make_history, rounds_list: List[int], crashed: ProcessId = 0
) -> List[int]:
    """Cascade depth as a function of pattern length.

    ``make_history(rounds)`` builds a pattern of the given length; an
    unbounded domino effect shows as depths growing linearly with
    ``rounds`` (see the ping-pong generator), while an RDT pattern's
    depth stays bounded by a constant.
    """
    return [domino_depth(make_history(r), crashed) for r in rounds_list]
