"""Crash-injected replay: online recovery around the protocol fold.

:func:`replay_with_recovery` is :func:`repro.sim.replay.replay` with a
fault model.  It folds a protocol family over the same
protocol-independent trace, but a :class:`~repro.sim.faults.CrashSchedule`
interrupts the fold: at each scheduled instant the named processes lose
their volatile state, and an *online* recovery is carried out against the
live bookkeeping of a :class:`~repro.recovery.manager.RecoveryManager` --
the recovery line read off the live incremental R-graph, the crossing
messages checked against the live sender logs, the rollback applied to
the actual recorder/protocol state, and the lost suffix re-executed.

Because the computation is piecewise deterministic (each process's
behaviour is a function of its state and its inputs, and the replayed
messages carry the original contents), the re-execution reproduces the
pre-crash events *exactly* -- same checkpoints, same piggybacks, same
event times -- so a crash-injected run converges back onto the crash-free
history.  The engine exploits this twice:

* the live R-graph is **not** rolled back -- re-execution re-inserts the
  same nodes and edges, which the incremental closure absorbs as no-ops,
  so the graph always equals the graph of the current prefix;
* the final history of a crash-injected run equals the crash-free
  history of the same trace, which the differential tests assert.

Every crash is cross-checked (``cross_check=True``) against the offline
:func:`repro.recovery.recovery_line.recovery_line` fixpoint on the
closed prefix history -- the paper's claim that RDT makes the *visible*
(online) determination agree with the global (offline) one, executed on
every injected failure.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.analysis.metrics import RunMetrics, metrics_from_history
from repro.core.piggyback import Piggyback
from repro.core.protocol import CheckpointProtocol, ProtocolFamily
from repro.events.event import CheckpointKind, Event
from repro.events.history import History
from repro.obs.profile import NULL_PROFILER
from repro.recovery.failure import CrashSpec
from repro.recovery.manager import OnlineRecovery, RecoveryManager
from repro.recovery.recovery_line import recovery_line
from repro.sim.faults import CrashSchedule
from repro.sim.replay import _Recorder, _cross_check_forced
from repro.sim.trace import Trace, TraceOp, TraceOpKind
from repro.types import MessageId, ProcessId, RecoveryError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.profile import Profiler
    from repro.obs.tracer import Tracer


@dataclass
class CrashRecord:
    """One injected crash group, fully recovered."""

    online: OnlineRecovery
    offline_cut: Optional[Dict[ProcessId, int]]
    events_reexecuted: int

    @property
    def time(self) -> float:
        return self.online.time

    @property
    def crashed(self) -> Tuple[ProcessId, ...]:
        return self.online.crashed

    @property
    def messages_replayed(self) -> int:
        return len(self.online.to_replay)

    def __repr__(self) -> str:
        return (
            f"<CrashRecord {self.online!r} reexec={self.events_reexecuted}>"
        )


@dataclass
class RecoveryReplayResult:
    """Outcome of one crash-injected protocol replay."""

    protocol_name: str
    history: History
    family: ProtocolFamily
    metrics: RunMetrics
    crashes: List[CrashRecord]
    manager: RecoveryManager
    schedule: CrashSchedule

    @property
    def total_events_undone(self) -> int:
        return sum(c.online.events_undone for c in self.crashes)

    @property
    def total_messages_replayed(self) -> int:
        return sum(c.messages_replayed for c in self.crashes)

    @property
    def max_rollback_depth(self) -> int:
        return max((c.online.max_depth for c in self.crashes), default=0)

    @property
    def total_rollback_depth(self) -> int:
        return sum(c.online.total_depth for c in self.crashes)

    def __repr__(self) -> str:
        return (
            f"<RecoveryReplayResult {self.protocol_name}: "
            f"crashes={len(self.crashes)} undone={self.total_events_undone} "
            f"replayed={self.total_messages_replayed}>"
        )


@dataclass
class _Snapshot:
    """Stable storage of one process at one checkpoint.

    ``gidx`` is the index (into the consumed-op list) of the trace op
    during whose processing the checkpoint was taken; ``-1`` for the
    initial checkpoint.  ``pending_deliver`` is set when the checkpoint
    was forced *before* a delivery: the snapshot state excludes that
    delivery, so re-execution from it must first re-apply the delivery
    half of op ``gidx`` (without re-running the forcing predicate -- the
    checkpoint is already part of the restored state).
    """

    proto: CheckpointProtocol
    recorder: tuple
    gidx: int
    pending_deliver: Optional[TraceOp] = None


class _CrashEngine:
    """The crash-injected fold (see module docstring)."""

    def __init__(
        self,
        trace: Trace,
        protocol_factory: Callable[[ProcessId, int], CheckpointProtocol],
        schedule: CrashSchedule,
        cross_check: bool,
        gc_every_ops: Optional[int],
        tracer: Optional["Tracer"],
        metrics: Optional["MetricsRegistry"],
    ) -> None:
        self.trace = trace
        self.n = trace.n
        self.schedule = schedule
        self.cross_check = cross_check
        self.gc_every_ops = gc_every_ops
        self.tracer = tracer
        self.metrics = metrics
        self.family = ProtocolFamily(protocol_factory, trace.n)
        self.recorder = _Recorder(trace.n)
        # The manager gets no tracer: its live graph re-absorbs edges
        # during re-execution, and closure.* re-emissions would make the
        # trace depend on internal dedup details rather than the run.
        self.manager = RecoveryManager(trace.n, metrics=metrics)
        self.piggybacks: Dict[MessageId, Piggyback] = {}
        self.consumed: List[TraceOp] = []
        self.records: List[CrashRecord] = []
        # Initial checkpoints C(p, 0) are stable from the start.
        self.snapshots: List[List[_Snapshot]] = [
            [
                _Snapshot(
                    proto=copy.deepcopy(self.family[pid]),
                    recorder=self.recorder.snapshot(pid),
                    gidx=-1,
                )
            ]
            for pid in range(trace.n)
        ]

    # ------------------------------------------------------------------
    # the fold
    # ------------------------------------------------------------------
    def run(self) -> None:
        groups = self.schedule.groups()
        gi = 0
        for op in self.trace:
            while gi < len(groups) and groups[gi][0] <= op.time:
                self._handle_crash(*groups[gi])
                gi += 1
            self.consumed.append(op)
            self._apply_op(op, len(self.consumed) - 1)
            if (
                self.gc_every_ops
                and len(self.consumed) % self.gc_every_ops == 0
            ):
                self.manager.collect_garbage()
        while gi < len(groups):
            self._handle_crash(*groups[gi])
            gi += 1

    def _take_snapshot(
        self, pid: ProcessId, gidx: int, pending: Optional[TraceOp] = None
    ) -> None:
        self.snapshots[pid].append(
            _Snapshot(
                proto=copy.deepcopy(self.family[pid]),
                recorder=self.recorder.snapshot(pid),
                gidx=gidx,
                pending_deliver=pending,
            )
        )

    def _checkpoint(
        self,
        pid: ProcessId,
        time: float,
        kind: CheckpointKind,
        forced: bool,
        gidx: int,
        pending: Optional[TraceOp] = None,
    ) -> Event:
        ev = self.recorder.checkpoint(pid, time, kind)
        self.family[pid].on_checkpoint(forced=forced)
        assert ev.checkpoint_index is not None
        self.manager.on_checkpoint(pid, ev.checkpoint_index, ev.time)
        self.manager.logs[pid].flush(ev.checkpoint_index)
        self._take_snapshot(pid, gidx, pending=pending)
        return ev

    def _apply_op(
        self, op: TraceOp, gidx: int, deliver_only: bool = False
    ) -> None:
        """One trace op, first execution and re-execution alike.

        ``deliver_only`` re-applies just the delivery half of an op whose
        forced-before-delivery checkpoint is part of the restored state.
        """
        proto = self.family[op.pid]
        tracer = self.tracer
        metrics = self.metrics
        name = self.family.name
        if op.kind is TraceOpKind.SEND:
            assert op.msg_id is not None and op.peer is not None
            pb = self.piggybacks[op.msg_id] = proto.on_send(op.peer)
            ev = self.recorder.send(op)
            self.manager.on_send(self.recorder.messages[op.msg_id], ev.time)
            if metrics is not None:
                metrics.inc("replay.piggyback_bits", pb.size_bits())
            if proto.wants_checkpoint_after_send():
                self._checkpoint(
                    op.pid, op.time, CheckpointKind.FORCED, True, gidx
                )
                if tracer:
                    tracer.event(
                        "proto.forced",
                        op.time,
                        protocol=name,
                        pid=op.pid,
                        cause="after_send",
                        msg=op.msg_id,
                        index=proto.tdv[op.pid] - 1,
                    )
                if metrics is not None:
                    metrics.inc("replay.forced")
                    metrics.inc(f"replay.forced.p{op.pid}")
        elif op.kind is TraceOpKind.DELIVER:
            assert op.msg_id is not None and op.peer is not None
            pb = self.piggybacks[op.msg_id]
            if not deliver_only:
                forced = proto.wants_forced_checkpoint(pb, op.peer)
                if tracer:
                    tracer.event(
                        "proto.predicate",
                        op.time,
                        protocol=name,
                        pid=op.pid,
                        sender=op.peer,
                        msg=op.msg_id,
                        piggyback=pb,
                        forced=forced,
                    )
                if metrics is not None:
                    metrics.inc("replay.predicate_evals")
                if forced:
                    self._checkpoint(
                        op.pid,
                        op.time,
                        CheckpointKind.FORCED,
                        True,
                        gidx,
                        pending=op,
                    )
                    if tracer:
                        tracer.event(
                            "proto.forced",
                            op.time,
                            protocol=name,
                            pid=op.pid,
                            cause="predicate",
                            msg=op.msg_id,
                            index=proto.tdv[op.pid] - 1,
                        )
                    if metrics is not None:
                        metrics.inc("replay.forced")
                        metrics.inc(f"replay.forced.p{op.pid}")
            proto.on_receive(pb, op.peer)
            ev = self.recorder.deliver(op)
            self.manager.on_deliver(self.recorder.messages[op.msg_id], ev.time)
        elif op.kind is TraceOpKind.BASIC_CHECKPOINT:
            self._checkpoint(op.pid, op.time, CheckpointKind.BASIC, False, gidx)
            if tracer:
                tracer.event(
                    "proto.ckpt",
                    op.time,
                    protocol=name,
                    pid=op.pid,
                    ckpt="basic",
                    index=proto.tdv[op.pid] - 1,
                )
            if metrics is not None:
                metrics.inc("replay.basic")
                metrics.inc(f"replay.basic.p{op.pid}")
        else:  # pragma: no cover - exhaustive enum
            raise SimulationError(f"unknown op {op!r}")

    # ------------------------------------------------------------------
    # crash handling
    # ------------------------------------------------------------------
    def _handle_crash(self, t: float, pids: List[ProcessId]) -> None:
        tracer = self.tracer
        metrics = self.metrics
        if tracer:
            tracer.event("recovery.crash", t, crashed=sorted(pids))
        if metrics is not None:
            metrics.inc("recovery.crashes")
        online = self.manager.crash(pids, t)

        offline_cut: Optional[Dict[ProcessId, int]] = None
        if self.cross_check:
            offline_cut = self._offline_cross_check(online, pids)

        if tracer:
            tracer.event(
                "recovery.line",
                t,
                crashed=list(online.crashed),
                cut=[online.cut[p] for p in range(self.n)],
                bounds=[online.bounds[p] for p in range(self.n)],
                undone=online.events_undone,
                depth=[online.rollback_depth[p] for p in range(self.n)],
            )
        if metrics is not None:
            metrics.inc("recovery.events_undone", online.events_undone)
            metrics.inc("recovery.messages_replayed", len(online.to_replay))
            metrics.observe("recovery.rollback_depth", online.max_depth)

        reexec = self._rollback(online)
        for gidx, op, deliver_only in reexec:
            self._apply_op(op, gidx, deliver_only=deliver_only)

        if tracer:
            tracer.event(
                "recovery.replay",
                t,
                replayed=len(online.to_replay),
                reexecuted=len(reexec),
            )
        if metrics is not None:
            metrics.inc("recovery.ops_reexecuted", len(reexec))
        self.records.append(
            CrashRecord(
                online=online,
                offline_cut=offline_cut,
                events_reexecuted=len(reexec),
            )
        )

    def _offline_cross_check(
        self, online: OnlineRecovery, pids: List[ProcessId]
    ) -> Dict[ProcessId, int]:
        """The offline fixpoint on the closed prefix must agree."""
        prefix = History(self.recorder.events, self.recorder.messages).closed()
        offline = recovery_line(
            prefix, {pid: CrashSpec(pid) for pid in pids}
        )
        if dict(offline.cut) != online.cut:
            raise RecoveryError(
                f"online/offline recovery lines disagree at t={online.time}: "
                f"online={online.cut} offline={dict(offline.cut)}"
            )
        offline_plan = sorted(m.msg_id for m in offline.messages_to_replay)
        if offline_plan != online.to_replay:
            raise RecoveryError(
                f"online/offline replay plans disagree at t={online.time}: "
                f"online={online.to_replay} offline={offline_plan}"
            )
        return dict(offline.cut)

    def _rollback(
        self, online: OnlineRecovery
    ) -> List[Tuple[int, TraceOp, bool]]:
        """Restore every rolled-back process; return the re-execution list.

        The list holds ``(gidx, op, deliver_only)`` sorted by the ops'
        original global positions, so re-sends precede re-deliveries
        exactly as they did the first time.
        """
        cut = online.cut
        undone_events = 0
        reexec: List[Tuple[int, TraceOp, bool]] = []
        for pid in range(self.n):
            last = self.manager.last_taken(pid)
            if cut[pid] > last:
                continue  # survivor keeping its volatile state
            if cut[pid] == last and not self.manager.open_events(pid):
                continue  # already sitting exactly on its line checkpoint
            snap = self.snapshots[pid][cut[pid]]
            del self.snapshots[pid][cut[pid] + 1 :]
            # Restore a *copy*: the stored snapshot must stay pristine in
            # case a later crash rolls back to this checkpoint again.
            self.family.members[pid] = copy.deepcopy(snap.proto)
            undone_events += len(self.recorder.restore(pid, snap.recorder))
            if snap.pending_deliver is not None:
                reexec.append((snap.gidx, snap.pending_deliver, True))
            for i in range(snap.gidx + 1, len(self.consumed)):
                if self.consumed[i].pid == pid:
                    reexec.append((i, self.consumed[i], False))
        if undone_events != online.events_undone:
            raise RecoveryError(
                "internal inconsistency: recorder undid "
                f"{undone_events} events, online line predicted "
                f"{online.events_undone}"
            )
        self.manager.rollback(cut)
        reexec.sort(key=lambda item: item[0])
        return reexec


def replay_with_recovery(
    trace: Trace,
    protocol_factory: Callable[[ProcessId, int], CheckpointProtocol],
    schedule: CrashSchedule,
    close: bool = True,
    cross_check: bool = True,
    gc_every_ops: Optional[int] = None,
    tracer: Optional["Tracer"] = None,
    metrics: Optional["MetricsRegistry"] = None,
    profiler: Optional["Profiler"] = None,
) -> RecoveryReplayResult:
    """Replay ``trace`` under a protocol while injecting ``schedule``.

    Parameters beyond :func:`repro.sim.replay.replay`'s:

    ``schedule``
        The deterministic fault model; each crash group triggers one
        online recovery (line, rollback, log replay, re-execution).
    ``cross_check``
        Verify, at every crash, that the online recovery line and replay
        plan equal the offline fixpoint on the closed prefix history
        (raises :class:`repro.types.RecoveryError` on disagreement).
    ``gc_every_ops``
        If set, run the online sender-log garbage collector (safe
        both-sides rule) every that many consumed trace ops -- crashes
        then also exercise "replay after GC".

    Emits ``recovery.crash`` / ``recovery.line`` / ``recovery.replay``
    trace events and the ``recovery.*`` metric family.
    """
    profiler = profiler or NULL_PROFILER
    engine = _CrashEngine(
        trace,
        protocol_factory,
        schedule,
        cross_check=cross_check,
        gc_every_ops=gc_every_ops,
        tracer=tracer,
        metrics=metrics,
    )
    with profiler.phase("simulate"):
        engine.run()
    with profiler.phase("closure"):
        history = engine.recorder.build(close)
    run_metrics = metrics_from_history(
        history,
        protocol=engine.family.name,
        piggyback_bits_total=engine.family.total_piggyback_bits(),
    )
    _cross_check_forced(run_metrics, engine.family)
    return RecoveryReplayResult(
        protocol_name=engine.family.name,
        history=history,
        family=engine.family,
        metrics=run_metrics,
        crashes=engine.records,
        manager=engine.manager,
        schedule=engine.schedule,
    )
