"""Classical RDT-ensuring protocols predating dependency vectors.

These protocols (cited in the paper's introduction and section 5.2)
guarantee RDT by *shape* alone, with little or no piggybacked control
information, at the price of many more forced checkpoints:

* **NRAS** -- No-Receive-After-Send (Russell 1980): force a checkpoint
  before any delivery that would land after a send of the same interval.
  Every interval then has all its deliveries before all its sends, so
  every chain junction is causal.
* **CBR** -- Checkpoint-Before-Receive: force before any delivery into a
  non-fresh interval; every delivery starts its own interval.
* **CAS** -- Checkpoint-After-Send (Wu-Fuchs 1990): take a checkpoint
  immediately after every send; a send is always the last event of its
  interval.

None of them piggybacks anything, hence their vacuous trackability: no
non-causal chain survives to need tracking.  They still inherit the
framework's TDV *bookkeeping* so analyses can read saved vectors, but
the vectors never travel (their internal TDVs are local-only and are
excluded from the Corollary 4.5 claims -- ``carries_tdv`` is False).
"""

from __future__ import annotations

from repro.core import predicates
from repro.core.piggyback import EmptyPiggyback, Piggyback
from repro.core.protocol import CheckpointProtocol
from repro.types import ProcessId


class NoPiggybackProtocol(CheckpointProtocol):
    """Shared plumbing for protocols that send no control information."""

    carries_tdv = False

    def make_piggyback(self, dst: ProcessId) -> Piggyback:
        return EmptyPiggyback()


class NRASProtocol(NoPiggybackProtocol):
    """Russell's No-Receive-After-Send."""

    name = "nras"
    ensures_rdt = True

    def wants_forced_checkpoint(self, pb: Piggyback, sender: ProcessId) -> bool:
        return predicates.c_nras(self.after_first_send)

    def on_receive(self, pb: Piggyback, sender: ProcessId) -> None:
        super().on_receive(pb, sender)


class CBRProtocol(NoPiggybackProtocol):
    """Checkpoint-Before-Receive."""

    name = "cbr"
    ensures_rdt = True

    def wants_forced_checkpoint(self, pb: Piggyback, sender: ProcessId) -> bool:
        return predicates.c_cbr(self.had_communication)

    def on_receive(self, pb: Piggyback, sender: ProcessId) -> None:
        super().on_receive(pb, sender)


class CASProtocol(NoPiggybackProtocol):
    """Wu-Fuchs's Checkpoint-After-Send.

    Forces nothing at delivery time; instead requests a checkpoint right
    after every send (the framework's ``wants_checkpoint_after_send``
    hook).
    """

    name = "cas"
    ensures_rdt = True

    def wants_forced_checkpoint(self, pb: Piggyback, sender: ProcessId) -> bool:
        return False

    def wants_checkpoint_after_send(self) -> bool:
        return True

    def on_receive(self, pb: Piggyback, sender: ProcessId) -> None:
        super().on_receive(pb, sender)
