"""E6 / Corollary 4.5: minimum consistent global checkpoints on the fly.

The BHMR protocol associates with every checkpoint, at zero extra cost,
the minimum consistent global checkpoint containing it (the saved TDV).
This bench (a) verifies the claim against the offline fixpoint on every
checkpoint of a sizable run and (b) times the on-the-fly lookup against
the offline computation -- the speedup is the practical content of the
corollary.
"""

import pytest

from repro.analysis import min_consistent_gcp
from repro.events.event import CheckpointKind
from repro.sim import Simulation, SimulationConfig
from repro.types import CheckpointId
from repro.workloads import RandomUniformWorkload


@pytest.fixture(scope="module")
def run():
    sim = Simulation(
        RandomUniformWorkload(send_rate=1.5),
        SimulationConfig(n=6, duration=60.0, basic_rate=0.3, seed=1),
    )
    return sim.run("bhmr")


def _protocol_checkpoints(run):
    out = []
    for pid in range(run.history.num_processes):
        for ev in run.history.checkpoints(pid):
            if ev.checkpoint_kind is not CheckpointKind.FINAL:
                out.append(CheckpointId(pid, ev.checkpoint_index))
    return out


def test_corollary_45_equality(benchmark, emit, run):
    cids = _protocol_checkpoints(run)
    mismatches = 0
    for cid in cids:
        claimed = run.family[cid.pid].min_gcp_of(cid.index)
        exact = min_consistent_gcp(run.history, [cid])
        if claimed != exact:
            mismatches += 1
    emit(
        f"Corollary 4.5 -- {len(cids)} checkpoints, "
        f"{mismatches} mismatches between on-the-fly and offline min-GCP"
    )
    assert mismatches == 0
    sample = cids[: max(1, len(cids) // 10)]
    benchmark(lambda: [min_consistent_gcp(run.history, [c]) for c in sample])


def test_on_the_fly_lookup_speed(benchmark, run):
    cids = _protocol_checkpoints(run)
    result = benchmark(
        lambda: [run.family[c.pid].min_gcp_of(c.index) for c in cids]
    )
    assert len(result) == len(cids)
