#!/bin/sh
# One-command verification: the determinism/async lint plus the tier-1
# test suite, exactly what CI (and the roadmap's gate) runs.
#
#     sh tools/verify.sh
#
# Exits non-zero on the first failing stage.
set -e
cd "$(dirname "$0")/.."

echo "== lint: determinism + async blocking-call rules =="
python tools/lint_determinism.py

echo "== tier-1: pytest =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -x -q
