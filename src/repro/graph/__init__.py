"""Dependency graphs: the R-graph and the message-chain (Z-path) engine."""

from repro.graph.incremental import IncrementalRGraph
from repro.graph.reachability import (
    Closure,
    DenseDigraph,
    IncrementalClosure,
    SetView,
)
from repro.graph.rgraph import RGraph
from repro.graph.zpaths import ChainReach, ZPathAnalyzer

__all__ = [
    "ChainReach",
    "Closure",
    "DenseDigraph",
    "IncrementalClosure",
    "IncrementalRGraph",
    "RGraph",
    "SetView",
    "ZPathAnalyzer",
]
