"""Protocol-comparison experiments: the paper's measurement methodology.

One *comparison* = one workload scenario, one seed, every protocol
replayed over the same trace; the paper's headline statistic is

    R = forced(P) / forced(FDAS)

averaged over several seeds.  :func:`compare_protocols` produces the per
-protocol aggregate rows; :func:`ratio_table` boils them down to R.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, TYPE_CHECKING

from repro.analysis import check_rdt
from repro.obs.profile import NULL_PROFILER
from repro.sim import Simulation, SimulationConfig
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.profile import Profiler
    from repro.obs.tracer import Tracer


@dataclass
class ProtocolAggregate:
    """Per-protocol numbers aggregated over seeds of one scenario."""

    protocol: str
    seeds: int
    forced_total: int
    basic_total: int
    messages_total: int
    piggyback_bits_total: int
    rdt_ok: bool
    ratio_to_baseline: Optional[float] = None
    forced_per_seed: List[int] = field(default_factory=list)
    ratio_per_seed: List[Optional[float]] = field(default_factory=list)

    @property
    def ratio_mean(self) -> Optional[float]:
        values = [r for r in self.ratio_per_seed if r is not None]
        if not values:
            return None
        return sum(values) / len(values)

    @property
    def ratio_stddev(self) -> Optional[float]:
        values = [r for r in self.ratio_per_seed if r is not None]
        if len(values) < 2:
            return None
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        return var ** 0.5

    @property
    def forced_per_message(self) -> float:
        if self.messages_total == 0:
            return 0.0
        return self.forced_total / self.messages_total

    @property
    def piggyback_bits_per_message(self) -> float:
        if self.messages_total == 0:
            return 0.0
        return self.piggyback_bits_total / self.messages_total

    def as_row(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "forced": self.forced_total,
            "basic": self.basic_total,
            "forced/msg": round(self.forced_per_message, 4),
            "R": None
            if self.ratio_to_baseline is None
            else round(self.ratio_to_baseline, 3),
            "bits/msg": round(self.piggyback_bits_per_message, 1),
            "RDT": "yes" if self.rdt_ok else "NO",
        }

    def to_dict(self) -> Dict[str, object]:
        """Field-for-field dict; canonical-JSON safe and round-trippable."""
        return {
            "protocol": self.protocol,
            "seeds": self.seeds,
            "forced_total": self.forced_total,
            "basic_total": self.basic_total,
            "messages_total": self.messages_total,
            "piggyback_bits_total": self.piggyback_bits_total,
            "rdt_ok": self.rdt_ok,
            "ratio_to_baseline": self.ratio_to_baseline,
            "forced_per_seed": list(self.forced_per_seed),
            "ratio_per_seed": list(self.ratio_per_seed),
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "ProtocolAggregate":
        return cls(**doc)  # type: ignore[arg-type]


@dataclass
class ComparisonResult:
    """All protocols on one scenario (aggregated over seeds)."""

    scenario: str
    protocols: List[ProtocolAggregate]
    baseline: str

    def aggregate(self, protocol: str) -> ProtocolAggregate:
        for agg in self.protocols:
            if agg.protocol == protocol:
                return agg
        raise KeyError(protocol)

    def ratio(self, protocol: str) -> Optional[float]:
        return self.aggregate(protocol).ratio_to_baseline

    def rows(self) -> List[Dict[str, object]]:
        return [agg.as_row() for agg in self.protocols]

    def to_dict(self) -> Dict[str, object]:
        """The canonical document -- also the result cache's payload
        (via :func:`repro.obs.jsonio.canonical_bytes`)."""
        return {
            "scenario": self.scenario,
            "baseline": self.baseline,
            "protocols": [agg.to_dict() for agg in self.protocols],
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "ComparisonResult":
        return cls(
            scenario=doc["scenario"],  # type: ignore[arg-type]
            baseline=doc["baseline"],  # type: ignore[arg-type]
            protocols=[
                ProtocolAggregate.from_dict(entry)
                for entry in doc["protocols"]  # type: ignore[union-attr]
            ],
        )


def compare_protocols(
    make_workload: Callable[[], Workload],
    config: SimulationConfig,
    protocols: Sequence[str],
    baseline: str = "fdas",
    seeds: Sequence[int] = (0, 1, 2),
    scenario: str = "scenario",
    verify_rdt: bool = False,
    tracer: Optional["Tracer"] = None,
    metrics: Optional["MetricsRegistry"] = None,
    profiler: Optional["Profiler"] = None,
) -> ComparisonResult:
    """Replay every protocol over the same traces, aggregate over seeds.

    ``verify_rdt=True`` additionally runs the RDT checker on every
    produced pattern (slower; benchmarks enable it on smaller runs).
    The baseline is included automatically if absent from ``protocols``.

    The observability instruments thread down into generation and replay
    (see :class:`repro.sim.Simulation`); RDT verification is attributed
    to the ``analyze`` phase.  None of them changes a single result.
    """
    profiler = profiler or NULL_PROFILER
    names = list(protocols)
    if baseline not in names:
        names.append(baseline)
    totals = {
        name: {
            "forced": 0,
            "basic": 0,
            "messages": 0,
            "bits": 0,
            "rdt": True,
            "per_seed": [],
        }
        for name in names
    }
    for seed in seeds:
        cfg_kwargs = dict(config.__dict__)
        cfg_kwargs["seed"] = seed
        sim = Simulation(
            make_workload(),
            SimulationConfig(**cfg_kwargs),
            tracer=tracer,
            metrics=metrics,
            profiler=profiler,
        )
        for name in names:
            res = sim.run(name)
            bucket = totals[name]
            bucket["forced"] += res.metrics.forced_checkpoints
            bucket["basic"] += res.metrics.basic_checkpoints
            bucket["messages"] += res.metrics.messages_delivered
            bucket["bits"] += res.metrics.piggyback_bits_total
            bucket["per_seed"].append(res.metrics.forced_checkpoints)
            if verify_rdt:
                with profiler.phase("analyze"):
                    holds = check_rdt(res.history).holds
                if not holds:
                    bucket["rdt"] = False
                if metrics is not None:
                    metrics.inc("analyze.rdt_checks")
    baseline_forced = totals[baseline]["forced"]
    baseline_per_seed = totals[baseline]["per_seed"]
    aggregates = []
    for name in names:
        bucket = totals[name]
        ratio = (
            bucket["forced"] / baseline_forced if baseline_forced > 0 else None
        )
        ratio_per_seed = [
            f / b if b > 0 else None
            for f, b in zip(bucket["per_seed"], baseline_per_seed)
        ]
        aggregates.append(
            ProtocolAggregate(
                protocol=name,
                seeds=len(seeds),
                forced_total=bucket["forced"],
                basic_total=bucket["basic"],
                messages_total=bucket["messages"],
                piggyback_bits_total=bucket["bits"],
                rdt_ok=bool(bucket["rdt"]),
                ratio_to_baseline=ratio,
                forced_per_seed=list(bucket["per_seed"]),
                ratio_per_seed=ratio_per_seed,
            )
        )
    return ComparisonResult(scenario=scenario, protocols=aggregates, baseline=baseline)
