"""kill -9 the daemon, restart it, prove no acked frame died with it.

The grid is 54 cells: 54 seeds spread round-robin over the cross
product of fsync batch sizes {1, 7, 64} and kill modes:

* ``load``     -- SIGKILL lands mid-group-commit under streaming ingest;
* ``snapshot`` -- the driver also forces periodic snapshots, so the kill
  can land mid-snapshot-write and mid-WAL-truncation;
* ``drain``    -- SIGINT starts the graceful drain, SIGKILL cuts it
  short a few milliseconds in.

Every cell asserts the two-sided durability contract (no acked frame
lost, no unacked frame fabricated) offline *and* against a restarted
server -- see :mod:`tests.chaos.harness`.

Gating: these spawn real subprocesses and murder them, so they only run
with ``REPRO_CHAOS=1``.  ``REPRO_CHAOS_CELLS`` caps the cell count
(default 6 for a quick smoke; 54 runs the whole grid).
"""

import os

import pytest

from tests.chaos.harness import run_cell

pytestmark = [
    pytest.mark.tier2,
    pytest.mark.skipif(
        os.environ.get("REPRO_CHAOS") != "1",
        reason="chaos suite runs only with REPRO_CHAOS=1",
    ),
]

BATCHES = (1, 7, 64)
MODES = ("load", "snapshot", "drain")
PAIRS = [(batch, mode) for batch in BATCHES for mode in MODES]
FULL_GRID = [
    (seed, *PAIRS[seed % len(PAIRS)]) for seed in range(6 * len(PAIRS))
]


def _budgeted_grid():
    """The first ``REPRO_CHAOS_CELLS`` cells (seed order covers every
    (batch, mode) pair once per 9 cells, so even small budgets mix)."""
    budget = int(os.environ.get("REPRO_CHAOS_CELLS", "6"))
    return FULL_GRID[: max(1, min(budget, len(FULL_GRID)))]


@pytest.mark.parametrize(
    ("seed", "fsync_batch", "kill_mode"),
    _budgeted_grid(),
    ids=lambda value: str(value),
)
def test_kill9_loses_no_acked_frame(tmp_path, seed, fsync_batch, kill_mode):
    result, recovered = run_cell(
        tmp_path, seed=seed, fsync_batch=fsync_batch, kill_mode=kill_mode
    )
    # The cell only exercises the contract if the kill actually landed
    # mid-conversation; with seeded delays it always does, and this
    # assert keeps the suite honest if the timing constants drift.
    assert result.died or kill_mode == "drain", (
        "the SIGKILL never interrupted the driver -- widen the load or "
        "shrink the kill delay"
    )
    assert result.total_acked >= 0  # bookkeeping sanity
    # Offline + online audits already ran inside run_cell; re-assert the
    # headline here so a failure names the cell.
    for sid, load in result.sessions.items():
        rec = recovered.get(sid)
        got = 0 if rec is None else len(rec.log)
        assert load.acked <= got <= len(load.sent)
