"""Master/worker task farming.

Process 0 is the master: it keeps every worker loaded with one task at a
time; workers compute (exponential service time) and return results.
The pattern is a star: all chains pass through the master, so causal
siblings are plentiful -- an environment where protocols that *detect*
siblings (BHMR) should beat FDAS clearly.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.types import MessageId, ProcessId
from repro.workloads.base import Workload, WorkloadContext


class MasterWorkerWorkload(Workload):
    """P0 dispatches work items; workers service and reply."""

    def __init__(self, service_time: float = 1.0, dispatch_time: float = 0.05):
        self.service_time = service_time
        self.dispatch_time = dispatch_time

    def on_start(self, ctx: WorkloadContext) -> None:
        if ctx.n < 2:
            raise ValueError("master/worker needs at least two processes")
        for worker in range(1, ctx.n):
            ctx.set_timer(0, self.dispatch_time * worker, tag=("dispatch", worker))

    def on_timer(
        self, ctx: WorkloadContext, pid: ProcessId, tag: Optional[Hashable]
    ) -> None:
        if isinstance(tag, tuple) and tag[0] == "dispatch" and pid == 0:
            ctx.send(0, tag[1], payload="task")
        elif isinstance(tag, tuple) and tag[0] == "finish":
            ctx.send(pid, 0, payload="result")

    def on_deliver(
        self, ctx: WorkloadContext, pid: ProcessId, src: ProcessId, msg_id: MessageId
    ) -> None:
        if pid == 0:
            # Result received: immediately re-dispatch to that worker.
            ctx.set_timer(
                0,
                ctx.rng.expovariate(1.0 / self.dispatch_time),
                tag=("dispatch", src),
            )
        else:
            ctx.set_timer(
                pid,
                ctx.rng.expovariate(1.0 / self.service_time),
                tag=("finish", msg_id),
            )
