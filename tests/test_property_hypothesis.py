"""Property-based tests (hypothesis) over arbitrary generated patterns.

A pattern interpreter turns hypothesis-drawn op lists into valid
histories, giving much wilder structure than the seeded random
generator.  Properties checked:

* structural validity of everything the builder produces;
* vector clocks characterise happened-before;
* Wang's theorem: strict R-graph reachability == zigzag chain existence;
* the two RDT characterizations agree;
* both useless-checkpoint detectors agree, and RDT implies none exist;
* the min/max fixpoint GCPs are consistent, ordered, and extreme;
* the BHMR protocol run over arbitrary traces always yields RDT, with
  its piggybacked TDV matching the offline reference.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis import (
    check_rdt,
    is_consistent_gcp,
    max_consistent_gcp,
    min_consistent_gcp,
    useless_checkpoints,
    useless_checkpoints_rgraph,
)
from repro.clocks import Causality, tdv_snapshots, vector_timestamps
from repro.core import protocol_factory
from repro.events import PatternBuilder, validate_history
from repro.graph import RGraph, ZPathAnalyzer
from repro.sim import Trace, TraceOp, TraceOpKind, replay
from repro.types import CheckpointId

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
op_strategy = st.tuples(
    st.integers(0, 2),  # 0 = send, 1 = deliver, 2 = checkpoint
    st.integers(0, 5),  # process selector
    st.integers(0, 7),  # secondary selector (dst offset / in-flight pick)
)

pattern_inputs = st.tuples(
    st.integers(2, 4),  # n
    st.lists(op_strategy, min_size=0, max_size=60),
)


def build_pattern(n, ops, close=True):
    """Interpret an op list into a valid history (total function)."""
    builder = PatternBuilder(n)
    in_flight = []
    for code, a, b in ops:
        pid = a % n
        if code == 0:
            dst = (pid + 1 + b % (n - 1)) % n
            in_flight.append(builder.send(pid, dst))
        elif code == 1 and in_flight:
            builder.deliver(in_flight.pop(b % len(in_flight)))
        elif code == 2:
            builder.checkpoint(pid)
    return builder.build(close=close)


# ----------------------------------------------------------------------
# structural and causal properties
# ----------------------------------------------------------------------
@given(pattern_inputs)
@settings(max_examples=60, deadline=None)
def test_interpreter_builds_valid_histories(inputs):
    n, ops = inputs
    history = build_pattern(n, ops)
    validate_history(history)
    assert history.is_closed()


@given(pattern_inputs)
@settings(max_examples=40, deadline=None)
def test_vector_clocks_characterise_happened_before(inputs):
    n, ops = inputs
    history = build_pattern(n, ops)
    caus = Causality(history)
    stamps = vector_timestamps(history)
    events = list(history.all_events())
    for a in events:
        for b in events:
            if a.ref == b.ref:
                continue
            assert caus.precedes(a, b) == (stamps[a.ref] < stamps[b.ref])


@given(pattern_inputs)
@settings(max_examples=40, deadline=None)
def test_tdv_own_entry_and_monotonicity(inputs):
    n, ops = inputs
    history = build_pattern(n, ops)
    snaps = tdv_snapshots(history)
    for cid, vec in snaps.items():
        assert vec[cid.pid] == cid.index
        if cid.index > 0:
            prev = snaps[CheckpointId(cid.pid, cid.index - 1)]
            assert all(p <= c for p, c in zip(prev, vec))


# ----------------------------------------------------------------------
# graph-level equivalences
# ----------------------------------------------------------------------
@given(pattern_inputs)
@settings(max_examples=40, deadline=None)
def test_rgraph_reachability_equals_zigzag(inputs):
    n, ops = inputs
    history = build_pattern(n, ops)
    rgraph = RGraph(history)
    analyzer = ZPathAnalyzer(history)
    for a in history.checkpoint_ids():
        reach = analyzer.reach(a, causal=False, exact_start=False)
        for b in history.checkpoint_ids():
            via_chain = reach.reaches(b) or (a.pid == b.pid and a.index < b.index)
            assert rgraph.reaches_strictly(a, b) == via_chain, (a, b)


@given(pattern_inputs)
@settings(max_examples=40, deadline=None)
def test_rdt_characterizations_agree(inputs):
    n, ops = inputs
    history = build_pattern(n, ops)
    by_tdv = check_rdt(history, method="tdv")
    by_chains = check_rdt(history, method="chains")
    assert {(v.source, v.target) for v in by_tdv.violations} == {
        (v.source, v.target) for v in by_chains.violations
    }


@given(pattern_inputs)
@settings(max_examples=40, deadline=None)
def test_useless_detectors_agree_and_rdt_implies_none(inputs):
    n, ops = inputs
    history = build_pattern(n, ops)
    via_chains = useless_checkpoints(history)
    assert via_chains == useless_checkpoints_rgraph(history)
    if check_rdt(history).holds:
        assert via_chains == []


# ----------------------------------------------------------------------
# global checkpoint extremes
# ----------------------------------------------------------------------
@given(pattern_inputs)
@settings(max_examples=30, deadline=None)
def test_min_max_gcp_are_consistent_and_ordered(inputs):
    n, ops = inputs
    history = build_pattern(n, ops)
    for cid in history.checkpoint_ids():
        lo = min_consistent_gcp(history, [cid])
        hi = max_consistent_gcp(history, [cid])
        assert (lo is None) == (hi is None)
        if lo is not None and hi is not None:
            assert is_consistent_gcp(history, lo)
            assert is_consistent_gcp(history, hi)
            assert lo[cid.pid] == hi[cid.pid] == cid.index
            assert all(lo[p] <= hi[p] for p in lo)


@given(pattern_inputs)
@settings(max_examples=15, deadline=None)
def test_min_gcp_is_least_among_consistent_cuts(inputs):
    """Exhaustive minimality on small patterns: every consistent cut
    containing C dominates min_consistent_gcp(C) componentwise."""
    import itertools

    n, ops = inputs
    history = build_pattern(n, ops[:25])
    tops = [history.last_index(p) for p in range(n)]
    if any(t > 4 for t in tops):
        return  # keep the cartesian product small
    all_cuts = list(itertools.product(*(range(t + 1) for t in tops)))
    for cid in history.checkpoint_ids():
        lo = min_consistent_gcp(history, [cid])
        consistent = [
            cut
            for cut in all_cuts
            if cut[cid.pid] == cid.index
            and is_consistent_gcp(history, list(cut))
        ]
        if lo is None:
            assert consistent == []
        else:
            assert consistent
            for cut in consistent:
                assert all(lo[p] <= cut[p] for p in range(n))


# ----------------------------------------------------------------------
# protocol properties over arbitrary traces
# ----------------------------------------------------------------------
trace_inputs = st.tuples(
    st.integers(2, 4),
    st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 5), st.integers(0, 7)),
        min_size=0,
        max_size=50,
    ),
)


def build_trace(n, ops):
    """Interpret ops into a Trace (send / deliver / basic checkpoint)."""
    time = 0.0
    trace_ops = []
    in_flight = []
    next_msg = 0
    for code, a, b in ops:
        time += 1.0
        pid = a % n
        if code == 0:
            dst = (pid + 1 + b % (n - 1)) % n
            trace_ops.append(
                TraceOp(time, TraceOpKind.SEND, pid, peer=dst, msg_id=next_msg)
            )
            in_flight.append((next_msg, pid, dst))
            next_msg += 1
        elif code == 1 and in_flight:
            msg_id, src, dst = in_flight.pop(b % len(in_flight))
            trace_ops.append(
                TraceOp(time, TraceOpKind.DELIVER, dst, peer=src, msg_id=msg_id)
            )
        elif code == 2:
            trace_ops.append(TraceOp(time, TraceOpKind.BASIC_CHECKPOINT, pid))
    # Deliver leftovers so the pattern is complete.
    for msg_id, src, dst in in_flight:
        time += 1.0
        trace_ops.append(
            TraceOp(time, TraceOpKind.DELIVER, dst, peer=src, msg_id=msg_id)
        )
    return Trace(n, trace_ops)


@given(trace_inputs)
@settings(max_examples=50, deadline=None)
def test_bhmr_ensures_rdt_on_arbitrary_traces(inputs):
    n, ops = inputs
    trace = build_trace(n, ops)
    result = replay(trace, protocol_factory("bhmr"))
    assert check_rdt(result.history).holds


@given(trace_inputs, st.sampled_from(["bhmr-nosimple", "bhmr-causalonly", "fdas"]))
@settings(max_examples=40, deadline=None)
def test_family_ensures_rdt_on_arbitrary_traces(inputs, protocol):
    n, ops = inputs
    trace = build_trace(n, ops)
    result = replay(trace, protocol_factory(protocol))
    assert check_rdt(result.history).holds, protocol


@given(trace_inputs)
@settings(max_examples=30, deadline=None)
def test_protocol_tdv_matches_reference(inputs):
    n, ops = inputs
    trace = build_trace(n, ops)
    result = replay(trace, protocol_factory("bhmr"))
    reference = tdv_snapshots(result.history)
    from repro.events import CheckpointKind

    for pid in range(n):
        for ev in result.history.checkpoints(pid):
            if ev.checkpoint_kind is CheckpointKind.FINAL:
                continue
            assert result.family[pid].saved_tdv(ev.checkpoint_index) == reference[
                CheckpointId(pid, ev.checkpoint_index)
            ]


@given(trace_inputs)
@settings(max_examples=30, deadline=None)
def test_corollary_45_on_arbitrary_traces(inputs):
    n, ops = inputs
    trace = build_trace(n, ops)
    result = replay(trace, protocol_factory("bhmr"))
    from repro.events import CheckpointKind

    for pid in range(n):
        for ev in result.history.checkpoints(pid):
            if ev.checkpoint_kind is CheckpointKind.FINAL:
                continue
            cid = CheckpointId(pid, ev.checkpoint_index)
            assert min_consistent_gcp(result.history, [cid]) == result.family[
                pid
            ].min_gcp_of(cid.index)


# ----------------------------------------------------------------------
# sender-log GC safety
# ----------------------------------------------------------------------
@given(pattern_inputs, st.floats(0.05, 0.95))
@settings(max_examples=40, deadline=None)
def test_gc_never_drops_a_message_a_later_line_needs(inputs, frac):
    """The headline GC-safety property behind the both-sides rule.

    For a floor computed at *any* earlier instant, no message the safe
    rule reclaims can appear in the replay plan of *any* later crash's
    recovery line: later lines never fall below the floor, and a
    reclaimed message sits at or below it on both endpoints.
    """
    import itertools

    from repro.recovery import (
        CrashSpec,
        build_sender_logs,
        global_recovery_floor,
        recovery_line,
        replay_plan,
    )

    n, ops = inputs
    history = build_pattern(n, ops)
    last_time = max(ev.time for ev in history.all_events())
    at_time = last_time * frac
    floor = global_recovery_floor(history, at_time=at_time)

    logs = build_sender_logs(history)
    dropped = set()
    for pid, log in logs.items():
        before = set(log._messages)
        log.collect_garbage(history, floor.cut)
        dropped |= before - set(log._messages)

    for r in range(1, n + 1):
        for crashed in itertools.combinations(range(n), r):
            line = recovery_line(history, {p: CrashSpec(p) for p in crashed})
            # Later lines never cross the earlier floor ...
            assert all(line.cut[p] >= floor.cut[p] for p in range(n))
            needed = {m.msg_id for m in replay_plan(history, line.cut).messages()}
            # ... so nothing GC reclaimed is ever needed again, and every
            # needed message is still servable from its sender's log.
            assert not needed & dropped
            for m in replay_plan(history, line.cut).messages():
                assert logs[m.src].lookup(m.msg_id).msg_id == m.msg_id
