"""The Rollback-Dependency Graph (R-graph) of a pattern.

Definition (paper section 3.1, after Wang): one node per local
checkpoint; a directed edge ``C(i,x) -> C(j,y)`` iff

1. ``i == j`` and ``y == x + 1`` (same-process succession), or
2. ``i != j`` and some message is sent in ``I(i,x)`` and delivered in
   ``I(j,y)``.

The operational meaning of an edge (and hence of any R-path) is rollback
propagation: if ``P_i`` rolls back to a checkpoint *preceding* ``C(i,x)``
then ``P_j`` must roll back to a checkpoint preceding ``C(j,y)``.

A key fact used throughout the analysis layer (Wang's R-graph theorem):
for ``i != j`` or non-trivial paths, ``C(i,x)`` reaches ``C(j,y)`` in the
R-graph **iff** there is a message chain (Z-path in Netzer-Xu's
terminology) from ``C(i,x)`` to some ``C(j,y')`` with ``y' <= y``.  The
test suite cross-checks R-graph reachability against the independent
chain search of :mod:`repro.graph.zpaths` on every random pattern.

Volatile nodes: messages sent or delivered in an interval that is still
open at the end of the history have no closing checkpoint, so by default
they induce no nodes/edges.  Passing ``include_volatile=True`` adds one
virtual checkpoint per process (index ``last_index + 1``) standing for
"the state at the end of the history", which is what recovery analyses
want.  Closed histories (``history.closed()``) need no volatile nodes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from typing import Union

from repro.events.history import History
from repro.graph.reachability import Closure, DenseDigraph, IncrementalClosure
from repro.types import CheckpointId


class RGraph:
    """The rollback-dependency graph of one history.

    ``incremental=True`` answers reachability from an
    :class:`~repro.graph.reachability.IncrementalClosure` fed edge by
    edge instead of one batch Tarjan condensation; query results are
    bit-identical (enforced by ``tests/test_differential_closure.py``)
    but the closure can then be shared with online analyses that keep
    extending it.
    """

    def __init__(
        self,
        history: History,
        include_volatile: bool = False,
        incremental: bool = False,
    ) -> None:
        self._history = history
        self._include_volatile = include_volatile
        self._incremental = incremental
        n = history.num_processes
        self._nodes: List[CheckpointId] = []
        self._id_of: Dict[CheckpointId, int] = {}
        for pid in range(n):
            top = history.last_index(pid) + (1 if include_volatile else 0)
            for index in range(top + 1):
                cid = CheckpointId(pid, index)
                self._id_of[cid] = len(self._nodes)
                self._nodes.append(cid)
        self._graph = DenseDigraph(len(self._nodes))
        self._build_edges()
        self._closure: Optional[Union[Closure, IncrementalClosure]] = None

    def _build_edges(self) -> None:
        history = self._history
        # Same-process succession edges.
        for pid in range(history.num_processes):
            top = history.last_index(pid) + (1 if self._include_volatile else 0)
            for index in range(top):
                self._graph.add_edge(
                    self._id_of[CheckpointId(pid, index)],
                    self._id_of[CheckpointId(pid, index + 1)],
                )
        # Message edges.
        for m in history.delivered_messages():
            src_cid = CheckpointId(m.src, history.send_interval(m))
            dst_interval = history.deliver_interval(m)
            assert dst_interval is not None
            dst_cid = CheckpointId(m.dst, dst_interval)
            if src_cid in self._id_of and dst_cid in self._id_of:
                self._graph.add_edge(self._id_of[src_cid], self._id_of[dst_cid])

    # ------------------------------------------------------------------
    @property
    def history(self) -> History:
        return self._history

    @property
    def include_volatile(self) -> bool:
        return self._include_volatile

    def nodes(self) -> Tuple[CheckpointId, ...]:
        return tuple(self._nodes)

    def num_nodes(self) -> int:
        return len(self._nodes)

    def num_edges(self) -> int:
        return self._graph.num_edges()

    def is_volatile(self, cid: CheckpointId) -> bool:
        """True if ``cid`` is a virtual end-of-history node."""
        return cid.index > self._history.last_index(cid.pid)

    def has_node(self, cid: CheckpointId) -> bool:
        return cid in self._id_of

    def edges(self) -> Iterable[Tuple[CheckpointId, CheckpointId]]:
        for u, v in self._graph.edges():
            yield (self._nodes[u], self._nodes[v])

    def successors(self, cid: CheckpointId) -> Set[CheckpointId]:
        return {self._nodes[v] for v in self._graph.successors(self._id_of[cid])}

    def predecessors(self, cid: CheckpointId) -> Set[CheckpointId]:
        return {self._nodes[u] for u in self._graph.predecessors(self._id_of[cid])}

    # ------------------------------------------------------------------
    def _closure_or_build(self) -> Union[Closure, IncrementalClosure]:
        if self._closure is None:
            if self._incremental:
                inc = IncrementalClosure(self._graph.n)
                for u, v in self._graph.edges():
                    inc.add_edge(u, v)
                self._closure = inc
            else:
                self._closure = self._graph.transitive_closure()
        return self._closure

    def has_rpath(self, a: CheckpointId, b: CheckpointId) -> bool:
        """True iff an R-path ``a -> b`` exists (non-empty, or ``a == b``).

        Following the paper's usage, the trivial path ``a -> a`` always
        "exists"; a *cyclic* path from ``a`` back to itself is reported by
        :meth:`on_cycle` instead.
        """
        return self._closure_or_build().reaches_or_equal(
            self._id_of[a], self._id_of[b]
        )

    def reaches_strictly(self, a: CheckpointId, b: CheckpointId) -> bool:
        """True iff a non-empty R-path ``a -> b`` exists."""
        return self._closure_or_build().reaches(self._id_of[a], self._id_of[b])

    def reachable_set(self, a: CheckpointId) -> Set[CheckpointId]:
        ids = self._closure_or_build().reachable_set(self._id_of[a])
        return {self._nodes[v] for v in ids}

    def closure_masks(self) -> List[int]:
        """Raw per-node reachability bitsets, in :meth:`nodes` order.

        Bit ``v`` of entry ``u`` is set iff node ``u`` strictly reaches
        node ``v``.  Used by vectorised analyses to hand the closure to
        numpy without a per-node Python loop.
        """
        closure = self._closure_or_build()
        return [closure.reach_mask(u) for u in range(len(self._nodes))]

    def on_cycle(self, cid: CheckpointId) -> bool:
        return self._closure_or_build().on_cycle(self._id_of[cid])

    def cycles(self) -> List[List[CheckpointId]]:
        """Strongly connected components containing a cycle.

        Each component sorted; components ordered by smallest member so
        the output is identical across closure backends.
        """
        comps = [
            sorted(self._nodes[v] for v in comp)
            for comp in self._closure_or_build().cyclic_components()
        ]
        return sorted(comps, key=lambda comp: comp[0])

    # ------------------------------------------------------------------
    def rpath_pairs(self) -> Iterable[Tuple[CheckpointId, CheckpointId]]:
        """All ordered pairs ``(a, b)``, ``a != b``, with an R-path a -> b."""
        closure = self._closure_or_build()
        for u, a in enumerate(self._nodes):
            for v in sorted(closure.reachable_set(u)):
                if u != v:
                    yield (a, self._nodes[v])

    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` (for visualisation/debugging)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(self._nodes)
        g.add_edges_from(self.edges())
        return g

    def __repr__(self) -> str:
        return (
            f"<RGraph nodes={self.num_nodes()} edges={self.num_edges()} "
            f"volatile={self._include_volatile}>"
        )
