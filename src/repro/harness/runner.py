"""Parallel, cached execution of sweep experiments.

:func:`repro.harness.sweep.ratio_sweep` runs every (x, protocols, seeds)
cell of a figure serially in-process.  This module fans the same cells
out over worker processes and memoises finished cells in a
content-addressed on-disk cache, while guaranteeing bit-identical
results to the serial path:

* **Determinism.**  A cell is a pure function of (scenario factory, x,
  protocol list, baseline, seeds, verify_rdt): each simulation seeds its
  own ``random.Random`` from the cell's seed list, so neither worker
  count nor scheduling order can change a result.  The property suite in
  ``tests/test_runner_parallel.py`` pins serial == parallel for random
  cell sets, and :func:`derive_cell_seeds` derives decorrelated per-cell
  seed lists from one master seed when callers want them.

* **Content-addressed caching.**  The cache key is the SHA-256 of a
  canonical JSON description of the cell -- workload class + parameters,
  simulation config (delay model included), protocol list, baseline,
  seeds, verify flag.  The cached payload is the canonical JSON encoding
  of the :class:`~repro.harness.experiment.ComparisonResult`, so a cache
  hit returns the *same bytes* a cold run produced.  Any change to a knob
  changes the key; stale entries are simply never addressed again.

* **Portability.**  Worker processes need the scenario callable to be
  picklable (a module-level function).  When it is not -- or when only
  one worker is requested -- the runner silently degrades to the serial
  path; results are identical either way, only the wall time differs.

Timing and hit statistics are collected in :class:`RunnerStats` and
rendered by :func:`repro.harness.tables.render_runner_stats`.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.harness.experiment import (
    ComparisonResult,
    ProtocolAggregate,
    compare_protocols,
)
from repro.harness.sweep import ScenarioAt, SweepResult

__all__ = [
    "ResultCache",
    "RunnerStats",
    "SweepCell",
    "cell_key",
    "comparison_from_payload",
    "comparison_to_payload",
    "derive_cell_seeds",
    "describe_cell",
    "run_sweep",
]


# ----------------------------------------------------------------------
# cells
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepCell:
    """One unit of sweep work: every protocol at one swept value."""

    x_label: str
    x: object
    scenario: ScenarioAt
    protocols: Tuple[str, ...]
    baseline: str
    seeds: Tuple[int, ...]
    verify_rdt: bool = False

    @property
    def scenario_name(self) -> str:
        return f"{self.x_label}={self.x}"


def _jsonable(value: object) -> object:
    """A JSON-safe, deterministic rendition of one parameter value."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    return repr(value)


def describe_cell(cell: SweepCell) -> Dict[str, object]:
    """Canonical description of a cell -- the cache key's preimage.

    Instantiates the workload once to capture its class name and
    constructor-derived attributes; the simulation config contributes
    every field, with the delay model via its (stable dataclass) repr.
    """
    make_workload, config = cell.scenario(cell.x)
    workload = make_workload()
    return {
        "x_label": cell.x_label,
        "x": _jsonable(cell.x),
        "workload": {
            "name": workload.name,
            "params": _jsonable(vars(workload)),
        },
        "config": _jsonable(dict(config.__dict__)),
        "protocols": list(cell.protocols),
        "baseline": cell.baseline,
        "seeds": list(cell.seeds),
        "verify_rdt": cell.verify_rdt,
    }


def cell_key(cell: SweepCell) -> str:
    """Content address of a cell: SHA-256 over its canonical description."""
    canonical = json.dumps(
        describe_cell(cell), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def derive_cell_seeds(master_seed: int, cell_tag: str, count: int) -> Tuple[int, ...]:
    """Deterministic per-cell seed list from one master seed.

    Hash-derived so that cells never share streams no matter how the
    sweep is re-sliced, yet a given (master_seed, cell_tag, i) always
    yields the same seed on every machine and worker.
    """
    seeds = []
    for i in range(count):
        digest = hashlib.sha256(
            f"{master_seed}:{cell_tag}:{i}".encode("utf-8")
        ).digest()
        seeds.append(int.from_bytes(digest[:8], "big") & 0x7FFFFFFF)
    return tuple(seeds)


# ----------------------------------------------------------------------
# result (de)serialisation -- the cached payload
# ----------------------------------------------------------------------
def comparison_to_payload(comp: ComparisonResult) -> bytes:
    """Canonical JSON encoding of a comparison (cache payload)."""
    doc = {
        "scenario": comp.scenario,
        "baseline": comp.baseline,
        "protocols": [
            {
                "protocol": agg.protocol,
                "seeds": agg.seeds,
                "forced_total": agg.forced_total,
                "basic_total": agg.basic_total,
                "messages_total": agg.messages_total,
                "piggyback_bits_total": agg.piggyback_bits_total,
                "rdt_ok": agg.rdt_ok,
                "ratio_to_baseline": agg.ratio_to_baseline,
                "forced_per_seed": agg.forced_per_seed,
                "ratio_per_seed": agg.ratio_per_seed,
            }
            for agg in comp.protocols
        ],
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")


def comparison_from_payload(payload: bytes) -> ComparisonResult:
    doc = json.loads(payload.decode("utf-8"))
    aggregates = [ProtocolAggregate(**entry) for entry in doc["protocols"]]
    return ComparisonResult(
        scenario=doc["scenario"], protocols=aggregates, baseline=doc["baseline"]
    )


# ----------------------------------------------------------------------
# on-disk cache
# ----------------------------------------------------------------------
class ResultCache:
    """Content-addressed store of finished sweep cells.

    One file per cell under ``root/<key[:2]>/<key>.json``; the key is
    the SHA-256 of the cell description, the file holds the canonical
    payload bytes.  Writes are atomic (temp file + rename) so a killed
    run never leaves a torn entry, and concurrent writers of the same
    key converge on identical bytes by construction.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get_bytes(self, key: str) -> Optional[bytes]:
        path = self._path(key)
        try:
            return path.read_bytes()
        except OSError:
            return None

    def put_bytes(self, key: str, payload: bytes) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_bytes(payload)
        os.replace(tmp, path)

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))


def _resolve_cache(
    cache: Union[ResultCache, str, Path, None, bool]
) -> Optional[ResultCache]:
    """None -> env ``REPRO_SWEEP_CACHE`` (if set) else disabled;
    False -> disabled; a path or ResultCache -> that cache."""
    if cache is None:
        env = os.environ.get("REPRO_SWEEP_CACHE")
        return ResultCache(env) if env else None
    if cache is False:
        return None
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
@dataclass
class RunnerStats:
    """Where the time went in one :func:`run_sweep` call."""

    workers: int = 1
    mode: str = "serial"
    cells_total: int = 0
    cache_hits: int = 0
    cell_seconds: List[float] = field(default_factory=list)
    wall_seconds: float = 0.0
    note: str = ""

    @property
    def cells_run(self) -> int:
        return self.cells_total - self.cache_hits

    @property
    def busy_seconds(self) -> float:
        """Total worker-side compute time (the serial-equivalent cost)."""
        return sum(self.cell_seconds)

    @property
    def speedup_estimate(self) -> Optional[float]:
        """Worker compute time over wall time; > 1 means parallel/cache won."""
        if self.wall_seconds <= 0:
            return None
        return self.busy_seconds / self.wall_seconds

    def as_row(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "workers": self.workers,
            "cells": self.cells_total,
            "hits": self.cache_hits,
            "busy_s": round(self.busy_seconds, 3),
            "wall_s": round(self.wall_seconds, 3),
            "speedup": None
            if self.speedup_estimate is None
            else round(self.speedup_estimate, 2),
        }


def _execute_cell(cell: SweepCell) -> Tuple[bytes, float]:
    """Run one cell to completion; module-level so workers can unpickle it."""
    start = time.perf_counter()
    make_workload, config = cell.scenario(cell.x)
    comp = compare_protocols(
        make_workload,
        config,
        cell.protocols,
        baseline=cell.baseline,
        seeds=cell.seeds,
        scenario=cell.scenario_name,
        verify_rdt=cell.verify_rdt,
    )
    return comparison_to_payload(comp), time.perf_counter() - start


def _cells_picklable(cells: Sequence[SweepCell]) -> bool:
    try:
        pickle.dumps(list(cells))
        return True
    except Exception:
        return False


def _run_cells_parallel(
    cells: Sequence[SweepCell], workers: int
) -> List[Tuple[bytes, float]]:
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
        return list(pool.map(_execute_cell, cells))


def run_sweep(
    x_label: str,
    xs: Sequence[object],
    scenario_at: ScenarioAt,
    protocols: Sequence[str],
    baseline: str = "fdas",
    seeds: Sequence[int] = (0, 1, 2),
    verify_rdt: bool = False,
    workers: Optional[int] = None,
    cache: Union[ResultCache, str, Path, None, bool] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Parallel, cached drop-in for :func:`repro.harness.sweep.ratio_sweep`.

    Returns the exact :class:`SweepResult` the serial path produces for
    the same arguments (same seeds per cell), with execution fanned out
    over ``workers`` processes and finished cells served from ``cache``.

    Parameters beyond :func:`ratio_sweep`'s:

    workers:
        Process count; ``None`` uses the scheduler-visible CPU count,
        ``<= 1`` runs serially in-process.
    cache:
        ``None`` honours the ``REPRO_SWEEP_CACHE`` env var (disabled when
        unset), ``False`` disables, a path or :class:`ResultCache`
        enables that store.
    progress:
        Optional callback receiving one line per finished cell.

    The populated :class:`RunnerStats` is attached to the result as
    ``SweepResult.stats``.
    """
    if workers is None:
        try:
            workers = len(os.sched_getaffinity(0))
        except AttributeError:  # platforms without affinity masks
            workers = os.cpu_count() or 1
    store = _resolve_cache(cache)
    cells = [
        SweepCell(
            x_label=x_label,
            x=x,
            scenario=scenario_at,
            protocols=tuple(protocols),
            baseline=baseline,
            seeds=tuple(seeds),
            verify_rdt=verify_rdt,
        )
        for x in xs
    ]
    stats = RunnerStats(workers=max(1, workers), cells_total=len(cells))
    wall_start = time.perf_counter()

    payloads: List[Optional[bytes]] = [None] * len(cells)
    pending: List[int] = []
    keys: List[Optional[str]] = [None] * len(cells)
    for i, cell in enumerate(cells):
        if store is not None:
            keys[i] = cell_key(cell)
            hit = store.get_bytes(keys[i])
            if hit is not None:
                # A truncated/corrupted entry (disk full, manual edit) is
                # a miss, not a crash: recompute and overwrite it.
                try:
                    comparison_from_payload(hit)
                except (ValueError, KeyError, TypeError):
                    hit = None
            if hit is not None:
                payloads[i] = hit
                stats.cache_hits += 1
                stats.cell_seconds.append(0.0)
                if progress is not None:
                    progress(f"[cache] {cell.scenario_name}")
                continue
        pending.append(i)

    if pending:
        to_run = [cells[i] for i in pending]
        if workers > 1 and _cells_picklable(to_run):
            stats.mode = f"process[{workers}]"
            outcomes = _run_cells_parallel(to_run, workers)
        else:
            if workers > 1:
                stats.note = "scenario not picklable; fell back to serial"
            stats.mode = "serial"
            outcomes = [_execute_cell(cell) for cell in to_run]
        for i, (payload, elapsed) in zip(pending, outcomes):
            payloads[i] = payload
            stats.cell_seconds.append(elapsed)
            if store is not None and keys[i] is not None:
                store.put_bytes(keys[i], payload)
            if progress is not None:
                progress(f"[{elapsed:.2f}s] {cells[i].scenario_name}")

    comparisons = [comparison_from_payload(p) for p in payloads]  # type: ignore[arg-type]
    stats.wall_seconds = time.perf_counter() - wall_start
    result = SweepResult(
        x_label=x_label,
        xs=list(xs),
        comparisons=comparisons,
        baseline=baseline,
    )
    result.stats = stats
    return result
