"""The conformance kit, applied to every registered protocol -- and to
deliberately broken ones to prove the kit catches real faults."""

import pytest

from repro.core import PROTOCOLS, BHMRProtocol, IndependentProtocol
from repro.testing import (
    ConformanceError,
    assert_conformant,
    conformance_report,
)


class TestAllRegisteredProtocolsConform:
    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_conformant(self, name):
        report = conformance_report(PROTOCOLS[name], seeds=(0, 1))
        assert report.ok, report

    def test_assert_form(self):
        assert_conformant(BHMRProtocol, seeds=(0,), duration=10.0)


class _FalseRDTClaim(IndependentProtocol):
    """Claims RDT, never forces: the guarantee check must fail."""

    name = "broken-claims-rdt"
    ensures_rdt = True


class _BrokenPredicate(BHMRProtocol):
    """Non-repeatable forcing predicate: the contract check must fail."""

    name = "broken-flipflop"

    def __init__(self, pid, n):
        super().__init__(pid, n)
        self._flip = False

    def wants_forced_checkpoint(self, pb, sender):
        self._flip = not self._flip
        return self._flip


class _BrokenInterval(BHMRProtocol):
    """Forgets to advance the interval on checkpoints."""

    name = "broken-interval"

    def on_checkpoint(self, forced=False):
        pass  # neither saves nor advances


class TestKitCatchesBrokenProtocols:
    def test_false_rdt_claim_detected(self):
        report = conformance_report(_FalseRDTClaim, seeds=(0, 1, 2))
        assert not report.ok
        assert any("claims RDT" in f for f in report.failed)

    def test_flipflop_predicate_detected(self):
        report = conformance_report(_BrokenPredicate, seeds=(0,))
        assert any("repeatable" in f for f in report.failed)

    def test_broken_interval_detected(self):
        report = conformance_report(_BrokenInterval, seeds=(0,))
        assert any("advance the interval" in f for f in report.failed)

    def test_assert_raises(self):
        with pytest.raises(ConformanceError):
            assert_conformant(_FalseRDTClaim, seeds=(0, 1, 2))

    def test_report_repr(self):
        ok = conformance_report(BHMRProtocol, seeds=(0,))
        assert "OK" in repr(ok)
        bad = conformance_report(_FalseRDTClaim, seeds=(0, 1, 2))
        assert "FAILED" in repr(bad)
