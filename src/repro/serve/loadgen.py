"""Load generation: replay generated workloads through live connections.

The generator reuses the repo's own trace machinery
(:func:`repro.sim.generate.generate_trace`): each session gets a
deterministic protocol-independent trace of one registry workload
(seeded per session), which is then *pipelined* over its own connection
-- up to ``window`` frames in flight, delivers waiting only on their
own send's acknowledgement (the server assigns message ids).

What it measures: ingest throughput across all sessions, request
latency quantiles (ingest and, when ``query_every`` is set, analysis
queries running against the same live sessions), shed/error counts.
Shed frames are the backpressure contract working as designed -- the
generator counts them and skips deliveries whose send was shed, it does
not retry, so a saturated server shows up as shed count rather than as
a hang.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Deque, Dict, List, Optional, Tuple, Union

from repro.serve.client import Address, AsyncClient, RequestTimeout
from repro.sim.generate import generate_trace
from repro.sim.trace import Trace, TraceOpKind
from repro.types import SimulationError
from repro.workloads import WORKLOADS


def _quantile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


@dataclass
class LoadReport:
    """What one load run observed, over all sessions."""

    sessions: int
    submitted: int = 0
    acked: int = 0
    shed: int = 0
    errors: int = 0
    skipped_delivers: int = 0
    disconnects: int = 0
    queries: int = 0
    duration_s: float = 0.0
    #: Per-error-code breakdown of everything that wasn't an ack:
    #: ``overloaded`` (also counted in ``shed``), ``shard_down``,
    #: ``wal_failure``, ..., plus ``"timeout"`` for per-request
    #: deadline misses.  Chaos benchmarks assert on these rates; a
    #: single ``errors`` scalar silently conflated them.
    errors_by_code: Dict[str, int] = field(default_factory=dict)
    ingest_latencies_s: List[float] = field(default_factory=list, repr=False)
    query_latencies_s: List[float] = field(default_factory=list, repr=False)
    per_session: Dict[str, int] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Acknowledged ingest events per second, across all sessions."""
        return self.acked / self.duration_s if self.duration_s > 0 else 0.0

    def latency_quantiles(self) -> Dict[str, float]:
        ingest = sorted(self.ingest_latencies_s)
        query = sorted(self.query_latencies_s)
        return {
            "ingest_p50_s": _quantile(ingest, 0.50),
            "ingest_p99_s": _quantile(ingest, 0.99),
            "query_p50_s": _quantile(query, 0.50),
            "query_p99_s": _quantile(query, 0.99),
        }

    def as_doc(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "sessions": self.sessions,
            "submitted": self.submitted,
            "acked": self.acked,
            "shed": self.shed,
            "errors": self.errors,
            "skipped_delivers": self.skipped_delivers,
            "disconnects": self.disconnects,
            "errors_by_code": dict(sorted(self.errors_by_code.items())),
            "queries": self.queries,
            "duration_s": round(self.duration_s, 6),
            "throughput_events_per_s": round(self.throughput, 1),
            "per_session": dict(sorted(self.per_session.items())),
        }
        doc.update(
            {k: round(v, 6) for k, v in self.latency_quantiles().items()}
        )
        return doc


async def _drive_session(
    address: Union[str, Address],
    session_id: str,
    protocol: str,
    trace: Trace,
    window: int,
    query_every: int,
    report: LoadReport,
    request_timeout: Optional[float] = None,
) -> int:
    """Replay one trace through one pipelined connection.

    A mid-run disconnect (e.g. the server draining and stopping under
    load) is not an error: the session's accumulated counts stay in the
    report and ``disconnects`` is bumped, so shutdown-under-load tests
    can compare client-side acks against server-side applied counts.
    A per-request deadline miss (the server stalled; see
    :meth:`AsyncClient.reply`) is counted as ``errors_by_code["timeout"]``
    plus a disconnect, since the deadline invalidates the connection.

    Returns the number of ``send_futures`` entries left at the end:
    send replies are popped when their deliver consumes them, so the
    leftovers are exactly the trace's never-delivered sends -- long
    ``--duration`` runs must not accumulate one reply document per send
    for the whole run (that was a real RSS leak).
    """
    client = await AsyncClient.connect(
        address, timeout=request_timeout if request_timeout is not None else 10.0
    )
    inflight: Deque[Tuple["asyncio.Future", float, bool]] = deque()
    send_futures: Dict[object, "asyncio.Future"] = {}
    acked_here = 0

    def _miss(code: str) -> None:
        report.errors_by_code[code] = report.errors_by_code.get(code, 0) + 1

    try:
        await client.hello(session_id, n=trace.n, protocol=protocol)

        async def reap_one() -> None:
            nonlocal acked_here
            future, started, is_query = inflight.popleft()
            reply = await client.reply(future)
            latency = perf_counter() - started
            if reply.get("ok", False):
                if is_query:
                    report.query_latencies_s.append(latency)
                else:
                    report.ingest_latencies_s.append(latency)
                    report.acked += 1
                    acked_here += 1
            elif reply.get("error") == "overloaded":
                report.shed += 1
                _miss("overloaded")
            else:
                report.errors += 1
                _miss(str(reply.get("error", "error")))

        ops_done = 0
        for op in trace.ops:
            while len(inflight) >= window:
                await reap_one()
            if op.kind is TraceOpKind.BASIC_CHECKPOINT:
                future = client.submit(
                    "checkpoint", session=session_id, pid=op.pid
                )
            elif op.kind is TraceOpKind.SEND:
                future = client.submit(
                    "send", session=session_id, src=op.pid, dst=op.peer
                )
                send_futures[op.msg_id] = future
            else:  # DELIVER: needs the server-assigned id of its send
                # Pop, not read: each send reply has exactly one
                # consumer, and keeping it would pin every reply doc of
                # the run in memory.
                send_reply = await client.reply(send_futures.pop(op.msg_id))
                if not send_reply.get("ok", False):
                    report.skipped_delivers += 1
                    continue
                future = client.submit(
                    "deliver",
                    session=session_id,
                    msg_id=send_reply["msg_id"],
                )
            report.submitted += 1
            inflight.append((future, perf_counter(), False))
            ops_done += 1
            if ops_done % 64 == 0:
                await client.flush()  # transport backpressure, batched
            if query_every and ops_done % query_every == 0:
                qfuture = client.submit(
                    "query", session=session_id, what="rdt_status"
                )
                report.queries += 1
                inflight.append((qfuture, perf_counter(), True))
        while inflight:
            await reap_one()
    except RequestTimeout:
        # The deadline fired and invalidated the connection: the
        # stalled request is a classified error, the lost connection a
        # disconnect (every other in-flight frame died with it).
        report.errors += 1
        _miss("timeout")
        report.disconnects += 1
    except ConnectionError:
        report.disconnects += 1
        _miss("disconnect")
    finally:
        report.per_session[session_id] = acked_here
        await client.close()
    return len(send_futures)


async def run_load_async(
    address: Union[str, Address],
    *,
    sessions: int = 8,
    workload: str = "random",
    protocol: str = "bhmr",
    n: int = 4,
    duration: float = 50.0,
    seed: int = 0,
    basic_rate: float = 0.1,
    window: int = 64,
    query_every: int = 0,
    request_timeout: Optional[float] = None,
) -> LoadReport:
    """Drive ``sessions`` concurrent pipelined sessions; returns the report."""
    if workload not in WORKLOADS:
        known = ", ".join(sorted(WORKLOADS))
        raise SimulationError(f"unknown workload {workload!r}; known: {known}")
    if sessions <= 0:
        raise SimulationError("sessions must be positive")
    if window <= 0:
        raise SimulationError("window must be positive")
    traces = [
        generate_trace(
            n,
            WORKLOADS[workload](),
            duration=duration,
            seed=seed + i,
            basic_rate=basic_rate,
        )
        for i in range(sessions)
    ]
    report = LoadReport(sessions=sessions)
    started = perf_counter()
    await asyncio.gather(
        *(
            _drive_session(
                address,
                f"load-{seed}-{i}",
                protocol,
                traces[i],
                window,
                query_every,
                report,
                request_timeout,
            )
            for i in range(sessions)
        )
    )
    report.duration_s = perf_counter() - started
    return report


def run_load(
    address: Union[str, Address],
    *,
    sessions: int = 8,
    workload: str = "random",
    protocol: str = "bhmr",
    n: int = 4,
    duration: float = 50.0,
    seed: int = 0,
    basic_rate: float = 0.1,
    window: int = 64,
    query_every: int = 0,
    request_timeout: Optional[float] = None,
) -> LoadReport:
    """Blocking wrapper around :func:`run_load_async` (the CLI entrypoint)."""
    return asyncio.run(
        run_load_async(
            address,
            sessions=sessions,
            workload=workload,
            protocol=protocol,
            n=n,
            duration=duration,
            seed=seed,
            basic_rate=basic_rate,
            window=window,
            query_every=query_every,
            request_timeout=request_timeout,
        )
    )
