"""Conformance kit for user-supplied protocol implementations.

Anyone adding a protocol (see docs/SIMULATOR.md) can validate it against
the framework's contract and -- if it claims RDT or Z-cycle freedom --
against its own guarantee, without writing bespoke tests:

    from repro.testing import conformance_report, assert_conformant

    report = conformance_report(MyProtocol)
    assert_conformant(MyProtocol)          # raises on first failure

The kit runs the protocol through hand-driven driver sequences
(contract checks) and through simulated scenarios (guarantee checks).
The library's own test suite applies it to every registered protocol,
so the kit is itself exercised continuously.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Type

from repro.analysis.rdt import check_rdt
from repro.analysis.zcycle import useless_checkpoints
from repro.core.protocol import CheckpointProtocol
from repro.sim.simulation import Simulation, SimulationConfig
from repro.types import ProtocolError, ReproError
from repro.workloads.random_uniform import RandomUniformWorkload


class ConformanceError(ReproError):
    """A protocol implementation violates the framework contract."""


@dataclass
class ConformanceReport:
    protocol: str
    passed: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failed

    def __repr__(self) -> str:
        status = "OK" if self.ok else f"FAILED ({', '.join(self.failed)})"
        return f"<ConformanceReport {self.protocol}: {status}>"


def _check(report: ConformanceReport, name: str, fn: Callable[[], None]) -> None:
    try:
        fn()
    except AssertionError as exc:
        report.failed.append(f"{name}: {exc}")
    except ReproError as exc:
        # A protocol broken enough to trip the framework's own internal
        # invariants (driver cross-checks, validation) is non-conformant.
        report.failed.append(f"{name}: {type(exc).__name__}: {exc}")
    else:
        report.passed.append(name)


def _contract_basics(cls: Type[CheckpointProtocol]) -> None:
    proto = cls(0, 3)
    assert proto.current_interval == 1, "fresh protocol must sit in interval 1"
    assert proto.saved_tdv(0) == (0, 0, 0), "C(i,0) must save the zero vector"
    pb = proto.on_send(1)
    assert pb.size_bits() >= 0, "piggyback size must be non-negative"
    assert proto.sent_to[1], "on_send must set sent_to (base contract)"
    decision1 = proto.wants_forced_checkpoint(pb, sender=1)
    decision2 = proto.wants_forced_checkpoint(pb, sender=1)
    assert decision1 == decision2, "forcing predicate must be repeatable"
    interval_before = proto.current_interval
    proto.on_receive(pb, sender=1)
    assert proto.current_interval == interval_before, (
        "on_receive must not open a new interval"
    )
    proto.on_checkpoint(forced=False)
    assert proto.current_interval == interval_before + 1, (
        "on_checkpoint must advance the interval"
    )
    assert not proto.after_first_send, "on_checkpoint must reset sent_to"


def _contract_errors(cls: Type[CheckpointProtocol]) -> None:
    try:
        cls(5, 2)
    except ProtocolError:
        pass
    else:
        raise AssertionError("out-of-range pid must raise ProtocolError")
    proto = cls(0, 2)
    try:
        proto.on_send(0)
    except ProtocolError:
        pass
    else:
        raise AssertionError("self-send must raise ProtocolError")


def _determinism(cls: Type[CheckpointProtocol]) -> None:
    def run():
        sim = Simulation(
            RandomUniformWorkload(send_rate=1.5),
            SimulationConfig(n=3, duration=15.0, seed=7, basic_rate=0.3),
        )
        res = sim.run_factory(lambda pid, n: cls(pid, n))
        return res.metrics.forced_checkpoints

    assert run() == run(), "same seed must reproduce the same forcing"


def _guarantees(cls: Type[CheckpointProtocol], seeds, duration) -> None:
    for seed in seeds:
        sim = Simulation(
            RandomUniformWorkload(send_rate=2.0),
            SimulationConfig(n=4, duration=duration, seed=seed, basic_rate=0.3),
        )
        res = sim.run_factory(lambda pid, n: cls(pid, n))
        if cls.ensures_rdt:
            report = check_rdt(res.history, method="vectorized")
            assert report.holds, (
                f"claims RDT but violates it (seed {seed}): "
                f"{report.violations[:2]}"
            )
        if getattr(cls, "ensures_zcf", False) or cls.ensures_rdt:
            assert useless_checkpoints(res.history) == [], (
                f"claims Z-cycle freedom but leaves useless checkpoints "
                f"(seed {seed})"
            )


def conformance_report(
    cls: Type[CheckpointProtocol],
    seeds=(0, 1, 2),
    duration: float = 20.0,
) -> ConformanceReport:
    """Run every conformance check; collect pass/fail per check."""
    report = ConformanceReport(protocol=getattr(cls, "name", cls.__name__))
    _check(report, "contract-basics", lambda: _contract_basics(cls))
    _check(report, "contract-errors", lambda: _contract_errors(cls))
    _check(report, "determinism", lambda: _determinism(cls))
    _check(report, "guarantees", lambda: _guarantees(cls, seeds, duration))
    return report


def assert_conformant(
    cls: Type[CheckpointProtocol], seeds=(0, 1, 2), duration: float = 20.0
) -> None:
    """Raise :class:`ConformanceError` on the first failed check."""
    report = conformance_report(cls, seeds=seeds, duration=duration)
    if not report.ok:
        raise ConformanceError("; ".join(report.failed))
