"""Seeded wire-level fault injection: a deterministic chaos TCP proxy.

The kill -9 grid (:mod:`tests.chaos`) tortures the process/disk
boundary; this module tortures the *wire*.  :class:`ChaosProxy` is an
asyncio TCP/unix proxy that sits between any client and a serve or
router listener and injects, per accepted connection and per direction,
faults drawn from a seeded RNG:

* **latency + jitter** -- a fixed one-way delay plus a uniform random
  extra, applied to every forwarded write;
* **bandwidth throttling** -- an additional ``len(chunk)/bandwidth``
  pacing delay, modelling a thin pipe;
* **adversarial fragmentation** -- re-chunking the byte stream into
  1-byte writes (``"byte"``), tiny random shreds (``"shred"``), or
  exact frame-boundary splits (``"frame"``), so the sans-IO
  :class:`~repro.serve.wire.FrameBuffer` reassembly path is exercised at
  every possible split point;
* **mid-frame connection resets** -- the proxy forwards a byte-exact
  prefix and then aborts the TCP connection (RST), landing the cut
  inside a frame;
* **silent stalls (blackhole)** -- from a seeded byte offset onward the
  direction goes silent forever while the connection stays open: the
  classic hang that only a per-request deadline survives;
* **truncate-on-close** -- the proxy forwards a prefix, then closes the
  connection cleanly (FIN), dropping the buffered tail.

Everything is derived from :class:`ChaosConfig` -- the entire fault
schedule is a pure function of ``(config.seed, connection index)``, so a
chaos cell replays bit-identically: two proxies with the same config
produce the same :class:`ConnPlan` for the same connection arrival
order (:meth:`ChaosSchedule.plan`), which the determinism tests assert
directly.

The proxy is deliberately protocol-blind except for the ``"frame"``
fragmentation mode, which tracks the 4-byte length prefixes the wire
protocol uses (:mod:`repro.serve.wire`) so it can split exactly at
frame boundaries without decoding payloads.

:class:`ChaosProxy` duck-types the daemon interface
(``start``/``stop``/``address``), so the thread-hosting
:class:`~repro.serve.server.ServerHandle` can host a proxy exactly like
a server or router::

    proxy = ServerHandle(ChaosProxy(handle.connect_address(),
                                    ChaosConfig(seed=7, latency_s=0.002)))
    client = Client(proxy.connect_address(), timeout=2.0)
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.types import SimulationError

Address = Tuple[str, ...]

#: Fault kinds a direction can suffer (at most one per direction).
FAULT_KINDS = ("reset", "stall", "truncate")

#: Fragmentation policies for forwarded bytes.
FRAGMENT_MODES = ("none", "byte", "shred", "frame")


@dataclass(frozen=True)
class ChaosConfig:
    """Seeded description of a fault schedule.

    Rates are per-connection, per-direction probabilities in ``[0, 1]``
    and must sum to at most 1; each direction draws at most one fault,
    which fires after a seeded byte offset drawn uniformly from
    ``fault_after``.
    """

    seed: int = 0
    # -- pacing --------------------------------------------------------
    latency_s: float = 0.0  #: fixed one-way delay per forwarded write
    jitter_s: float = 0.0  #: uniform extra delay in [0, jitter_s)
    bandwidth: Optional[int] = None  #: bytes/second ceiling per direction
    # -- fragmentation -------------------------------------------------
    fragment: str = "none"  #: one of :data:`FRAGMENT_MODES`
    shred_max: int = 7  #: max fragment size in ``"shred"`` mode
    # -- faults --------------------------------------------------------
    reset_rate: float = 0.0  #: P(mid-stream RST) per direction
    stall_rate: float = 0.0  #: P(silent blackhole) per direction
    truncate_rate: float = 0.0  #: P(clean close dropping the tail)
    fault_after: Tuple[int, int] = (64, 4096)  #: byte-offset window
    # -- listener ------------------------------------------------------
    listen_host: str = "127.0.0.1"
    listen_port: int = 0  #: 0 = ephemeral
    unix_path: Optional[str] = None  #: listen on a unix socket instead

    def validate(self) -> None:
        if self.fragment not in FRAGMENT_MODES:
            raise SimulationError(
                f"unknown fragment mode {self.fragment!r}; "
                f"expected one of {FRAGMENT_MODES}"
            )
        total = self.reset_rate + self.stall_rate + self.truncate_rate
        if not 0.0 <= total <= 1.0:
            raise SimulationError(
                f"fault rates must sum to [0, 1], got {total:.3f}"
            )
        if self.fault_after[0] < 0 or self.fault_after[1] < self.fault_after[0]:
            raise SimulationError(
                f"fault_after must be a non-negative (lo, hi) window, "
                f"got {self.fault_after}"
            )
        if self.shred_max < 1:
            raise SimulationError("shred_max must be >= 1")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: ``kind`` fires once ``after_bytes`` have
    been forwarded in the direction that drew it."""

    kind: str  #: one of :data:`FAULT_KINDS`
    after_bytes: int


@dataclass(frozen=True)
class DirectionPlan:
    """The deterministic plan for one direction of one connection."""

    fault: Optional[FaultEvent]
    rng_seed: int  #: seeds the per-direction jitter/shred stream


@dataclass(frozen=True)
class ConnPlan:
    """The full plan for one accepted connection: ``up`` is
    client-to-upstream, ``down`` is upstream-to-client."""

    conn_index: int
    up: DirectionPlan
    down: DirectionPlan


class ChaosSchedule:
    """The pure planning half of the proxy: ``plan(i)`` is a function
    of ``(config.seed, i)`` only, with a fixed RNG draw order, so the
    schedule replays bit-identically across proxies and runs."""

    def __init__(self, config: ChaosConfig) -> None:
        config.validate()
        self.config = config

    def plan(self, conn_index: int) -> ConnPlan:
        # str-seeded Random uses sha512 of the bytes: deterministic
        # across processes and independent of PYTHONHASHSEED.
        rng = random.Random(f"chaos:{self.config.seed}:{conn_index}")
        up = self._direction(rng)
        down = self._direction(rng)
        return ConnPlan(conn_index=conn_index, up=up, down=down)

    def _direction(self, rng: random.Random) -> DirectionPlan:
        # Fixed draw order -- fault roll, offset, stream seed -- even
        # when a draw is unused, so adding a rate never shifts the
        # later draws of the same schedule.
        roll = rng.random()
        lo, hi = self.config.fault_after
        after = rng.randint(lo, hi)
        stream_seed = rng.getrandbits(64)
        cfg = self.config
        fault: Optional[FaultEvent] = None
        if roll < cfg.reset_rate:
            fault = FaultEvent("reset", after)
        elif roll < cfg.reset_rate + cfg.stall_rate:
            fault = FaultEvent("stall", after)
        elif roll < cfg.reset_rate + cfg.stall_rate + cfg.truncate_rate:
            fault = FaultEvent("truncate", after)
        return DirectionPlan(fault=fault, rng_seed=stream_seed)


class _FrameSplitter:
    """Tracks wire-frame boundaries across chunks so ``"frame"`` mode
    can split forwarded bytes exactly between frames (without decoding
    payloads -- lengths only, like the router's RawFrameBuffer)."""

    __slots__ = ("_header", "_remaining")

    def __init__(self) -> None:
        self._header = bytearray()
        self._remaining = 0  # payload bytes left in the current frame

    def split(self, data: bytes) -> List[bytes]:
        pieces: List[bytes] = []
        current = bytearray()
        i, n = 0, len(data)
        while i < n:
            if self._remaining:
                take = min(self._remaining, n - i)
            else:
                need = 4 - len(self._header)
                take = min(need, n - i)
                self._header.extend(data[i : i + take])
                if len(self._header) == 4:
                    self._remaining = int.from_bytes(self._header, "big")
                    self._header.clear()
                    current.extend(data[i : i + take])
                    i += take
                    if self._remaining == 0:
                        pieces.append(bytes(current))
                        current = bytearray()
                    continue
                current.extend(data[i : i + take])
                i += take
                continue
            current.extend(data[i : i + take])
            self._remaining -= take
            i += take
            if self._remaining == 0:
                pieces.append(bytes(current))
                current = bytearray()
        if current:
            pieces.append(bytes(current))
        return pieces


class ChaosProxy:
    """An asyncio proxy applying a :class:`ChaosSchedule` to every
    connection it accepts.  Duck-types the daemon interface
    (``await start()`` binds and returns the address, ``await stop()``
    tears down), so ``ServerHandle`` can host it on a thread.
    """

    def __init__(
        self,
        upstream: str,
        config: Optional[ChaosConfig] = None,
        tracer=None,
        metrics=None,
    ) -> None:
        from repro.serve.client import parse_address

        self.config = config or ChaosConfig()
        self.schedule = ChaosSchedule(self.config)
        self.upstream: Address = parse_address(upstream)
        self.tracer = tracer
        self.metrics = metrics
        self.address: Address = ()
        self.connections = 0
        self.faults_fired: Dict[str, int] = {k: 0 for k in FAULT_KINDS}
        self.forwarded_bytes = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        self._clock = 0

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _trace(self, kind: str, **fields) -> None:
        if self.tracer is not None:
            self._clock += 1
            self.tracer.event(kind, t=self._clock, **fields)

    def _inc(self, name: str, value: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, value)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Address:
        if self.config.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._accept, path=self.config.unix_path
            )
            self.address = ("unix", self.config.unix_path)
        else:
            self._server = await asyncio.start_server(
                self._accept, host=self.config.listen_host, port=self.config.listen_port
            )
            bound = self._server.sockets[0].getsockname()
            self.address = ("tcp", bound[0], bound[1])
        self._trace(
            "serve.chaos.start",
            seed=self.config.seed,
            fragment=self.config.fragment,
            upstream=list(self.upstream),
        )
        return self.address

    async def stop(self) -> Dict[str, int]:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Abort live connections before cancelling: pumps then exit on
        # EOF/ConnectionError by themselves, leaving cancellation as a
        # backstop for stalled ones.
        for writer in list(self._writers):
            self._abort(writer)
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        self._writers.clear()
        self._trace(
            "serve.chaos.stop",
            connections=self.connections,
            forwarded_bytes=self.forwarded_bytes,
            faults=dict(self.faults_fired),
        )
        return {
            "connections": self.connections,
            "forwarded_bytes": self.forwarded_bytes,
            "faults": sum(self.faults_fired.values()),
        }

    # ------------------------------------------------------------------
    # proxying
    # ------------------------------------------------------------------
    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        index = self.connections
        self.connections += 1
        plan = self.schedule.plan(index)
        self._inc("serve.chaos.connections")
        try:
            if self.upstream[0] == "unix":
                up_reader, up_writer = await asyncio.open_unix_connection(
                    self.upstream[1]
                )
            else:
                up_reader, up_writer = await asyncio.open_connection(
                    self.upstream[1], self.upstream[2]
                )
        except OSError as exc:
            self._trace("serve.chaos.upstream_refused", conn=index, error=str(exc))
            self._abort(writer)
            return
        self._writers.update((writer, up_writer))
        self._trace(
            "serve.chaos.conn",
            conn=index,
            up_fault=self._fault_doc(plan.up),
            down_fault=self._fault_doc(plan.down),
        )
        up = asyncio.current_task()
        assert up is not None
        self._tasks.add(up)
        down = asyncio.get_running_loop().create_task(
            self._pump(index, "down", plan.down, up_reader, writer, up_writer)
        )
        self._tasks.add(down)
        try:
            await self._pump(index, "up", plan.up, reader, up_writer, writer)
            await down
        except asyncio.CancelledError:
            # Only stop() cancels this task.  Swallowed deliberately:
            # asyncio.start_server owns it, and its done-callback calls
            # task.exception(), which would re-raise the cancellation
            # into the event loop's exception handler as log noise.
            down.cancel()
        finally:
            self._tasks.discard(up)
            self._tasks.discard(down)
            self._writers.discard(writer)
            self._writers.discard(up_writer)
            self._close(writer)
            self._close(up_writer)

    @staticmethod
    def _fault_doc(plan: DirectionPlan) -> Optional[Dict[str, object]]:
        if plan.fault is None:
            return None
        return {"kind": plan.fault.kind, "after_bytes": plan.fault.after_bytes}

    async def _pump(
        self,
        conn: int,
        direction: str,
        plan: DirectionPlan,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        peer_writer: asyncio.StreamWriter,
    ) -> None:
        rng = random.Random(plan.rng_seed)
        splitter = _FrameSplitter() if self.config.fragment == "frame" else None
        forwarded = 0
        fault = plan.fault
        try:
            while True:
                try:
                    chunk = await reader.read(65536)
                except (ConnectionError, OSError):
                    break
                if not chunk:
                    break
                if fault is not None and forwarded + len(chunk) > fault.after_bytes:
                    keep = fault.after_bytes - forwarded
                    prefix = chunk[:keep]
                    if prefix:
                        forwarded += await self._forward(
                            writer, prefix, plan, rng, splitter
                        )
                    self.faults_fired[fault.kind] += 1
                    self._inc("serve.chaos.faults")
                    self._inc(f"serve.chaos.fault.{fault.kind}")
                    self._trace(
                        "serve.chaos.fault",
                        conn=conn,
                        direction=direction,
                        fault=fault.kind,
                        at_bytes=forwarded,
                    )
                    if fault.kind == "reset":
                        self._abort(writer)
                        self._abort(peer_writer)
                        return
                    if fault.kind == "truncate":
                        self._close(writer)
                        self._close(peer_writer)
                        return
                    # stall: the direction goes silent but the socket
                    # stays open -- keep draining the reader so the
                    # sender never blocks on TCP backpressure, and never
                    # write another byte.
                    while True:
                        try:
                            silent = await reader.read(65536)
                        except (ConnectionError, OSError):
                            return
                        if not silent:
                            return
                else:
                    forwarded += await self._forward(
                        writer, chunk, plan, rng, splitter
                    )
        except (ConnectionError, OSError):
            pass
        finally:
            if not writer.is_closing():
                try:
                    writer.write_eof()
                except (OSError, RuntimeError):
                    self._close(writer)

    async def _forward(
        self,
        writer: asyncio.StreamWriter,
        data: bytes,
        plan: DirectionPlan,
        rng: random.Random,
        splitter: Optional[_FrameSplitter],
    ) -> int:
        cfg = self.config
        sent = 0
        for piece in self._split(data, rng, splitter):
            delay = cfg.latency_s
            if cfg.jitter_s:
                delay += rng.random() * cfg.jitter_s
            if cfg.bandwidth:
                delay += len(piece) / cfg.bandwidth
            if delay > 0.0:
                await asyncio.sleep(delay)
            writer.write(piece)
            await writer.drain()
            sent += len(piece)
            self.forwarded_bytes += len(piece)
        return sent

    def _split(
        self,
        data: bytes,
        rng: random.Random,
        splitter: Optional[_FrameSplitter],
    ) -> List[bytes]:
        mode = self.config.fragment
        if mode == "none":
            return [data]
        if mode == "byte":
            return [data[i : i + 1] for i in range(len(data))]
        if mode == "frame":
            assert splitter is not None
            return splitter.split(data)
        pieces: List[bytes] = []
        i = 0
        while i < len(data):
            take = rng.randint(1, self.config.shred_max)
            pieces.append(data[i : i + take])
            i += take
        return pieces

    @staticmethod
    def _abort(writer: asyncio.StreamWriter) -> None:
        try:
            writer.transport.abort()
        except (OSError, RuntimeError):
            pass

    @staticmethod
    def _close(writer: asyncio.StreamWriter) -> None:
        if not writer.is_closing():
            try:
                writer.close()
            except (OSError, RuntimeError):
                pass

    def __repr__(self) -> str:
        where = self.address or ("unbound",)
        return (
            f"<ChaosProxy {'/'.join(str(p) for p in where)} "
            f"seed={self.config.seed} conns={self.connections}>"
        )
