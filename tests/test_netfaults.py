"""Unit tests for the network-fault model (``repro.sim.netfaults``).

The model is plain seeded data -- these tests pin its validation, its
partition-window geometry, the per-link override resolution, and the
properties the rest of the stack relies on: stable reprs (the sweep
cache keys on them) and seed-pure construction.
"""

import pytest

from repro.sim import FOREVER, LinkFaults, NetFaultModel, Partition
from repro.types import SimulationError


# ----------------------------------------------------------------------
# LinkFaults
# ----------------------------------------------------------------------
def test_link_faults_validation():
    LinkFaults(loss=0.0, duplicate=1.0, reorder=0.5)  # bounds are legal
    with pytest.raises(SimulationError):
        LinkFaults(loss=-0.1)
    with pytest.raises(SimulationError):
        LinkFaults(duplicate=1.5)
    with pytest.raises(SimulationError):
        LinkFaults(reorder=2.0)
    with pytest.raises(SimulationError):
        LinkFaults(reorder_delay=0.0)


def test_link_faults_truthiness():
    assert not LinkFaults()
    assert LinkFaults(loss=0.1)
    assert LinkFaults(duplicate=0.1)
    assert LinkFaults(reorder=0.1)


# ----------------------------------------------------------------------
# Partition
# ----------------------------------------------------------------------
def test_partition_window_geometry():
    p = Partition(0, 1, start=5.0, end=10.0)
    assert not p.cuts(0, 1, 4.999)
    assert p.cuts(0, 1, 5.0)
    assert p.cuts(0, 1, 9.999)
    assert not p.cuts(0, 1, 10.0)  # half-open window
    assert not p.permanent


def test_partition_symmetry():
    sym = Partition(0, 1, start=0.0)
    assert sym.cuts(0, 1, 1.0) and sym.cuts(1, 0, 1.0)
    assert not sym.cuts(0, 2, 1.0) and not sym.cuts(2, 1, 1.0)
    directed = Partition(0, 1, start=0.0, symmetric=False)
    assert directed.cuts(0, 1, 1.0)
    assert not directed.cuts(1, 0, 1.0)


def test_partition_permanent_and_validation():
    assert Partition(0, 1, start=3.0).permanent
    assert Partition(0, 1, start=3.0).end == FOREVER
    with pytest.raises(SimulationError):
        Partition(0, 1, start=-1.0)
    with pytest.raises(SimulationError):
        Partition(0, 1, start=5.0, end=4.0)


# ----------------------------------------------------------------------
# NetFaultModel
# ----------------------------------------------------------------------
def test_model_link_overrides():
    model = NetFaultModel(
        default=LinkFaults(loss=0.1),
        overrides=(((0, 1), LinkFaults(loss=0.9)),),
    )
    assert model.link(0, 1).loss == 0.9
    assert model.link(1, 0).loss == 0.1  # overrides are directed
    assert model.link(2, 3).loss == 0.1


def test_model_cut_queries():
    model = NetFaultModel(
        partitions=(
            Partition(0, 1, start=5.0, end=10.0),
            Partition(1, 2, start=20.0),
        )
    )
    assert model.is_cut(0, 1, 7.0) and not model.is_cut(0, 1, 12.0)
    assert model.is_cut(2, 1, 25.0)
    assert not model.cut_forever(0, 1, 7.0)  # transient window
    assert model.cut_forever(1, 2, 25.0)
    assert not model.cut_forever(1, 2, 5.0)  # not cut yet at that time


def test_model_repr_is_stable_for_cache_keys():
    """Equal models share a repr regardless of override insertion order
    (the sweep cache hashes config reprs)."""
    a = NetFaultModel(
        overrides=(
            ((1, 0), LinkFaults(loss=0.2)),
            ((0, 1), LinkFaults(loss=0.1)),
        )
    )
    b = NetFaultModel(
        overrides=(
            ((0, 1), LinkFaults(loss=0.1)),
            ((1, 0), LinkFaults(loss=0.2)),
        )
    )
    assert a == b
    assert repr(a) == repr(b)


def test_model_uniform_constructor():
    model = NetFaultModel.uniform(loss=0.2, duplicate=0.1, reorder=0.05, seed=9)
    assert model.link(3, 1) == LinkFaults(loss=0.2, duplicate=0.1, reorder=0.05)
    assert model.seed == 9
    assert model  # truthy: has faults
    assert not NetFaultModel.uniform()  # no faults at all


def test_model_random_is_seed_pure():
    a = NetFaultModel.random(4, 50.0, seed=3, partition_count=2)
    b = NetFaultModel.random(4, 50.0, seed=3, partition_count=2)
    c = NetFaultModel.random(4, 50.0, seed=4, partition_count=2)
    assert a == b
    assert a != c
    assert len(a.partitions) == 2
    assert len(a.overrides) == 12  # every ordered pair of 4 processes
    for (src, dst), faults in a.overrides:
        assert src != dst
        assert 0.0 <= faults.loss <= 0.3
    with pytest.raises(SimulationError):
        NetFaultModel.random(1, 50.0)


def test_model_rng_stream_mixes_both_seeds():
    model = NetFaultModel.uniform(loss=0.5, seed=1)
    assert model.rng_for(0).random() == model.rng_for(0).random()
    assert model.rng_for(0).random() != model.rng_for(1).random()
    other = NetFaultModel.uniform(loss=0.5, seed=2)
    assert model.rng_for(0).random() != other.rng_for(0).random()
